//! Cross-crate invariant tests: conservation, determinism and
//! consistency properties that must hold for any workload and router.

use orion::core::{presets, Experiment, LinkConfig, NetworkConfig, Report, RouterConfig};
use orion::net::{DimensionOrder, NodeId, Topology, TrafficPattern};
use orion::sim::{
    Component, Network, NetworkSpec, PowerModels, RouterKind, VcDiscipline, VcRouterSpec,
};
use orion::tech::{Hertz, Microns, ProcessNode, Technology, Watts};

fn models(flit_bits: u32) -> PowerModels {
    use orion::power::*;
    let tech = Technology::new(ProcessNode::Nm100);
    let crossbar = CrossbarPower::new(
        &CrossbarParams::new(CrossbarKind::Matrix, 5, 5, flit_bits),
        tech,
    )
    .expect("valid");
    let arbiter = ArbiterPower::new(&ArbiterParams::new(ArbiterKind::Matrix, 5), tech)
        .expect("valid")
        .with_control_energy(crossbar.control_energy());
    PowerModels {
        flit_bits,
        buffer: BufferPower::new(&BufferParams::new(16, flit_bits), tech).expect("valid"),
        crossbar,
        arbiter,
        link: LinkPower::on_chip(Microns::from_mm(3.0), flit_bits, tech),
        central: None,
    }
}

fn vc_network(vcs: usize, depth: usize, discipline: VcDiscipline) -> Network {
    Network::new(
        NetworkSpec {
            topology: Topology::torus(&[4, 4]).expect("valid"),
            router: RouterKind::Vc(
                VcRouterSpec::virtual_channel(5, vcs, depth, 64).with_discipline(discipline),
            ),
            packet_len: 5,
            dim_order: DimensionOrder::YFirst,
        },
        models(64),
    )
}

#[test]
fn every_packet_delivered_exactly_once_all_pairs() {
    for discipline in [
        VcDiscipline::Unrestricted,
        VcDiscipline::Dateline,
        VcDiscipline::Escape,
    ] {
        let mut net = vc_network(4, 4, discipline);
        let topo = Topology::torus(&[4, 4]).expect("valid");
        let mut expected = 0;
        for a in topo.nodes() {
            for b in topo.nodes() {
                net.enqueue_packet(a, b, true);
                expected += 1;
            }
        }
        while !net.is_drained() && net.cycle() < 20_000 {
            net.step();
        }
        assert!(net.is_drained(), "{discipline:?} failed to drain");
        assert_eq!(net.stats().packets_delivered, expected);
        assert_eq!(net.stats().flits_delivered, expected * 5);
        assert_eq!(net.stats().sample_count(), expected as usize);
    }
}

#[test]
fn mesh_networks_also_deliver() {
    let topo = Topology::mesh(&[3, 3]).expect("valid");
    let mut net = Network::new(
        NetworkSpec {
            topology: topo.clone(),
            router: RouterKind::Vc(VcRouterSpec::wormhole(5, 8, 64)),
            packet_len: 3,
            dim_order: DimensionOrder::XFirst,
        },
        models(64),
    );
    for a in topo.nodes() {
        for b in topo.nodes() {
            net.enqueue_packet(a, b, true);
        }
    }
    while !net.is_drained() && net.cycle() < 20_000 {
        net.step();
    }
    assert!(net.is_drained());
    assert_eq!(net.stats().packets_delivered, 81);
}

#[test]
fn dateline_discipline_survives_deep_saturation() {
    // The whole point of dateline classes: no deadlock even far past
    // saturation.
    use rand::{rngs::StdRng, SeedableRng};
    let mut net = vc_network(2, 8, VcDiscipline::Dateline);
    let topo = Topology::torus(&[4, 4]).expect("valid");
    let mut pattern = TrafficPattern::uniform(&topo, 0.5).expect("valid rate");
    let mut rng = StdRng::seed_from_u64(13);
    for _ in 0..3000 {
        for node in topo.nodes() {
            if pattern.should_inject(node, &mut rng) {
                let dst = pattern.destination(node, &mut rng).expect("uniform");
                net.enqueue_packet(node, dst, false);
            }
        }
        net.step();
        assert!(
            !net.is_deadlocked(1500),
            "dateline network deadlocked at cycle {}",
            net.cycle()
        );
    }
    assert!(net.stats().packets_delivered > 1000);
}

#[test]
fn escape_discipline_survives_deep_saturation() {
    use rand::{rngs::StdRng, SeedableRng};
    let mut net = vc_network(4, 4, VcDiscipline::Escape);
    let topo = Topology::torus(&[4, 4]).expect("valid");
    let mut pattern = TrafficPattern::uniform(&topo, 0.5).expect("valid rate");
    let mut rng = StdRng::seed_from_u64(17);
    for _ in 0..3000 {
        for node in topo.nodes() {
            if pattern.should_inject(node, &mut rng) {
                let dst = pattern.destination(node, &mut rng).expect("uniform");
                net.enqueue_packet(node, dst, false);
            }
        }
        net.step();
        assert!(
            !net.is_deadlocked(1500),
            "escape network deadlocked at cycle {}",
            net.cycle()
        );
    }
}

#[test]
fn report_totals_equal_component_sums() {
    let report = Experiment::new(presets::vc16_onchip())
        .injection_rate(0.05)
        .warmup(200)
        .sample_packets(300)
        .max_cycles(50_000)
        .run()
        .expect("valid");
    let by_component: f64 = Component::ALL
        .iter()
        .map(|&c| report.component_power(c).0)
        .sum();
    let by_node: f64 = report.power_map().iter().map(|w| w.0).sum();
    assert!((report.total_power().0 - by_component).abs() < 1e-9);
    assert!((report.total_power().0 - by_node).abs() < 1e-9);
}

#[test]
fn experiments_are_deterministic_per_seed() {
    let run = |seed: u64| -> (f64, f64, u64) {
        let r = Experiment::new(presets::vc64_onchip())
            .injection_rate(0.07)
            .seed(seed)
            .warmup(200)
            .sample_packets(300)
            .max_cycles(50_000)
            .run()
            .expect("valid");
        (r.avg_latency(), r.total_power().0, r.measured_cycles())
    };
    assert_eq!(run(5), run(5));
    assert_ne!(run(5), run(6));
}

#[test]
fn chip_to_chip_static_power_floor_is_exact() {
    // 16 nodes × 4 links × 3 W = 192 W even at zero dynamic activity.
    let report = Experiment::new(presets::xb_chip_to_chip())
        .injection_rate(0.0)
        .warmup(100)
        .run()
        .expect("valid");
    assert!((report.total_power().0 - 192.0).abs() < 1e-9);
    assert_eq!(report.component_power(Component::Link), Watts(192.0));
}

#[test]
fn zero_load_latency_analytic_model_matches_measurement() {
    // At a very low rate the measured average approaches the analytic
    // zero-load latency for every router family.
    for (cfg, tolerance) in [
        (presets::wh64_onchip(), 0.08),
        (presets::vc16_onchip(), 0.08),
        (presets::cb_chip_to_chip(), 0.08),
    ] {
        let t0 = cfg.zero_load_latency();
        let r = Experiment::new(cfg)
            .injection_rate(0.005)
            .warmup(200)
            .sample_packets(300)
            .max_cycles(200_000)
            .run()
            .expect("valid");
        let rel = (r.avg_latency() - t0).abs() / t0;
        assert!(
            rel < tolerance,
            "measured {} vs analytic {t0} (rel {rel:.3})",
            r.avg_latency()
        );
    }
}

#[test]
fn energy_scales_with_activity_not_just_operations() {
    // Two runs with the same op counts but different data would differ;
    // here: zero traffic has exactly zero dynamic energy.
    let report = Experiment::new(presets::vc16_onchip())
        .injection_rate(0.0)
        .warmup(100)
        .run()
        .expect("valid");
    for c in Component::ALL {
        assert_eq!(report.component_power(c).0, 0.0, "{c}");
    }
}

#[test]
fn wider_flits_cost_more_energy() {
    let run_width = |bits: u32| {
        let cfg = NetworkConfig::new(
            Topology::torus(&[4, 4]).expect("valid"),
            RouterConfig::VirtualChannel { vcs: 2, depth: 8 },
            bits,
        )
        .clock(Hertz::from_ghz(2.0))
        .link(LinkConfig::OnChip {
            length: Microns::from_mm(3.0),
        });
        Experiment::new(cfg)
            .injection_rate(0.05)
            .seed(3)
            .warmup(200)
            .sample_packets(300)
            .max_cycles(50_000)
            .run()
            .expect("valid")
            .total_power()
            .0
    };
    let narrow = run_width(64);
    let wide = run_width(256);
    assert!(wide > 2.0 * narrow, "wide {wide} vs narrow {narrow}");
}

#[test]
fn self_traffic_consumes_no_link_energy() {
    let topo = Topology::torus(&[4, 4]).expect("valid");
    let mut net = Network::new(
        NetworkSpec {
            topology: topo.clone(),
            router: RouterKind::Vc(VcRouterSpec::wormhole(5, 8, 64)),
            packet_len: 5,
            dim_order: DimensionOrder::YFirst,
        },
        models(64),
    );
    for n in topo.nodes() {
        net.enqueue_packet(n, n, true);
    }
    while !net.is_drained() && net.cycle() < 5_000 {
        net.step();
    }
    assert!(net.is_drained());
    assert_eq!(net.ledger().total_ops(Component::Link), 0);
    assert_eq!(net.ledger().component_energy(Component::Link).0, 0.0);
}

#[test]
fn report_breakdown_fractions_sum_to_one() {
    let report: Report = Experiment::new(presets::cb_chip_to_chip())
        .injection_rate(0.06)
        .warmup(200)
        .sample_packets(300)
        .max_cycles(50_000)
        .run()
        .expect("valid");
    let total: f64 = report.breakdown().iter().map(|(_, _, f)| f).sum();
    assert!((total - 1.0).abs() < 1e-9);
}

#[test]
fn deep_saturation_terminates_early_via_watchdog() {
    // A wormhole torus without dateline VCs driven deep past
    // saturation must not wait out its million-cycle budget: the
    // watchdog (or the backlog-divergence check) classifies the run
    // and stops it. Acceptance criterion of the robustness tentpole.
    use orion::core::RunOutcome;
    const BUDGET: u64 = 1_000_000;
    let report = Experiment::new(presets::wh64_onchip())
        .injection_rate(0.5)
        .seed(11)
        .warmup(100)
        .sample_packets(5_000)
        .max_cycles(BUDGET)
        .watchdog_cycles(500)
        .run()
        .expect("valid config");
    match report.outcome() {
        RunOutcome::Deadlocked(diag) => {
            assert!(!diag.is_empty(), "diagnostics must name stalled VCs");
            assert!(
                diag.blocked_head_flits() > 0,
                "a deadlock blocks head flits"
            );
            assert!(
                diag.cycle < BUDGET / 2,
                "watchdog fired at {} — not 'well under' the {BUDGET} budget",
                diag.cycle
            );
            assert!(diag.flits_in_network > 0);
        }
        RunOutcome::Saturated => {
            assert!(
                report.measured_cycles() < BUDGET / 2,
                "divergence check must stop the run early"
            );
        }
        other => panic!("expected Deadlocked or Saturated, got {other:?}"),
    }
    assert!(report.is_saturated());
}

#[test]
fn sweep_isolates_the_deadlock_prone_point() {
    // An injection sweep containing a deadlock-prone rate still
    // returns results for every other rate, and the degraded point
    // carries its outcome instead of poisoning the sweep.
    use orion::core::{injection_sweep, RunOutcome, SweepOptions};
    let points = injection_sweep(
        &presets::wh64_onchip(),
        &[0.02, 0.5],
        SweepOptions {
            seed: 3,
            warmup: 200,
            sample_packets: 300,
            max_cycles: 100_000,
            threads: 1,
        },
    )
    .expect("sweep must not abort");
    assert_eq!(points.len(), 2, "every rate reported");
    assert_eq!(points[0].report.outcome(), &RunOutcome::Completed);
    assert!(
        matches!(
            points[1].report.outcome(),
            RunOutcome::Deadlocked(_) | RunOutcome::Saturated | RunOutcome::BudgetExhausted
        ),
        "0.5 is deep past saturation: {:?}",
        points[1].report.outcome()
    );
    assert!(points[1].report.is_saturated());
}

#[test]
fn faulted_network_degrades_gracefully_end_to_end() {
    use orion::core::RunOutcome;
    use orion::net::{FaultConfig, FaultSchedule};
    let cfg = presets::vc16_onchip();
    let schedule = FaultSchedule::generate(
        &cfg.topology,
        &FaultConfig {
            seed: 4,
            permanent_links: 8,
            horizon: 1, // active from cycle 0
            ..FaultConfig::default()
        },
    );
    let report = Experiment::new(cfg)
        .injection_rate(0.03)
        .seed(4)
        .warmup(200)
        .sample_packets(300)
        .max_cycles(100_000)
        .fault_schedule(schedule)
        .run()
        .expect("valid config");
    let stats = report.stats();
    // Conservation under faults: every injected packet is delivered,
    // dropped (at the source, with accounting) or still queued.
    assert!(stats.packets_delivered > 0);
    assert!(
        stats.packets_detoured > 0 || stats.packets_dropped > 0,
        "8 dead links must perturb routing"
    );
    assert!(stats.packets_delivered + stats.packets_dropped <= stats.packets_injected);
    match report.outcome() {
        RunOutcome::Faulted { delivered, dropped } => {
            assert_eq!(*delivered, stats.packets_delivered);
            assert_eq!(*dropped, stats.packets_dropped);
        }
        RunOutcome::Completed => assert_eq!(stats.packets_dropped, 0),
        other => panic!("fault run must degrade gracefully, got {other:?}"),
    }
}

#[test]
fn trace_replay_matches_live_pattern_statistics() {
    use orion::net::TraceTraffic;
    use rand::{rngs::StdRng, SeedableRng};
    let topo = Topology::torus(&[4, 4]).expect("valid");
    let mut pattern = TrafficPattern::uniform(&topo, 0.1).expect("valid rate");
    let mut rng = StdRng::seed_from_u64(21);
    let mut trace = TraceTraffic::record(&mut pattern, 2_000, &mut rng);
    let events = trace.events().len();
    assert!((2_400..4_000).contains(&events), "{events} events");

    // Replay the trace through a network; every traced packet arrives.
    let mut net = vc_network(2, 8, VcDiscipline::Unrestricted);
    let mut cycle = 0u64;
    while !(trace.is_exhausted() && net.is_drained()) && cycle < 40_000 {
        let pairs: Vec<(NodeId, NodeId)> = trace.injections_at(cycle).collect();
        for (src, dst) in pairs {
            net.enqueue_packet(src, dst, true);
        }
        net.step();
        cycle += 1;
    }
    assert!(net.is_drained());
    assert_eq!(net.stats().packets_delivered as usize, events);
}
