//! Property-based tests (proptest) on the core data structures and
//! model invariants.

use orion::net::{dor_route, DimensionOrder, NodeId, Port, Topology};
use orion::power::{
    ArbiterKind, ArbiterParams, ArbiterPower, Bits, BufferParams, BufferPower, CrossbarKind,
    CrossbarParams, CrossbarPower, WriteActivity,
};
use orion::sim::{scaled_hamming, MatrixArbiter, RoundRobinArbiter};
use orion::tech::{switch_energy, Farads, ProcessNode, Technology, Volts};
use proptest::prelude::*;

fn tech() -> Technology {
    Technology::new(ProcessNode::Nm100)
}

/// Builds a small network for the end-to-end delivery property.
fn mini_network(kx: u32, ky: u32, vcs: usize, wormhole: bool) -> orion::sim::Network {
    use orion::power::*;
    use orion::sim::{Network, NetworkSpec, RouterKind, VcRouterSpec};
    let topo = Topology::torus(&[kx, ky]).expect("valid radices");
    let t = tech();
    let crossbar =
        CrossbarPower::new(&CrossbarParams::new(CrossbarKind::Matrix, 5, 5, 64), t).expect("valid");
    let arbiter = ArbiterPower::new(&ArbiterParams::new(ArbiterKind::Matrix, 5), t).expect("valid");
    let models = orion::sim::PowerModels {
        flit_bits: 64,
        buffer: BufferPower::new(&BufferParams::new(8, 64), t).expect("valid"),
        crossbar,
        arbiter,
        link: LinkPower::on_chip(orion::tech::Microns::from_mm(1.0), 64, t),
        central: None,
    };
    let spec = if wormhole {
        VcRouterSpec::wormhole(5, 8, 64)
    } else {
        VcRouterSpec::virtual_channel(5, vcs, 4, 64)
    };
    Network::new(
        NetworkSpec {
            topology: topo,
            router: RouterKind::Vc(spec),
            packet_len: 3,
            dim_order: DimensionOrder::YFirst,
        },
        models,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ----- Bits / activity -----

    #[test]
    fn bits_set_get_roundtrip(width in 1u32..300, bits in proptest::collection::vec(0u32..300, 0..20)) {
        let mut b = Bits::zero(width);
        let mut expect = std::collections::HashSet::new();
        for raw in bits {
            let i = raw % width;
            b.set(i, true);
            expect.insert(i);
        }
        for i in 0..width {
            prop_assert_eq!(b.get(i), expect.contains(&i));
        }
        prop_assert_eq!(b.count_ones() as usize, expect.len());
    }

    #[test]
    fn hamming_is_a_metric(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let w = 64;
        let (ba, bb, bc) = (Bits::from_u64(a, w), Bits::from_u64(b, w), Bits::from_u64(c, w));
        prop_assert_eq!(ba.hamming(&bb), bb.hamming(&ba));
        prop_assert_eq!(ba.hamming(&ba), 0);
        // Triangle inequality.
        prop_assert!(ba.hamming(&bc) <= ba.hamming(&bb) + bb.hamming(&bc));
    }

    #[test]
    fn scaled_hamming_bounds(a in any::<u64>(), b in any::<u64>(), width in 1u32..512) {
        let h = scaled_hamming(a, b, width);
        prop_assert!(h >= 0.0);
        prop_assert!(h <= width as f64);
        prop_assert_eq!(scaled_hamming(a, a, width), 0.0);
    }

    // ----- Routing -----

    #[test]
    fn dor_routes_reach_and_are_minimal(
        kx in 2u32..6, ky in 2u32..6, src in 0usize..36, dst in 0usize..36,
        y_first in any::<bool>(),
    ) {
        let topo = Topology::torus(&[kx, ky]).expect("valid radices");
        let n = topo.num_nodes();
        let (src, dst) = (NodeId(src % n), NodeId(dst % n));
        let order = if y_first { DimensionOrder::YFirst } else { DimensionOrder::XFirst };
        let route = dor_route(&topo, src, dst, order);
        // Walk the route.
        let mut at = src;
        for hop in route.hops() {
            match hop {
                Port::Local => break,
                Port::Dir { dim, dir } => {
                    at = topo.neighbor(at, *dim as usize, *dir).expect("torus has all links");
                }
            }
        }
        prop_assert_eq!(at, dst);
        prop_assert_eq!(route.network_hops() as u32, topo.distance(src, dst));
    }

    #[test]
    fn mesh_routes_never_leave_grid(
        kx in 2u32..6, ky in 2u32..6, src in 0usize..36, dst in 0usize..36,
    ) {
        let topo = Topology::mesh(&[kx, ky]).expect("valid radices");
        let n = topo.num_nodes();
        let (src, dst) = (NodeId(src % n), NodeId(dst % n));
        let route = dor_route(&topo, src, dst, DimensionOrder::XFirst);
        let mut at = src;
        for hop in route.hops() {
            match hop {
                Port::Local => break,
                Port::Dir { dim, dir } => {
                    let next = topo.neighbor(at, *dim as usize, *dir);
                    prop_assert!(next.is_some(), "route fell off the mesh at {at}");
                    at = next.expect("checked");
                }
            }
        }
        prop_assert_eq!(at, dst);
    }

    #[test]
    fn distance_satisfies_triangle_inequality(
        k in 2u32..5, a in 0usize..25, b in 0usize..25, c in 0usize..25,
    ) {
        let topo = Topology::torus(&[k, k]).expect("valid");
        let n = topo.num_nodes();
        let (a, b, c) = (NodeId(a % n), NodeId(b % n), NodeId(c % n));
        prop_assert!(topo.distance(a, c) <= topo.distance(a, b) + topo.distance(b, c));
    }

    // ----- Arbiters -----

    #[test]
    fn matrix_arbiter_grants_requesters_only(
        r in 2usize..16, masks in proptest::collection::vec(any::<u16>(), 1..40),
    ) {
        let mut arb = MatrixArbiter::new(r);
        for m in masks {
            let mask = (m as u128) & ((1u128 << r) - 1);
            let g = arb.arbitrate(mask);
            match g.winner {
                Some(w) => prop_assert!(mask & (1 << w) != 0),
                None => prop_assert_eq!(mask, 0),
            }
        }
    }

    #[test]
    fn matrix_arbiter_is_starvation_free(r in 2usize..10) {
        // Under a persistent all-request load, every requester is
        // granted within r rounds.
        let mut arb = MatrixArbiter::new(r);
        let all = (1u128 << r) - 1;
        let mut seen = vec![false; r];
        for _ in 0..r {
            let w = arb.arbitrate(all).winner.expect("requests pending");
            seen[w] = true;
        }
        prop_assert!(seen.iter().all(|&s| s), "grants {seen:?}");
    }

    #[test]
    fn round_robin_is_fair_under_full_load(r in 2usize..12, rounds in 1usize..4) {
        let mut arb = RoundRobinArbiter::new(r);
        let all = (1u128 << r) - 1;
        let mut counts = vec![0u32; r];
        for _ in 0..r * rounds {
            let w = arb.arbitrate(all).winner.expect("requests pending");
            counts[w] += 1;
        }
        for &c in &counts {
            prop_assert_eq!(c, rounds as u32);
        }
    }

    // ----- End-to-end delivery -----

    #[test]
    fn random_packet_sets_always_delivered(
        kx in 2u32..5, ky in 2u32..5, wormhole in any::<bool>(), vcs in 1usize..4,
        pairs in proptest::collection::vec((0usize..25, 0usize..25), 1..24),
    ) {
        let vcs = if wormhole { 1 } else { vcs.max(2) };
        let mut net = mini_network(kx, ky, vcs, wormhole);
        let n = (kx * ky) as usize;
        let expected = pairs.len() as u64;
        for (a, b) in pairs {
            net.enqueue_packet(NodeId(a % n), NodeId(b % n), true);
        }
        while !net.is_drained() && net.cycle() < 10_000 {
            net.step();
        }
        prop_assert!(net.is_drained(), "undelivered flits after 10k cycles");
        prop_assert_eq!(net.stats().packets_delivered, expected);
        prop_assert_eq!(net.stats().flits_delivered, expected * 3);
        // Energy consistency: node sums equal component sums.
        let by_node: f64 = (0..n).map(|i| net.ledger().node_energy(i).0).sum();
        prop_assert!((net.ledger().total_energy().0 - by_node).abs() < 1e-18);
    }

    // ----- Power model monotonicity -----

    #[test]
    fn buffer_energy_monotone_in_depth(b1 in 1u32..256, b2 in 1u32..256, f in 1u32..256) {
        let (lo, hi) = (b1.min(b2), b1.max(b2));
        prop_assume!(lo != hi);
        let small = BufferPower::new(&BufferParams::new(lo, f), tech()).expect("valid");
        let large = BufferPower::new(&BufferParams::new(hi, f), tech()).expect("valid");
        prop_assert!(large.read_energy().0 > small.read_energy().0);
        prop_assert!(large.write_energy_uniform().0 >= small.write_energy_uniform().0);
    }

    #[test]
    fn buffer_energy_monotone_in_width(b in 1u32..128, f1 in 1u32..256, f2 in 1u32..256) {
        let (lo, hi) = (f1.min(f2), f1.max(f2));
        prop_assume!(lo != hi);
        let narrow = BufferPower::new(&BufferParams::new(b, lo), tech()).expect("valid");
        let wide = BufferPower::new(&BufferParams::new(b, hi), tech()).expect("valid");
        prop_assert!(wide.read_energy().0 > narrow.read_energy().0);
    }

    #[test]
    fn write_energy_linear_in_activity(b in 1u32..64, f in 8u32..256, frac in 0.0f64..1.0) {
        let buf = BufferPower::new(&BufferParams::new(b, f), tech()).expect("valid");
        let zero = buf.write_energy(&WriteActivity::NONE).0;
        let full = buf.write_energy(&WriteActivity::worst_case(f)).0;
        let mid = buf
            .write_energy(&WriteActivity {
                switching_bitlines: frac * f as f64,
                switching_cells: frac * f as f64,
            })
            .0;
        let expect = zero + frac * (full - zero);
        prop_assert!((mid - expect).abs() <= 1e-12 * full.max(1e-30));
    }

    #[test]
    fn crossbar_energy_monotone_in_ports(p1 in 2u32..12, p2 in 2u32..12, w in 8u32..128) {
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        prop_assume!(lo != hi);
        let small = CrossbarPower::new(&CrossbarParams::new(CrossbarKind::Matrix, lo, lo, w), tech())
            .expect("valid");
        let large = CrossbarPower::new(&CrossbarParams::new(CrossbarKind::Matrix, hi, hi, w), tech())
            .expect("valid");
        prop_assert!(large.traversal_energy_uniform().0 > small.traversal_energy_uniform().0);
    }

    #[test]
    fn arbiter_energy_monotone_in_requesters(r1 in 2u32..32, r2 in 2u32..32) {
        let (lo, hi) = (r1.min(r2), r1.max(r2));
        prop_assume!(lo != hi);
        let small = ArbiterPower::new(&ArbiterParams::new(ArbiterKind::Matrix, lo), tech())
            .expect("valid");
        let large = ArbiterPower::new(&ArbiterParams::new(ArbiterKind::Matrix, hi), tech())
            .expect("valid");
        // Same activity on a bigger arbiter costs at least as much.
        let lo_mask = (1u64 << lo) - 1;
        prop_assert!(
            large.arbitration_energy(lo_mask, 0, lo).0
                >= small.arbitration_energy(lo_mask, 0, lo).0
        );
    }

    #[test]
    fn energy_quadratic_in_vdd(cap_ff in 0.1f64..1000.0, v1 in 0.5f64..3.0, scale in 1.01f64..3.0) {
        let c = Farads::from_ff(cap_ff);
        let e1 = switch_energy(c, Volts(v1));
        let e2 = switch_energy(c, Volts(v1 * scale));
        let ratio = e2.0 / e1.0;
        prop_assert!((ratio - scale * scale).abs() < 1e-9 * scale * scale);
    }

    #[test]
    fn all_energies_are_finite_and_nonnegative(
        b in 1u32..512, f in 1u32..512, ports in 1u32..4,
    ) {
        let buf = BufferPower::new(
            &BufferParams::new(b, f).with_ports(ports, ports),
            tech(),
        )
        .expect("valid");
        for e in [buf.read_energy().0, buf.write_energy_uniform().0, buf.write_energy_max().0] {
            prop_assert!(e.is_finite() && e >= 0.0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fault schedules are a pure function of (topology, config): the
    /// same seed yields bit-identical schedules, so degraded runs are
    /// reproducible.
    #[test]
    fn fault_schedules_are_deterministic_per_seed(
        seed in any::<u64>(),
        permanent_links in 0usize..12,
        transient_rate in 0.0f64..2.0,
        faulty_router_ports in 0usize..6,
        horizon in 1u64..200_000,
    ) {
        use orion::net::{FaultConfig, FaultSchedule};
        let topo = Topology::torus(&[4, 4]).expect("valid radices");
        let config = FaultConfig {
            seed,
            permanent_links,
            transient_rate,
            transient_duration: 500,
            faulty_router_ports,
            horizon,
        };
        let a = FaultSchedule::generate(&topo, &config);
        let b = FaultSchedule::generate(&topo, &config);
        prop_assert_eq!(&a, &b);

        // A different seed perturbs the schedule. Only checked when the
        // schedule has enough random structure that an accidental
        // collision is astronomically unlikely.
        if permanent_links >= 2 && horizon >= 1_000 {
            let other = FaultSchedule::generate(
                &topo,
                &FaultConfig { seed: seed ^ 0x9e37_79b9_7f4a_7c15, ..config },
            );
            prop_assert!(
                a != other || a.is_empty(),
                "distinct seeds should not collide on non-empty schedules"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The invariant auditor, run at its tightest cadence, never fires
    /// on a healthy simulator: across presets, pre-saturation rates
    /// and arbitrary seeds, no run classifies as `Corrupted`. (The
    /// sibling tests in `orion-sim` prove the auditor *does* fire on
    /// deliberately corrupted state — together they pin both error
    /// directions.)
    #[test]
    fn healthy_runs_audit_clean(
        preset_idx in 0usize..4,
        rate in 0.01f64..0.08,
        seed in any::<u64>(),
    ) {
        use orion::core::{presets, Experiment, RunOutcome};
        let config = [
            presets::wh64_onchip(),
            presets::vc16_onchip(),
            presets::vc64_onchip(),
            presets::vc128_onchip(),
        ][preset_idx]
            .clone();
        let report = Experiment::new(config)
            .injection_rate(rate)
            .seed(seed)
            .warmup(50)
            .sample_packets(60)
            .max_cycles(20_000)
            .watchdog_cycles(400)
            .audit_every(1)
            .run()
            .expect("valid configuration");
        prop_assert!(
            !matches!(report.outcome(), RunOutcome::Corrupted { .. }),
            "auditor fired on a healthy run: {}",
            report.outcome()
        );
    }
}
