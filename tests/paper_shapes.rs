//! Integration tests asserting the qualitative shapes of the paper's
//! case studies at reduced measurement effort (small samples so the
//! suite runs quickly in debug builds).
//!
//! Each test names the figure whose claim it checks; EXPERIMENTS.md
//! records the full-effort numbers.

use orion::core::{presets, Experiment, Report};
use orion::net::TrafficPattern;
use orion::sim::Component;

fn run(cfg: orion::core::NetworkConfig, rate: f64) -> Report {
    Experiment::new(cfg)
        .injection_rate(rate)
        .seed(42)
        .warmup(300)
        .sample_packets(400)
        .max_cycles(60_000)
        .run()
        .expect("preset configurations are valid")
}

#[test]
fn fig5a_vc_routers_pay_pipeline_latency_at_low_load() {
    // At low load the 3-stage VC router is *slower* than the 2-stage
    // wormhole router (visible at the left edge of Fig. 5a).
    let wh = run(presets::wh64_onchip(), 0.02);
    let vc = run(presets::vc16_onchip(), 0.02);
    assert!(!wh.is_saturated() && !vc.is_saturated());
    assert!(
        wh.avg_latency() < vc.avg_latency(),
        "wormhole {} vs VC {}",
        wh.avg_latency(),
        vc.avg_latency()
    );
}

#[test]
fn fig5a_vc16_absorbs_more_than_wh64_near_saturation() {
    // Near WH64's knee, VC16's latency rises more slowly relative to
    // its zero-load latency — virtual channels keep the switch busy.
    let wh = run(presets::wh64_onchip(), 0.12);
    let vc = run(presets::vc16_onchip(), 0.12);
    let wh_ratio = wh.avg_latency() / wh.zero_load_latency();
    let vc_ratio = vc.avg_latency() / vc.zero_load_latency();
    assert!(
        vc_ratio < wh_ratio,
        "VC16 ratio {vc_ratio:.2} must be below WH64 ratio {wh_ratio:.2}"
    );
}

#[test]
fn fig5b_vc16_uses_less_power_than_wh64_before_saturation() {
    // Fig. 5b: "VC16 dissipates less power than WH64 at the same packet
    // injection rate before the network saturates" — shorter bitlines
    // (16 vs 64 flits of buffering per port).
    for rate in [0.04, 0.08] {
        let wh = run(presets::wh64_onchip(), rate);
        let vc = run(presets::vc16_onchip(), rate);
        assert!(
            vc.total_power().0 < wh.total_power().0,
            "rate {rate}: VC16 {} W !< WH64 {} W",
            vc.total_power().0,
            wh.total_power().0
        );
    }
}

#[test]
fn fig5b_vc64_power_close_to_wh64() {
    // Fig. 5b: "VC64 dissipates approximately the same amount of power
    // as WH64 before saturation" — equal total buffering per port.
    let wh = run(presets::wh64_onchip(), 0.08);
    let vc = run(presets::vc64_onchip(), 0.08);
    let ratio = vc.total_power().0 / wh.total_power().0;
    assert!(
        (0.8..1.2).contains(&ratio),
        "VC64/WH64 power ratio {ratio:.3} out of band"
    );
}

#[test]
fn fig5b_vc128_is_the_power_hog() {
    // Fig. 5b: VC128's deeper buffers cost power at every rate.
    let vc64 = run(presets::vc64_onchip(), 0.08);
    let vc128 = run(presets::vc128_onchip(), 0.08);
    assert!(vc128.total_power().0 > vc64.total_power().0);
}

#[test]
fn fig5c_arbiter_power_is_negligible() {
    // Fig. 5c: "the power consumed by arbiters (less than 1% of node
    // power) is minimal".
    let vc = run(presets::vc64_onchip(), 0.10);
    let arbiter_frac = vc
        .breakdown()
        .iter()
        .find(|(c, _, _)| *c == Component::Arbiter)
        .map(|(_, _, f)| *f)
        .expect("arbiter in breakdown");
    assert!(arbiter_frac < 0.01, "arbiter fraction {arbiter_frac}");
}

#[test]
fn fig5c_datapath_dominates_onchip_node_power() {
    // Fig. 5c: input buffers + crossbar dominate on-chip node power
    // (the paper reports > 85%; our Cacti-lineage constants put the
    // datapath above 55% with links taking the rest — see
    // EXPERIMENTS.md).
    let vc = run(presets::vc64_onchip(), 0.10);
    let datapath: f64 = vc
        .breakdown()
        .iter()
        .filter(|(c, _, _)| matches!(c, Component::Buffer | Component::Crossbar))
        .map(|(_, _, f)| f)
        .sum();
    assert!(datapath > 0.5, "datapath fraction {datapath}");
}

#[test]
fn fig6a_uniform_traffic_gives_flat_power_map() {
    let cfg = presets::vc16_onchip();
    let topo = cfg.topology.clone();
    let report = Experiment::new(cfg)
        .workload(TrafficPattern::uniform(&topo, 0.2 / 16.0).expect("valid rate"))
        .seed(9)
        .warmup(500)
        .sample_packets(1500)
        .max_cycles(120_000)
        .run()
        .expect("valid config");
    let map = report.power_map();
    let min = map.iter().map(|w| w.0).fold(f64::INFINITY, f64::min);
    let max = map.iter().map(|w| w.0).fold(0.0, f64::max);
    assert!(
        max / min < 1.6,
        "uniform spatial spread {:.2} too large",
        max / min
    );
}

#[test]
fn fig6b_broadcast_power_decays_with_manhattan_distance() {
    let cfg = presets::vc16_onchip();
    let topo = cfg.topology.clone();
    let src = topo.node_at(&[1, 2]);
    let report = Experiment::new(cfg)
        .workload(TrafficPattern::broadcast(&topo, src, 0.2).expect("valid rate"))
        .seed(9)
        .warmup(500)
        .sample_packets(1500)
        .max_cycles(120_000)
        .run()
        .expect("valid config");
    let map = report.power_map();

    // The source consumes the most power.
    let src_power = map[src.0].0;
    for node in topo.nodes() {
        assert!(map[node.0].0 <= src_power + 1e-12, "{node} exceeds source");
    }

    // Average power is monotonically non-increasing in Manhattan
    // distance from the source.
    let mut by_distance: Vec<(u32, Vec<f64>)> = Vec::new();
    for node in topo.nodes() {
        let d = topo.distance(src, node);
        match by_distance.iter_mut().find(|(dist, _)| *dist == d) {
            Some((_, v)) => v.push(map[node.0].0),
            None => by_distance.push((d, vec![map[node.0].0])),
        }
    }
    by_distance.sort_by_key(|(d, _)| *d);
    let means: Vec<f64> = by_distance
        .iter()
        .map(|(_, v)| v.iter().sum::<f64>() / v.len() as f64)
        .collect();
    for pair in means.windows(2) {
        assert!(
            pair[1] <= pair[0] * 1.05,
            "power must decay with distance: {means:?}"
        );
    }

    // §4.3's y-first routing asymmetry: the source's column neighbours
    // carry more traffic than its row neighbours.
    let at = |x: u32, y: u32| map[topo.node_at(&[x, y]).0].0;
    assert!(at(1, 1) > at(0, 2));
    assert!(at(1, 3) > at(2, 2));
    // Columns other than the source's are uniform in y.
    for x in [0u32, 3] {
        let col: Vec<f64> = (0..4).map(|y| at(x, y)).collect();
        let mean = col.iter().sum::<f64>() / 4.0;
        for v in &col {
            assert!((v - mean).abs() / mean < 0.25, "column x={x}: {col:?}");
        }
    }
}

#[test]
fn fig7a_cb_saturates_below_xb_under_uniform_traffic() {
    // Fig. 7a: the CB's 2+2 fabric ports cap its uniform throughput
    // below the crossbar's.
    let xb = run(presets::xb_chip_to_chip(), 0.12);
    let cb = run(presets::cb_chip_to_chip(), 0.12);
    assert!(
        cb.avg_latency() > 1.5 * xb.avg_latency(),
        "CB {} vs XB {}",
        cb.avg_latency(),
        xb.avg_latency()
    );
}

#[test]
fn fig7d_cb_beats_xb_under_broadcast() {
    // Fig. 7d: per-output queues + 2 memory write ports let the CB
    // drain a single hot input at twice the crossbar's rate.
    let topo = presets::xb_chip_to_chip().topology.clone();
    let src = topo.node_at(&[1, 2]);
    let run_bc = |cfg: orion::core::NetworkConfig| {
        Experiment::new(cfg)
            .workload(TrafficPattern::broadcast(&topo, src, 0.3).expect("valid rate"))
            .seed(42)
            .warmup(300)
            .sample_packets(400)
            .max_cycles(60_000)
            .run()
            .expect("valid config")
    };
    let xb = run_bc(presets::xb_chip_to_chip());
    let cb = run_bc(presets::cb_chip_to_chip());
    assert_eq!(
        cb.outcome(),
        &orion::core::RunOutcome::Completed,
        "CB absorbs 0.3 pkt/cycle broadcast"
    );
    assert!(
        cb.avg_latency() * 2.0 < xb.avg_latency(),
        "CB {} must be far below XB {}",
        cb.avg_latency(),
        xb.avg_latency()
    );
}

#[test]
fn fig7b_cb_pays_more_dynamic_power_than_xb() {
    // Fig. 7b/7f: every CB flit pays the central buffer's long
    // bitlines; XB flits mostly bypass their input buffers.
    let xb = run(presets::xb_chip_to_chip(), 0.09);
    let cb = run(presets::cb_chip_to_chip(), 0.09);
    let dynamic = |r: &Report| {
        r.component_power(Component::Buffer).0
            + r.component_power(Component::CentralBuffer).0
            + r.component_power(Component::Crossbar).0
            + r.component_power(Component::Arbiter).0
    };
    assert!(
        dynamic(&cb) > dynamic(&xb),
        "CB dynamic {} W !> XB dynamic {} W",
        dynamic(&cb),
        dynamic(&xb)
    );
}

#[test]
fn fig7c_links_dominate_chip_to_chip_node_power() {
    // Fig. 7c: "links take up more than 70% of node power" in the
    // chip-to-chip network (3 W traffic-insensitive links).
    let xb = run(presets::xb_chip_to_chip(), 0.09);
    let link_frac = xb
        .breakdown()
        .iter()
        .find(|(c, _, _)| *c == Component::Link)
        .map(|(_, _, f)| *f)
        .expect("links in breakdown");
    assert!(link_frac > 0.7, "link fraction {link_frac}");
}

#[test]
fn fig7e_chip_to_chip_power_is_traffic_insensitive() {
    // §4.4: differential links "consume almost the same power
    // regardless of link activity" — total power barely moves with
    // load.
    let lo = run(presets::xb_chip_to_chip(), 0.02);
    let hi = run(presets::xb_chip_to_chip(), 0.10);
    let rel = (hi.total_power().0 - lo.total_power().0) / lo.total_power().0;
    assert!(rel < 0.05, "relative increase {rel}");
}

#[test]
fn onchip_power_tracks_load_until_saturation() {
    // Fig. 5b: "total network power levels off after saturation, since
    // the network cannot handle a higher packet injection rate" — but
    // below saturation it rises roughly linearly.
    let p1 = run(presets::vc64_onchip(), 0.04).total_power().0;
    let p2 = run(presets::vc64_onchip(), 0.08).total_power().0;
    let ratio = p2 / p1;
    assert!(
        (1.6..2.4).contains(&ratio),
        "power should roughly double with load, got {ratio:.2}"
    );
}
