//! Wormhole vs. virtual-channel routers (the §4.2 case study, reduced).
//!
//! Sweeps injection rate for WH64 and VC16 on the paper's on-chip
//! 4×4 torus and prints latency, power and the saturation verdict at
//! each point — the paper's first usage category: "trade-off two
//! configurations of a microarchitecture".
//!
//! Run with `cargo run --release --example wormhole_vs_vc`.

use orion::core::{injection_sweep, presets, saturation_rate, SweepOptions};

fn main() {
    let options = SweepOptions {
        seed: 7,
        warmup: 500,
        sample_packets: 2_000,
        max_cycles: 100_000,
        threads: 1,
    };
    let rates = [0.02, 0.05, 0.08, 0.11, 0.14];

    println!("on-chip 4x4 torus, 256-bit flits, 2 GHz, 0.1 um (paper section 4.2)\n");
    println!(
        "{:>6} | {:>12} {:>10} | {:>12} {:>10}",
        "rate", "WH64 lat", "WH64 W", "VC16 lat", "VC16 W"
    );

    let wh = injection_sweep(&presets::wh64_onchip(), &rates, options)
        .expect("preset configurations are valid");
    let vc = injection_sweep(&presets::vc16_onchip(), &rates, options)
        .expect("preset configurations are valid");

    for (w, v) in wh.iter().zip(&vc) {
        let mark = |saturated: bool| if saturated { "*" } else { " " };
        println!(
            "{:>6.2} | {:>11.1}{} {:>10.3} | {:>11.1}{} {:>10.3}",
            w.rate,
            w.report.avg_latency(),
            mark(w.report.is_saturated()),
            w.report.total_power().0,
            v.report.avg_latency(),
            mark(v.report.is_saturated()),
            v.report.total_power().0,
        );
    }

    println!(
        "\nsaturation: WH64 ~ {:?}, VC16 ~ {:?} pkt/cycle/node",
        saturation_rate(&wh),
        saturation_rate(&vc)
    );
    println!("(paper: VC16 saturates above WH64 despite a quarter of the buffering,");
    println!(" and consumes less power than WH64 at equal pre-saturation rates)");
}
