//! Trace-driven workloads (§4.3: "Orion can be interfaced with actual
//! communication traces for more realistic results").
//!
//! Records a communication trace from a synthetic pattern, round-trips
//! it through the on-disk text format, replays it through a network and
//! compares against the live run — the workflow for plugging real
//! application traces into the simulator.
//!
//! Run with `cargo run --release --example trace_replay`.

use orion::net::{NodeId, Topology, TraceTraffic, TrafficPattern};
use orion::sim::Network;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn network() -> Network {
    let (spec, models) = orion::core::presets::vc16_onchip()
        .build()
        .expect("preset configurations are valid");
    Network::new(spec, models)
}

fn main() -> std::io::Result<()> {
    let topo = Topology::torus(&[4, 4]).expect("valid");

    // 1. Record 2000 cycles of a hotspot workload into a trace. The
    // hot node's ejection port carries 16·0.03·(0.2 + 0.8/15) ≈ 0.12
    // packets/cycle ≈ 0.6 flits/cycle — loaded, but feasible (offering
    // more than 1 flit/cycle to one ejection port can never drain).
    let mut pattern =
        TrafficPattern::hotspot(&topo, NodeId(5), 0.2, 0.03).expect("valid parameters");
    let mut rng = StdRng::seed_from_u64(2026);
    let trace = TraceTraffic::record(&mut pattern, 2000, &mut rng);
    println!(
        "recorded {} packet injections over 2000 cycles",
        trace.events().len()
    );

    // 2. Round-trip through the text format (stand-in for a file).
    let mut text = Vec::new();
    trace.write_to(&mut text)?;
    println!(
        "serialised to {} bytes; first lines:\n{}",
        text.len(),
        String::from_utf8_lossy(&text)
            .lines()
            .take(4)
            .collect::<Vec<_>>()
            .join("\n")
    );
    let mut replayed = TraceTraffic::read_from(text.as_slice())?;
    assert_eq!(replayed.events(), trace.events(), "lossless round-trip");

    // 3. Replay through the simulator.
    let mut net = network();
    let mut cycle = 0u64;
    while !(replayed.is_exhausted() && net.is_drained()) && cycle < 50_000 {
        let pairs: Vec<(NodeId, NodeId)> = replayed.injections_at(cycle).collect();
        for (src, dst) in pairs {
            net.enqueue_packet(src, dst, true);
        }
        net.step();
        cycle += 1;
    }
    assert!(net.is_drained(), "feasible trace must drain completely");
    println!(
        "\nreplay: {} packets delivered in {} cycles, avg latency {:.1}",
        net.stats().packets_delivered,
        cycle,
        net.stats().avg_latency()
    );
    println!(
        "total switching energy {:.2} nJ",
        net.ledger().total_energy().as_nj()
    );

    // 4. Replays are exactly reproducible — a second pass gives
    // identical results (the property that makes trace-driven studies
    // comparable across microarchitectures).
    let mut second = TraceTraffic::read_from(text.as_slice())?;
    let mut net2 = network();
    let mut cycle2 = 0u64;
    while !(second.is_exhausted() && net2.is_drained()) && cycle2 < 50_000 {
        let pairs: Vec<(NodeId, NodeId)> = second.injections_at(cycle2).collect();
        for (src, dst) in pairs {
            net2.enqueue_packet(src, dst, true);
        }
        net2.step();
        cycle2 += 1;
    }
    assert_eq!(net.stats().avg_latency(), net2.stats().avg_latency());
    assert_eq!(
        net.ledger().total_energy().0,
        net2.ledger().total_energy().0
    );
    println!("second replay identical: deterministic trace-driven simulation");
    Ok(())
}
