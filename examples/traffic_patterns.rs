//! Exploring workloads (the §4.3 case study, extended).
//!
//! Runs one router configuration (VC, 2 VCs × 8 flits) under several
//! traffic patterns at equal aggregate injection and prints each
//! pattern's per-node power map as an ASCII heat map — the paper's
//! second usage category: "explore the impact of two application
//! traffic patterns on a specific network microarchitecture".
//!
//! Run with `cargo run --release --example traffic_patterns`.

use orion::core::{presets, Experiment, Report};
use orion::net::{NodeId, TrafficPattern};
use orion::tech::Watts;

fn shade(p: Watts, max: Watts) -> char {
    const RAMP: [char; 6] = [' ', '.', ':', 'o', 'O', '#'];
    if max.0 <= 0.0 {
        return RAMP[0];
    }
    let idx = ((p.0 / max.0) * (RAMP.len() - 1) as f64).round() as usize;
    RAMP[idx.min(RAMP.len() - 1)]
}

fn show(name: &str, report: &Report) {
    let map = report.power_map();
    let max = map.iter().copied().fold(Watts::ZERO, Watts::max);
    println!(
        "\n{name}: total {:.3} W, max node {:.4} W",
        report.total_power().0,
        max.0
    );
    for y in (0..4).rev() {
        let row: String = (0..4)
            .map(|x| shade(map[y * 4 + x], max))
            .flat_map(|c| [c, c, ' '])
            .collect();
        println!("   y={y}  {row}");
    }
}

fn main() {
    let cfg = presets::vc16_onchip();
    let topo = cfg.topology.clone();
    // Equal aggregate injection for every pattern (§4.3): 0.2
    // packets/cycle network-wide.
    let per_node = 0.2 / 16.0;
    let source = topo.node_at(&[1, 2]);

    let patterns: Vec<(&str, TrafficPattern)> = vec![
        (
            "uniform random",
            TrafficPattern::uniform(&topo, per_node).expect("valid rate"),
        ),
        (
            "broadcast from (1,2)",
            TrafficPattern::broadcast(&topo, source, 0.2).expect("valid rate"),
        ),
        (
            "transpose",
            TrafficPattern::transpose(&topo, 0.2 / 12.0).expect("square 2-D topology"),
        ),
        (
            "bit complement",
            TrafficPattern::bit_complement(&topo, per_node).expect("power-of-two nodes"),
        ),
        (
            "tornado",
            TrafficPattern::tornado(&topo, per_node).expect("valid rate"),
        ),
        (
            "hotspot -> (3,3), 40%",
            TrafficPattern::hotspot(&topo, NodeId(15), 0.4, per_node).expect("valid params"),
        ),
        (
            "perfect shuffle",
            TrafficPattern::shuffle(&topo, 0.2 / 14.0).expect("power-of-two nodes"),
        ),
        (
            "bit reversal",
            TrafficPattern::bit_reversal(&topo, 0.2 / 14.0).expect("power-of-two nodes"),
        ),
    ];

    println!("per-node power maps, VC router (2 VCs x 8 flits), 4x4 torus");
    println!("(darker = more power; all patterns offer 0.2 packets/cycle aggregate)");
    for (name, pattern) in patterns {
        let report = Experiment::new(cfg.clone())
            .workload(pattern)
            .seed(11)
            .warmup(500)
            .sample_packets(2_000)
            .max_cycles(100_000)
            .run()
            .expect("preset configurations are valid");
        show(name, &report);
    }
    println!("\n(paper Fig. 6: uniform is flat; broadcast peaks at the source and");
    println!(" decays with Manhattan distance, shaped by y-first dimension order)");
}
