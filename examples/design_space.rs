//! Design-space exploration: finding the power-performance sweet spot.
//!
//! The paper's motivation is "rapid power-performance tradeoffs at the
//! architectural level": this example sweeps virtual-channel count and
//! buffer depth at a fixed operating point, prints latency, power,
//! estimated router area and an energy-per-flit figure of merit, and
//! flags the Pareto-efficient configurations.
//!
//! Run with `cargo run --release --example design_space`.

use orion::core::{Experiment, LinkConfig, NetworkConfig, RouterConfig};
use orion::net::Topology;
use orion::tech::{Hertz, Microns};

struct Candidate {
    name: String,
    latency: f64,
    power_w: f64,
    area_mm2: f64,
    saturated: bool,
}

fn main() {
    let topo = Topology::torus(&[4, 4]).expect("4x4 torus is valid");
    let rate = 0.08;
    let mut results: Vec<Candidate> = Vec::new();

    for (vcs, depth) in [(1, 16), (1, 64), (2, 8), (2, 16), (4, 8), (8, 8), (8, 16)] {
        let router = if vcs == 1 {
            RouterConfig::Wormhole {
                buffer_flits: depth,
            }
        } else {
            RouterConfig::VirtualChannel { vcs, depth }
        };
        let name = if vcs == 1 {
            format!("WH{depth}")
        } else {
            format!("VC {vcs}x{depth}")
        };
        let cfg = NetworkConfig::new(topo.clone(), router, 256)
            .clock(Hertz::from_ghz(2.0))
            .link(LinkConfig::OnChip {
                length: Microns::from_mm(3.0),
            });
        let area = cfg.router_area().expect("valid config").total().as_mm2();
        let report = Experiment::new(cfg)
            .injection_rate(rate)
            .seed(5)
            .warmup(500)
            .sample_packets(2_000)
            .max_cycles(100_000)
            .run()
            .expect("valid config");
        results.push(Candidate {
            name,
            latency: report.avg_latency(),
            power_w: report.total_power().0,
            area_mm2: area,
            saturated: report.is_saturated(),
        });
    }

    println!("4x4 on-chip torus at {rate} pkt/cycle/node, 256-bit flits, 2 GHz\n");
    println!(
        "{:>8} | {:>9} | {:>8} | {:>10} | pareto",
        "config", "latency", "power W", "area mm^2"
    );
    for c in &results {
        // A configuration is Pareto-efficient if nothing beats it on
        // both latency and power.
        let dominated = results
            .iter()
            .any(|o| o.latency < c.latency && o.power_w < c.power_w && !o.saturated);
        println!(
            "{:>8} | {:>8.1}{} | {:>8.3} | {:>10.2} | {}",
            c.name,
            c.latency,
            if c.saturated { "*" } else { " " },
            c.power_w,
            c.area_mm2,
            if dominated || c.saturated { "" } else { "yes" }
        );
    }
    println!("\n(the paper's observation: increasing buffering past VC64 costs power");
    println!(" without buying throughput — 'it will not be viable to choose VC128')");
}
