//! Evaluating a new microarchitecture (the §4.4 case study, reduced).
//!
//! Compares the central-buffered (CB) router against the input-buffered
//! crossbar (XB) baseline on the chip-to-chip 4×4 torus — the paper's
//! third usage category: "evaluate a new microarchitectural mechanism
//! against a base microarchitecture". The CB power model is built
//! hierarchically from the FIFO-buffer, flip-flop and crossbar models
//! (§3.2), and the two configurations are checked for comparable area
//! first, as the paper prescribes.
//!
//! Run with `cargo run --release --example central_buffer`.

use orion::core::{presets, Experiment};
use orion::net::TrafficPattern;
use orion::sim::Component;

fn main() {
    let xb = presets::xb_chip_to_chip();
    let cb = presets::cb_chip_to_chip();

    // §4.4: "we define two router configurations of XB and CB routers
    // that take up roughly the same area".
    let a_xb = xb.router_area().expect("valid config").total();
    let a_cb = cb.router_area().expect("valid config").total();
    println!(
        "estimated router area: XB {:.2} mm^2 vs CB {:.2} mm^2 (ratio {:.2})\n",
        a_xb.as_mm2(),
        a_cb.as_mm2(),
        a_xb.0 / a_cb.0
    );

    let topo = xb.topology.clone();
    let broadcast_src = topo.node_at(&[1, 2]);

    for (workload, xb_pattern, cb_pattern) in [
        (
            "uniform random, 0.09 pkt/cycle/node",
            TrafficPattern::uniform(&topo, 0.09).expect("valid rate"),
            TrafficPattern::uniform(&topo, 0.09).expect("valid rate"),
        ),
        (
            "broadcast from (1,2), 0.3 pkt/cycle",
            TrafficPattern::broadcast(&topo, broadcast_src, 0.3).expect("valid rate"),
            TrafficPattern::broadcast(&topo, broadcast_src, 0.3).expect("valid rate"),
        ),
    ] {
        println!("== {workload} ==");
        for (name, cfg, pattern) in [("XB", &xb, xb_pattern), ("CB", &cb, cb_pattern)] {
            let report = Experiment::new(cfg.clone())
                .workload(pattern)
                .seed(3)
                .warmup(500)
                .sample_packets(2_000)
                .max_cycles(150_000)
                .run()
                .expect("preset configurations are valid");
            let storage = report.component_power(Component::Buffer).0
                + report.component_power(Component::CentralBuffer).0;
            println!(
                "  {name}: latency {:7.1} cycles{}  total {:7.2} W  (storage {:5.2} W, links {:6.1} W)",
                report.avg_latency(),
                if report.is_saturated() { "*" } else { " " },
                report.total_power().0,
                storage,
                report.component_power(Component::Link).0,
            );
        }
        println!();
    }
    println!("(paper Fig. 7: XB wins uniform random — 5 fabric ports vs the CB's 2 —");
    println!(" while CB wins broadcast: its per-output queues dodge head-of-line");
    println!(" blocking and its 2 memory write ports drain the one hot input;");
    println!(" CB pays for it with the central buffer's long-bitline accesses)");
}
