//! Quickstart: the paper's §3.3 walkthrough, in library form.
//!
//! Builds the power models for the example wormhole router — 5 ports,
//! 4-flit input buffers, 32-bit flits, a 5×5 crossbar and a 4:1 matrix
//! arbiter per output port — then walks a head flit through one node:
//! buffer write, arbitration, buffer read, crossbar traversal, link
//! traversal, and sums `E_flit`.
//!
//! Run with `cargo run --example quickstart`.

use orion::power::{
    ArbiterKind, ArbiterParams, ArbiterPower, BufferParams, BufferPower, CrossbarKind,
    CrossbarParams, CrossbarPower, LinkPower, ModelError, WriteActivity,
};
use orion::tech::{Microns, ProcessNode, Technology};

fn main() -> Result<(), ModelError> {
    // The paper's on-chip operating point: 0.1 µm, 1.2 V.
    let tech = Technology::new(ProcessNode::Nm100);
    println!(
        "walkthrough router at {} (Vdd = {} V)\n",
        tech.node(),
        tech.vdd().0
    );

    // The modules of Figure 2.
    let buffer = BufferPower::new(&BufferParams::new(4, 32), tech)?;
    let crossbar = CrossbarPower::new(&CrossbarParams::new(CrossbarKind::Matrix, 5, 5, 32), tech)?;
    let arbiter = ArbiterPower::new(&ArbiterParams::new(ArbiterKind::Matrix, 4), tech)?
        .with_control_energy(crossbar.control_energy());
    let link = LinkPower::on_chip(Microns::from_mm(3.0), 32, tech);

    // The head flit is injected into the *write* port of the input
    // buffer module; the buffer write event triggers E_wrt.
    let e_wrt = buffer.write_energy(&WriteActivity::uniform_random(32));
    println!("buffer write   E_wrt  = {:8.4} pJ", e_wrt.as_pj());

    // Its route read, a request goes to the desired output port's
    // arbiter; the arbitration event triggers E_arb.
    let e_arb = arbiter.arbitration_energy(0b0001, 0b0000, 2);
    println!("arbitration    E_arb  = {:8.4} pJ", e_arb.as_pj());

    // The grant activates the buffer's read port: E_read.
    let e_read = buffer.read_energy();
    println!("buffer read    E_read = {:8.4} pJ", e_read.as_pj());

    // The flit traverses the crossbar to the north output port: E_xb.
    let e_xb = crossbar.traversal_energy_uniform();
    println!("crossbar       E_xb   = {:8.4} pJ", e_xb.as_pj());

    // Finally it traverses the outgoing link: E_link.
    let e_link = link.traversal_energy_uniform();
    println!("link           E_link = {:8.4} pJ", e_link.as_pj());

    // "The total energy this head flit has consumed at this node and
    // its outgoing link is thus:"
    let e_flit = e_wrt + e_arb + e_read + e_xb + e_link;
    println!("---------------------------------");
    println!("per-flit total E_flit = {:8.4} pJ", e_flit.as_pj());

    // The models expose their intermediate capacitances for hierarchical
    // reuse (§3.2):
    println!(
        "\nTable 2 capacitances: C_wl = {:.2} fF, C_br = {:.2} fF, C_cell = {:.2} fF",
        buffer.wordline_cap().as_ff(),
        buffer.read_bitline_cap().as_ff(),
        buffer.cell_cap().as_ff()
    );
    Ok(())
}
