//! # Orion — a power-performance simulator for interconnection networks
//!
//! This is the facade crate of a Rust reproduction of *Wang, Zhu, Peh,
//! Malik, "Orion: A Power-Performance Simulator for Interconnection
//! Networks" (MICRO 2002)*. It re-exports the workspace crates:
//!
//! * [`tech`] ([`orion_tech`]) — process technology and Cacti-style
//!   capacitance estimation,
//! * [`power`] ([`orion_power`]) — the paper's architectural-level
//!   parameterized power models (FIFO buffers, crossbars, arbiters,
//!   links, central buffers),
//! * [`net`] ([`orion_net`]) — topologies, routing and traffic workloads,
//! * [`sim`] ([`orion_sim`]) — the cycle-accurate network simulator with
//!   per-event energy accounting,
//! * [`core`] ([`orion_core`]) — the user-facing configuration, presets
//!   and experiment runner.
//!
//! # Quickstart
//!
//! Walk a head flit through a simple wormhole router (§3.3 of the paper)
//! and account its energy:
//!
//! ```
//! use orion::power::{BufferParams, BufferPower, WriteActivity};
//! use orion::tech::{ProcessNode, Technology};
//!
//! let tech = Technology::new(ProcessNode::Nm100);
//! let buffer = BufferPower::new(&BufferParams::new(4, 32), tech)?;
//! let e_wrt = buffer.write_energy(&WriteActivity::worst_case(32));
//! let e_read = buffer.read_energy();
//! assert!(e_wrt.0 > 0.0 && e_read.0 > 0.0);
//! # Ok::<(), orion::power::ModelError>(())
//! ```
//!
//! Or simulate a whole network with the paper's presets:
//!
//! ```no_run
//! use orion::core::{presets, Experiment};
//!
//! let cfg = presets::vc16_onchip();
//! let report = Experiment::new(cfg)
//!     .injection_rate(0.05)
//!     .seed(7)
//!     .run()
//!     .expect("valid configuration");
//! println!("avg latency = {:.1} cycles", report.avg_latency());
//! println!("network power = {:.3} W", report.total_power().0);
//! ```

#![forbid(unsafe_code)]

pub use orion_core as core;
pub use orion_net as net;
pub use orion_power as power;
pub use orion_sim as sim;
pub use orion_tech as tech;
