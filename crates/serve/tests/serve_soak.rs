//! Soak scenario from the issue: a live daemon under concurrent
//! clients with overlapping grids, malformed and over-budget requests,
//! a mid-stream drain, and a byte-identical cache resume afterwards.
//!
//! The client side is a deliberately tiny HTTP/1.1 implementation over
//! `TcpStream` (the same zero-dependency constraint as the server),
//! including an incremental chunked-transfer reader so tests can react
//! to individual streamed records — that is what makes the mid-stream
//! drain deterministic instead of timing-based.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::Duration;

use orion_exp::{run_spec, EngineOptions, ExperimentSpec};
use orion_serve::{ServeConfig, Server};

const FAST_MEASURE: &str = "[measure]\nwarmup = 100\nsample_packets = 100\nmax_cycles = 20000\n";

fn spec_toml(name: &str, rates: &str) -> String {
    format!(
        "[experiment]\nname = \"{name}\"\n\n[grid]\npresets = [\"vc16\"]\nrates = {rates}\n\n{FAST_MEASURE}"
    )
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("orion-serve-soak-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A fully-read response: status code plus decoded body lines.
struct Response {
    status: u16,
    body: String,
}

impl Response {
    fn lines(&self) -> Vec<&str> {
        self.body.lines().filter(|l| !l.is_empty()).collect()
    }

    /// Lines that are cell records (framing lines carry `"type"`).
    fn record_lines(&self) -> Vec<&str> {
        self.lines()
            .into_iter()
            .filter(|l| l.starts_with("{\"schema_version\""))
            .collect()
    }

    fn summary_line(&self) -> &str {
        self.lines()
            .into_iter()
            .rfind(|l| l.starts_with("{\"type\":\"summary\""))
            .expect("stream must end with a summary line")
    }
}

/// Sends one request and reads the whole response (chunked or fixed).
fn request(addr: &str, method: &str, path: &str, headers: &[(&str, &str)], body: &str) -> Response {
    let mut stream = TcpStream::connect(addr).unwrap();
    send_request(&mut stream, method, path, headers, body);
    let mut reader = BufReader::new(stream);
    let (status, chunked, length) = read_head(&mut reader);
    let body = if chunked {
        let mut out = String::new();
        while let Some(chunk) = read_chunk(&mut reader) {
            out.push_str(&chunk);
        }
        out
    } else {
        let mut buf = vec![0u8; length];
        reader.read_exact(&mut buf).unwrap();
        String::from_utf8(buf).unwrap()
    };
    Response { status, body }
}

fn send_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) {
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: orion\r\n");
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    stream.flush().unwrap();
}

/// Parses the status line and headers; returns (status, chunked,
/// content_length).
fn read_head(reader: &mut BufReader<TcpStream>) -> (u16, bool, usize) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .unwrap();
    let mut chunked = false;
    let mut length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let lower = line.to_ascii_lowercase();
        if lower.starts_with("transfer-encoding:") && lower.contains("chunked") {
            chunked = true;
        }
        if let Some(v) = lower.strip_prefix("content-length:") {
            length = v.trim().parse().unwrap();
        }
    }
    (status, chunked, length)
}

/// Reads one chunk; `None` on the terminal zero-chunk.
fn read_chunk(reader: &mut BufReader<TcpStream>) -> Option<String> {
    let mut size_line = String::new();
    reader.read_line(&mut size_line).unwrap();
    let size = usize::from_str_radix(size_line.trim(), 16).unwrap();
    let mut data = vec![0u8; size + 2]; // chunk + trailing CRLF
    reader.read_exact(&mut data).unwrap();
    if size == 0 {
        return None;
    }
    data.truncate(size);
    Some(String::from_utf8(data).unwrap())
}

fn start_server(config: ServeConfig) -> (String, orion_serve::ShutdownHandle, ServerJoin) {
    let server = Server::bind(config).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run().unwrap());
    (addr, handle, ServerJoin(join))
}

struct ServerJoin(std::thread::JoinHandle<orion_serve::ServeOutcome>);

impl ServerJoin {
    fn finish(self, handle: &orion_serve::ShutdownHandle) -> orion_serve::ServeOutcome {
        handle.shutdown();
        self.0.join().unwrap()
    }
}

#[test]
fn health_ready_metrics_and_typed_errors() {
    let (addr, handle, join) = start_server(ServeConfig::default());

    let health = request(&addr, "GET", "/healthz", &[], "");
    assert_eq!(health.status, 200);
    assert!(health.body.contains("\"status\":\"ok\""));

    let ready = request(&addr, "GET", "/readyz", &[], "");
    assert_eq!(ready.status, 200);
    assert!(ready.body.contains("\"status\":\"ready\""));

    let missing = request(&addr, "GET", "/nope", &[], "");
    assert_eq!(missing.status, 404);
    assert!(missing.body.contains("\"code\":\"not-found\""));

    let bad_spec = request(&addr, "POST", "/v1/experiment", &[], "not toml at all [");
    assert_eq!(bad_spec.status, 400);
    assert!(bad_spec.body.contains("\"code\":\"bad-spec\""));

    let bad_header = request(
        &addr,
        "POST",
        "/v1/experiment",
        &[("X-Orion-Retries", "many")],
        &spec_toml("h", "[0.02]"),
    );
    assert_eq!(bad_header.status, 400);
    assert!(bad_header.body.contains("\"code\":\"bad-header\""));

    // Raw garbage on the socket gets a typed 400, not a hang.
    let mut raw = TcpStream::connect(&addr).unwrap();
    raw.write_all(b"this is not http\r\n\r\n").unwrap();
    let mut garbage_reply = String::new();
    let _ = BufReader::new(raw).read_to_string(&mut garbage_reply);
    assert!(garbage_reply.starts_with("HTTP/1.1 400"));

    let metrics = request(&addr, "GET", "/metrics", &[], "");
    assert_eq!(metrics.status, 200);
    assert!(metrics.body.contains("\"serve_rejected_bad_spec\":1"));
    assert!(metrics.body.contains("\"serve_rejected_bad_header\":1"));
    assert!(metrics.body.contains("\"serve_rejected_malformed_http\":1"));

    let outcome = join.finish(&handle);
    assert!(outcome.drained);
}

#[test]
fn concurrent_overlapping_clients_dedup_and_match_sequential() {
    let dir = temp_dir("overlap");
    let (addr, handle, join) = start_server(ServeConfig {
        cache_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });

    // 4 clients, 8 requested cells, 3 distinct rates.
    let grids = [
        "[0.02, 0.04]",
        "[0.04, 0.06]",
        "[0.02, 0.06]",
        "[0.02, 0.04]",
    ];
    let barrier = Arc::new(Barrier::new(grids.len()));
    let addr = Arc::new(addr);
    let handles: Vec<_> = grids
        .iter()
        .map(|rates| {
            let (addr, barrier, rates) = (Arc::clone(&addr), Arc::clone(&barrier), *rates);
            std::thread::spawn(move || {
                barrier.wait();
                request(
                    &addr,
                    "POST",
                    "/v1/experiment",
                    &[],
                    &spec_toml("soak", rates),
                )
            })
        })
        .collect();
    let responses: Vec<Response> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Sequential ground truth for the full union grid.
    let union = ExperimentSpec::parse(&spec_toml("soak", "[0.02, 0.04, 0.06]")).unwrap();
    let (seq, _) = run_spec(
        &union,
        &EngineOptions {
            threads: 1,
            ..EngineOptions::default()
        },
    )
    .unwrap();
    let truth: std::collections::HashMap<String, String> = seq
        .iter()
        .map(|r| (r.cell.clone(), r.to_json_line()))
        .collect();

    for resp in &responses {
        assert_eq!(resp.status, 200);
        assert!(resp.summary_line().contains("\"status\":\"complete\""));
        let records = resp.record_lines();
        assert_eq!(records.len(), 2);
        for line in records {
            let cell = line
                .split("\"cell\":\"")
                .nth(1)
                .and_then(|s| s.split('"').next())
                .expect("record line carries its cell key");
            assert_eq!(
                line, truth[cell],
                "served record must be byte-identical to sequential run_spec"
            );
        }
    }

    // Dedup accounting: 3 distinct cells executed once each, the other
    // 5 requests served by in-flight dedup or the cache.
    let metrics = request(&addr, "GET", "/metrics", &[], "");
    assert!(
        metrics.body.contains("\"runner_executed\":3"),
        "shared cells must execute exactly once; metrics: {}",
        metrics.body
    );
    let deduped_plus_hits: f64 = ["runner_deduped", "runner_cache_hits"]
        .iter()
        .map(|k| extract_gauge(&metrics.body, k))
        .sum();
    assert_eq!(deduped_plus_hits, 5.0, "metrics: {}", metrics.body);

    let outcome = join.finish(&handle);
    assert!(outcome.drained);
    assert_eq!(outcome.requests, 4);
    let _ = std::fs::remove_dir_all(&dir);
}

fn extract_gauge(metrics_json: &str, key: &str) -> f64 {
    metrics_json
        .split(&format!("\"{key}\":"))
        .nth(1)
        .and_then(|s| s.split([',', '}']).next().and_then(|v| v.parse().ok()))
        .unwrap_or_else(|| panic!("gauge {key} missing from {metrics_json}"))
}

#[test]
fn budget_and_capacity_rejections_are_typed() {
    let (addr, handle, join) = start_server(ServeConfig {
        client_budget: 3,
        ..ServeConfig::default()
    });

    // 4 cells against a 3-token budget: rejected before running
    // anything, with the accounting intact.
    let over = request(
        &addr,
        "POST",
        "/v1/experiment",
        &[("X-Orion-Client", "greedy")],
        &spec_toml("big", "[0.02, 0.04, 0.06, 0.08]"),
    );
    assert_eq!(over.status, 429);
    assert!(over.body.contains("\"code\":\"budget-exhausted\""));
    assert!(over.body.contains("needs 4 cell tokens"));

    // A different client still has its own full budget; a 1-cell spec
    // with an immediate deadline is admitted, charged, and truncated
    // with a typed summary instead of burning simulation time.
    let deadline = request(
        &addr,
        "POST",
        "/v1/experiment",
        &[("X-Orion-Client", "other"), ("X-Orion-Deadline-Ms", "0")],
        &spec_toml("d", "[0.02]"),
    );
    assert_eq!(deadline.status, 200);
    let summary = deadline.summary_line();
    assert!(summary.contains("\"status\":\"deadline-exceeded\""));
    assert!(summary.contains("\"streamed\":0"));
    assert!(summary.contains("\"budget_remaining\":2"));

    let metrics = request(&addr, "GET", "/metrics", &[], "");
    assert!(metrics
        .body
        .contains("\"serve_rejected_budget_exhausted\":1"));
    assert!(metrics.body.contains("\"serve_streams_truncated\":1"));

    let outcome = join.finish(&handle);
    assert!(outcome.drained);
}

#[test]
fn over_capacity_rejects_429() {
    // One worker, zero queue slots: while the first request simulates,
    // any second request is refused immediately with the typed code.
    let (addr, handle, join) = start_server(ServeConfig {
        workers: 1,
        queue_depth: 0,
        queue_patience: Duration::from_millis(1),
        ..ServeConfig::default()
    });
    // A wide grid of distinct low-rate cells keeps the single worker
    // slot held long enough to collide with deterministically.
    let rates: Vec<String> = (1..=30).map(|i| format!("0.{i:03}")).collect();
    let busy_spec = spec_toml("busy", &format!("[{}]", rates.join(", ")));
    let addr2 = addr.clone();
    let busy =
        std::thread::spawn(move || request(&addr2, "POST", "/v1/experiment", &[], &busy_spec));
    // Wait until the worker slot is confirmably held, then collide.
    for _ in 0..500 {
        let ready = request(&addr, "GET", "/readyz", &[], "");
        if ready.body.contains("\"active_requests\":1") {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let rejected = request(
        &addr,
        "POST",
        "/v1/experiment",
        &[],
        &spec_toml("late", "[0.04]"),
    );
    assert_eq!(rejected.status, 429);
    assert!(rejected.body.contains("\"code\":\"over-capacity\""));
    assert_eq!(busy.join().unwrap().status, 200);

    let metrics = request(&addr, "GET", "/metrics", &[], "");
    assert!(metrics.body.contains("\"serve_rejected_over_capacity\":"));

    let outcome = join.finish(&handle);
    assert!(outcome.drained);
}

#[test]
fn draining_daemon_rejects_held_connections_with_503() {
    let (addr, handle, join) = start_server(ServeConfig::default());
    // Connect (and get accepted) *before* the drain starts, then
    // submit after it: the daemon must answer with the typed 503, not
    // hang or reset.
    let mut held = TcpStream::connect(&addr).unwrap();
    std::thread::sleep(Duration::from_millis(100)); // let the accept loop pick it up
    handle.shutdown();
    std::thread::sleep(Duration::from_millis(300)); // accept loop exits, gate flips
    send_request(
        &mut held,
        "POST",
        "/v1/experiment",
        &[],
        &spec_toml("late", "[0.02]"),
    );
    let mut reader = BufReader::new(held);
    let (status, _, length) = read_head(&mut reader);
    assert_eq!(status, 503);
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body).unwrap();
    assert!(String::from_utf8(body)
        .unwrap()
        .contains("\"code\":\"draining\""));

    let outcome = join.0.join().unwrap();
    assert!(outcome.drained);
}

#[test]
fn mid_stream_drain_truncates_typed_and_cache_resumes_byte_identically() {
    let dir = temp_dir("drain");
    let (addr, handle, join) = start_server(ServeConfig {
        cache_dir: Some(dir.clone()),
        drain_timeout: Duration::from_secs(60),
        ..ServeConfig::default()
    });

    // Stream a 3-cell grid and fire the drain as soon as the first
    // record arrives — deterministic mid-stream interruption.
    let spec_text = spec_toml("drainer", "[0.02, 0.04, 0.06]");
    let mut stream = TcpStream::connect(&*addr).unwrap();
    send_request(&mut stream, "POST", "/v1/experiment", &[], &spec_text);
    let mut reader = BufReader::new(stream);
    let (status, chunked, _) = read_head(&mut reader);
    assert_eq!(status, 200);
    assert!(chunked);
    let mut lines = Vec::new();
    let mut drained_at: Option<usize> = None;
    while let Some(chunk) = read_chunk(&mut reader) {
        lines.push(chunk.trim_end().to_string());
        let records_so_far = lines
            .iter()
            .filter(|l| l.starts_with("{\"schema_version\""))
            .count();
        if records_so_far == 1 && drained_at.is_none() {
            handle.shutdown();
            drained_at = Some(records_so_far);
        }
    }
    let outcome = join.0.join().unwrap();
    assert!(
        outcome.drained,
        "in-flight stream must finish within the deadline"
    );

    let summary = lines
        .iter()
        .rfind(|l| l.starts_with("{\"type\":\"summary\""))
        .expect("truncated stream still ends with a summary");
    let records: Vec<&String> = lines
        .iter()
        .filter(|l| l.starts_with("{\"schema_version\""))
        .collect();
    assert!(
        summary.contains("\"status\":\"draining\"") || summary.contains("\"status\":\"complete\""),
        "summary: {summary}"
    );
    assert!(!records.is_empty(), "at least the first cell was streamed");

    // The cache left behind is whole: a batch run over the same
    // directory reuses every streamed record and produces records
    // byte-identical to an uncached sequential run.
    let spec = ExperimentSpec::parse(&spec_text).unwrap();
    let resume_opts = EngineOptions {
        threads: 1,
        cache_dir: Some(dir.clone()),
        ..EngineOptions::default()
    };
    let (resumed, summary_run) = run_spec(&spec, &resume_opts).unwrap();
    assert_eq!(summary_run.cache_hits, records.len());
    assert_eq!(
        summary_run.corrupt_cache_lines, 0,
        "no torn lines after drain"
    );
    let (fresh, _) = run_spec(
        &spec,
        &EngineOptions {
            threads: 1,
            ..EngineOptions::default()
        },
    )
    .unwrap();
    let resumed_lines: Vec<String> = resumed.iter().map(|r| r.to_json_line()).collect();
    let fresh_lines: Vec<String> = fresh.iter().map(|r| r.to_json_line()).collect();
    assert_eq!(resumed_lines, fresh_lines, "resume must be byte-identical");
    let _ = std::fs::remove_dir_all(&dir);
}
