//! Admission control: a bounded worker pool with a bounded wait queue,
//! per-client token budgets, and a drain switch — every way a request
//! can be refused is a typed [`Rejection`] that maps to one HTTP
//! status, so clients can tell "back off" (429) from "go away" (503)
//! from "you asked wrong" (4xx).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Why a request was refused. Stable `code` strings appear in error
/// bodies and metrics; see `docs/SERVING.md` for the full taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejection {
    /// The worker pool and its wait queue are both full (HTTP 429).
    OverCapacity {
        /// Configured pool size, echoed to the client.
        workers: usize,
        /// Configured queue depth, echoed to the client.
        queue: usize,
    },
    /// The client's token budget cannot cover this request (HTTP 429).
    BudgetExhausted {
        /// Tokens the request would need (one per grid cell).
        needed: u64,
        /// Tokens the client has left.
        remaining: u64,
    },
    /// The daemon is draining and admits nothing new (HTTP 503).
    Draining,
}

impl Rejection {
    /// The HTTP status this rejection maps to.
    pub fn status(&self) -> u16 {
        match self {
            Rejection::OverCapacity { .. } | Rejection::BudgetExhausted { .. } => 429,
            Rejection::Draining => 503,
        }
    }

    /// The stable machine-readable code for error bodies and metrics.
    pub fn code(&self) -> &'static str {
        match self {
            Rejection::OverCapacity { .. } => "over-capacity",
            Rejection::BudgetExhausted { .. } => "budget-exhausted",
            Rejection::Draining => "draining",
        }
    }

    /// A human-readable line for the error body.
    pub fn message(&self) -> String {
        match self {
            Rejection::OverCapacity { workers, queue } => {
                format!("all {workers} workers busy and all {queue} queue slots taken; retry later")
            }
            Rejection::BudgetExhausted { needed, remaining } => format!(
                "request needs {needed} cell tokens but the client budget has {remaining} left"
            ),
            Rejection::Draining => "daemon is draining; no new work is admitted".to_string(),
        }
    }
}

#[derive(Debug, Default)]
struct GateState {
    active: usize,
    waiting: usize,
}

/// The bounded pool + queue. `admit` either returns a [`Permit`]
/// (RAII: dropping it frees the slot) or a typed rejection; it never
/// blocks longer than `queue_patience`.
#[derive(Debug)]
pub struct AdmissionGate {
    workers: usize,
    queue_depth: usize,
    queue_patience: Duration,
    state: Mutex<GateState>,
    freed: Condvar,
    draining: AtomicBool,
}

impl AdmissionGate {
    /// A gate admitting `workers` concurrent requests with at most
    /// `queue_depth` more waiting up to `queue_patience` each.
    pub fn new(workers: usize, queue_depth: usize, queue_patience: Duration) -> AdmissionGate {
        AdmissionGate {
            workers: workers.max(1),
            queue_depth,
            queue_patience,
            state: Mutex::new(GateState::default()),
            freed: Condvar::new(),
            draining: AtomicBool::new(false),
        }
    }

    /// Flips the gate into drain mode: every future `admit` (and every
    /// queued waiter) is rejected with [`Rejection::Draining`].
    pub fn start_draining(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.freed.notify_all();
    }

    /// Whether drain mode is on.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Requests currently holding permits.
    pub fn active(&self) -> usize {
        lock_unpoisoned(&self.state).active
    }

    /// Tries to admit one request, queueing briefly when the pool is
    /// full.
    ///
    /// # Errors
    ///
    /// [`Rejection::Draining`] in drain mode, [`Rejection::OverCapacity`]
    /// when pool and queue are both full or patience runs out.
    pub fn admit(&self) -> Result<Permit<'_>, Rejection> {
        if self.draining() {
            return Err(Rejection::Draining);
        }
        let mut state = lock_unpoisoned(&self.state);
        if state.active < self.workers {
            state.active += 1;
            return Ok(Permit { gate: self });
        }
        if state.waiting >= self.queue_depth {
            return Err(self.over_capacity());
        }
        state.waiting += 1;
        let deadline = std::time::Instant::now() + self.queue_patience;
        loop {
            if self.draining() {
                state.waiting -= 1;
                return Err(Rejection::Draining);
            }
            if state.active < self.workers {
                state.waiting -= 1;
                state.active += 1;
                return Ok(Permit { gate: self });
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                state.waiting -= 1;
                return Err(self.over_capacity());
            }
            state = match self.freed.wait_timeout(state, deadline - now) {
                Ok((s, _)) => s,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }

    fn over_capacity(&self) -> Rejection {
        Rejection::OverCapacity {
            workers: self.workers,
            queue: self.queue_depth,
        }
    }
}

/// An admitted slot; dropping it frees the slot and wakes one waiter.
#[derive(Debug)]
pub struct Permit<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut state = lock_unpoisoned(&self.gate.state);
        state.active = state.active.saturating_sub(1);
        drop(state);
        self.gate.freed.notify_one();
    }
}

/// Per-client token budgets: one token per grid cell, charged at
/// admission (cached cells included — the budget bounds what a client
/// may *ask*, which is what admission must decide before running
/// anything).
#[derive(Debug)]
pub struct BudgetBook {
    default_budget: u64,
    remaining: Mutex<HashMap<String, u64>>,
}

impl BudgetBook {
    /// A book granting every new client `default_budget` tokens.
    /// `u64::MAX` effectively disables budgeting.
    pub fn new(default_budget: u64) -> BudgetBook {
        BudgetBook {
            default_budget,
            remaining: Mutex::new(HashMap::new()),
        }
    }

    /// Charges `client` for `cells` tokens.
    ///
    /// # Errors
    ///
    /// [`Rejection::BudgetExhausted`] when the remaining budget cannot
    /// cover the request (nothing is charged).
    pub fn charge(&self, client: &str, cells: u64) -> Result<(), Rejection> {
        let mut book = lock_unpoisoned(&self.remaining);
        let remaining = book
            .entry(client.to_string())
            .or_insert(self.default_budget);
        if cells > *remaining {
            return Err(Rejection::BudgetExhausted {
                needed: cells,
                remaining: *remaining,
            });
        }
        *remaining -= cells;
        Ok(())
    }

    /// Tokens `client` has left (the default for clients never seen).
    pub fn remaining(&self, client: &str) -> u64 {
        lock_unpoisoned(&self.remaining)
            .get(client)
            .copied()
            .unwrap_or(self.default_budget)
    }
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn admits_up_to_workers_then_queues_then_rejects() {
        let gate = AdmissionGate::new(2, 1, Duration::from_millis(10));
        let a = gate.admit().unwrap();
        let _b = gate.admit().unwrap();
        // Pool full, queue empty: a third caller waits out its patience
        // and is rejected over-capacity.
        let err = gate.admit().unwrap_err();
        assert_eq!(err.code(), "over-capacity");
        assert_eq!(err.status(), 429);
        drop(a);
        let _c = gate.admit().expect("freed slot admits again");
    }

    #[test]
    fn queued_request_gets_freed_slot() {
        let gate = Arc::new(AdmissionGate::new(1, 1, Duration::from_secs(5)));
        let permit = gate.admit().unwrap();
        let g2 = Arc::clone(&gate);
        let waiter = std::thread::spawn(move || g2.admit().map(|_| ()));
        std::thread::sleep(Duration::from_millis(20));
        drop(permit);
        waiter.join().unwrap().expect("waiter admitted after free");
    }

    #[test]
    fn draining_rejects_new_and_queued() {
        let gate = Arc::new(AdmissionGate::new(1, 4, Duration::from_secs(5)));
        let _held = gate.admit().unwrap();
        let g2 = Arc::clone(&gate);
        let queued = std::thread::spawn(move || g2.admit().map(|_| ()));
        std::thread::sleep(Duration::from_millis(20));
        gate.start_draining();
        assert_eq!(queued.join().unwrap().unwrap_err(), Rejection::Draining);
        assert_eq!(gate.admit().unwrap_err().status(), 503);
    }

    #[test]
    fn budgets_charge_per_client_and_exhaust() {
        let book = BudgetBook::new(10);
        book.charge("a", 7).unwrap();
        let err = book.charge("a", 4).unwrap_err();
        assert_eq!(err.code(), "budget-exhausted");
        assert_eq!(book.remaining("a"), 3, "failed charge must not deduct");
        book.charge("b", 10).expect("budgets are per client");
        book.charge("a", 3).unwrap();
        assert_eq!(book.remaining("a"), 0);
    }
}
