//! SIGTERM/SIGINT → a process-global shutdown flag, with no dependency
//! on a libc crate: the handler is installed through a two-symbol
//! `signal(2)` FFI declaration, isolated to this module (the rest of
//! the workspace keeps `forbid(unsafe_code)`).
//!
//! The handler only stores into an `AtomicBool` — async-signal-safe by
//! construction. The accept loop polls [`shutdown_requested`] between
//! accepts; nothing else ever needs to know a signal existed.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Whether a shutdown signal has been received (or [`request_shutdown`]
/// called).
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Sets the shutdown flag by hand — the programmatic twin of a signal,
/// used by tests and by in-process shutdown handles.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Clears the flag (tests only; a real daemon shuts down once).
#[doc(hidden)]
pub fn reset_for_testing() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

/// Installs the flag-setting handler for SIGINT and SIGTERM. A no-op
/// off Unix.
pub fn install() {
    #[cfg(unix)]
    sys::install();
}

#[cfg(unix)]
mod sys {
    #![allow(unsafe_code)]

    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: async-signal-safe.
        super::SHUTDOWN.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        // SAFETY: `signal` is the POSIX libc symbol (always linked by
        // std on Unix); the handler performs a single atomic store,
        // which is async-signal-safe per POSIX.
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trips() {
        reset_for_testing();
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
        reset_for_testing();
        assert!(!shutdown_requested());
    }
}
