//! Orion-as-a-service: a long-lived daemon serving experiment grids to
//! concurrent clients over dependency-free HTTP/1.1.
//!
//! The batch engine (`orion-exp`) answers "run this grid once, well".
//! This crate answers the ROADMAP's serving question: many clients,
//! one crash-safe result store, no duplicated work. Three mechanisms
//! carry that:
//!
//! 1. **Admission control** ([`admission`]) — a bounded worker pool
//!    with a bounded wait queue and per-client cell-token budgets;
//!    every refusal is a *typed* rejection (HTTP 429/503 with a stable
//!    machine-readable code), never a hang or a silent drop.
//! 2. **Shared execution** — all requests run through one
//!    [`CellRunner`](orion_exp::runner::CellRunner): results are
//!    content-addressed in the cache, and identical cells submitted
//!    concurrently dedup to a single execution in flight.
//! 3. **Graceful drain** ([`server`], [`signal`]) — SIGTERM/SIGINT
//!    stop admission, let running cells finish, truncate open streams
//!    with a typed summary, flush the cache atomically, and report
//!    whether the drain beat its deadline (the CLI maps that to the
//!    structured exit codes).
//!
//! Protocol (version [`SERVE_PROTOCOL_VERSION`]): `POST
//! /v1/experiment` with a spec-TOML body streams back chunked JSONL —
//! a `header` line, one record per cell as it completes, then a
//! `summary` line. `GET /healthz`, `/readyz` and `/metrics` serve
//! liveness, readiness and an `orion-obs` counter snapshot. The wire
//! format, knobs and failure taxonomy are documented in
//! `docs/SERVING.md`.

#![warn(missing_docs)]

pub mod admission;
pub mod http;
pub mod server;
pub mod signal;

pub use admission::{AdmissionGate, BudgetBook, Permit, Rejection};
pub use server::{ServeConfig, ServeOutcome, Server, ShutdownHandle};

/// Version of the serve wire protocol: the `protocol` field of every
/// `header`/`summary`/`error` line and of the health/ready bodies.
/// Record lines carry their own `schema_version`
/// ([`orion_exp::SCHEMA_VERSION`]); this constant versions everything
/// the daemon adds around them, and bumps whenever a framing line
/// gains, loses or retypes a field.
pub const SERVE_PROTOCOL_VERSION: u32 = 1;
