//! The daemon itself: bind, accept, route, stream, drain.
//!
//! One [`CellRunner`] (exclusive cache writer, in-flight dedup) is
//! shared by every connection; an [`AdmissionGate`] bounds concurrent
//! experiment requests; a [`BudgetBook`] bounds what each client may
//! ask over the daemon's lifetime. Shutdown — by signal or by
//! [`ShutdownHandle`] — stops admitting, lets in-flight cells finish,
//! truncates their streams with a typed summary, flushes the cache,
//! and reports whether the drain beat its deadline.

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use orion_exp::runner::{CellRunner, Supervision};
use orion_exp::ExperimentSpec;
use orion_obs::MetricsRegistry;

use crate::admission::{AdmissionGate, BudgetBook, Rejection};
use crate::http::{json_escape, read_request, write_response, ChunkedBody, HttpError, Request};
use crate::{signal, SERVE_PROTOCOL_VERSION};

/// Everything tunable about a daemon. `Default` is sized for local
/// experimentation; the CLI maps flags onto these fields 1:1.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// Result-cache directory; `None` serves from memory only.
    pub cache_dir: Option<PathBuf>,
    /// Concurrent experiment requests actually running.
    pub workers: usize,
    /// Requests allowed to wait for a worker slot before 429.
    pub queue_depth: usize,
    /// How long a queued request waits before giving up with 429.
    pub queue_patience: Duration,
    /// Cell tokens granted to each new client (`u64::MAX` = unmetered).
    pub client_budget: u64,
    /// Default retry count when a request sends no `X-Orion-Retries`.
    pub default_retries: u32,
    /// Default per-cell wall-clock budget (`X-Orion-Cell-Timeout-Ms`
    /// overrides; 0 disables).
    pub default_cell_timeout: Option<Duration>,
    /// How long shutdown waits for in-flight requests to finish.
    pub drain_timeout: Duration,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Checkpoint in-flight cells every N cycles (0 disables). With a
    /// cache directory set, a drained daemon leaves each unfinished
    /// cell's snapshot under `<cache_dir>/ckpt/` and the next daemon
    /// resumes it mid-cell instead of from cycle 0.
    pub checkpoint_every: u64,
    /// Shards per cell engine (`orion-shard`; 0 or 1 = monolithic).
    /// Records are bit-identical at every count, so the cache this
    /// daemon serves is shard-agnostic.
    pub shards: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            cache_dir: None,
            workers: 4,
            queue_depth: 8,
            queue_patience: Duration::from_secs(2),
            client_budget: u64::MAX,
            default_retries: 0,
            default_cell_timeout: None,
            drain_timeout: Duration::from_secs(10),
            max_body_bytes: 1 << 20,
            checkpoint_every: 0,
            shards: 0,
        }
    }
}

/// What `run` observed by the time it returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOutcome {
    /// Every in-flight request finished inside the drain deadline.
    pub drained: bool,
    /// Experiment requests still running when the deadline expired
    /// (0 when `drained`).
    pub abandoned: usize,
    /// Total experiment requests accepted over the lifetime.
    pub requests: u64,
}

struct ServerState {
    config: ServeConfig,
    runner: CellRunner,
    gate: AdmissionGate,
    budgets: BudgetBook,
    metrics: Mutex<MetricsRegistry>,
    shutdown: AtomicBool,
    open_connections: AtomicUsize,
    requests: AtomicUsize,
    /// Total wall-clock nanoseconds spent in completed cells and how
    /// many completed — feeds the `Retry-After` estimate on 429s.
    cell_nanos: AtomicU64,
    cells_timed: AtomicU64,
}

/// A bound-but-not-yet-running daemon: inspect [`local_addr`]
/// (Self::local_addr), take a [`ShutdownHandle`], then [`run`](Self::run).
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

/// Requests shutdown from another thread — the programmatic twin of
/// SIGTERM.
#[derive(Clone)]
pub struct ShutdownHandle {
    state: Arc<ServerState>,
}

impl ShutdownHandle {
    /// Asks the daemon to stop admitting and drain.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
    }
}

impl Server {
    /// Binds the listener and opens the shared runner (taking the
    /// cache directory's exclusive writer lock).
    ///
    /// # Errors
    ///
    /// Bind failures, or `AlreadyExists` when another live process
    /// holds the cache directory.
    pub fn bind(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let runner = CellRunner::open(config.cache_dir.as_deref())?;
        let gate = AdmissionGate::new(config.workers, config.queue_depth, config.queue_patience);
        let budgets = BudgetBook::new(config.client_budget);
        Ok(Server {
            listener,
            state: Arc::new(ServerState {
                config,
                runner,
                gate,
                budgets,
                metrics: Mutex::new(MetricsRegistry::new()),
                shutdown: AtomicBool::new(false),
                open_connections: AtomicUsize::new(0),
                requests: AtomicUsize::new(0),
                cell_nanos: AtomicU64::new(0),
                cells_timed: AtomicU64::new(0),
            }),
        })
    }

    /// The address actually bound (resolves port 0).
    ///
    /// # Errors
    ///
    /// Propagates the OS error from `local_addr`.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that triggers the same graceful drain as SIGTERM.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Serves until SIGTERM/SIGINT or a [`ShutdownHandle`] fires, then
    /// drains and flushes. Blocks the calling thread.
    ///
    /// # Errors
    ///
    /// Accept-loop I/O errors other than `WouldBlock`; cache flush
    /// errors at shutdown.
    pub fn run(self) -> std::io::Result<ServeOutcome> {
        let Server { listener, state } = self;
        while !shutdown_asked(&state) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    state.open_connections.fetch_add(1, Ordering::SeqCst);
                    let state = Arc::clone(&state);
                    std::thread::spawn(move || {
                        handle_connection(&state, stream);
                        state.open_connections.fetch_sub(1, Ordering::SeqCst);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // Drain: refuse new work, let running cells finish, give
        // in-flight streams a chance to emit their typed summary.
        // With checkpointing on, in-flight cells stop at their next
        // snapshot boundary instead of running to completion; the next
        // daemon over the same cache directory resumes them mid-cell.
        state.gate.start_draining();
        state.runner.request_drain();
        drop(listener);
        let deadline = Instant::now() + state.config.drain_timeout;
        while state.open_connections.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        let abandoned = state.gate.active();
        let drained = state.open_connections.load(Ordering::SeqCst) == 0;
        // All records are already flushed line-by-line; this heals
        // duplicates and drops the append handle. Safe even with
        // laggard requests: they can no longer append, only read.
        state.runner.flush()?;
        Ok(ServeOutcome {
            drained,
            abandoned: if drained { 0 } else { abandoned.max(1) },
            requests: state.requests.load(Ordering::SeqCst) as u64,
        })
    }
}

fn shutdown_asked(state: &ServerState) -> bool {
    signal::shutdown_requested() || state.shutdown.load(Ordering::SeqCst)
}

/// One connection = one request = one response, then close.
fn handle_connection(state: &ServerState, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let request = match read_request(&mut stream, state.config.max_body_bytes) {
        Ok(req) => req,
        Err(HttpError::Io(_)) => return,
        Err(HttpError::Malformed(why)) => {
            metric(state, "serve_rejected_malformed_http");
            let _ = error_response(&mut stream, 400, "Bad Request", "malformed-request", why);
            return;
        }
        Err(HttpError::TooLarge { limit }) => {
            metric(state, "serve_rejected_payload_too_large");
            let _ = error_response(
                &mut stream,
                413,
                "Payload Too Large",
                "payload-too-large",
                &format!("request body exceeds the {limit}-byte cap"),
            );
            return;
        }
    };
    let result = match (request.method.as_str(), path_of(&request)) {
        ("GET", "/healthz") => handle_health(state, &mut stream),
        ("GET", "/readyz") => handle_ready(state, &mut stream),
        ("GET", "/metrics") => handle_metrics(state, &mut stream),
        ("POST", "/v1/experiment") => handle_experiment(state, &mut stream, &request),
        ("GET" | "POST" | "HEAD" | "PUT" | "DELETE", _) => error_response(
            &mut stream,
            404,
            "Not Found",
            "not-found",
            &format!("no route for {} {}", request.method, request.path),
        ),
        _ => error_response(
            &mut stream,
            405,
            "Method Not Allowed",
            "method-not-allowed",
            &format!("method {} is not served", request.method),
        ),
    };
    let _ = result;
}

fn path_of(request: &Request) -> &str {
    request.path.split('?').next().unwrap_or(&request.path)
}

fn handle_health(state: &ServerState, stream: &mut TcpStream) -> std::io::Result<()> {
    // Liveness is unconditional: a draining daemon is still alive.
    let body = format!(
        "{{\"type\":\"health\",\"protocol\":{SERVE_PROTOCOL_VERSION},\"status\":\"ok\",\"known_records\":{}}}",
        state.runner.known_records()
    );
    write_response(stream, 200, "OK", "application/json", &[], body.as_bytes())
}

fn handle_ready(state: &ServerState, stream: &mut TcpStream) -> std::io::Result<()> {
    if state.gate.draining() || shutdown_asked(state) {
        return error_response(
            stream,
            503,
            "Service Unavailable",
            "draining",
            "daemon is draining; no new work is admitted",
        );
    }
    let body = format!(
        "{{\"type\":\"ready\",\"protocol\":{SERVE_PROTOCOL_VERSION},\"status\":\"ready\",\"active_requests\":{}}}",
        state.gate.active()
    );
    write_response(stream, 200, "OK", "application/json", &[], body.as_bytes())
}

fn handle_metrics(state: &ServerState, stream: &mut TcpStream) -> std::io::Result<()> {
    let stats = state.runner.stats();
    let body = {
        let mut metrics = lock_unpoisoned(&state.metrics);
        metrics.set_gauge("serve_active_requests", state.gate.active() as f64);
        metrics.set_gauge("runner_known_records", state.runner.known_records() as f64);
        metrics.set_gauge("runner_executed", stats.executed as f64);
        metrics.set_gauge("runner_cache_hits", stats.cache_hits as f64);
        metrics.set_gauge("runner_deduped", stats.deduped as f64);
        metrics.set_gauge("runner_crashed", stats.crashed as f64);
        metrics.set_gauge("runner_timed_out", stats.timed_out as f64);
        metrics.set_gauge("runner_retried", stats.retried as f64);
        metrics.set_gauge("runner_failed", stats.failed as f64);
        metrics.set_gauge("runner_append_failures", stats.append_failures as f64);
        metrics.set_gauge("runner_drained", stats.drained as f64);
        metrics.set_gauge("ckpt_written_total", stats.checkpoints_written as f64);
        metrics.set_gauge("ckpt_resumed_total", stats.resumed as f64);
        metrics.snapshot().to_json()
    };
    write_response(stream, 200, "OK", "application/json", &[], body.as_bytes())
}

/// The streaming endpoint: validate → admit → charge → stream.
fn handle_experiment(
    state: &ServerState,
    stream: &mut TcpStream,
    request: &Request,
) -> std::io::Result<()> {
    metric(state, "serve_requests");
    let sup = match supervision_for(state, request) {
        Ok(sup) => sup,
        Err(why) => {
            metric(state, "serve_rejected_bad_header");
            return error_response(stream, 400, "Bad Request", "bad-header", &why);
        }
    };
    let spec = match ExperimentSpec::parse_bytes(&request.body) {
        Ok(spec) => spec,
        Err(e) => {
            metric(state, "serve_rejected_bad_spec");
            return error_response(stream, 400, "Bad Request", "bad-spec", &e.to_string());
        }
    };
    let cells = spec.expand();
    let deadline = match header_u64(request, "x-orion-deadline-ms") {
        Ok(ms) => ms.map(|ms| Instant::now() + Duration::from_millis(ms)),
        Err(why) => {
            metric(state, "serve_rejected_bad_header");
            return error_response(stream, 400, "Bad Request", "bad-header", &why);
        }
    };

    // Admission before budget: a request that would be queued out
    // anyway must not burn the client's tokens.
    let permit = match state.gate.admit() {
        Ok(permit) => permit,
        Err(rejection) => return reject(state, stream, &rejection),
    };
    let client = request.header("x-orion-client").unwrap_or("anonymous");
    if let Err(rejection) = state.budgets.charge(client, cells.len() as u64) {
        drop(permit);
        return reject(state, stream, &rejection);
    }
    state.requests.fetch_add(1, Ordering::SeqCst);

    let mut body = ChunkedBody::begin(stream, 200, "OK", "application/x-ndjson")?;
    body.line(&format!(
        "{{\"type\":\"header\",\"protocol\":{SERVE_PROTOCOL_VERSION},\"experiment\":\"{}\",\"cells\":{}}}",
        json_escape(&spec.name),
        cells.len()
    ))?;
    let mut streamed = 0usize;
    let mut status = "complete";
    for cell in &cells {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            status = "deadline-exceeded";
            break;
        }
        if state.gate.draining() {
            status = "draining";
            break;
        }
        let started = Instant::now();
        let record = state.runner.run(cell, &sup);
        state
            .cell_nanos
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        state.cells_timed.fetch_add(1, Ordering::Relaxed);
        body.line(&record.to_json_line())?;
        streamed += 1;
    }
    drop(permit);
    if status != "complete" {
        metric(state, "serve_streams_truncated");
    } else {
        metric(state, "serve_requests_ok");
    }
    {
        let mut metrics = lock_unpoisoned(&state.metrics);
        metrics.add("serve_records_streamed", streamed as u64);
    }
    body.line(&format!(
        "{{\"type\":\"summary\",\"protocol\":{SERVE_PROTOCOL_VERSION},\"status\":\"{status}\",\"streamed\":{streamed},\"cells\":{},\"budget_remaining\":{}}}",
        cells.len(),
        state.budgets.remaining(client)
    ))?;
    body.finish()
}

/// Maps per-request headers onto the supervisor, falling back to the
/// daemon's defaults — the serving twin of `--retries` /
/// `--cell-timeout-ms`.
fn supervision_for(state: &ServerState, request: &Request) -> Result<Supervision, String> {
    let retries = match header_u64(request, "x-orion-retries")? {
        Some(n) => u32::try_from(n).map_err(|_| "x-orion-retries out of range".to_string())?,
        None => state.config.default_retries,
    };
    let cell_timeout = match header_u64(request, "x-orion-cell-timeout-ms")? {
        Some(0) => None,
        Some(ms) => Some(Duration::from_millis(ms)),
        None => state.config.default_cell_timeout,
    };
    Ok(Supervision {
        max_retries: retries,
        cell_timeout,
        poison: None,
        checkpoint_every: state.config.checkpoint_every,
        shards: state.config.shards,
    })
}

fn header_u64(request: &Request, name: &str) -> Result<Option<u64>, String> {
    match request.header(name) {
        None => Ok(None),
        Some(v) => v
            .parse::<u64>()
            .map(Some)
            .map_err(|_| format!("header {name} must be a non-negative integer, got {v:?}")),
    }
}

fn reject(
    state: &ServerState,
    stream: &mut TcpStream,
    rejection: &Rejection,
) -> std::io::Result<()> {
    let key = match rejection {
        Rejection::OverCapacity { .. } => "serve_rejected_over_capacity",
        Rejection::BudgetExhausted { .. } => "serve_rejected_budget_exhausted",
        Rejection::Draining => "serve_rejected_draining",
    };
    metric(state, key);
    let (status, reason) = match rejection.status() {
        429 => (429, "Too Many Requests"),
        _ => (503, "Service Unavailable"),
    };
    let secs = retry_after_secs(
        state.gate.active() + state.config.queue_depth,
        state.config.workers,
        mean_cell_duration(state),
    );
    let retry_after = [("Retry-After", secs.to_string())];
    let body = error_body(rejection.code(), &rejection.message());
    write_with_headers(stream, status, reason, &retry_after, body.as_bytes())
}

/// Mean wall-clock duration of the cells this daemon has completed so
/// far; zero before the first cell finishes.
fn mean_cell_duration(state: &ServerState) -> Duration {
    let cells = state.cells_timed.load(Ordering::Relaxed);
    if cells == 0 {
        return Duration::ZERO;
    }
    Duration::from_nanos(state.cell_nanos.load(Ordering::Relaxed) / cells)
}

/// How long a 429'd client should wait before retrying: the backlog
/// ahead of it (active requests plus a full queue) times the observed
/// mean cell duration, spread across the worker pool, clamped to
/// `1..=60` seconds. With no history yet the honest answer is the old
/// constant: retry in a second.
fn retry_after_secs(backlog: usize, workers: usize, mean_cell: Duration) -> u64 {
    let wait = mean_cell.as_secs_f64() * backlog as f64 / workers.max(1) as f64;
    (wait.ceil() as u64).clamp(1, 60)
}

fn error_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    code: &str,
    message: &str,
) -> std::io::Result<()> {
    let body = error_body(code, message);
    write_response(
        stream,
        status,
        reason,
        "application/json",
        &[],
        body.as_bytes(),
    )
}

fn error_body(code: &str, message: &str) -> String {
    format!(
        "{{\"type\":\"error\",\"protocol\":{SERVE_PROTOCOL_VERSION},\"code\":\"{code}\",\"message\":\"{}\"}}",
        json_escape(message)
    )
}

fn write_with_headers(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    extra: &[(&str, String)],
    body: &[u8],
) -> std::io::Result<()> {
    write_response(stream, status, reason, "application/json", extra, body)?;
    stream.flush()
}

fn metric(state: &ServerState, key: &'static str) {
    lock_unpoisoned(&state.metrics).inc(key);
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_after_with_no_history_is_one_second() {
        assert_eq!(retry_after_secs(12, 4, Duration::ZERO), 1);
    }

    #[test]
    fn retry_after_scales_with_backlog_and_mean_cell_time() {
        // 8 requests ahead, 2 workers, 500 ms per cell: 8 * 0.5 / 2 = 2 s.
        assert_eq!(retry_after_secs(8, 2, Duration::from_millis(500)), 2);
        // Fractional waits round up, never down to an optimistic retry.
        assert_eq!(retry_after_secs(5, 2, Duration::from_millis(500)), 2);
        assert_eq!(retry_after_secs(1, 4, Duration::from_millis(100)), 1);
    }

    #[test]
    fn retry_after_is_clamped_to_a_minute() {
        assert_eq!(retry_after_secs(1000, 1, Duration::from_secs(30)), 60);
        // A zero-worker config (impossible via the CLI) must not divide
        // by zero.
        assert_eq!(retry_after_secs(4, 0, Duration::from_secs(1)), 4);
    }
}
