//! A deliberately small HTTP/1.1 implementation over `std::net` — just
//! enough protocol for the serving daemon, with zero dependencies.
//!
//! Scope: one request per connection (`Connection: close` semantics),
//! `Content-Length` bodies with a hard size cap, fixed-body responses,
//! and chunked transfer encoding for streaming JSONL. Anything outside
//! that scope is rejected with a typed [`HttpError`] that maps to a
//! 4xx response — a malformed peer can waste one connection, never
//! wedge the daemon.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Hard cap on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request: method, path, lower-cased headers, raw body.
#[derive(Debug)]
pub struct Request {
    /// Upper-case method token (`GET`, `POST`, ...).
    pub method: String,
    /// Path component, query string included verbatim.
    pub path: String,
    /// `(lower-case-name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value for `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read. Each variant maps to one status
/// code in [`reject`].
#[derive(Debug)]
pub enum HttpError {
    /// Transport failed mid-read (peer gone, timeout).
    Io(std::io::Error),
    /// The bytes on the wire are not an HTTP/1.1 request.
    Malformed(&'static str),
    /// The declared body exceeds the server's cap.
    TooLarge {
        /// The configured cap, echoed in the rejection message.
        limit: usize,
    },
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

/// Reads and parses one request, enforcing `max_body` on the declared
/// `Content-Length`.
///
/// # Errors
///
/// [`HttpError::Malformed`] for protocol violations, [`HttpError::TooLarge`]
/// for oversized bodies, [`HttpError::Io`] for transport failures.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let request_line = read_head_line(&mut reader)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or(HttpError::Malformed("empty request line"))?
        .to_string();
    let path = parts
        .next()
        .ok_or(HttpError::Malformed("request line lacks a path"))?
        .to_string();
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err(HttpError::Malformed("not an HTTP/1.x request")),
    }

    let mut headers = Vec::new();
    let mut head_bytes = request_line.len();
    loop {
        let line = read_head_line(&mut reader)?;
        if line.is_empty() {
            break;
        }
        head_bytes += line.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(HttpError::Malformed("header section too large"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("header line lacks a colon"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed("unparseable content-length"))?,
        None => 0,
    };
    if content_length > max_body {
        return Err(HttpError::TooLarge { limit: max_body });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// Reads one CRLF-terminated head line, tolerating bare LF.
fn read_head_line(reader: &mut BufReader<&mut TcpStream>) -> Result<String, HttpError> {
    let mut line = String::new();
    let mut limited = reader.take(MAX_HEAD_BYTES as u64 + 1);
    let n = limited.read_line(&mut line)?;
    if n == 0 {
        return Err(HttpError::Malformed("connection closed mid-head"));
    }
    if line.len() > MAX_HEAD_BYTES {
        return Err(HttpError::Malformed("head line too large"));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Writes a complete fixed-length response and flushes.
///
/// # Errors
///
/// Returns the underlying I/O error (the connection is done either way).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// A chunked-transfer response in progress: call [`line`](Self::line)
/// per JSONL record, then [`finish`](Self::finish).
#[derive(Debug)]
pub struct ChunkedBody<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedBody<'a> {
    /// Writes the response head with `Transfer-Encoding: chunked` and
    /// returns the body writer.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn begin(
        stream: &'a mut TcpStream,
        status: u16,
        reason: &str,
        content_type: &str,
    ) -> std::io::Result<ChunkedBody<'a>> {
        let head = format!(
            "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
        );
        stream.write_all(head.as_bytes())?;
        Ok(ChunkedBody { stream })
    }

    /// Writes one line (a newline is appended) as one chunk and
    /// flushes, so clients observe records as they complete.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error; the stream is unusable after.
    pub fn line(&mut self, line: &str) -> std::io::Result<()> {
        let chunk = format!("{:x}\r\n{line}\n\r\n", line.len() + 1);
        self.stream.write_all(chunk.as_bytes())?;
        self.stream.flush()
    }

    /// Terminates the chunked body.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn finish(self) -> std::io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

/// Escapes `v` for embedding in a JSON string literal (same policy as
/// the record serializer: control characters as `\u00XX`).
pub fn json_escape(v: &str) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\t' => s.push_str("\\t"),
            '\r' => s.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s
}
