//! Fingerprint stability across spec key ordering, for all four router
//! families.
//!
//! The explorer (`orion-explore`) dedups its candidates against
//! grid-run cells purely through the content-addressed cache key
//! `fingerprint(MODEL_VERSION | cell.key() | measure)`. That only
//! works if the fingerprint is a function of the cell's *values*, not
//! of the TOML text that produced it: reordering keys inside a
//! section, reordering sections, or naming the same design point
//! through a parametric alias must all land on the same fingerprint.
//! These tests pin that contract; breaking it silently doubles
//! simulation work and forks the cache.

use orion_exp::spec::ExperimentSpec;

/// One spec per router family, with a second rendering whose sections
/// and keys are permuted. Both must expand to identical cells.
const FAMILY_PRESETS: [&str; 4] = ["wh64", "vc16", "xb", "cb"];

fn spec_ordered(preset: &str) -> String {
    format!(
        "[experiment]\n\
         name = \"fp\"\n\
         description = \"ordering probe\"\n\
         \n\
         [measure]\n\
         warmup = 200\n\
         sample_packets = 300\n\
         max_cycles = 40000\n\
         watchdog_cycles = 0\n\
         audit_every = 0\n\
         \n\
         [grid]\n\
         presets = [\"{preset}\"]\n\
         traffic = [\"uniform\", \"transpose\"]\n\
         rates = [0.02, 0.05]\n\
         seeds = [1, 2]\n"
    )
}

fn spec_permuted(preset: &str) -> String {
    // Same values: sections reordered, keys reordered within sections.
    format!(
        "[measure]\n\
         audit_every = 0\n\
         max_cycles = 40000\n\
         watchdog_cycles = 0\n\
         sample_packets = 300\n\
         warmup = 200\n\
         \n\
         [grid]\n\
         seeds = [1, 2]\n\
         rates = [0.02, 0.05]\n\
         traffic = [\"uniform\", \"transpose\"]\n\
         presets = [\"{preset}\"]\n\
         \n\
         [experiment]\n\
         description = \"ordering probe\"\n\
         name = \"fp\"\n"
    )
}

#[test]
fn fingerprints_are_key_order_insensitive_for_all_families() {
    for preset in FAMILY_PRESETS {
        let a = ExperimentSpec::parse(&spec_ordered(preset)).expect("ordered spec parses");
        let b = ExperimentSpec::parse(&spec_permuted(preset)).expect("permuted spec parses");
        let ca = a.expand();
        let cb = b.expand();
        assert_eq!(ca.len(), cb.len(), "{preset}: grid sizes differ");
        assert_eq!(
            ca.len(),
            8,
            "{preset}: 1 preset x 2 traffic x 2 rates x 2 seeds"
        );
        for (x, y) in ca.iter().zip(&cb) {
            assert_eq!(x.key(), y.key(), "{preset}: cell keys diverge");
            assert_eq!(
                x.fingerprint(),
                y.fingerprint(),
                "{preset}: fingerprints diverge for {}",
                x.key()
            );
            assert_eq!(
                x.derived_seed(),
                y.derived_seed(),
                "{preset}: derived seeds diverge for {}",
                x.key()
            );
        }
    }
}

#[test]
fn fingerprints_are_distinct_across_families() {
    // Sanity inverse: same measure/rate/seed, different family presets
    // must NOT collide (a collision here would alias unrelated cells).
    let fps: Vec<u64> = FAMILY_PRESETS
        .iter()
        .map(|preset| {
            let spec = ExperimentSpec::parse(&spec_ordered(preset)).unwrap();
            spec.expand()[0].fingerprint()
        })
        .collect();
    for i in 0..fps.len() {
        for j in (i + 1)..fps.len() {
            assert_ne!(
                fps[i], fps[j],
                "{} and {} collide",
                FAMILY_PRESETS[i], FAMILY_PRESETS[j]
            );
        }
    }
}

#[test]
fn parametric_aliases_share_the_paper_preset_fingerprint() {
    // The design codec canonicalises paper-equivalent parametric names
    // (vc2x8 -> vc16, 8x8 -> vc64, ...) at spec-parse time, so a grid
    // naming the alias produces bit-identical cells — and therefore
    // cache hits — against a grid naming the paper preset.
    for (alias, paper) in [
        ("vc2x8", "vc16"),
        ("vc8x8", "vc64"),
        ("vc8x16", "vc128"),
        ("xb16x268", "xb"),
        ("cb64", "cb"),
        ("wh64-t4", "wh64"),
    ] {
        let a = ExperimentSpec::parse(&spec_ordered(alias)).expect("alias spec parses");
        let b = ExperimentSpec::parse(&spec_ordered(paper)).expect("paper spec parses");
        let ca = a.expand();
        let cb = b.expand();
        assert_eq!(ca.len(), cb.len());
        for (x, y) in ca.iter().zip(&cb) {
            assert_eq!(
                x.preset, y.preset,
                "{alias} did not canonicalise to {paper}"
            );
            assert_eq!(
                x.fingerprint(),
                y.fingerprint(),
                "{alias} vs {paper}: fingerprints diverge for {}",
                x.key()
            );
        }
    }
}
