//! In-flight dedup determinism: concurrent clients submitting
//! overlapping grids through one [`CellRunner`] must produce records
//! byte-identical to sequential `run_spec` execution, with each shared
//! cell simulated exactly once (verified via hit/dedup accounting).

use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::Duration;

use orion_exp::runner::{CellRunner, Supervision};
use orion_exp::{run_spec, CellRecord, EngineOptions, ExperimentSpec};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("orion-exp-dedup-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A fast grid: `rates` controls the cells; everything else is pinned
/// so cells from different specs with equal rates share fingerprints.
fn spec(name: &str, rates: &str) -> ExperimentSpec {
    ExperimentSpec::parse(&format!(
        r#"
[experiment]
name = "{name}"

[grid]
presets = ["vc16"]
rates = {rates}

[measure]
warmup = 100
sample_packets = 100
max_cycles = 20000
"#
    ))
    .unwrap()
}

fn json_lines(records: &[CellRecord]) -> Vec<String> {
    let mut lines: Vec<(String, String)> = records
        .iter()
        .map(|r| (r.cell.clone(), r.to_json_line()))
        .collect();
    lines.sort();
    lines.into_iter().map(|(_, line)| line).collect()
}

#[test]
fn concurrent_overlapping_clients_match_sequential_and_share_cells() {
    let spec_a = spec("client-a", "[0.02, 0.04]");
    let spec_b = spec("client-b", "[0.04, 0.06]");

    // Sequential ground truth: two plain single-threaded uncached runs.
    let opts = EngineOptions {
        threads: 1,
        ..EngineOptions::default()
    };
    let (seq_a, _) = run_spec(&spec_a, &opts).unwrap();
    let (seq_b, _) = run_spec(&spec_b, &opts).unwrap();

    // Concurrent: both clients race through one shared runner.
    let dir = temp_dir("overlap");
    let runner = Arc::new(CellRunner::open(Some(&dir)).unwrap());
    let barrier = Arc::new(Barrier::new(2));
    let client = |spec: ExperimentSpec| {
        let (runner, barrier) = (Arc::clone(&runner), Arc::clone(&barrier));
        std::thread::spawn(move || {
            barrier.wait();
            spec.expand()
                .iter()
                .map(|cell| runner.run(cell, &Supervision::default()))
                .collect::<Vec<_>>()
        })
    };
    let (ha, hb) = (client(spec_a), client(spec_b));
    let (conc_a, conc_b) = (ha.join().unwrap(), hb.join().unwrap());

    // Byte-identical to sequential execution, client by client. The
    // `cached` flag is deliberately not serialized, so records that
    // arrived via dedup or cache hit still compare equal.
    assert_eq!(json_lines(&conc_a), json_lines(&seq_a));
    assert_eq!(json_lines(&conc_b), json_lines(&seq_b));

    // Three distinct cells exist; four were requested. The overlap
    // (rate 0.04) must have been simulated exactly once, its second
    // requester answered by dedup or the cache — never re-executed.
    let stats = runner.stats();
    assert_eq!(stats.executed, 3, "shared cell must run exactly once");
    assert_eq!(
        stats.cache_hits + stats.deduped,
        1,
        "the overlapping request must be answered without re-execution"
    );
    assert_eq!(stats.crashed + stats.timed_out + stats.failed, 0);

    // Drain: the cache left behind serves a fresh runner entirely from
    // memory, byte-identically.
    Arc::try_unwrap(runner).unwrap().finalize().unwrap();
    let reopened = CellRunner::open(Some(&dir)).unwrap();
    assert_eq!(reopened.known_records(), 3);
    let replay: Vec<_> = spec("client-a", "[0.02, 0.04]")
        .expand()
        .iter()
        .map(|cell| reopened.run(cell, &Supervision::default()))
        .collect();
    assert_eq!(json_lines(&replay), json_lines(&seq_a));
    assert_eq!(reopened.stats().executed, 0, "replay must be pure hits");
    assert!(replay.iter().all(|r| r.cached));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn many_clients_identical_grid_execute_once() {
    let dir = temp_dir("stampede");
    let runner = Arc::new(CellRunner::open(Some(&dir)).unwrap());
    let clients = 8;
    let barrier = Arc::new(Barrier::new(clients));
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let (runner, barrier) = (Arc::clone(&runner), Arc::clone(&barrier));
            std::thread::spawn(move || {
                barrier.wait();
                spec("stampede", "[0.02, 0.04]")
                    .expand()
                    .iter()
                    .map(|cell| runner.run(cell, &Supervision::default()))
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let all: Vec<Vec<_>> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let first = json_lines(&all[0]);
    for other in &all[1..] {
        assert_eq!(json_lines(other), first, "every client sees equal records");
    }
    let stats = runner.stats();
    assert_eq!(stats.executed, 2, "two distinct cells, two executions");
    assert_eq!(
        stats.cache_hits + stats.deduped,
        (clients as u64 - 1) * 2,
        "every other request answered by dedup or cache"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crashing_leader_does_not_wedge_followers() {
    let runner = Arc::new(CellRunner::open(None).unwrap());
    let sup = Supervision {
        max_retries: 0,
        cell_timeout: None,
        poison: Some("vc16".to_string()),
        checkpoint_every: 0,
        shards: 1,
    };
    let barrier = Arc::new(Barrier::new(4));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let (runner, barrier, sup) = (Arc::clone(&runner), Arc::clone(&barrier), sup.clone());
            std::thread::spawn(move || {
                barrier.wait();
                let cell = spec("poisoned", "[0.02]").expand().remove(0);
                runner.run(&cell, &sup)
            })
        })
        .collect();
    for h in handles {
        let rec = h.join().unwrap();
        assert!(rec.is_crashed(), "poisoned cell must quarantine, not hang");
    }
    // Quarantine verdicts are never remembered: each requester that
    // led a flight re-executed, none was served a cached crash.
    assert_eq!(runner.stats().cache_hits, 0);
    assert!(runner.known_records() == 0, "crashes are never cached");
}

#[test]
fn per_request_timeout_quarantines_without_caching() {
    let runner = CellRunner::open(None).unwrap();
    let cell = spec("deadline", "[0.02]").expand().remove(0);
    let sup = Supervision {
        max_retries: 0,
        cell_timeout: Some(Duration::ZERO),
        poison: None,
        checkpoint_every: 0,
        shards: 1,
    };
    let rec = runner.run(&cell, &sup);
    assert!(rec.is_timed_out());
    assert_eq!(runner.known_records(), 0, "timeouts are never cached");
    // The same cell under a sane budget simulates fresh and succeeds.
    let ok = runner.run(&cell, &Supervision::default());
    assert!(!ok.is_timed_out() && !ok.is_error());
    assert_eq!(runner.stats().executed, 2);
}

#[test]
fn drain_persists_checkpoint_and_next_runner_resumes_bit_identically() {
    let dir = temp_dir("drain-resume");
    let cell = spec("drainable", "[0.02]").expand().remove(0);
    let sup = Supervision {
        checkpoint_every: 64,
        ..Supervision::default()
    };

    // Ground truth: the same cell run uninterrupted, uncached.
    let baseline = CellRunner::open(None).unwrap().run(&cell, &sup);
    assert!(!baseline.is_error(), "{:?}", baseline.error);

    // First daemon: drain is already requested, so the cell stops at
    // its first checkpoint boundary and leaves a snapshot behind.
    let first = CellRunner::open(Some(&dir)).unwrap();
    first.request_drain();
    let drained = first.run(&cell, &sup);
    assert!(drained.is_drained(), "{:?}", drained.cell_outcome);
    assert_eq!(first.known_records(), 0, "drained cells are never cached");
    assert_eq!(first.stats().drained, 1);
    assert!(first.stats().checkpoints_written >= 1);
    let ckpt = dir
        .join("ckpt")
        .join(format!("{:016x}.ckpt", cell.fingerprint()));
    assert!(
        ckpt.exists(),
        "drain leaves the checkpoint for the next daemon"
    );
    first.finalize().unwrap();
    assert!(
        ckpt.exists(),
        "flush must not GC an incomplete cell's checkpoint"
    );

    // Next daemon over the same cache directory: resumes mid-cell and
    // must agree with the uninterrupted run on every result field.
    let second = CellRunner::open(Some(&dir)).unwrap();
    let resumed = second.run(&cell, &sup);
    assert_eq!(resumed.resumed_from_cycle, Some(64));
    assert_eq!(second.stats().resumed, 1);
    let mut normalized = resumed.clone();
    normalized.resumed_from_cycle = None;
    normalized.checkpoints_written = baseline.checkpoints_written;
    assert_eq!(
        normalized.to_json_line(),
        baseline.to_json_line(),
        "resumed results are bit-identical to the uninterrupted run"
    );
    assert!(!ckpt.exists(), "completion garbage-collects the checkpoint");
    second.finalize().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_checkpoint_degrades_to_cycle_zero_replay() {
    let dir = temp_dir("corrupt-ckpt");
    let cell = spec("corruptible", "[0.02]").expand().remove(0);
    let sup = Supervision {
        checkpoint_every: 64,
        ..Supervision::default()
    };
    let baseline = CellRunner::open(None).unwrap().run(&cell, &sup);

    // Plant a corrupt checkpoint where a resume would look for one.
    let ckpt_dir = dir.join("ckpt");
    std::fs::create_dir_all(&ckpt_dir).unwrap();
    let ckpt = ckpt_dir.join(format!("{:016x}.ckpt", cell.fingerprint()));
    std::fs::write(&ckpt, b"torn garbage, not a checkpoint").unwrap();

    let runner = CellRunner::open(Some(&dir)).unwrap();
    let rec = runner.run(&cell, &sup);
    assert_eq!(rec.resumed_from_cycle, None, "corrupt snapshot discarded");
    assert!(!rec.is_error() && !rec.is_crashed(), "{:?}", rec.error);
    let mut normalized = rec.clone();
    normalized.checkpoints_written = baseline.checkpoints_written;
    assert_eq!(
        normalized.to_json_line(),
        baseline.to_json_line(),
        "cycle-0 fallback reproduces the uninterrupted result"
    );
    runner.finalize().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
