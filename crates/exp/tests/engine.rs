//! End-to-end engine guarantees: thread-count invariance,
//! cache-driven incremental resume, and per-line corruption isolation.

use std::fs;
use std::path::PathBuf;

use orion_exp::{artifact, run_spec, EngineOptions, ExperimentSpec, CACHE_FILE};

/// A Fig.5-style grid kept quick: two presets (wormhole + VC) on the
/// 4×4 torus, 8 injection rates, reduced measurement effort.
const SPEC: &str = r#"
[experiment]
name = "grid-test"
description = "determinism and cache coverage"

[measure]
warmup = 100
sample_packets = 200
max_cycles = 30000
watchdog_cycles = 500

[grid]
presets = ["wh64", "vc64"]
rates = [0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08]
seeds = [1]
"#;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("orion-exp-engine-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn opts(threads: usize, cache_dir: Option<PathBuf>) -> EngineOptions {
    EngineOptions {
        threads,
        cache_dir,
        progress: false,
    }
}

#[test]
fn eight_threads_bit_identical_to_one() {
    let spec = ExperimentSpec::parse(SPEC).unwrap();
    let (seq, seq_summary) = run_spec(&spec, &opts(1, None)).unwrap();
    let (par, par_summary) = run_spec(&spec, &opts(8, None)).unwrap();
    assert_eq!(seq_summary.total, 16);
    assert_eq!(seq_summary.simulated, 16);
    assert_eq!(par_summary.simulated, 16);
    // The artifacts — the externally visible product — must match
    // byte for byte, floats included.
    assert_eq!(artifact::to_jsonl(&seq), artifact::to_jsonl(&par));
    assert_eq!(artifact::to_csv(&seq), artifact::to_csv(&par));
    // And the grid actually produced signal, not degenerate zeros.
    assert!(seq.iter().all(|r| !r.is_error()));
    assert!(seq.iter().any(|r| r.avg_latency > 0.0));
    assert!(seq.iter().any(|r| r.total_power_w > 0.0));
}

#[test]
fn second_run_is_all_cache_hits_and_identical() {
    let dir = temp_dir("all-hits");
    let spec = ExperimentSpec::parse(SPEC).unwrap();

    let (first, s1) = run_spec(&spec, &opts(2, Some(dir.clone()))).unwrap();
    assert_eq!(s1.cache_hits, 0);
    assert_eq!(s1.simulated, 16);

    let (second, s2) = run_spec(&spec, &opts(2, Some(dir.clone()))).unwrap();
    assert_eq!(s2.simulated, 0, "nothing may re-simulate");
    assert_eq!(s2.cache_hits, 16);
    assert_eq!(s2.corrupt_cache_lines, 0);
    assert!(second.iter().all(|r| r.cached));

    // Cached replay serializes to the same bytes as the fresh run.
    assert_eq!(artifact::to_jsonl(&first), artifact::to_jsonl(&second));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupting_one_line_invalidates_exactly_that_cell() {
    let dir = temp_dir("corrupt");
    let spec = ExperimentSpec::parse(SPEC).unwrap();
    let (first, _) = run_spec(&spec, &opts(2, Some(dir.clone()))).unwrap();

    // Truncate one mid-file cache line (a torn write, by hand).
    let path = dir.join(CACHE_FILE);
    let text = fs::read_to_string(&path).unwrap();
    let mut lines: Vec<String> = text.lines().map(String::from).collect();
    assert_eq!(lines.len(), 16);
    let half = lines[5].len() / 2;
    lines[5].truncate(half);
    fs::write(&path, lines.join("\n") + "\n").unwrap();

    let (second, s2) = run_spec(&spec, &opts(2, Some(dir.clone()))).unwrap();
    assert_eq!(s2.corrupt_cache_lines, 1);
    assert_eq!(s2.simulated, 1, "only the damaged cell re-runs");
    assert_eq!(s2.cache_hits, 15);
    assert_eq!(
        artifact::to_jsonl(&first),
        artifact::to_jsonl(&second),
        "the re-simulated cell reproduces its original result"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn extending_the_grid_simulates_only_new_cells() {
    let dir = temp_dir("extend");
    let spec = ExperimentSpec::parse(SPEC).unwrap();
    let (_, s1) = run_spec(&spec, &opts(2, Some(dir.clone()))).unwrap();
    assert_eq!(s1.simulated, 16);

    let extended = ExperimentSpec::parse(&SPEC.replace("0.08]", "0.08, 0.09, 0.10]")).unwrap();
    let (records, s2) = run_spec(&extended, &opts(2, Some(dir.clone()))).unwrap();
    assert_eq!(s2.total, 20);
    assert_eq!(s2.cache_hits, 16, "the original grid is reused");
    assert_eq!(s2.simulated, 4, "two presets x two new rates");
    assert_eq!(records.len(), 20);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn changing_measure_discipline_misses_the_cache() {
    let dir = temp_dir("measure-miss");
    let spec = ExperimentSpec::parse(SPEC).unwrap();
    run_spec(&spec, &opts(2, Some(dir.clone()))).unwrap();

    let tweaked = ExperimentSpec::parse(&SPEC.replace("warmup = 100", "warmup = 150")).unwrap();
    let (_, s2) = run_spec(&tweaked, &opts(2, Some(dir.clone()))).unwrap();
    assert_eq!(s2.cache_hits, 0, "fingerprints cover the discipline");
    assert_eq!(s2.simulated, 16);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn artifacts_written_sorted_and_versioned() {
    let dir = temp_dir("artifacts");
    let spec = ExperimentSpec::parse(SPEC).unwrap();
    let (records, _) = run_spec(&spec, &opts(2, None)).unwrap();
    let arts = artifact::write_artifacts(&dir, &spec.name, &records).unwrap();

    let jsonl = fs::read_to_string(&arts.jsonl).unwrap();
    let keys: Vec<&str> = jsonl
        .lines()
        .map(|l| {
            let start = l.find("\"cell\":\"").unwrap() + 8;
            let end = l[start..].find('"').unwrap() + start;
            &l[start..end]
        })
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "JSONL rows sorted by cell key");
    assert!(jsonl.lines().all(|l| l.contains("\"schema_version\":1")));

    let csv = fs::read_to_string(&arts.csv).unwrap();
    assert_eq!(csv.lines().count(), 17, "header + 16 rows");
    assert!(csv.starts_with("schema_version,cell,"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn override_axes_flow_through_to_records() {
    let spec = ExperimentSpec::parse(
        r#"
[experiment]
name = "fc-grid"
[measure]
warmup = 100
sample_packets = 100
max_cycles = 20000
[grid]
presets = ["wh64"]
rates = [0.02]
flow_control = ["flit-level", "cut-through"]
"#,
    )
    .unwrap();
    let (records, summary) = run_spec(&spec, &opts(2, None)).unwrap();
    assert_eq!(summary.total, 2);
    let fcs: Vec<&str> = records.iter().map(|r| r.flow_control.as_str()).collect();
    assert!(fcs.contains(&"flit-level") && fcs.contains(&"cut-through"));
    assert!(records.iter().all(|r| !r.is_error()));
}
