//! End-to-end engine guarantees: thread-count invariance,
//! cache-driven incremental resume, per-line corruption isolation,
//! and supervised execution (panic quarantine, retries, lockout).

use std::fs;
use std::path::PathBuf;

use orion_exp::{artifact, run_spec, CacheLock, EngineOptions, ExperimentSpec, CACHE_FILE};

/// A Fig.5-style grid kept quick: two presets (wormhole + VC) on the
/// 4×4 torus, 8 injection rates, reduced measurement effort.
const SPEC: &str = r#"
[experiment]
name = "grid-test"
description = "determinism and cache coverage"

[measure]
warmup = 100
sample_packets = 200
max_cycles = 30000
watchdog_cycles = 500

[grid]
presets = ["wh64", "vc64"]
rates = [0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08]
seeds = [1]
"#;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("orion-exp-engine-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn opts(threads: usize, cache_dir: Option<PathBuf>) -> EngineOptions {
    EngineOptions {
        threads,
        cache_dir,
        progress: false,
        ..EngineOptions::default()
    }
}

#[test]
fn eight_threads_bit_identical_to_one() {
    let spec = ExperimentSpec::parse(SPEC).unwrap();
    let (seq, seq_summary) = run_spec(&spec, &opts(1, None)).unwrap();
    let (par, par_summary) = run_spec(&spec, &opts(8, None)).unwrap();
    assert_eq!(seq_summary.total, 16);
    assert_eq!(seq_summary.simulated, 16);
    assert_eq!(par_summary.simulated, 16);
    // The artifacts — the externally visible product — must match
    // byte for byte, floats included.
    assert_eq!(artifact::to_jsonl(&seq), artifact::to_jsonl(&par));
    assert_eq!(artifact::to_csv(&seq), artifact::to_csv(&par));
    // And the grid actually produced signal, not degenerate zeros.
    assert!(seq.iter().all(|r| !r.is_error()));
    assert!(seq.iter().any(|r| r.avg_latency > 0.0));
    assert!(seq.iter().any(|r| r.total_power_w > 0.0));
}

#[test]
fn second_run_is_all_cache_hits_and_identical() {
    let dir = temp_dir("all-hits");
    let spec = ExperimentSpec::parse(SPEC).unwrap();

    let (first, s1) = run_spec(&spec, &opts(2, Some(dir.clone()))).unwrap();
    assert_eq!(s1.cache_hits, 0);
    assert_eq!(s1.simulated, 16);

    let (second, s2) = run_spec(&spec, &opts(2, Some(dir.clone()))).unwrap();
    assert_eq!(s2.simulated, 0, "nothing may re-simulate");
    assert_eq!(s2.cache_hits, 16);
    assert_eq!(s2.corrupt_cache_lines, 0);
    assert!(second.iter().all(|r| r.cached));

    // Cached replay serializes to the same bytes as the fresh run.
    assert_eq!(artifact::to_jsonl(&first), artifact::to_jsonl(&second));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupting_one_line_invalidates_exactly_that_cell() {
    let dir = temp_dir("corrupt");
    let spec = ExperimentSpec::parse(SPEC).unwrap();
    let (first, _) = run_spec(&spec, &opts(2, Some(dir.clone()))).unwrap();

    // Truncate one mid-file cache line (a torn write, by hand).
    let path = dir.join(CACHE_FILE);
    let text = fs::read_to_string(&path).unwrap();
    let mut lines: Vec<String> = text.lines().map(String::from).collect();
    assert_eq!(lines.len(), 16);
    let half = lines[5].len() / 2;
    lines[5].truncate(half);
    fs::write(&path, lines.join("\n") + "\n").unwrap();

    let (second, s2) = run_spec(&spec, &opts(2, Some(dir.clone()))).unwrap();
    assert_eq!(s2.corrupt_cache_lines, 1);
    assert_eq!(s2.simulated, 1, "only the damaged cell re-runs");
    assert_eq!(s2.cache_hits, 15);
    assert_eq!(
        artifact::to_jsonl(&first),
        artifact::to_jsonl(&second),
        "the re-simulated cell reproduces its original result"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn extending_the_grid_simulates_only_new_cells() {
    let dir = temp_dir("extend");
    let spec = ExperimentSpec::parse(SPEC).unwrap();
    let (_, s1) = run_spec(&spec, &opts(2, Some(dir.clone()))).unwrap();
    assert_eq!(s1.simulated, 16);

    let extended = ExperimentSpec::parse(&SPEC.replace("0.08]", "0.08, 0.09, 0.10]")).unwrap();
    let (records, s2) = run_spec(&extended, &opts(2, Some(dir.clone()))).unwrap();
    assert_eq!(s2.total, 20);
    assert_eq!(s2.cache_hits, 16, "the original grid is reused");
    assert_eq!(s2.simulated, 4, "two presets x two new rates");
    assert_eq!(records.len(), 20);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn changing_measure_discipline_misses_the_cache() {
    let dir = temp_dir("measure-miss");
    let spec = ExperimentSpec::parse(SPEC).unwrap();
    run_spec(&spec, &opts(2, Some(dir.clone()))).unwrap();

    let tweaked = ExperimentSpec::parse(&SPEC.replace("warmup = 100", "warmup = 150")).unwrap();
    let (_, s2) = run_spec(&tweaked, &opts(2, Some(dir.clone()))).unwrap();
    assert_eq!(s2.cache_hits, 0, "fingerprints cover the discipline");
    assert_eq!(s2.simulated, 16);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn artifacts_written_sorted_and_versioned() {
    let dir = temp_dir("artifacts");
    let spec = ExperimentSpec::parse(SPEC).unwrap();
    let (records, _) = run_spec(&spec, &opts(2, None)).unwrap();
    let arts = artifact::write_artifacts(&dir, &spec.name, &records).unwrap();

    let jsonl = fs::read_to_string(&arts.jsonl).unwrap();
    let keys: Vec<&str> = jsonl
        .lines()
        .map(|l| {
            let start = l.find("\"cell\":\"").unwrap() + 8;
            let end = l[start..].find('"').unwrap() + start;
            &l[start..end]
        })
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "JSONL rows sorted by cell key");
    assert!(jsonl.lines().all(|l| l.contains("\"schema_version\":4")));

    let csv = fs::read_to_string(&arts.csv).unwrap();
    assert_eq!(csv.lines().count(), 17, "header + 16 rows");
    assert!(csv.starts_with("schema_version,cell,"));
    let _ = fs::remove_dir_all(&dir);
}

/// The key of exactly one SPEC cell, used as the poison target.
const POISON_KEY: &str = "wh64/uniform/r0.030000";

#[test]
fn poisoned_cell_is_quarantined_and_grid_completes() {
    let spec = ExperimentSpec::parse(SPEC).unwrap();
    let (clean, _) = run_spec(&spec, &opts(4, None)).unwrap();

    let mut poisoned_opts = opts(4, None);
    poisoned_opts.poison = Some(POISON_KEY.to_string());
    let (records, summary) = run_spec(&spec, &poisoned_opts).unwrap();

    assert_eq!(records.len(), 16, "the grid stays rectangular");
    assert_eq!(summary.crashed, 1);
    assert!(summary.is_degraded());
    let crashed: Vec<_> = records.iter().filter(|r| r.is_crashed()).collect();
    assert_eq!(crashed.len(), 1, "exactly one crashed record");
    assert!(crashed[0].cell.starts_with(POISON_KEY));
    assert_eq!(crashed[0].outcome, "crashed");
    assert!(
        crashed[0].error.as_deref().unwrap().contains("poison hook"),
        "panic payload captured: {:?}",
        crashed[0].error
    );
    // Every other cell's result is bit-identical to the clean run:
    // the panic was isolated, not contagious.
    for (a, b) in clean.iter().zip(&records) {
        if !a.cell.starts_with(POISON_KEY) {
            assert_eq!(a, b, "cell {} perturbed by a sibling's panic", a.cell);
        }
    }
}

#[test]
fn crashed_cells_are_not_cached_and_heal_on_rerun() {
    let dir = temp_dir("crash-heal");
    let spec = ExperimentSpec::parse(SPEC).unwrap();
    let mut poisoned_opts = opts(2, Some(dir.clone()));
    poisoned_opts.poison = Some(POISON_KEY.to_string());
    let (_, s1) = run_spec(&spec, &poisoned_opts).unwrap();
    assert_eq!(s1.crashed, 1);

    // Same cache, poison gone (the "fixed build"): only the
    // quarantined cell re-simulates, and the grid is clean again.
    let (records, s2) = run_spec(&spec, &opts(2, Some(dir.clone()))).unwrap();
    assert_eq!(s2.cache_hits, 15);
    assert_eq!(s2.simulated, 1, "only the crashed cell re-runs");
    assert_eq!(s2.crashed, 0);
    assert!(!s2.is_degraded());
    assert!(records.iter().all(|r| !r.is_crashed()));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn retries_reseed_deterministically_and_recover() {
    let spec = ExperimentSpec::parse(SPEC).unwrap();
    let (clean, _) = run_spec(&spec, &opts(2, None)).unwrap();

    let mut retry_opts = opts(2, None);
    retry_opts.poison = Some(format!("once:{POISON_KEY}"));
    retry_opts.max_retries = 2;
    let (records, summary) = run_spec(&spec, &retry_opts).unwrap();

    assert_eq!(summary.crashed, 0);
    assert_eq!(summary.retried, 1);
    assert!(!summary.is_degraded());
    let rec = records
        .iter()
        .find(|r| r.cell.starts_with(POISON_KEY))
        .unwrap();
    assert_eq!(rec.cell_outcome, "retried");
    assert_eq!(rec.attempts, 2, "first attempt panicked, second ran");
    let original = clean
        .iter()
        .find(|r| r.cell.starts_with(POISON_KEY))
        .unwrap();
    assert_ne!(
        rec.derived_seed, original.derived_seed,
        "the retry seed is annotated on the record for replayability"
    );

    // Retry outcomes are deterministic: same options, same record.
    let (again, _) = run_spec(&spec, &retry_opts).unwrap();
    assert_eq!(records, again);
}

#[test]
fn zero_wall_clock_budget_times_every_cell_out() {
    let spec = ExperimentSpec::parse(SPEC).unwrap();
    let mut timeout_opts = opts(2, None);
    timeout_opts.cell_timeout = Some(std::time::Duration::from_nanos(1));
    let (records, summary) = run_spec(&spec, &timeout_opts).unwrap();
    assert_eq!(summary.timed_out, 16);
    assert!(summary.is_degraded());
    assert!(records.iter().all(|r| r.is_timed_out()));
    assert!(records[0]
        .error
        .as_deref()
        .unwrap()
        .contains("wall-clock budget"));
}

#[test]
fn second_engine_on_a_locked_cache_is_refused() {
    let dir = temp_dir("lockout");
    let spec = ExperimentSpec::parse(SPEC).unwrap();
    // Engine 1 holds the cache lock (an in-flight run).
    let lock = CacheLock::acquire(&dir).unwrap();
    let err = run_spec(&spec, &opts(2, Some(dir.clone())))
        .expect_err("engine 2 must refuse a locked cache dir");
    assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);
    // Engine 1 finishes; engine 2 now proceeds.
    drop(lock);
    let (_, summary) = run_spec(&spec, &opts(2, Some(dir.clone()))).unwrap();
    assert_eq!(summary.simulated, 16);
    assert!(
        !dir.join(orion_exp::LOCK_FILE).exists(),
        "the engine releases its lock on return"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn killed_run_resumes_with_byte_identical_artifacts() {
    let reference_dir = temp_dir("kill-ref");
    let resumed_dir = temp_dir("kill-resume");
    let spec = ExperimentSpec::parse(SPEC).unwrap();

    // The uninterrupted reference run.
    let (reference, _) = run_spec(&spec, &opts(2, Some(reference_dir.clone()))).unwrap();

    // Forge the aftermath of a SIGKILL mid-grid: a partial cache with
    // a torn final line, plus the stale lock of the dead holder.
    run_spec(&spec, &opts(2, Some(resumed_dir.clone()))).unwrap();
    let cache_path = resumed_dir.join(CACHE_FILE);
    let text = fs::read_to_string(&cache_path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let mut partial = lines[..7].join("\n");
    partial.push('\n');
    partial.push_str(&lines[7][..lines[7].len() / 2]); // torn append
    fs::write(&cache_path, partial).unwrap();
    fs::write(resumed_dir.join(orion_exp::LOCK_FILE), "999999999").unwrap();

    let (resumed, summary) = run_spec(&spec, &opts(2, Some(resumed_dir.clone()))).unwrap();
    assert_eq!(summary.cache_hits, 7, "intact lines are reused");
    assert_eq!(summary.simulated, 9, "torn + missing cells re-run");
    assert_eq!(
        artifact::to_jsonl(&reference),
        artifact::to_jsonl(&resumed),
        "a killed-and-resumed grid converges to the reference bytes"
    );

    // Zero duplicate records: one cache line per cell key.
    let healed = fs::read_to_string(&cache_path).unwrap();
    let mut keys: Vec<&str> = healed
        .lines()
        .map(|l| {
            let start = l.find("\"cell\":\"").unwrap() + 8;
            let end = l[start..].find('"').unwrap() + start;
            &l[start..end]
        })
        .collect();
    let total = keys.len();
    keys.sort();
    keys.dedup();
    assert_eq!(keys.len(), total, "no duplicate cell keys in the cache");
    assert_eq!(total, 16);

    // The crash-safe manifest reflects the completed grid.
    let manifest = orion_exp::Manifest::read(&resumed_dir).unwrap();
    assert_eq!(manifest.spec_name, "grid-test");
    assert_eq!(manifest.total_cells, 16);
    assert_eq!(manifest.completed_cells, 16);

    let _ = fs::remove_dir_all(&reference_dir);
    let _ = fs::remove_dir_all(&resumed_dir);
}

#[test]
fn override_axes_flow_through_to_records() {
    let spec = ExperimentSpec::parse(
        r#"
[experiment]
name = "fc-grid"
[measure]
warmup = 100
sample_packets = 100
max_cycles = 20000
[grid]
presets = ["wh64"]
rates = [0.02]
flow_control = ["flit-level", "cut-through"]
"#,
    )
    .unwrap();
    let (records, summary) = run_spec(&spec, &opts(2, None)).unwrap();
    assert_eq!(summary.total, 2);
    let fcs: Vec<&str> = records.iter().map(|r| r.flow_control.as_str()).collect();
    assert!(fcs.contains(&"flit-level") && fcs.contains(&"cut-through"));
    assert!(records.iter().all(|r| !r.is_error()));
}
