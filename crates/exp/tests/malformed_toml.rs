//! Malformed-input tests for the experiment-spec TOML reader: truncated
//! tables, duplicate keys, non-UTF-8 bytes, and oversized lines must all
//! come back as typed, line-numbered [`SpecError`]s — never a panic.
//!
//! The final property test feeds arbitrary byte soup through the full
//! `ExperimentSpec::parse_bytes` path to pin the never-panic guarantee.

use orion_exp::spec::ExperimentSpec;
use orion_exp::toml::{self, MAX_LINE_LEN};
use orion_exp::SpecError;
use proptest::prelude::*;

/// A spec that parses cleanly, used as the base for mutations.
const VALID: &str = "\
[experiment]
name = \"fig5\"

[grid]
presets = [\"vc64\"]
rates = [0.05]
";

fn syntax_line(result: Result<ExperimentSpec, SpecError>) -> usize {
    match result {
        Err(SpecError::Syntax(e)) => e.line,
        other => panic!("expected SpecError::Syntax, got {other:?}"),
    }
}

#[test]
fn valid_base_spec_parses() {
    ExperimentSpec::parse(VALID).expect("base spec must be valid");
}

#[test]
fn truncated_section_header_is_line_numbered() {
    // File cut off mid-header: `[grid` without the closing bracket.
    let truncated = "[experiment]\nname = \"x\"\n[grid\n";
    assert_eq!(syntax_line(ExperimentSpec::parse(truncated)), 3);
}

#[test]
fn truncated_array_at_eof_is_line_numbered() {
    // File cut off inside a multi-line array.
    let truncated = "[experiment]\nname = \"x\"\n[grid]\nrates = [0.05,
  0.06,
";
    let e = ExperimentSpec::parse(truncated).unwrap_err();
    match e {
        SpecError::Syntax(e) => {
            assert_eq!(e.line, 4, "error points at the array's opening line");
            assert!(e.message.contains("unterminated array"), "{e}");
        }
        other => panic!("expected syntax error, got {other:?}"),
    }
}

#[test]
fn truncated_string_at_eof_is_line_numbered() {
    let truncated = "[experiment]\nname = \"fig5\n";
    assert_eq!(syntax_line(ExperimentSpec::parse(truncated)), 2);
}

#[test]
fn duplicate_key_is_rejected_with_second_line() {
    let dup = "[experiment]\nname = \"a\"\nname = \"b\"\n";
    let e = ExperimentSpec::parse(dup).unwrap_err();
    match e {
        SpecError::Syntax(e) => {
            assert_eq!(e.line, 3);
            assert!(e.message.contains("duplicate key"), "{e}");
        }
        other => panic!("expected syntax error, got {other:?}"),
    }
}

#[test]
fn duplicate_section_is_rejected_with_second_line() {
    let dup = "[experiment]\nname = \"a\"\n[experiment]\n";
    let e = ExperimentSpec::parse(dup).unwrap_err();
    match e {
        SpecError::Syntax(e) => {
            assert_eq!(e.line, 3);
            assert!(e.message.contains("duplicate section"), "{e}");
        }
        other => panic!("expected syntax error, got {other:?}"),
    }
}

#[test]
fn non_utf8_input_reports_the_offending_line() {
    // Two clean lines, then an invalid byte on line 3.
    let mut bytes = b"[experiment]\nname = \"x\"\n".to_vec();
    bytes.extend_from_slice(&[0xFF, 0xFE, b'\n']);
    let e = ExperimentSpec::parse_bytes(&bytes).unwrap_err();
    match e {
        SpecError::Syntax(e) => {
            assert_eq!(e.line, 3);
            assert!(e.message.contains("invalid UTF-8"), "{e}");
        }
        other => panic!("expected syntax error, got {other:?}"),
    }
}

#[test]
fn non_utf8_truncated_multibyte_sequence_is_rejected() {
    // A UTF-8 sequence cut in half at EOF (file truncated mid-char).
    let mut bytes = VALID.as_bytes().to_vec();
    bytes.push(0xE2); // first byte of a 3-byte sequence, rest missing
    assert!(matches!(
        ExperimentSpec::parse_bytes(&bytes),
        Err(SpecError::Syntax(_))
    ));
}

#[test]
fn valid_utf8_bytes_round_trip_through_parse_bytes() {
    let spec = ExperimentSpec::parse_bytes(VALID.as_bytes()).expect("valid");
    assert_eq!(spec.name, "fig5");
}

#[test]
fn oversized_line_is_rejected_with_its_line_number() {
    let long = "x".repeat(MAX_LINE_LEN + 1);
    let doc = format!("[experiment]\nname = \"a\"\n# {long}\n");
    let e = ExperimentSpec::parse(&doc).unwrap_err();
    match e {
        SpecError::Syntax(e) => {
            assert_eq!(e.line, 3);
            assert!(e.message.contains("exceeds"), "{e}");
        }
        other => panic!("expected syntax error, got {other:?}"),
    }
}

#[test]
fn oversized_array_continuation_line_is_rejected() {
    let long = "0.1, ".repeat(MAX_LINE_LEN / 4);
    let doc = format!("[grid]\nrate = [\n{long}\n]\n");
    let e = toml::parse(&doc).unwrap_err();
    assert_eq!(e.line, 3);
    assert!(e.message.contains("exceeds"), "{e}");
}

#[test]
fn line_at_exactly_the_limit_is_accepted() {
    // `# ` + padding to exactly MAX_LINE_LEN bytes.
    let comment = format!("# {}", "y".repeat(MAX_LINE_LEN - 2));
    assert_eq!(comment.len(), MAX_LINE_LEN);
    let doc = format!("{comment}\n{VALID}");
    ExperimentSpec::parse(&doc).expect("limit is inclusive");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte soup never panics the full parse path: every
    /// outcome is `Ok` or a typed `SpecError`.
    #[test]
    fn arbitrary_bytes_never_panic(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = ExperimentSpec::parse_bytes(&bytes);
    }

    /// Mutating a valid spec (truncation + one byte stomped) never
    /// panics either — this explores the "almost valid" space where
    /// parsers tend to index out of bounds.
    #[test]
    fn mutated_valid_spec_never_panics(
        cut in 0usize..64,
        pos in any::<usize>(),
        byte in any::<u8>(),
    ) {
        let mut bytes = VALID.as_bytes().to_vec();
        bytes.truncate(bytes.len().saturating_sub(cut));
        if !bytes.is_empty() {
            let at = pos % bytes.len();
            bytes[at] = byte;
        }
        let _ = ExperimentSpec::parse_bytes(&bytes);
    }
}
