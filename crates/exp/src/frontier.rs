//! Deterministic Pareto frontiers on the paper's power-performance
//! plane.
//!
//! The explorer (and any analysis over cell records) ranks candidates
//! by two objectives, both minimised: average packet latency in cycles
//! and total network power in watts — the two axes of the paper's
//! Figures 5 and 7. A [`ParetoFront`] keeps the non-dominated set,
//! stores members in a total order `(latency, power, label)` so that
//! identical inputs always serialise identically, and rejects
//! non-finite objectives (a saturated-but-measured cell is admissible;
//! a crashed cell with NaN latency is not).

use std::fmt;

/// A candidate's objective vector: both minimised.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objectives {
    /// Average packet latency in cycles.
    pub latency: f64,
    /// Total network power in watts.
    pub power: f64,
}

impl Objectives {
    /// Whether both objectives are finite (comparable at all).
    pub fn is_finite(&self) -> bool {
        self.latency.is_finite() && self.power.is_finite()
    }

    /// Strict Pareto dominance: no worse on either objective, strictly
    /// better on at least one.
    pub fn dominates(&self, other: &Objectives) -> bool {
        self.latency <= other.latency
            && self.power <= other.power
            && (self.latency < other.latency || self.power < other.power)
    }
}

impl fmt::Display for Objectives {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3} cycles, {:.6} W)", self.latency, self.power)
    }
}

/// A labelled frontier member.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontMember {
    /// Candidate label (a design-point name, a cell key, …).
    pub label: String,
    /// Its objectives.
    pub objectives: Objectives,
}

/// What [`ParetoFront::insert`] did with a candidate.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertOutcome {
    /// Joined the frontier, evicting the listed now-dominated labels.
    Added {
        /// Labels removed because the new member dominates them.
        evicted: Vec<String>,
    },
    /// Dominated by an existing member; frontier unchanged.
    Dominated,
    /// A member with this label is already on the frontier.
    AlreadyPresent,
    /// Rejected: an objective was NaN or infinite.
    NotFinite,
}

/// The non-dominated set over [`Objectives`], in a deterministic order.
///
/// Members with *equal* objectives do not dominate each other, so ties
/// are all kept — the frontier reports every architecture that attains
/// a given operating point. Iteration order and serialisation order are
/// `(latency, power, label)` via total float ordering, independent of
/// insertion order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParetoFront {
    members: Vec<FrontMember>,
}

impl ParetoFront {
    /// An empty frontier.
    pub fn new() -> ParetoFront {
        ParetoFront::default()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the frontier is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Members sorted by `(latency, power, label)`.
    pub fn members(&self) -> &[FrontMember] {
        &self.members
    }

    /// Whether `label` is currently on the frontier.
    pub fn contains(&self, label: &str) -> bool {
        self.members.iter().any(|m| m.label == label)
    }

    /// Offers a candidate to the frontier.
    pub fn insert(&mut self, label: &str, objectives: Objectives) -> InsertOutcome {
        if !objectives.is_finite() {
            return InsertOutcome::NotFinite;
        }
        if self.contains(label) {
            return InsertOutcome::AlreadyPresent;
        }
        if self
            .members
            .iter()
            .any(|m| m.objectives.dominates(&objectives))
        {
            return InsertOutcome::Dominated;
        }
        let mut evicted = Vec::new();
        self.members.retain(|m| {
            if objectives.dominates(&m.objectives) {
                evicted.push(m.label.clone());
                false
            } else {
                true
            }
        });
        self.members.push(FrontMember {
            label: label.to_string(),
            objectives,
        });
        self.members.sort_by(|a, b| {
            a.objectives
                .latency
                .total_cmp(&b.objectives.latency)
                .then(a.objectives.power.total_cmp(&b.objectives.power))
                .then(a.label.cmp(&b.label))
        });
        InsertOutcome::Added { evicted }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(latency: f64, power: f64) -> Objectives {
        Objectives { latency, power }
    }

    #[test]
    fn dominance_is_strict() {
        assert!(obj(1.0, 1.0).dominates(&obj(2.0, 2.0)));
        assert!(obj(1.0, 1.0).dominates(&obj(1.0, 2.0)));
        assert!(
            !obj(1.0, 1.0).dominates(&obj(1.0, 1.0)),
            "equal: no dominance"
        );
        assert!(!obj(1.0, 3.0).dominates(&obj(2.0, 2.0)), "trade-off");
    }

    #[test]
    fn frontier_keeps_nondominated_set() {
        let mut f = ParetoFront::new();
        assert_eq!(
            f.insert("a", obj(10.0, 1.0)),
            InsertOutcome::Added { evicted: vec![] }
        );
        assert_eq!(
            f.insert("b", obj(1.0, 10.0)),
            InsertOutcome::Added { evicted: vec![] }
        );
        // Dominates neither: a knee point joins.
        assert_eq!(
            f.insert("c", obj(5.0, 5.0)),
            InsertOutcome::Added { evicted: vec![] }
        );
        // Dominated by c.
        assert_eq!(f.insert("d", obj(6.0, 6.0)), InsertOutcome::Dominated);
        // Dominates c (and d would be gone anyway).
        assert_eq!(
            f.insert("e", obj(4.0, 4.0)),
            InsertOutcome::Added {
                evicted: vec!["c".into()]
            }
        );
        let labels: Vec<&str> = f.members().iter().map(|m| m.label.as_str()).collect();
        assert_eq!(labels, ["b", "e", "a"], "sorted by latency");
    }

    #[test]
    fn order_is_insertion_independent() {
        let points = [
            ("a", obj(10.0, 1.0)),
            ("b", obj(1.0, 10.0)),
            ("c", obj(5.0, 5.0)),
            ("d", obj(5.0, 5.0)),
            ("e", obj(7.0, 7.0)),
        ];
        let mut forward = ParetoFront::new();
        for (l, o) in points {
            forward.insert(l, o);
        }
        let mut backward = ParetoFront::new();
        for (l, o) in points.iter().rev() {
            backward.insert(l, *o);
        }
        assert_eq!(forward, backward);
        // Equal objectives: both kept, label-ordered.
        assert!(forward.contains("c") && forward.contains("d"));
        assert!(!forward.contains("e"));
    }

    #[test]
    fn non_finite_rejected_duplicates_ignored() {
        let mut f = ParetoFront::new();
        assert_eq!(
            f.insert("nan", obj(f64::NAN, 1.0)),
            InsertOutcome::NotFinite
        );
        assert_eq!(
            f.insert("inf", obj(1.0, f64::INFINITY)),
            InsertOutcome::NotFinite
        );
        assert!(f.is_empty());
        f.insert("a", obj(1.0, 1.0));
        assert_eq!(f.insert("a", obj(0.5, 0.5)), InsertOutcome::AlreadyPresent);
        assert_eq!(f.len(), 1);
    }
}
