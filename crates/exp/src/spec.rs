//! Declarative experiment specs: a TOML file describing a cartesian
//! grid of configurations × traffic patterns × injection rates × seeds,
//! validated into typed diagnostics and expanded into [`Cell`]s.
//!
//! ```toml
//! [experiment]
//! name = "fig5"
//!
//! [measure]
//! warmup = 1000
//! sample_packets = 10000
//! max_cycles = 300000
//!
//! [grid]
//! presets = ["wh64", "vc16", "vc64", "vc128"]
//! rates = [0.02, 0.04, 0.06, 0.08, 0.10]
//! seeds = [1]
//! ```
//!
//! Optional override axes (`traffic`, `flow_control`, `vc_discipline`,
//! `packet_len`) multiply into the grid; when absent, each cell keeps
//! the preset's defaults. Every cell is identified by a stable,
//! sortable *cell key* from which its cache fingerprint and RNG seed
//! are derived (see [`crate::fingerprint`]).

use std::fmt;

use orion_core::NetworkConfig;
use orion_net::{Topology, TrafficPattern};
use orion_sim::{FlowControl, VcDiscipline};

use crate::fingerprint::{fnv1a64, splitmix64, MODEL_VERSION};
use crate::toml::{self, Document, Value};

/// A spec the engine refuses to run, as a typed diagnostic.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpecError {
    /// TOML syntax error (line-numbered).
    Syntax(toml::ParseError),
    /// A required key is absent.
    MissingKey {
        /// Section the key belongs in.
        section: String,
        /// The missing key.
        key: String,
    },
    /// A key holds a value of the wrong type.
    WrongType {
        /// Section of the key.
        section: String,
        /// The key.
        key: String,
        /// What the spec schema expects there.
        expected: &'static str,
        /// What the file actually contains.
        found: &'static str,
        /// 1-based line of the value.
        line: usize,
    },
    /// A key the spec schema does not know (typo guard).
    UnknownKey {
        /// Section of the key.
        section: String,
        /// The unknown key.
        key: String,
        /// 1-based line of the key.
        line: usize,
    },
    /// A section the spec schema does not know.
    UnknownSection {
        /// The unknown section name.
        section: String,
        /// 1-based line of the header.
        line: usize,
    },
    /// A preset name outside the paper's six configurations.
    UnknownPreset {
        /// The rejected name.
        name: String,
        /// 1-based line of the axis.
        line: usize,
    },
    /// A traffic pattern name the grid does not support.
    UnknownTraffic {
        /// The rejected name.
        name: String,
        /// 1-based line of the axis.
        line: usize,
    },
    /// A flow-control name outside `flit-level|cut-through|bubble`.
    UnknownFlowControl {
        /// The rejected name.
        name: String,
        /// 1-based line of the axis.
        line: usize,
    },
    /// A VC-discipline name outside `unrestricted|dateline|escape`.
    UnknownVcDiscipline {
        /// The rejected name.
        name: String,
        /// 1-based line of the axis.
        line: usize,
    },
    /// An injection rate outside `[0, 1]` packets/cycle/node.
    InvalidRate {
        /// The rejected rate.
        rate: f64,
        /// 1-based line of the axis.
        line: usize,
    },
    /// A grid axis that would make the grid empty.
    EmptyAxis {
        /// The empty axis key.
        key: &'static str,
    },
    /// An experiment name unusable as an artifact file stem.
    BadName {
        /// The rejected name.
        name: String,
    },
    /// A search-strategy name the explorer does not implement.
    UnknownStrategy {
        /// The rejected name.
        name: String,
        /// 1-based line of the key.
        line: usize,
    },
    /// An evaluation budget that is zero, negative or not an integer.
    InvalidBudget {
        /// The rejected value.
        value: i64,
        /// 1-based line of the key.
        line: usize,
    },
    /// A design-space dimension holds a value outside its domain
    /// (unknown family/topology/node name, out-of-range size).
    BadDimension {
        /// The `[space]` key.
        key: String,
        /// The rejected value, rendered.
        value: String,
        /// What the dimension accepts.
        expected: &'static str,
        /// 1-based line of the axis.
        line: usize,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Syntax(e) => write!(f, "spec syntax: {e}"),
            SpecError::MissingKey { section, key } => {
                write!(f, "spec: missing required key `{key}` in [{section}]")
            }
            SpecError::WrongType {
                section,
                key,
                expected,
                found,
                line,
            } => write!(
                f,
                "spec line {line}: `{key}` in [{section}] must be {expected}, found {found}"
            ),
            SpecError::UnknownKey { section, key, line } => {
                write!(f, "spec line {line}: unknown key `{key}` in [{section}]")
            }
            SpecError::UnknownSection { section, line } => {
                write!(f, "spec line {line}: unknown section `[{section}]`")
            }
            SpecError::UnknownPreset { name, line } => write!(
                f,
                "spec line {line}: unknown preset `{name}` (expected \
                 wh64|vc16|vc64|vc128|xb|cb or a parametric design point \
                 like vc4x16-t8 — see docs/EXPLORATION.md)"
            ),
            SpecError::UnknownTraffic { name, line } => write!(
                f,
                "spec line {line}: unknown traffic `{name}` (expected uniform|transpose|\
                 bit-complement|tornado|shuffle|bit-reversal)"
            ),
            SpecError::UnknownFlowControl { name, line } => write!(
                f,
                "spec line {line}: unknown flow control `{name}` \
                 (expected flit-level|cut-through|bubble)"
            ),
            SpecError::UnknownVcDiscipline { name, line } => write!(
                f,
                "spec line {line}: unknown VC discipline `{name}` \
                 (expected unrestricted|dateline|escape)"
            ),
            SpecError::InvalidRate { rate, line } => write!(
                f,
                "spec line {line}: injection rate {rate} outside [0, 1] packets/cycle/node"
            ),
            SpecError::EmptyAxis { key } => {
                write!(f, "spec: grid axis `{key}` must not be empty")
            }
            SpecError::BadName { name } => write!(
                f,
                "spec: experiment name `{name}` must be a non-empty \
                 [A-Za-z0-9_-] token (it names the artifact files)"
            ),
            SpecError::UnknownStrategy { name, line } => write!(
                f,
                "spec line {line}: unknown strategy `{name}` \
                 (expected grid-refine|evolutionary)"
            ),
            SpecError::InvalidBudget { value, line } => write!(
                f,
                "spec line {line}: budget {value} must be a positive \
                 integer (max candidate evaluations)"
            ),
            SpecError::BadDimension {
                key,
                value,
                expected,
                line,
            } => write!(
                f,
                "spec line {line}: `{key}` value `{value}` invalid (expected {expected})"
            ),
        }
    }
}

impl std::error::Error for SpecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpecError::Syntax(e) => Some(e),
            _ => None,
        }
    }
}

impl From<toml::ParseError> for SpecError {
    fn from(e: toml::ParseError) -> SpecError {
        SpecError::Syntax(e)
    }
}

/// Measurement discipline shared by every cell of an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeasureSpec {
    /// Warm-up cycles (paper §4.1: 1000).
    pub warmup: u64,
    /// Tagged sample size in packets (paper: 10 000).
    pub sample_packets: u64,
    /// Cycle budget per cell.
    pub max_cycles: u64,
    /// Watchdog / backlog-divergence window (0 disables).
    pub watchdog_cycles: u64,
    /// Invariant-audit period in cycles (0 disables). Auditing is
    /// read-only: it never changes a healthy cell's numbers, only how
    /// a corrupted run is classified.
    pub audit_every: u64,
}

impl Default for MeasureSpec {
    fn default() -> MeasureSpec {
        MeasureSpec {
            warmup: 1000,
            sample_packets: 10_000,
            max_cycles: 300_000,
            watchdog_cycles: 1000,
            audit_every: 0,
        }
    }
}

/// A synthetic traffic pattern a grid cell can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TrafficKind {
    /// Uniform random destinations (the figures' workload).
    Uniform,
    /// Matrix transpose permutation.
    Transpose,
    /// Bit-complement permutation.
    BitComplement,
    /// Tornado (half-ring offset).
    Tornado,
    /// Perfect shuffle permutation.
    Shuffle,
    /// Bit-reversal permutation.
    BitReversal,
}

impl TrafficKind {
    /// Stable name used in cell keys, records and spec files.
    pub fn as_str(self) -> &'static str {
        match self {
            TrafficKind::Uniform => "uniform",
            TrafficKind::Transpose => "transpose",
            TrafficKind::BitComplement => "bit-complement",
            TrafficKind::Tornado => "tornado",
            TrafficKind::Shuffle => "shuffle",
            TrafficKind::BitReversal => "bit-reversal",
        }
    }

    /// Parses a traffic-pattern name; `None` for unknown names.
    pub fn parse(name: &str) -> Option<TrafficKind> {
        match name {
            "uniform" => Some(TrafficKind::Uniform),
            "transpose" => Some(TrafficKind::Transpose),
            "bit-complement" => Some(TrafficKind::BitComplement),
            "tornado" => Some(TrafficKind::Tornado),
            "shuffle" => Some(TrafficKind::Shuffle),
            "bit-reversal" => Some(TrafficKind::BitReversal),
            _ => None,
        }
    }

    fn from_str(name: &str, line: usize) -> Result<TrafficKind, SpecError> {
        TrafficKind::parse(name).ok_or_else(|| SpecError::UnknownTraffic {
            name: name.to_string(),
            line,
        })
    }

    /// Builds the pattern over `topology` at `rate`.
    pub fn pattern(
        self,
        topology: &Topology,
        rate: f64,
    ) -> Result<TrafficPattern, orion_net::traffic::TrafficError> {
        match self {
            TrafficKind::Uniform => TrafficPattern::uniform(topology, rate),
            TrafficKind::Transpose => TrafficPattern::transpose(topology, rate),
            TrafficKind::BitComplement => TrafficPattern::bit_complement(topology, rate),
            TrafficKind::Tornado => TrafficPattern::tornado(topology, rate),
            TrafficKind::Shuffle => TrafficPattern::shuffle(topology, rate),
            TrafficKind::BitReversal => TrafficPattern::bit_reversal(topology, rate),
        }
    }
}

/// Stable spec/record name of a [`FlowControl`].
pub fn flow_control_name(fc: FlowControl) -> &'static str {
    match fc {
        FlowControl::FlitLevel => "flit-level",
        FlowControl::CutThrough => "cut-through",
        FlowControl::Bubble => "bubble",
    }
}

/// Stable spec/record name of a [`VcDiscipline`].
pub fn vc_discipline_name(vd: VcDiscipline) -> &'static str {
    match vd {
        VcDiscipline::Unrestricted => "unrestricted",
        VcDiscipline::Dateline => "dateline",
        VcDiscipline::Escape => "escape",
    }
}

/// The paper's named preset configurations the grid can reference.
pub const PRESET_NAMES: [&str; 6] = ["wh64", "vc16", "vc64", "vc128", "xb", "cb"];

/// Looks up a configuration by its spec name: one of the paper's six
/// presets, or any parametric design-point name from the
/// [`crate::design`] grammar (`wh32`, `vc4x16-t8`, `cb128-n70`, …).
pub fn preset_config(name: &str) -> Option<NetworkConfig> {
    crate::design::paper_preset(name)
        .or_else(|| crate::design::DesignPoint::parse(name).map(|p| p.config()))
}

/// A validated experiment specification.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Experiment name: the artifact file stem.
    pub name: String,
    /// Free-form description.
    pub description: String,
    /// Measurement discipline applied to every cell.
    pub measure: MeasureSpec,
    /// Preset axis (paper configuration names).
    pub presets: Vec<String>,
    /// Traffic axis.
    pub traffic: Vec<TrafficKind>,
    /// Injection-rate axis (packets/cycle/node).
    pub rates: Vec<f64>,
    /// Workload seed axis.
    pub seeds: Vec<u64>,
    /// Flow-control override axis; `None` keeps preset defaults.
    pub flow_control: Option<Vec<FlowControl>>,
    /// VC-discipline override axis; `None` keeps preset defaults.
    pub vc_discipline: Option<Vec<VcDiscipline>>,
    /// Packet-length override axis; `None` keeps preset defaults.
    pub packet_len: Option<Vec<u32>>,
}

/// One point of the expanded grid: everything needed to simulate it,
/// plus its identity (key, fingerprint, derived seed).
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Preset name.
    pub preset: String,
    /// Traffic pattern.
    pub traffic: TrafficKind,
    /// Injection rate in packets/cycle/node.
    pub rate: f64,
    /// Spec-level seed (the seed axis value).
    pub seed: u64,
    /// Resolved flow control (after overrides).
    pub flow_control: FlowControl,
    /// Resolved VC discipline (after overrides).
    pub vc_discipline: VcDiscipline,
    /// Resolved packet length in flits (after overrides).
    pub packet_len: u32,
    /// Measurement discipline.
    pub measure: MeasureSpec,
}

impl Cell {
    /// The stable, sortable identity of this parameter point. Rates are
    /// fixed-width so lexicographic order is numeric order per axis.
    pub fn key(&self) -> String {
        format!(
            "{}/{}/r{:.6}/s{:010}/fc-{}/vd-{}/pl{:03}",
            self.preset,
            self.traffic.as_str(),
            self.rate,
            self.seed,
            flow_control_name(self.flow_control),
            vc_discipline_name(self.vc_discipline),
            self.packet_len,
        )
    }

    /// Content-address of this cell's *result*: a stable hash over the
    /// code-model version, the parameter point and the measurement
    /// discipline. Any change to either yields a different fingerprint
    /// and therefore a cache miss.
    pub fn fingerprint(&self) -> u64 {
        fnv1a64(
            format!(
                "{MODEL_VERSION}|{}|w{}|sp{}|mc{}|wd{}|ae{}",
                self.key(),
                self.measure.warmup,
                self.measure.sample_packets,
                self.measure.max_cycles,
                self.measure.watchdog_cycles,
                self.measure.audit_every,
            )
            .as_bytes(),
        )
    }

    /// The cell's RNG seed, derived from a stable hash of the parameter
    /// point — *not* from queue position or thread id — so an N-thread
    /// run is bit-identical to a 1-thread run.
    pub fn derived_seed(&self) -> u64 {
        splitmix64(fnv1a64(format!("seed|{}", self.key()).as_bytes()))
    }

    /// The resolved network configuration (preset plus overrides).
    pub fn config(&self) -> NetworkConfig {
        let cfg = preset_config(&self.preset).expect("validated preset");
        cfg.flow_control(self.flow_control)
            .vc_discipline(self.vc_discipline)
            .packet_len(self.packet_len)
    }
}

/// Spec-schema tables and keys (anything else is an [`SpecError::UnknownKey`]).
const SECTIONS: [&str; 4] = ["", "experiment", "measure", "grid"];
const EXPERIMENT_KEYS: [&str; 2] = ["name", "description"];
const MEASURE_KEYS: [&str; 5] = [
    "warmup",
    "sample_packets",
    "max_cycles",
    "watchdog_cycles",
    "audit_every",
];
const GRID_KEYS: [&str; 7] = [
    "presets",
    "traffic",
    "rates",
    "seeds",
    "flow_control",
    "vc_discipline",
    "packet_len",
];

fn wrong_type(
    section: &str,
    key: &str,
    expected: &'static str,
    value: &Value,
    line: usize,
) -> SpecError {
    SpecError::WrongType {
        section: section.to_string(),
        key: key.to_string(),
        expected,
        found: value.kind(),
        line,
    }
}

fn get_u64(doc: &Document, section: &str, key: &str, default: u64) -> Result<u64, SpecError> {
    match doc.get(section, key) {
        None => Ok(default),
        Some(e) => match &e.value {
            Value::Int(i) if *i >= 0 => Ok(*i as u64),
            v => Err(wrong_type(
                section,
                key,
                "a non-negative integer",
                v,
                e.line,
            )),
        },
    }
}

fn get_str(doc: &Document, section: &str, key: &str) -> Result<Option<(String, usize)>, SpecError> {
    match doc.get(section, key) {
        None => Ok(None),
        Some(e) => match &e.value {
            Value::Str(s) => Ok(Some((s.clone(), e.line))),
            v => Err(wrong_type(section, key, "a string", v, e.line)),
        },
    }
}

/// A string array axis; `None` when the key is absent.
fn get_str_array(
    doc: &Document,
    section: &str,
    key: &'static str,
) -> Result<Option<(Vec<String>, usize)>, SpecError> {
    match doc.get(section, key) {
        None => Ok(None),
        Some(e) => match &e.value {
            Value::Array(items) => {
                let mut out = Vec::new();
                for item in items {
                    match item {
                        Value::Str(s) => out.push(s.clone()),
                        v => {
                            return Err(wrong_type(section, key, "an array of strings", v, e.line))
                        }
                    }
                }
                Ok(Some((out, e.line)))
            }
            v => Err(wrong_type(section, key, "an array of strings", v, e.line)),
        },
    }
}

fn get_num_array(
    doc: &Document,
    section: &str,
    key: &'static str,
) -> Result<Option<(Vec<f64>, usize)>, SpecError> {
    match doc.get(section, key) {
        None => Ok(None),
        Some(e) => match &e.value {
            Value::Array(items) => {
                let mut out = Vec::new();
                for item in items {
                    match item {
                        Value::Int(i) => out.push(*i as f64),
                        Value::Float(f) => out.push(*f),
                        v => {
                            return Err(wrong_type(section, key, "an array of numbers", v, e.line))
                        }
                    }
                }
                Ok(Some((out, e.line)))
            }
            v => Err(wrong_type(section, key, "an array of numbers", v, e.line)),
        },
    }
}

fn get_int_array(
    doc: &Document,
    section: &str,
    key: &'static str,
) -> Result<Option<(Vec<i64>, usize)>, SpecError> {
    match doc.get(section, key) {
        None => Ok(None),
        Some(e) => match &e.value {
            Value::Array(items) => {
                let mut out = Vec::new();
                for item in items {
                    match item {
                        Value::Int(i) => out.push(*i),
                        v => {
                            return Err(wrong_type(section, key, "an array of integers", v, e.line))
                        }
                    }
                }
                Ok(Some((out, e.line)))
            }
            v => Err(wrong_type(section, key, "an array of integers", v, e.line)),
        },
    }
}

impl ExperimentSpec {
    /// Parses and validates a spec from TOML text.
    ///
    /// # Errors
    ///
    /// Returns the first [`SpecError`]: syntax errors with line
    /// numbers, schema violations (unknown sections/keys, wrong
    /// types), and semantic rejections (unknown presets, rates outside
    /// `[0, 1]`, empty axes).
    pub fn parse(text: &str) -> Result<ExperimentSpec, SpecError> {
        let doc = toml::parse(text)?;
        Self::from_document(doc)
    }

    /// Parses and validates a spec from raw bytes, as read from disk.
    ///
    /// Unlike `parse(std::str::from_utf8(..)?)`, invalid UTF-8 is
    /// reported as a line-numbered [`SpecError::Syntax`] pointing at
    /// the first bad byte, so spec diagnostics stay uniform even for
    /// files that are not text at all.
    ///
    /// # Errors
    ///
    /// Everything [`ExperimentSpec::parse`] returns, plus a syntax
    /// error for non-UTF-8 input.
    pub fn parse_bytes(bytes: &[u8]) -> Result<ExperimentSpec, SpecError> {
        let doc = toml::parse_bytes(bytes)?;
        Self::from_document(doc)
    }

    fn from_document(doc: Document) -> Result<ExperimentSpec, SpecError> {
        // Schema guard: every section and key must be known.
        for (section, entries) in &doc.sections {
            if !SECTIONS.contains(&section.as_str()) {
                return Err(SpecError::UnknownSection {
                    section: section.clone(),
                    line: doc.section_line(section),
                });
            }
            let allowed: &[&str] = match section.as_str() {
                "experiment" => &EXPERIMENT_KEYS,
                "measure" => &MEASURE_KEYS,
                "grid" => &GRID_KEYS,
                _ => &[],
            };
            for (key, entry) in entries {
                if !allowed.contains(&key.as_str()) {
                    return Err(SpecError::UnknownKey {
                        section: section.clone(),
                        key: key.clone(),
                        line: entry.line,
                    });
                }
            }
        }

        let (name, _) = get_str(&doc, "experiment", "name")?.ok_or(SpecError::MissingKey {
            section: "experiment".into(),
            key: "name".into(),
        })?;
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(SpecError::BadName { name });
        }
        let description = get_str(&doc, "experiment", "description")?
            .map(|(s, _)| s)
            .unwrap_or_default();

        let defaults = MeasureSpec::default();
        let measure = MeasureSpec {
            warmup: get_u64(&doc, "measure", "warmup", defaults.warmup)?,
            sample_packets: get_u64(&doc, "measure", "sample_packets", defaults.sample_packets)?,
            max_cycles: get_u64(&doc, "measure", "max_cycles", defaults.max_cycles)?,
            watchdog_cycles: get_u64(&doc, "measure", "watchdog_cycles", defaults.watchdog_cycles)?,
            audit_every: get_u64(&doc, "measure", "audit_every", defaults.audit_every)?,
        };

        let (presets, presets_line) =
            get_str_array(&doc, "grid", "presets")?.ok_or(SpecError::MissingKey {
                section: "grid".into(),
                key: "presets".into(),
            })?;
        if presets.is_empty() {
            return Err(SpecError::EmptyAxis { key: "presets" });
        }
        // Canonicalise every name through the design codec so aliases
        // (`vc8x8`) address the same cells — and cache entries — as the
        // canonical form (`vc64`).
        let presets = presets
            .iter()
            .map(|p| {
                crate::design::canonical_design_name(p).ok_or(SpecError::UnknownPreset {
                    name: p.clone(),
                    line: presets_line,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;

        let (rates, rates_line) =
            get_num_array(&doc, "grid", "rates")?.ok_or(SpecError::MissingKey {
                section: "grid".into(),
                key: "rates".into(),
            })?;
        if rates.is_empty() {
            return Err(SpecError::EmptyAxis { key: "rates" });
        }
        for &r in &rates {
            if !(0.0..=1.0).contains(&r) {
                return Err(SpecError::InvalidRate {
                    rate: r,
                    line: rates_line,
                });
            }
        }

        let seeds = match get_int_array(&doc, "grid", "seeds")? {
            None => vec![1u64],
            Some((v, line)) => {
                if v.is_empty() {
                    return Err(SpecError::EmptyAxis { key: "seeds" });
                }
                let mut out = Vec::new();
                for s in v {
                    if s < 0 {
                        return Err(SpecError::WrongType {
                            section: "grid".into(),
                            key: "seeds".into(),
                            expected: "an array of non-negative integers",
                            found: "integer",
                            line,
                        });
                    }
                    out.push(s as u64);
                }
                out
            }
        };

        let traffic = match get_str_array(&doc, "grid", "traffic")? {
            None => vec![TrafficKind::Uniform],
            Some((names, line)) => {
                if names.is_empty() {
                    return Err(SpecError::EmptyAxis { key: "traffic" });
                }
                names
                    .iter()
                    .map(|n| TrafficKind::from_str(n, line))
                    .collect::<Result<Vec<_>, _>>()?
            }
        };

        let flow_control = match get_str_array(&doc, "grid", "flow_control")? {
            None => None,
            Some((names, line)) => {
                if names.is_empty() {
                    return Err(SpecError::EmptyAxis {
                        key: "flow_control",
                    });
                }
                let mut out = Vec::new();
                for n in &names {
                    out.push(match n.as_str() {
                        "flit-level" => FlowControl::FlitLevel,
                        "cut-through" => FlowControl::CutThrough,
                        "bubble" => FlowControl::Bubble,
                        other => {
                            return Err(SpecError::UnknownFlowControl {
                                name: other.to_string(),
                                line,
                            })
                        }
                    });
                }
                Some(out)
            }
        };

        let vc_discipline = match get_str_array(&doc, "grid", "vc_discipline")? {
            None => None,
            Some((names, line)) => {
                if names.is_empty() {
                    return Err(SpecError::EmptyAxis {
                        key: "vc_discipline",
                    });
                }
                let mut out = Vec::new();
                for n in &names {
                    out.push(match n.as_str() {
                        "unrestricted" => VcDiscipline::Unrestricted,
                        "dateline" => VcDiscipline::Dateline,
                        "escape" => VcDiscipline::Escape,
                        other => {
                            return Err(SpecError::UnknownVcDiscipline {
                                name: other.to_string(),
                                line,
                            })
                        }
                    });
                }
                Some(out)
            }
        };

        let packet_len = match get_int_array(&doc, "grid", "packet_len")? {
            None => None,
            Some((v, line)) => {
                if v.is_empty() {
                    return Err(SpecError::EmptyAxis { key: "packet_len" });
                }
                let mut out = Vec::new();
                for p in v {
                    if p <= 0 {
                        return Err(SpecError::WrongType {
                            section: "grid".into(),
                            key: "packet_len".into(),
                            expected: "an array of positive integers",
                            found: "integer",
                            line,
                        });
                    }
                    out.push(p as u32);
                }
                Some(out)
            }
        };

        Ok(ExperimentSpec {
            name,
            description,
            measure,
            presets,
            traffic,
            rates,
            seeds,
            flow_control,
            vc_discipline,
            packet_len,
        })
    }

    /// The number of cells the grid expands to.
    pub fn grid_size(&self) -> usize {
        self.presets.len()
            * self.traffic.len()
            * self.rates.len()
            * self.seeds.len()
            * self.flow_control.as_ref().map_or(1, Vec::len)
            * self.vc_discipline.as_ref().map_or(1, Vec::len)
            * self.packet_len.as_ref().map_or(1, Vec::len)
    }

    /// Expands the cartesian grid into concrete cells, resolving
    /// override axes against each preset's defaults.
    pub fn expand(&self) -> Vec<Cell> {
        let mut cells = Vec::with_capacity(self.grid_size());
        for preset in &self.presets {
            let base = preset_config(preset).expect("validated preset");
            let fcs: Vec<FlowControl> = self
                .flow_control
                .clone()
                .unwrap_or_else(|| vec![base.flow_control]);
            let vds: Vec<VcDiscipline> = self
                .vc_discipline
                .clone()
                .unwrap_or_else(|| vec![base.vc_discipline]);
            let pls: Vec<u32> = self
                .packet_len
                .clone()
                .unwrap_or_else(|| vec![base.packet_len]);
            for &traffic in &self.traffic {
                for &rate in &self.rates {
                    for &seed in &self.seeds {
                        for &flow_control in &fcs {
                            for &vc_discipline in &vds {
                                for &packet_len in &pls {
                                    cells.push(Cell {
                                        preset: preset.clone(),
                                        traffic,
                                        rate,
                                        seed,
                                        flow_control,
                                        vc_discipline,
                                        packet_len,
                                        measure: self.measure,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"
[experiment]
name = "t"

[grid]
presets = ["vc16"]
rates = [0.02, 0.05]
"#;

    #[test]
    fn minimal_spec_defaults() {
        let spec = ExperimentSpec::parse(MINIMAL).unwrap();
        assert_eq!(spec.name, "t");
        assert_eq!(spec.measure, MeasureSpec::default());
        assert_eq!(spec.seeds, vec![1]);
        assert_eq!(spec.traffic, vec![TrafficKind::Uniform]);
        assert_eq!(spec.grid_size(), 2);
        let cells = spec.expand();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].packet_len, 5, "preset default resolved");
        assert_eq!(cells[0].flow_control, FlowControl::FlitLevel);
    }

    #[test]
    fn override_axes_multiply() {
        let spec = ExperimentSpec::parse(
            r#"
[experiment]
name = "fc"
[grid]
presets = ["wh64"]
rates = [0.02]
seeds = [1, 2]
flow_control = ["flit-level", "cut-through", "bubble"]
"#,
        )
        .unwrap();
        assert_eq!(spec.grid_size(), 6);
        let cells = spec.expand();
        assert_eq!(cells.len(), 6);
        assert!(cells.iter().any(|c| c.flow_control == FlowControl::Bubble));
    }

    #[test]
    fn cell_keys_are_stable_and_distinct() {
        let spec = ExperimentSpec::parse(MINIMAL).unwrap();
        let cells = spec.expand();
        assert_eq!(
            cells[0].key(),
            "vc16/uniform/r0.020000/s0000000001/fc-flit-level/vd-unrestricted/pl005"
        );
        assert_ne!(cells[0].key(), cells[1].key());
        assert_ne!(cells[0].fingerprint(), cells[1].fingerprint());
        assert_ne!(cells[0].derived_seed(), cells[1].derived_seed());
        // Identity is a pure function of the parameter point.
        let again = spec.expand();
        assert_eq!(again[0].fingerprint(), cells[0].fingerprint());
        assert_eq!(again[0].derived_seed(), cells[0].derived_seed());
    }

    #[test]
    fn fingerprint_tracks_measure_discipline() {
        let a = ExperimentSpec::parse(MINIMAL).unwrap();
        let mut b = a.clone();
        b.measure.sample_packets = 77;
        assert_ne!(
            a.expand()[0].fingerprint(),
            b.expand()[0].fingerprint(),
            "changing the measurement discipline must invalidate the cache"
        );
        let mut c = a.clone();
        c.measure.audit_every = 100;
        assert_ne!(
            a.expand()[0].fingerprint(),
            c.expand()[0].fingerprint(),
            "the audit period is part of the measurement discipline"
        );
    }

    #[test]
    fn audit_every_parses_from_measure_section() {
        let spec = ExperimentSpec::parse(
            "[experiment]\nname = \"t\"\n[measure]\naudit_every = 50\n\
             [grid]\npresets = [\"vc16\"]\nrates = [0.02]\n",
        )
        .unwrap();
        assert_eq!(spec.measure.audit_every, 50);
        assert_eq!(spec.expand()[0].measure.audit_every, 50);
    }

    #[test]
    fn typed_diagnostics() {
        let bad_preset =
            "\n[experiment]\nname = \"x\"\n[grid]\npresets = [\"hyper\"]\nrates = [0.1]\n";
        assert!(matches!(
            ExperimentSpec::parse(bad_preset),
            Err(SpecError::UnknownPreset { ref name, line: 5 }) if name == "hyper"
        ));

        let bad_rate = "[experiment]\nname = \"x\"\n[grid]\npresets = [\"vc16\"]\nrates = [1.5]\n";
        assert!(matches!(
            ExperimentSpec::parse(bad_rate),
            Err(SpecError::InvalidRate { rate, line: 5 }) if rate == 1.5
        ));

        let empty = "[experiment]\nname = \"x\"\n[grid]\npresets = [\"vc16\"]\nrates = []\n";
        assert!(matches!(
            ExperimentSpec::parse(empty),
            Err(SpecError::EmptyAxis { key: "rates" })
        ));

        let missing = "[grid]\npresets = [\"vc16\"]\nrates = [0.1]\n";
        assert!(matches!(
            ExperimentSpec::parse(missing),
            Err(SpecError::MissingKey { ref key, .. }) if key == "name"
        ));

        let typo = "[experiment]\nname = \"x\"\n[grid]\npresets = [\"vc16\"]\nrates = [0.1]\nraets = [0.2]\n";
        assert!(matches!(
            ExperimentSpec::parse(typo),
            Err(SpecError::UnknownKey { ref key, line: 6, .. }) if key == "raets"
        ));

        let section = "[experiment]\nname = \"x\"\n[gird]\npresets = [\"vc16\"]\n";
        assert!(matches!(
            ExperimentSpec::parse(section),
            Err(SpecError::UnknownSection { ref section, line: 3 }) if section == "gird"
        ));

        let wrong = "[experiment]\nname = \"x\"\n[grid]\npresets = \"vc16\"\nrates = [0.1]\n";
        assert!(matches!(
            ExperimentSpec::parse(wrong),
            Err(SpecError::WrongType { line: 4, .. })
        ));

        let syntax = "[experiment\nname = \"x\"\n";
        assert!(matches!(
            ExperimentSpec::parse(syntax),
            Err(SpecError::Syntax(ref e)) if e.line == 1
        ));

        let bad_name =
            "[experiment]\nname = \"a b\"\n[grid]\npresets = [\"vc16\"]\nrates = [0.1]\n";
        assert!(matches!(
            ExperimentSpec::parse(bad_name),
            Err(SpecError::BadName { .. })
        ));
    }

    #[test]
    fn errors_render_line_numbers() {
        let e = ExperimentSpec::parse("[grid]\npresets = [\"ghost\"]\nrates = [0.1]\n");
        // Missing name is reported before the preset check.
        assert!(e.unwrap_err().to_string().contains("name"));
        let e = ExperimentSpec::parse(
            "[experiment]\nname = \"x\"\n[grid]\npresets = [\"ghost\"]\nrates = [0.1]\n",
        )
        .unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("line 4") && msg.contains("ghost"), "{msg}");
    }

    #[test]
    fn traffic_axis_parses_all_kinds() {
        let spec = ExperimentSpec::parse(
            r#"
[experiment]
name = "t"
[grid]
presets = ["vc16"]
rates = [0.02]
traffic = ["uniform", "transpose", "bit-complement", "tornado", "shuffle", "bit-reversal"]
"#,
        )
        .unwrap();
        assert_eq!(spec.traffic.len(), 6);
        assert_eq!(spec.grid_size(), 6);
    }
}
