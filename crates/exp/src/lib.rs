//! Deterministic parallel experiment orchestration for the Orion
//! reproduction.
//!
//! The paper's case studies are grids: configurations × traffic ×
//! injection rates (Figures 5 and 7 are exactly such sweeps). This
//! crate turns those grids into *declarative specs* and runs them
//! through an engine with three properties the hand-written loops in
//! `orion-bench` could not offer:
//!
//! 1. **Determinism under parallelism** — every grid cell's RNG seed
//!    is derived from a stable hash of its parameter point, and
//!    results are merged in cell-key order, so an N-thread run is
//!    bit-identical to a 1-thread run ([`engine`], [`fingerprint`]).
//! 2. **Content-addressed caching** — each cell's result is stored
//!    under a fingerprint of the resolved configuration, measurement
//!    discipline and code-model version; re-running a spec simulates
//!    only new or invalidated cells ([`cache`]).
//! 3. **Versioned artifacts** — results land as JSONL and CSV with an
//!    explicit `schema_version`, sorted by cell key so repeated runs
//!    produce byte-identical files, written atomically so a killed run
//!    never leaves a torn file ([`record`], [`artifact`]).
//! 4. **Supervised execution** — a panicking cell is isolated,
//!    retried with deterministically reseeded RNGs and, failing that,
//!    quarantined as one `crashed` record instead of killing the grid;
//!    the cache directory is guarded by an exclusive lock and heals
//!    its own torn lines ([`engine`], [`cache`]).
//! 5. **Mid-run checkpoints** — with `checkpoint_every` set, each
//!    in-flight cell persists a versioned, checksummed snapshot every
//!    N cycles under `<cache_dir>/ckpt/`; a killed run resumes the
//!    cell from its last interval instead of cycle 0, bit-identically
//!    (`orion-ckpt`; compaction garbage-collects completed cells'
//!    checkpoints).
//!
//! # Example
//!
//! ```no_run
//! use orion_exp::{run_spec, EngineOptions, ExperimentSpec};
//!
//! let spec = ExperimentSpec::parse(r#"
//! [experiment]
//! name = "fig5-mini"
//!
//! [grid]
//! presets = ["wh64", "vc64"]
//! rates = [0.02, 0.06, 0.10]
//! "#)?;
//! let (records, summary) = run_spec(&spec, &EngineOptions {
//!     threads: 4,
//!     cache_dir: Some("cache".into()),
//!     progress: true,
//!     ..EngineOptions::default()
//! })?;
//! println!("{} cells, {} cached", summary.total, summary.cache_hits);
//! for r in &records {
//!     println!("{}: {:.1} cycles, {:.3} W", r.cell, r.avg_latency, r.total_power_w);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The spec format, fingerprinting and resume semantics are documented
//! in `docs/ORCHESTRATION.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod cache;
pub mod design;
pub mod engine;
pub mod fingerprint;
pub mod frontier;
pub mod inflight;
pub mod record;
pub mod runner;
pub mod spec;
pub mod toml;

pub use artifact::{write_artifacts, write_atomic, Artifacts};
pub use cache::{
    CacheAppender, CacheLock, LockMode, Manifest, ResultCache, CACHE_FILE, LOCK_FILE, MANIFEST_FILE,
};
pub use design::{canonical_design_name, DesignPoint, RouterFamily};
pub use engine::{run_cell, run_spec, EngineOptions, RunSummary};
pub use frontier::{FrontMember, InsertOutcome, Objectives, ParetoFront};
pub use inflight::{Claim, InflightMap, LeaderGuard};
pub use record::{CellRecord, SCHEMA_VERSION};
pub use runner::{CellRunner, RunnerStats, Supervision};
pub use spec::{Cell, ExperimentSpec, MeasureSpec, SpecError, TrafficKind};
