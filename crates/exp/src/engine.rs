//! The experiment engine: cache partition → deterministic parallel
//! simulation → sorted merge.
//!
//! Determinism contract: the record set produced by
//! [`run_spec`] is a pure function of the spec (and the code-model
//! version). Worker count, scheduling order and cache state change
//! only *wall-clock time and hit counts*, never results — each cell's
//! RNG is seeded from a hash of its parameter point, fresh records are
//! collected in grid order, and the merged output is sorted by cell
//! key before it is returned or written.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use orion_core::exec::par_map;
use orion_core::Experiment;

use crate::cache::ResultCache;
use crate::record::CellRecord;
use crate::spec::{Cell, ExperimentSpec};

/// Execution options for [`run_spec`].
#[derive(Debug, Clone, Default)]
pub struct EngineOptions {
    /// Worker threads (0 or 1 = run inline).
    pub threads: usize,
    /// Cache directory; `None` disables caching entirely.
    pub cache_dir: Option<PathBuf>,
    /// Emit a live progress line to stderr.
    pub progress: bool,
}

/// Accounting for one engine invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSummary {
    /// Cells in the expanded grid.
    pub total: usize,
    /// Cells actually simulated this run.
    pub simulated: usize,
    /// Cells served from the cache.
    pub cache_hits: usize,
    /// Cells whose configuration was rejected (outcome `"error"`).
    pub failed: usize,
    /// Unparseable cache lines skipped at load.
    pub corrupt_cache_lines: usize,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

/// Runs one cell to a record; never panics on configuration or
/// workload errors — they become `outcome: "error"` records.
pub fn run_cell(cell: &Cell) -> CellRecord {
    let config = cell.config();
    let pattern = match cell.traffic.pattern(&config.topology, cell.rate) {
        Ok(p) => p,
        Err(e) => return CellRecord::from_error(cell, &e.to_string()),
    };
    let result = Experiment::new(config)
        .workload(pattern)
        .seed(cell.derived_seed())
        .warmup(cell.measure.warmup)
        .sample_packets(cell.measure.sample_packets)
        .max_cycles(cell.measure.max_cycles)
        .watchdog_cycles(cell.measure.watchdog_cycles)
        .run();
    match result {
        Ok(report) => CellRecord::from_report(cell, &report),
        Err(e) => CellRecord::from_error(cell, &e.to_string()),
    }
}

/// Expands the spec's grid, serves cached cells, simulates the rest in
/// parallel, and returns all records **sorted by cell key** together
/// with hit/miss accounting.
///
/// # Errors
///
/// Returns an I/O error only for cache file problems (unreadable
/// existing cache, failed append). Simulation-level failures are data,
/// not errors: they come back as `outcome: "error"` records and are
/// counted in [`RunSummary::failed`].
pub fn run_spec(
    spec: &ExperimentSpec,
    opts: &EngineOptions,
) -> std::io::Result<(Vec<CellRecord>, RunSummary)> {
    let start = Instant::now();
    let cells = spec.expand();
    let total = cells.len();

    let cache = match &opts.cache_dir {
        Some(dir) => Some(ResultCache::open(dir)?),
        None => None,
    };
    let corrupt_cache_lines = cache.as_ref().map_or(0, ResultCache::corrupt_lines);

    // Partition the grid: cached cells are done, the rest simulate.
    let mut records: Vec<CellRecord> = Vec::with_capacity(total);
    let mut misses: Vec<Cell> = Vec::new();
    for cell in cells {
        match cache.as_ref().and_then(|c| c.get(cell.fingerprint())) {
            Some(hit) => records.push(hit.clone()),
            None => misses.push(cell),
        }
    }
    let cache_hits = records.len();
    let simulated = misses.len();

    let appender = match &cache {
        Some(c) if simulated > 0 => Some(Mutex::new(c.appender()?)),
        _ => None,
    };
    let append_error: Mutex<Option<std::io::Error>> = Mutex::new(None);
    let done = AtomicUsize::new(0);
    let progress = |finished: usize| {
        if opts.progress {
            let secs = start.elapsed().as_secs_f64().max(1e-9);
            eprint!(
                "\r[{}] {}/{} cells ({} cached), {:.1} cells/s   ",
                spec.name,
                cache_hits + finished,
                total,
                cache_hits,
                finished as f64 / secs,
            );
        }
    };
    progress(0);

    let fresh = par_map(opts.threads, misses, |cell| {
        let record = run_cell(&cell);
        if let Some(app) = &appender {
            if let Err(e) = app.lock().unwrap().append(&record) {
                append_error.lock().unwrap().get_or_insert(e);
            }
        }
        progress(done.fetch_add(1, Ordering::Relaxed) + 1);
        record
    });
    if opts.progress {
        eprintln!();
    }
    if let Some(e) = append_error.into_inner().unwrap() {
        return Err(e);
    }

    records.extend(fresh);
    records.sort_by(|a, b| a.cell.cmp(&b.cell));
    let failed = records.iter().filter(|r| r.is_error()).count();

    Ok((
        records,
        RunSummary {
            total,
            simulated,
            cache_hits,
            failed,
            corrupt_cache_lines,
            elapsed: start.elapsed(),
        },
    ))
}
