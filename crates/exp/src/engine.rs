//! The experiment engine: cache partition → supervised deterministic
//! parallel simulation → sorted merge.
//!
//! Determinism contract: the record set produced by
//! [`run_spec`] is a pure function of the spec (and the code-model
//! version). Worker count, scheduling order and cache state change
//! only *wall-clock time and hit counts*, never results — each cell's
//! RNG is seeded from a hash of its parameter point, fresh records are
//! collected in grid order, and the merged output is sorted by cell
//! key before it is returned or written.
//!
//! Supervision contract: one misbehaving cell never kills the grid.
//! Panicking cells are isolated per-item ([`try_par_map`]), retried a
//! bounded number of times with deterministically reseeded RNGs, and
//! quarantined as `crashed` records when every attempt fails; cells
//! that overrun their wall-clock budget are classified `timed-out`.
//! Quarantine records are **not** cached — only genuine simulation
//! results are — so a fixed build retries them automatically.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use orion_ckpt::{checkpoint_path, run_checkpointed, CheckpointOptions};
use orion_core::exec::try_par_map;
use orion_core::{Experiment, RunResult};

use crate::cache::{CacheLock, Manifest, ResultCache};
use crate::fingerprint::splitmix64;
use crate::record::CellRecord;
use crate::spec::{Cell, ExperimentSpec};

/// Execution options for [`run_spec`].
#[derive(Debug, Clone, Default)]
pub struct EngineOptions {
    /// Worker threads (0 or 1 = run inline).
    pub threads: usize,
    /// Cache directory; `None` disables caching entirely.
    pub cache_dir: Option<PathBuf>,
    /// Emit a live progress line to stderr.
    pub progress: bool,
    /// Extra attempts granted to a panicking cell (0 = fail fast).
    /// Attempt `k > 0` reruns with a deterministically reseeded RNG —
    /// `splitmix64(derived_seed ^ k)` — and the seed actually used is
    /// recorded in the cell's `derived_seed` field for replayability.
    pub max_retries: u32,
    /// Wall-clock budget per cell attempt; overruns are classified
    /// `timed-out` post-hoc (a running cell cannot be preempted).
    /// `None` disables the budget.
    pub cell_timeout: Option<Duration>,
    /// Fault-injection hook for supervision tests: cells whose key
    /// contains this substring panic on every attempt; with a
    /// `once:` prefix, only the first attempt panics (exercising the
    /// retry path). `None` — the production default — injects nothing.
    pub poison: Option<String>,
    /// Persist a mid-run checkpoint of each in-flight cell every this
    /// many cycles (0 = off). Requires a cache directory — checkpoints
    /// live at `<cache_dir>/ckpt/<fingerprint>.ckpt` — and makes a
    /// killed run replay the in-flight cell from its last interval
    /// instead of cycle 0. Results are bit-identical either way.
    pub checkpoint_every: u64,
    /// Shards per cell engine (`orion-shard`; 0 or 1 = monolithic).
    /// Results are bit-identical at every shard count, so this knob is
    /// deliberately **outside** the cell fingerprint: a cache written
    /// at one shard count serves every other.
    pub shards: usize,
}

/// Accounting for one engine invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSummary {
    /// Cells in the expanded grid.
    pub total: usize,
    /// Cells actually simulated this run.
    pub simulated: usize,
    /// Cells served from the cache.
    pub cache_hits: usize,
    /// Cells whose configuration was rejected (outcome `"error"`).
    pub failed: usize,
    /// Cells quarantined after panicking on every attempt.
    pub crashed: usize,
    /// Cells that exceeded the wall-clock budget.
    pub timed_out: usize,
    /// Cells that succeeded only after at least one retry.
    pub retried: usize,
    /// Cells whose runtime invariant audit failed (`corrupted`).
    pub corrupted: usize,
    /// Unparseable cache lines skipped at load.
    pub corrupt_cache_lines: usize,
    /// Records that could not be appended to the cache because the
    /// sink broke mid-run (appending stops at the first failure; every
    /// subsequently skipped record is counted here too).
    pub append_failures: usize,
    /// First cache-append error message, when any append failed.
    pub append_error: Option<String>,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl RunSummary {
    /// Whether any cell was quarantined or failed — the condition the
    /// CLI maps to its degraded exit code.
    pub fn is_degraded(&self) -> bool {
        self.failed > 0 || self.crashed > 0 || self.timed_out > 0 || self.corrupted > 0
    }
}

/// Runs one cell to a record; never panics on configuration or
/// workload errors — they become `outcome: "error"` records.
pub fn run_cell(cell: &Cell) -> CellRecord {
    run_cell_seeded(cell, cell.derived_seed(), 1)
}

/// Builds the configured [`Experiment`] for one cell and seed, or the
/// workload-rejection message.
fn cell_experiment(cell: &Cell, seed: u64, shards: usize) -> Result<Experiment, String> {
    let config = cell.config();
    let pattern = cell
        .traffic
        .pattern(&config.topology, cell.rate)
        .map_err(|e| e.to_string())?;
    Ok(Experiment::new(config)
        .workload(pattern)
        .seed(seed)
        .warmup(cell.measure.warmup)
        .sample_packets(cell.measure.sample_packets)
        .max_cycles(cell.measure.max_cycles)
        .watchdog_cycles(cell.measure.watchdog_cycles)
        .audit_every(cell.measure.audit_every)
        .shards(shards.max(1)))
}

/// Runs one cell with an explicit RNG seed (retry attempts use
/// reseeded RNGs; the record carries the seed actually used).
pub(crate) fn run_cell_seeded(cell: &Cell, seed: u64, shards: usize) -> CellRecord {
    let mut record = match cell_experiment(cell, seed, shards) {
        Ok(exp) => match exp.run() {
            Ok(report) => CellRecord::from_report(cell, &report),
            Err(e) => CellRecord::from_error(cell, &e.to_string()),
        },
        Err(e) => CellRecord::from_error(cell, &e),
    };
    record.derived_seed = seed;
    record
}

/// Checkpointed variant of [`run_cell_seeded`]: resumes from a valid
/// leftover checkpoint at `<cache_dir>/ckpt/<fingerprint>.ckpt` (any
/// corruption degrades to a cycle-0 replay), persists the in-flight
/// state every `every` cycles, and stops at the next boundary when
/// `cancel` is raised (graceful drain — the cell comes back as a
/// `drained` record, never cached, resumable by the next run).
pub(crate) fn run_cell_checkpointed(
    cell: &Cell,
    seed: u64,
    cache_dir: &Path,
    every: u64,
    cancel: Option<Arc<AtomicBool>>,
    shards: usize,
) -> CellRecord {
    let mut record = match cell_experiment(cell, seed, shards) {
        Ok(exp) => {
            let opts = CheckpointOptions {
                path: checkpoint_path(cache_dir, cell.fingerprint()),
                fingerprint: cell.fingerprint(),
                every,
                cancel,
            };
            match run_checkpointed(exp, &opts) {
                Ok(out) => match out.result {
                    RunResult::Finished(report) => {
                        let mut r = CellRecord::from_report(cell, &report);
                        r.resumed_from_cycle = out.resumed_from_cycle;
                        r.checkpoints_written = out.checkpoints_written;
                        r
                    }
                    RunResult::Aborted(ck) => {
                        let mut r = CellRecord::from_drain(cell, ck.cycle);
                        r.resumed_from_cycle = out.resumed_from_cycle;
                        r.checkpoints_written = out.checkpoints_written;
                        r
                    }
                },
                Err(e) => CellRecord::from_error(cell, &e.to_string()),
            }
        }
        Err(e) => CellRecord::from_error(cell, &e),
    };
    record.derived_seed = seed;
    record
}

/// The RNG seed for retry attempt `k` (attempt 0 is the cell's
/// derived seed). Deterministic, so a retried cell's record is
/// reproducible from its recorded seed alone.
pub(crate) fn retry_seed(derived_seed: u64, attempt: u32) -> u64 {
    if attempt == 0 {
        derived_seed
    } else {
        splitmix64(derived_seed ^ u64::from(attempt))
    }
}

/// Whether the poison hook fires for this cell and attempt.
pub(crate) fn poison_matches(poison: Option<&str>, cell: &Cell, attempt: u32) -> bool {
    let Some(p) = poison else { return false };
    let (once, pat) = match p.strip_prefix("once:") {
        Some(rest) => (true, rest),
        None => (false, p),
    };
    !pat.is_empty() && cell.key().contains(pat) && (!once || attempt == 0)
}

/// Expands the spec's grid, serves cached cells, simulates the rest in
/// parallel under per-cell supervision, and returns all records
/// **sorted by cell key** together with hit/miss and quarantine
/// accounting.
///
/// # Errors
///
/// Returns an I/O error only for cache *setup* problems: a held lock
/// ([`std::io::ErrorKind::AlreadyExists`]), or an unreadable existing
/// cache. Simulation-level failures are data, not errors (`"error"`,
/// `"crashed"`, `"timed-out"` records counted in the summary), and a
/// cache append that fails mid-run degrades to
/// [`RunSummary::append_failures`] rather than aborting the grid.
pub fn run_spec(
    spec: &ExperimentSpec,
    opts: &EngineOptions,
) -> std::io::Result<(Vec<CellRecord>, RunSummary)> {
    let start = Instant::now();
    let cells = spec.expand();
    let total = cells.len();

    // Partition the grid against the cache: cached cells are done, the
    // rest simulate. Closure so the shared→exclusive upgrade below can
    // re-partition against a re-opened cache.
    let partition = |cache: Option<&ResultCache>, cells: &[Cell]| {
        let mut records: Vec<CellRecord> = Vec::with_capacity(cells.len());
        let mut misses: Vec<Cell> = Vec::new();
        for cell in cells {
            match cache.and_then(|c| c.get(cell.fingerprint())) {
                Some(hit) => records.push(hit.clone()),
                None => misses.push(cell.clone()),
            }
        }
        (records, misses)
    };

    // Lock the cache directory for the duration of the run. A fully
    // cached, already-healed run only *reads*, so it takes a shared
    // lock and can proceed beside other readers (concurrent clients
    // replaying a finished grid). Anything that must write — fresh
    // cells, torn-line compaction — upgrades to the exclusive writer
    // lock, re-opening the cache because entries may have changed
    // between the two acquisitions.
    let mut _lock: Option<CacheLock> = None;
    let mut cache: Option<ResultCache> = None;
    let (mut records, mut misses) = partition(None, &cells);
    if let Some(dir) = &opts.cache_dir {
        let shared = CacheLock::acquire_shared(dir)?;
        let read_cache = ResultCache::open(dir)?;
        let (recs, miss) = partition(Some(&read_cache), &cells);
        if miss.is_empty() && !read_cache.needs_compaction() {
            (records, misses) = (recs, miss);
            (_lock, cache) = (Some(shared), Some(read_cache));
        } else {
            drop(shared);
            let exclusive = CacheLock::acquire(dir)?;
            let write_cache = ResultCache::open(dir)?;
            // Heal debris a killed run left behind (torn final line,
            // superseded duplicates) before appending more.
            write_cache.compact()?;
            (records, misses) = partition(Some(&write_cache), &cells);
            (_lock, cache) = (Some(exclusive), Some(write_cache));
        }
    }
    let corrupt_cache_lines = cache.as_ref().map_or(0, ResultCache::corrupt_lines);
    let cache_hits = records.len();
    let simulated = misses.len();

    let appender = match &cache {
        Some(c) if simulated > 0 => Some(Mutex::new(c.appender()?)),
        _ => None,
    };
    let sink_broken = AtomicBool::new(false);
    let append_failures = AtomicUsize::new(0);
    let append_error: Mutex<Option<String>> = Mutex::new(None);
    let done = AtomicUsize::new(0);
    let progress = |finished: usize| {
        if opts.progress {
            let secs = start.elapsed().as_secs_f64().max(1e-9);
            eprint!(
                "\r[{}] {}/{} cells ({} cached), {:.1} cells/s   ",
                spec.name,
                cache_hits + finished,
                total,
                cache_hits,
                finished as f64 / secs,
            );
        }
    };
    progress(0);

    // Supervised rounds: attempt 0 runs every miss; each later round
    // reruns only the cells that panicked, reseeded, up to
    // `max_retries` times. `try_par_map` isolates panics per item, so
    // one poisoned cell cannot take down its worker's whole share.
    let mut pending = misses;
    let mut attempt: u32 = 0;
    loop {
        let cells_this_round = pending.clone();
        let results = try_par_map(opts.threads, pending, |cell| {
            if poison_matches(opts.poison.as_deref(), &cell, attempt) {
                panic!("poison hook: injected panic for cell {}", cell.key());
            }
            let attempt_start = Instant::now();
            let seed = retry_seed(cell.derived_seed(), attempt);
            // Checkpointing covers attempt 0 only: retries reseed the
            // RNG, and a snapshot persisted under the original seed
            // must never be resumed into a differently-seeded replay.
            let mut record = match &opts.cache_dir {
                Some(dir) if opts.checkpoint_every > 0 && attempt == 0 => run_cell_checkpointed(
                    &cell,
                    seed,
                    dir,
                    opts.checkpoint_every,
                    None,
                    opts.shards,
                ),
                _ => run_cell_seeded(&cell, seed, opts.shards),
            };
            let elapsed = attempt_start.elapsed();
            record.attempts = attempt + 1;
            if attempt > 0 {
                record.cell_outcome = "retried".to_string();
            }
            if let Some(budget) = opts.cell_timeout {
                if elapsed > budget {
                    record = CellRecord::from_timeout(
                        &cell,
                        budget.as_millis() as u64,
                        elapsed.as_millis() as u64,
                        attempt + 1,
                    );
                }
            }
            // Quarantine verdicts are wall-clock-dependent and
            // drained cells are incomplete — neither is cached;
            // genuine results are made durable immediately.
            if !record.is_timed_out() && !record.is_drained() {
                if let Some(app) = &appender {
                    if sink_broken.load(Ordering::Relaxed) {
                        append_failures.fetch_add(1, Ordering::Relaxed);
                    } else if let Err(e) = app.lock().unwrap().append(&record) {
                        sink_broken.store(true, Ordering::Relaxed);
                        append_failures.fetch_add(1, Ordering::Relaxed);
                        append_error.lock().unwrap().get_or_insert(e.to_string());
                    }
                }
            }
            progress(done.fetch_add(1, Ordering::Relaxed) + 1);
            record
        });

        let mut next = Vec::new();
        for (cell, result) in cells_this_round.into_iter().zip(results) {
            match result {
                Ok(record) => records.push(record),
                Err(_) if attempt < opts.max_retries => next.push(cell),
                Err(panic_msg) => {
                    progress(done.fetch_add(1, Ordering::Relaxed) + 1);
                    records.push(CellRecord::from_crash(&cell, &panic_msg, attempt + 1));
                }
            }
        }
        if next.is_empty() {
            break;
        }
        pending = next;
        attempt += 1;
    }
    if opts.progress {
        eprintln!();
    }

    records.sort_by(|a, b| a.cell.cmp(&b.cell));
    let failed = records.iter().filter(|r| r.is_error()).count();
    let crashed = records.iter().filter(|r| r.is_crashed()).count();
    let timed_out = records.iter().filter(|r| r.is_timed_out()).count();
    let retried = records
        .iter()
        .filter(|r| r.cell_outcome == "retried")
        .count();
    let corrupted = records.iter().filter(|r| r.outcome == "corrupted").count();

    if let Some(dir) = &opts.cache_dir {
        // Reporting-only progress marker; the cache contents, not the
        // manifest, decide what a resumed run re-simulates.
        let _ = Manifest {
            spec_name: spec.name.clone(),
            total_cells: total,
            completed_cells: total - crashed - timed_out,
        }
        .write(dir);
    }

    Ok((
        records,
        RunSummary {
            total,
            simulated,
            cache_hits,
            failed,
            crashed,
            timed_out,
            retried,
            corrupted,
            corrupt_cache_lines,
            append_failures: append_failures.into_inner(),
            append_error: append_error.into_inner().unwrap(),
            elapsed: start.elapsed(),
        },
    ))
}
