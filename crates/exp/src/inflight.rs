//! Fingerprint-keyed in-flight deduplication: when identical cells are
//! requested concurrently (many clients of one serving daemon
//! submitting overlapping grids), exactly one execution runs and every
//! other requester waits for — and shares — its record.
//!
//! The map hands out two roles per fingerprint:
//!
//! * **Leader** — the first claimant. It owns the execution and must
//!   [`publish`](LeaderGuard::publish) the finished record (or drop the
//!   guard, which aborts the flight and lets a waiter take over).
//! * **Follower** — every later claimant while the flight is open. It
//!   blocks in [`InflightMap::claim`] until the leader publishes, then
//!   receives a clone of the record.
//!
//! Leader crashes are survivable by construction: the guard's `Drop`
//! marks the flight aborted and wakes all followers, whose `claim`
//! retries — one of them becomes the new leader. A panicking leader
//! therefore costs retries, never a deadlock.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use crate::record::CellRecord;

/// The outcome of [`InflightMap::claim`]: run it yourself, or someone
/// else already did.
#[derive(Debug)]
pub enum Claim<'a> {
    /// You are the leader: execute the cell, then
    /// [`publish`](LeaderGuard::publish) the record.
    Lead(LeaderGuard<'a>),
    /// A concurrent leader executed the cell; here is its record
    /// (boxed to keep the enum small next to the slim guard).
    Shared(Box<CellRecord>),
}

/// One open flight: the slot the leader publishes into plus the
/// condition variable followers sleep on.
#[derive(Debug, Default)]
struct Flight {
    state: Mutex<FlightState>,
    done: Condvar,
}

#[derive(Debug, Default)]
enum FlightState {
    /// Leader still executing.
    #[default]
    Running,
    /// Leader published; followers clone this.
    Done(Box<CellRecord>),
    /// Leader dropped without publishing (panicked past its guard);
    /// followers re-claim.
    Aborted,
}

/// The fingerprint-keyed map of open flights. Cheaply clonable via
/// interior `Arc`s is deliberately *not* offered — hold it in an
/// `Arc` yourself and share that.
#[derive(Debug, Default)]
pub struct InflightMap {
    open: Mutex<HashMap<u64, Arc<Flight>>>,
}

impl InflightMap {
    /// Creates an empty map.
    pub fn new() -> InflightMap {
        InflightMap::default()
    }

    /// Claims `fingerprint`. The first concurrent claimant becomes the
    /// leader and gets a [`LeaderGuard`]; everyone else blocks until
    /// the leader publishes and gets the shared record. If a leader
    /// aborts (guard dropped without publishing), one waiter is
    /// promoted to leader transparently.
    pub fn claim(&self, fingerprint: u64) -> Claim<'_> {
        loop {
            let flight = {
                let mut open = lock_unpoisoned(&self.open);
                match open.get(&fingerprint) {
                    Some(flight) => Arc::clone(flight),
                    None => {
                        let flight = Arc::new(Flight::default());
                        open.insert(fingerprint, Arc::clone(&flight));
                        return Claim::Lead(LeaderGuard {
                            map: self,
                            fingerprint,
                            flight,
                            published: false,
                        });
                    }
                }
            };
            let mut state = lock_unpoisoned(&flight.state);
            loop {
                match &*state {
                    FlightState::Running => {
                        state = match flight.done.wait(state) {
                            Ok(s) => s,
                            Err(poisoned) => poisoned.into_inner(),
                        };
                    }
                    FlightState::Done(record) => return Claim::Shared(record.clone()),
                    // Leader died: drop the flight handle and race to
                    // re-claim (the aborted entry is already removed
                    // from the map by the guard's Drop).
                    FlightState::Aborted => break,
                }
            }
        }
    }

    /// Number of currently open flights (leaders executing).
    pub fn open_flights(&self) -> usize {
        lock_unpoisoned(&self.open).len()
    }
}

/// Locks a mutex, recovering the inner data from poisoning: flights
/// carry plain data whose invariants hold at every await point, and a
/// poisoned map would otherwise wedge every future claimant.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Leadership of one flight. Publish the finished record, or drop to
/// abort (waking followers so one can take over).
#[derive(Debug)]
pub struct LeaderGuard<'a> {
    map: &'a InflightMap,
    fingerprint: u64,
    flight: Arc<Flight>,
    published: bool,
}

impl LeaderGuard<'_> {
    /// Publishes the record to every follower and closes the flight.
    pub fn publish(mut self, record: &CellRecord) {
        self.published = true;
        self.close(FlightState::Done(Box::new(record.clone())));
    }

    fn close(&self, terminal: FlightState) {
        // Remove the flight *before* waking followers: claimants that
        // arrive from here on start a fresh flight instead of joining
        // a closed one.
        lock_unpoisoned(&self.map.open).remove(&self.fingerprint);
        *lock_unpoisoned(&self.flight.state) = terminal;
        self.flight.done.notify_all();
    }
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if !self.published {
            self.close(FlightState::Aborted);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::CellRecord;
    use crate::spec::ExperimentSpec;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn sample_record() -> CellRecord {
        let cell = ExperimentSpec::parse(
            "[experiment]\nname = \"t\"\n[grid]\npresets = [\"vc16\"]\nrates = [0.05]\n",
        )
        .unwrap()
        .expand()
        .remove(0);
        CellRecord::from_error(&cell, "placeholder")
    }

    #[test]
    fn first_claim_leads_and_publishes_to_followers() {
        let map = Arc::new(InflightMap::new());
        let record = sample_record();
        let fp = record.fingerprint;

        let Claim::Lead(guard) = map.claim(fp) else {
            panic!("first claim must lead");
        };
        assert_eq!(map.open_flights(), 1);

        let executions = Arc::new(AtomicUsize::new(0));
        let followers: Vec<_> = (0..4)
            .map(|_| {
                let (map, executions) = (Arc::clone(&map), Arc::clone(&executions));
                std::thread::spawn(move || match map.claim(fp) {
                    Claim::Lead(_) => {
                        executions.fetch_add(1, Ordering::SeqCst);
                        None
                    }
                    Claim::Shared(rec) => Some(rec),
                })
            })
            .collect();
        // Give followers time to block, then publish.
        std::thread::sleep(std::time::Duration::from_millis(20));
        guard.publish(&record);

        for f in followers {
            let got = f.join().unwrap().expect("followers share, never lead");
            // NaN-bearing fields defeat `==`; serialized form is total.
            assert_eq!(got.to_json_line(), record.to_json_line());
        }
        assert_eq!(executions.load(Ordering::SeqCst), 0);
        assert_eq!(map.open_flights(), 0, "flight closed after publish");
    }

    #[test]
    fn distinct_fingerprints_do_not_interfere() {
        let map = InflightMap::new();
        let Claim::Lead(a) = map.claim(1) else {
            panic!("lead 1")
        };
        let Claim::Lead(b) = map.claim(2) else {
            panic!("lead 2")
        };
        assert_eq!(map.open_flights(), 2);
        a.publish(&sample_record());
        b.publish(&sample_record());
        assert_eq!(map.open_flights(), 0);
    }

    #[test]
    fn aborted_leader_promotes_a_waiter() {
        let map = Arc::new(InflightMap::new());
        let fp = 42u64;
        let Claim::Lead(guard) = map.claim(fp) else {
            panic!("first claim must lead");
        };
        let map2 = Arc::clone(&map);
        let follower = std::thread::spawn(move || match map2.claim(fp) {
            Claim::Lead(new_leader) => {
                new_leader.publish(&sample_record());
                true
            }
            Claim::Shared(_) => false,
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(guard); // leader dies without publishing
        assert!(
            follower.join().unwrap(),
            "nobody published; the waiter must lead"
        );
        assert_eq!(map.open_flights(), 0);
    }

    #[test]
    fn sequential_claims_after_publish_start_fresh_flights() {
        let map = InflightMap::new();
        let record = sample_record();
        let Claim::Lead(g) = map.claim(7) else {
            panic!("lead")
        };
        g.publish(&record);
        // The flight closed; a later claim must re-lead (the caller is
        // expected to consult the result cache first).
        assert!(matches!(map.claim(7), Claim::Lead(_)));
    }
}
