//! A re-entrant, shareable cell executor: the serving counterpart of
//! the batch engine in [`crate::engine`].
//!
//! [`run_spec`](crate::run_spec) owns a whole grid from start to
//! finish; a long-lived daemon instead receives cells continuously
//! from many concurrent clients. [`CellRunner`] serves that shape:
//!
//! * **One writer, many callers** — the runner holds the cache
//!   directory's exclusive writer lock for its whole lifetime and is
//!   safe to call from any number of threads.
//! * **Content-addressed memory** — results load from the on-disk
//!   cache at open and accumulate in memory; every later request for
//!   the same fingerprint is a hit.
//! * **In-flight dedup** — concurrent requests for the same
//!   fingerprint collapse into one execution via [`InflightMap`]:
//!   one leader simulates, every follower shares the record.
//! * **Supervision** — panicking cells retry with deterministically
//!   reseeded RNGs and quarantine as `crashed` records; wall-clock
//!   overruns classify as `timed-out`. Quarantine verdicts are never
//!   cached, matching the batch engine.
//!
//! Determinism: records are a pure function of the cell (seeds derive
//! from the cell key), so a runner shared by N racing clients yields
//! byte-identical records to N sequential `run_spec` calls — with the
//! overlap simulated exactly once.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use crate::cache::{CacheAppender, CacheLock, ResultCache};
use crate::engine::{poison_matches, retry_seed, run_cell_checkpointed, run_cell_seeded};
use crate::inflight::{Claim, InflightMap};
use crate::record::CellRecord;
use crate::spec::Cell;

/// Per-request supervision knobs, mirroring the batch engine's
/// `--retries` / `--cell-timeout-ms` semantics.
#[derive(Debug, Clone, Default)]
pub struct Supervision {
    /// Extra attempts granted to a panicking cell (0 = fail fast).
    pub max_retries: u32,
    /// Wall-clock budget per attempt; overruns classify `timed-out`
    /// post-hoc. `None` disables the budget.
    pub cell_timeout: Option<Duration>,
    /// Fault-injection hook (tests/CI only): cells whose key contains
    /// this substring panic; a `once:` prefix restricts the injection
    /// to attempt 0, exercising the retry path.
    pub poison: Option<String>,
    /// Persist a mid-run checkpoint of each executing cell every this
    /// many cycles (0 = off). Requires the runner to have a cache
    /// directory. Besides crash durability, this is what makes a
    /// graceful drain ([`CellRunner::request_drain`]) able to stop
    /// in-flight cells at a resumable boundary.
    pub checkpoint_every: u64,
    /// Shards per cell engine (`orion-shard`; 0 or 1 = monolithic).
    /// Bit-identical results at every count, so records and
    /// fingerprints are shard-agnostic.
    pub shards: usize,
}

/// Monotonic accounting over a runner's lifetime. Snapshot via
/// [`CellRunner::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunnerStats {
    /// Requests answered from memory (disk cache or earlier run).
    pub cache_hits: u64,
    /// Cells actually simulated (each distinct execution counts once,
    /// however many requesters shared it).
    pub executed: u64,
    /// Requests that shared a concurrent in-flight execution.
    pub deduped: u64,
    /// Executions quarantined after panicking on every attempt.
    pub crashed: u64,
    /// Executions that exceeded their wall-clock budget.
    pub timed_out: u64,
    /// Executions that succeeded only after at least one retry.
    pub retried: u64,
    /// Executions whose configuration was rejected (`"error"`).
    pub failed: u64,
    /// Records that could not be appended to the disk cache.
    pub append_failures: u64,
    /// Executions stopped at a checkpoint boundary by a drain.
    pub drained: u64,
    /// Executions that resumed from a persisted checkpoint.
    pub resumed: u64,
    /// Mid-run checkpoints persisted across all executions.
    pub checkpoints_written: u64,
}

#[derive(Debug, Default)]
struct Counters {
    cache_hits: AtomicU64,
    executed: AtomicU64,
    deduped: AtomicU64,
    crashed: AtomicU64,
    timed_out: AtomicU64,
    retried: AtomicU64,
    failed: AtomicU64,
    append_failures: AtomicU64,
    drained: AtomicU64,
    resumed: AtomicU64,
    checkpoints_written: AtomicU64,
}

/// The shared executor. See the module docs for the contract.
#[derive(Debug)]
pub struct CellRunner {
    /// Held from open until [`flush`](Self::flush) or drop; `None`
    /// without a cache directory (pure in-memory dedup).
    lock: Mutex<Option<CacheLock>>,
    cache_dir: Option<PathBuf>,
    entries: RwLock<HashMap<u64, CellRecord>>,
    appender: Mutex<Option<CacheAppender>>,
    append_error: Mutex<Option<String>>,
    inflight: InflightMap,
    counters: Counters,
    /// Raised by [`request_drain`](Self::request_drain); checkpointed
    /// executions observe it at their next checkpoint boundary.
    draining: Arc<AtomicBool>,
}

impl CellRunner {
    /// Opens a runner over `cache_dir` (or a cache-less one for
    /// `None`): acquires the exclusive writer lock, loads and heals
    /// the cache, and readies the append sink.
    ///
    /// # Errors
    ///
    /// [`std::io::ErrorKind::AlreadyExists`] when another live run
    /// holds the directory; other I/O errors from reading or healing
    /// the cache.
    pub fn open(cache_dir: Option<&Path>) -> std::io::Result<CellRunner> {
        let (lock, entries, appender) = match cache_dir {
            Some(dir) => {
                let lock = CacheLock::acquire(dir)?;
                let cache = ResultCache::open(dir)?;
                cache.compact()?;
                let appender = cache.appender()?;
                let map = cache.entries().map(|(fp, rec)| (fp, rec.clone())).collect();
                (Some(lock), map, Some(appender))
            }
            None => (None, HashMap::new(), None),
        };
        Ok(CellRunner {
            lock: Mutex::new(lock),
            cache_dir: cache_dir.map(Path::to_path_buf),
            entries: RwLock::new(entries),
            appender: Mutex::new(appender),
            append_error: Mutex::new(None),
            inflight: InflightMap::new(),
            counters: Counters::default(),
            draining: Arc::new(AtomicBool::new(false)),
        })
    }

    /// Asks in-flight checkpointed executions to stop at their next
    /// checkpoint boundary (they come back as `drained` records, never
    /// cached, each leaving a persisted checkpoint the next runner
    /// over the same cache directory resumes). Cells running without
    /// checkpointing finish normally. Idempotent.
    pub fn request_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Produces the record for `cell`: from memory, from a concurrent
    /// in-flight execution, or by simulating under supervision. Safe
    /// to call from any number of threads; never panics on simulation
    /// failures (they become quarantine records).
    pub fn run(&self, cell: &Cell, sup: &Supervision) -> CellRecord {
        let fp = cell.fingerprint();
        if let Some(hit) = self.lookup(fp) {
            self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        // `claim` resolves aborted flights internally, so exactly one
        // arm runs per call.
        match self.inflight.claim(fp) {
            Claim::Shared(record) => {
                self.counters.deduped.fetch_add(1, Ordering::Relaxed);
                *record
            }
            Claim::Lead(guard) => {
                // Double-check under leadership: an earlier leader
                // may have published and closed its flight between
                // our lookup and our claim.
                if let Some(hit) = self.lookup(fp) {
                    self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                    guard.publish(&hit);
                    return hit;
                }
                let record = self.execute(cell, sup);
                // Quarantine verdicts are wall-clock-dependent and
                // drained cells are incomplete — neither is
                // remembered (a fixed build, a calmer machine or the
                // next daemon retries/resumes them); genuine results
                // are made durable and shared.
                if !record.is_crashed() && !record.is_timed_out() && !record.is_drained() {
                    self.remember(fp, &record);
                }
                guard.publish(&record);
                record
            }
        }
    }

    /// A point-in-time copy of the accounting counters.
    pub fn stats(&self) -> RunnerStats {
        RunnerStats {
            cache_hits: self.counters.cache_hits.load(Ordering::Relaxed),
            executed: self.counters.executed.load(Ordering::Relaxed),
            deduped: self.counters.deduped.load(Ordering::Relaxed),
            crashed: self.counters.crashed.load(Ordering::Relaxed),
            timed_out: self.counters.timed_out.load(Ordering::Relaxed),
            retried: self.counters.retried.load(Ordering::Relaxed),
            failed: self.counters.failed.load(Ordering::Relaxed),
            append_failures: self.counters.append_failures.load(Ordering::Relaxed),
            drained: self.counters.drained.load(Ordering::Relaxed),
            resumed: self.counters.resumed.load(Ordering::Relaxed),
            checkpoints_written: self.counters.checkpoints_written.load(Ordering::Relaxed),
        }
    }

    /// First cache-append error, when any append failed.
    pub fn append_error(&self) -> Option<String> {
        lock_unpoisoned(&self.append_error).clone()
    }

    /// Number of records held in memory (disk cache + fresh results).
    pub fn known_records(&self) -> usize {
        match self.entries.read() {
            Ok(e) => e.len(),
            Err(poisoned) => poisoned.into_inner().len(),
        }
    }

    /// Closes the append sink, heals the on-disk cache (compacting
    /// superseded or torn lines) and **releases the cache lock** — the
    /// flush step of a graceful drain. Afterwards a fresh
    /// `experiment run` over the same directory resumes
    /// byte-identically; this runner stays usable but serves from
    /// memory only, persisting nothing further.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error; the append sink is closed and
    /// the lock released either way.
    pub fn flush(&self) -> std::io::Result<()> {
        // Drop the append handle first: compaction replaces the file
        // by rename, and a surviving handle would keep appending to
        // the unlinked inode.
        *lock_unpoisoned(&self.appender) = None;
        let result = match &self.cache_dir {
            Some(dir) => ResultCache::open(dir).and_then(|c| c.compact()).map(|_| ()),
            None => Ok(()),
        };
        // Release the lock only after compaction: the heal must happen
        // under exclusivity.
        *lock_unpoisoned(&self.lock) = None;
        result
    }

    /// [`flush`](Self::flush), consuming the runner.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error; the lock is released either
    /// way (the runner is consumed).
    pub fn finalize(self) -> std::io::Result<()> {
        self.flush()
    }

    fn lookup(&self, fp: u64) -> Option<CellRecord> {
        let entries = match self.entries.read() {
            Ok(e) => e,
            Err(poisoned) => poisoned.into_inner(),
        };
        entries.get(&fp).map(|rec| {
            let mut rec = rec.clone();
            rec.cached = true;
            rec
        })
    }

    fn remember(&self, fp: u64, record: &CellRecord) {
        {
            let mut entries = match self.entries.write() {
                Ok(e) => e,
                Err(poisoned) => poisoned.into_inner(),
            };
            entries.insert(fp, record.clone());
        }
        let mut appender = lock_unpoisoned(&self.appender);
        if let Some(app) = appender.as_mut() {
            if let Err(e) = app.append(record) {
                self.counters
                    .append_failures
                    .fetch_add(1, Ordering::Relaxed);
                lock_unpoisoned(&self.append_error).get_or_insert(e.to_string());
            }
        }
    }

    /// Supervised execution of one cell: bounded deterministic retries
    /// on panic, post-hoc wall-clock classification, quarantine as a
    /// `crashed` record when every attempt dies.
    fn execute(&self, cell: &Cell, sup: &Supervision) -> CellRecord {
        self.counters.executed.fetch_add(1, Ordering::Relaxed);
        let mut last_panic = String::new();
        for attempt in 0..=sup.max_retries {
            let started = Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if poison_matches(sup.poison.as_deref(), cell, attempt) {
                    panic!("poison hook: injected panic for cell {}", cell.key());
                }
                let seed = retry_seed(cell.derived_seed(), attempt);
                // Checkpointing covers attempt 0 only: retries reseed
                // the RNG, and a snapshot persisted under the original
                // seed must never resume a differently-seeded replay.
                match &self.cache_dir {
                    Some(dir) if sup.checkpoint_every > 0 && attempt == 0 => run_cell_checkpointed(
                        cell,
                        seed,
                        dir,
                        sup.checkpoint_every,
                        Some(Arc::clone(&self.draining)),
                        sup.shards,
                    ),
                    _ => run_cell_seeded(cell, seed, sup.shards),
                }
            }));
            match outcome {
                Ok(mut record) => {
                    let elapsed = started.elapsed();
                    record.attempts = attempt + 1;
                    if attempt > 0 {
                        record.cell_outcome = "retried".to_string();
                        self.counters.retried.fetch_add(1, Ordering::Relaxed);
                    }
                    if record.resumed_from_cycle.is_some() {
                        self.counters.resumed.fetch_add(1, Ordering::Relaxed);
                    }
                    self.counters
                        .checkpoints_written
                        .fetch_add(record.checkpoints_written, Ordering::Relaxed);
                    // A drained cell is an administrative stop, not a
                    // result — return it before wall-clock
                    // classification can mislabel the partial run.
                    if record.is_drained() {
                        self.counters.drained.fetch_add(1, Ordering::Relaxed);
                        return record;
                    }
                    if let Some(budget) = sup.cell_timeout {
                        if elapsed > budget {
                            self.counters.timed_out.fetch_add(1, Ordering::Relaxed);
                            return CellRecord::from_timeout(
                                cell,
                                budget.as_millis() as u64,
                                elapsed.as_millis() as u64,
                                attempt + 1,
                            );
                        }
                    }
                    if record.is_error() {
                        self.counters.failed.fetch_add(1, Ordering::Relaxed);
                    }
                    return record;
                }
                Err(payload) => last_panic = panic_message(payload),
            }
        }
        self.counters.crashed.fetch_add(1, Ordering::Relaxed);
        CellRecord::from_crash(cell, &last_panic, sup.max_retries + 1)
    }
}

/// Renders a panic payload as a message (same policy as
/// `orion_core::exec`): `&str` and `String` payloads verbatim, a fixed
/// tag otherwise.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}
