//! Parametric design points: the named microarchitecture space the
//! explorer (and grid specs) can reference beyond the paper's six
//! presets.
//!
//! A [`DesignPoint`] is a router family plus its sizing knobs, a
//! topology and a process node. Every point has a single *canonical
//! name* — [`DesignPoint::name`] — and the codec guarantees
//! `parse(name).name() == name`. Crucially, a point whose parameters
//! coincide with one of the paper's configurations canonicalises to the
//! paper's preset name (`vc8x8` on the default platform renders as
//! `vc64`), so explorer-generated cells share cell keys — and therefore
//! cache fingerprints — with hand-written grid cells.
//!
//! # Name grammar
//!
//! ```text
//! point    := base suffix*
//! base     := "wh" TOTAL            wormhole, TOTAL flits of input
//!                                   buffering per port
//!           | "vc" V "x" D          virtual-channel, V VCs × D flits
//!           | "vc16"|"vc64"|"vc128" paper aliases for 2x8, 8x8, 8x16
//!           | "xb" V "x" D          input-buffered crossbar (VC router
//!                                   on the chip-to-chip platform)
//!           | "xb"                  paper alias for xb16x268
//!           | "cb" TOTAL            central buffer, TOTAL flits of
//!                                   input buffering per port
//!           | "cb"                  paper alias for cb64
//! suffix   := "-t" K                K×K torus (default: -t4, omitted)
//!           | "-m" K                K×K mesh
//!           | "-n" NM               process node in nm: 800|350|250|
//!                                   180|130|100|70 (default: -n100,
//!                                   omitted)
//! ```
//!
//! `wh` and `cb` take *total* per-port buffering so that explorer
//! candidates compare router families at matched storage, exactly the
//! paper's §4.2 methodology (WH64 vs VC64 vs VC128 all name their total
//! buffering).
//!
//! Platform follows family: `wh`/`vc` use the on-chip §4.2 platform
//! (256-bit flits, 2 GHz, 3 mm links); `xb`/`cb` use the chip-to-chip
//! §4.4 platform (32-bit flits, 1 GHz, 3 W links).

use std::fmt;

use orion_core::{presets, LinkConfig, NetworkConfig, RouterConfig};
use orion_net::Topology;
use orion_tech::{Hertz, Microns, ProcessNode, Technology, Watts};

/// Router microarchitecture families the paper compares (§4.2, §4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RouterFamily {
    /// Wormhole router with per-port input FIFOs.
    Wormhole,
    /// Virtual-channel router (on-chip platform).
    VirtualChannel,
    /// Input-buffered crossbar router (VC router on the chip-to-chip
    /// platform).
    Crossbar,
    /// Central-buffered router (chip-to-chip platform).
    CentralBuffer,
}

impl RouterFamily {
    /// Stable spec/name token of the family.
    pub fn as_str(self) -> &'static str {
        match self {
            RouterFamily::Wormhole => "wh",
            RouterFamily::VirtualChannel => "vc",
            RouterFamily::Crossbar => "xb",
            RouterFamily::CentralBuffer => "cb",
        }
    }

    /// Parses a family token (`wh|vc|xb|cb`).
    pub fn parse(name: &str) -> Option<RouterFamily> {
        match name {
            "wh" => Some(RouterFamily::Wormhole),
            "vc" => Some(RouterFamily::VirtualChannel),
            "xb" => Some(RouterFamily::Crossbar),
            "cb" => Some(RouterFamily::CentralBuffer),
            _ => None,
        }
    }

    /// Whether the family runs on the chip-to-chip (§4.4) platform.
    pub fn chip_to_chip(self) -> bool {
        matches!(self, RouterFamily::Crossbar | RouterFamily::CentralBuffer)
    }
}

impl fmt::Display for RouterFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Bounds of the name grammar: keep names short and the implied
/// simulations finite. (Radix is also bounded below by the topology
/// crate's `radix >= 2` rule.)
const MAX_RADIX: u32 = 64;
const MAX_VCS: u32 = 1024;
const MAX_DEPTH: u32 = 65_536;
/// Bound for the total-form (`wh`/`cb`) names: they encode the
/// *product* `vcs * depth`, so any factorisation of in-bounds `vcs`
/// and `depth` values must round-trip through the codec. (The `vc`
/// form already reaches the same per-port storage at `vc1024x65536`,
/// so this admits no simulation the V×D form could not name.)
const MAX_TOTAL: u32 = MAX_VCS * MAX_DEPTH;

/// One candidate microarchitecture: family, sizing, topology, node.
///
/// For `Wormhole` and `CentralBuffer` the per-port storage is
/// `vcs * depth` total flits (matched-buffering comparisons); for
/// `VirtualChannel` and `Crossbar` it is `vcs` channels of `depth`
/// flits each.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DesignPoint {
    /// Router family.
    pub family: RouterFamily,
    /// Virtual channels per port (1 for `wh`/`cb`, where only the
    /// product matters).
    pub vcs: u32,
    /// Flit depth per VC (per-port total for `wh`/`cb` when `vcs`=1).
    pub depth: u32,
    /// Per-dimension radix of the k×k network.
    pub radix: u32,
    /// Mesh instead of torus.
    pub mesh: bool,
    /// Process technology node.
    pub node: ProcessNode,
}

/// Process node ↔ nanometre tag used in the `-n` suffix.
const NODE_NM: [(ProcessNode, u32); 7] = [
    (ProcessNode::Um800, 800),
    (ProcessNode::Um350, 350),
    (ProcessNode::Um250, 250),
    (ProcessNode::Um180, 180),
    (ProcessNode::Um130, 130),
    (ProcessNode::Nm100, 100),
    (ProcessNode::Nm70, 70),
];

/// The node's feature size in nanometres (the `-n` suffix value).
pub fn node_nm(node: ProcessNode) -> u32 {
    NODE_NM
        .iter()
        .find(|(n, _)| *n == node)
        .map(|(_, nm)| *nm)
        .unwrap_or_else(|| (node.feature_size().0 * 1000.0).round() as u32)
}

fn node_from_nm(nm: u32) -> Option<ProcessNode> {
    NODE_NM.iter().find(|(_, v)| *v == nm).map(|(n, _)| *n)
}

fn parse_u32(s: &str) -> Option<u32> {
    if s.is_empty() || s.len() > 9 || !s.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    s.parse().ok()
}

impl DesignPoint {
    /// Total flits of buffering per input port.
    pub fn buffering_per_port(&self) -> u32 {
        self.vcs.saturating_mul(self.depth)
    }

    /// The canonical name: parsing it back yields an equal
    /// configuration, and paper-preset-equivalent points render as the
    /// paper names (`wh64`, `vc16`, `vc64`, `vc128`, `xb`, `cb`).
    pub fn name(&self) -> String {
        let total = self.buffering_per_port();
        let mut out = match self.family {
            RouterFamily::Wormhole => format!("wh{total}"),
            RouterFamily::CentralBuffer => {
                if total == 64 {
                    "cb".to_string()
                } else {
                    format!("cb{total}")
                }
            }
            RouterFamily::VirtualChannel => match (self.vcs, self.depth) {
                (2, 8) => "vc16".to_string(),
                (8, 8) => "vc64".to_string(),
                (8, 16) => "vc128".to_string(),
                (v, d) => format!("vc{v}x{d}"),
            },
            RouterFamily::Crossbar => {
                if (self.vcs, self.depth) == (16, 268) {
                    "xb".to_string()
                } else {
                    format!("xb{}x{}", self.vcs, self.depth)
                }
            }
        };
        if self.mesh {
            out.push_str(&format!("-m{}", self.radix));
        } else if self.radix != 4 {
            out.push_str(&format!("-t{}", self.radix));
        }
        let nm = node_nm(self.node);
        if nm != 100 {
            out.push_str(&format!("-n{nm}"));
        }
        out
    }

    /// Parses a design-point name (paper preset or parametric form).
    ///
    /// Returns `None` for anything outside the grammar or its bounds;
    /// never panics, whatever the input.
    pub fn parse(name: &str) -> Option<DesignPoint> {
        let mut parts = name.split('-');
        let base = parts.next()?;

        let (family, vcs, depth) = if let Some(rest) = base.strip_prefix("wh") {
            let total = parse_u32(rest)?;
            if total == 0 || total > MAX_TOTAL {
                return None;
            }
            (RouterFamily::Wormhole, 1, total)
        } else if let Some(rest) = base.strip_prefix("vc") {
            match rest {
                "16" => (RouterFamily::VirtualChannel, 2, 8),
                "64" => (RouterFamily::VirtualChannel, 8, 8),
                "128" => (RouterFamily::VirtualChannel, 8, 16),
                _ => {
                    let (v, d) = parse_vcs_x_depth(rest)?;
                    (RouterFamily::VirtualChannel, v, d)
                }
            }
        } else if let Some(rest) = base.strip_prefix("xb") {
            if rest.is_empty() {
                (RouterFamily::Crossbar, 16, 268)
            } else {
                let (v, d) = parse_vcs_x_depth(rest)?;
                (RouterFamily::Crossbar, v, d)
            }
        } else if let Some(rest) = base.strip_prefix("cb") {
            if rest.is_empty() {
                (RouterFamily::CentralBuffer, 1, 64)
            } else {
                let total = parse_u32(rest)?;
                if total == 0 || total > MAX_TOTAL {
                    return None;
                }
                (RouterFamily::CentralBuffer, 1, total)
            }
        } else {
            return None;
        };

        let mut radix = 4u32;
        let mut mesh = false;
        let mut node = ProcessNode::Nm100;
        let mut seen_topo = false;
        let mut seen_node = false;
        for suffix in parts {
            if let Some(rest) = suffix.strip_prefix('t') {
                let k = parse_u32(rest)?;
                if seen_topo || !(2..=MAX_RADIX).contains(&k) {
                    return None;
                }
                radix = k;
                mesh = false;
                seen_topo = true;
            } else if let Some(rest) = suffix.strip_prefix('m') {
                let k = parse_u32(rest)?;
                if seen_topo || !(2..=MAX_RADIX).contains(&k) {
                    return None;
                }
                radix = k;
                mesh = true;
                seen_topo = true;
            } else if let Some(rest) = suffix.strip_prefix('n') {
                let nm = parse_u32(rest)?;
                if seen_node {
                    return None;
                }
                node = node_from_nm(nm)?;
                seen_node = true;
            } else {
                return None;
            }
        }
        // `-t4` is redundant (the default) but accepted on input; the
        // canonical name simply omits it.
        Some(DesignPoint {
            family,
            vcs,
            depth,
            radix,
            mesh,
            node,
        })
    }

    /// The point's topology.
    pub fn topology(&self) -> Topology {
        let dims = [self.radix, self.radix];
        if self.mesh {
            Topology::mesh(&dims).expect("radix validated by the name grammar")
        } else {
            Topology::torus(&dims).expect("radix validated by the name grammar")
        }
    }

    /// Lowers the point to a network configuration on its family's
    /// platform. Points equal to a paper preset produce the preset's
    /// exact configuration.
    pub fn config(&self) -> NetworkConfig {
        // Route paper-equivalent points through the preset constructors
        // so the two paths can never drift apart.
        if let Some(cfg) = paper_preset(&self.name()) {
            return cfg;
        }
        let router = match self.family {
            RouterFamily::Wormhole => RouterConfig::Wormhole {
                buffer_flits: self.buffering_per_port(),
            },
            RouterFamily::VirtualChannel | RouterFamily::Crossbar => RouterConfig::VirtualChannel {
                vcs: self.vcs,
                depth: self.depth,
            },
            RouterFamily::CentralBuffer => RouterConfig::CentralBuffer {
                input_depth: self.buffering_per_port(),
                banks: 4,
                rows: 2560,
                read_ports: 2,
                write_ports: 2,
            },
        };
        let cfg = if self.family.chip_to_chip() {
            NetworkConfig::new(self.topology(), router, 32)
                .clock(Hertz::from_ghz(1.0))
                .link(LinkConfig::ChipToChip { power: Watts(3.0) })
        } else {
            NetworkConfig::new(self.topology(), router, 256)
                .clock(Hertz::from_ghz(2.0))
                .link(LinkConfig::OnChip {
                    length: Microns::from_mm(3.0),
                })
        };
        cfg.technology(Technology::new(self.node))
    }
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

fn parse_vcs_x_depth(s: &str) -> Option<(u32, u32)> {
    let (v, d) = s.split_once('x')?;
    let v = parse_u32(v)?;
    let d = parse_u32(d)?;
    if v == 0 || v > MAX_VCS || d == 0 || d > MAX_DEPTH {
        return None;
    }
    Some((v, d))
}

/// The paper's six configurations by name; `None` otherwise.
pub(crate) fn paper_preset(name: &str) -> Option<NetworkConfig> {
    match name {
        "wh64" => Some(presets::wh64_onchip()),
        "vc16" => Some(presets::vc16_onchip()),
        "vc64" => Some(presets::vc64_onchip()),
        "vc128" => Some(presets::vc128_onchip()),
        "xb" => Some(presets::xb_chip_to_chip()),
        "cb" => Some(presets::cb_chip_to_chip()),
        _ => None,
    }
}

/// Canonicalises any design-point name (preset or parametric); `None`
/// for names outside the grammar. Spec validation maps every preset
/// axis entry through this, so `vc8x8` and `vc64` address the same
/// cache entries.
pub fn canonical_design_name(name: &str) -> Option<String> {
    DesignPoint::parse(name).map(|p| p.name())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_names_round_trip() {
        for name in ["wh64", "vc16", "vc64", "vc128", "xb", "cb"] {
            let p = DesignPoint::parse(name).unwrap();
            assert_eq!(p.name(), name, "canonical form of a paper preset");
            assert!(!p.mesh);
            assert_eq!(p.radix, 4);
            assert_eq!(p.node, ProcessNode::Nm100);
        }
    }

    #[test]
    fn parametric_aliases_canonicalise_to_paper_names() {
        assert_eq!(canonical_design_name("vc2x8").unwrap(), "vc16");
        assert_eq!(canonical_design_name("vc8x8").unwrap(), "vc64");
        assert_eq!(canonical_design_name("vc8x16").unwrap(), "vc128");
        assert_eq!(canonical_design_name("xb16x268").unwrap(), "xb");
        assert_eq!(canonical_design_name("cb64").unwrap(), "cb");
        assert_eq!(canonical_design_name("vc64-t4").unwrap(), "vc64");
        assert_eq!(canonical_design_name("vc64-n100").unwrap(), "vc64");
    }

    #[test]
    fn parametric_names_round_trip() {
        for name in [
            "wh16",
            "vc4x4",
            "vc2x8-m8",
            "xb4x64",
            "cb128",
            "wh64-t8",
            "vc64-n70",
            "cb-m4-n180",
            "vc1x1",
        ] {
            let p = DesignPoint::parse(name).unwrap();
            let canon = p.name();
            let q = DesignPoint::parse(&canon).unwrap();
            assert_eq!(p, q, "{name} -> {canon}");
            assert_eq!(q.name(), canon, "canonical form is a fixed point");
        }
        // "cb-m4-n180" canonicalises with the alias base kept.
        assert_eq!(canonical_design_name("cb64-m4-n180").unwrap(), "cb-m4-n180");
    }

    #[test]
    fn rejects_garbage() {
        for name in [
            "",
            "wh",
            "wh0",
            "vc",
            "vc4",
            "vcx8",
            "vc4x",
            "vc0x8",
            "vc4x0",
            "xb0x1",
            "cb0",
            "zz4x4",
            "vc4x4-",
            "vc4x4-q8",
            "vc4x4-t1",
            "vc4x4-t65",
            "vc4x4-n90",
            "vc4x4-t4-t8",
            "vc4x4-n70-n70",
            "wh999999999999",
            "vc4x4-m0",
            "wh64 ",
            " wh64",
            "vc-4x4",
            "vc4X4",
        ] {
            assert!(
                DesignPoint::parse(name).is_none(),
                "{name:?} must parse to None"
            );
        }
    }

    #[test]
    fn total_forms_round_trip_any_in_bounds_factorisation() {
        // wh/cb names encode vcs*depth, which can exceed MAX_DEPTH even
        // when both factors are in bounds (the explorer builds such
        // points from validated axes). The codec invariant
        // `parse(name).name() == name` must hold for every one.
        for family in [RouterFamily::Wormhole, RouterFamily::CentralBuffer] {
            for (vcs, depth) in [
                (8, 16_384),    // names "wh131072": product above MAX_DEPTH
                (2, 65_536),    // depth at its own bound
                (1024, 1),      // vcs at its own bound
                (1024, 65_536), // maximal product
                (1024, 65_535), // odd product, no small factorisation
            ] {
                let p = DesignPoint {
                    family,
                    vcs,
                    depth,
                    radix: 4,
                    mesh: false,
                    node: ProcessNode::Nm100,
                };
                let name = p.name();
                let q =
                    DesignPoint::parse(&name).unwrap_or_else(|| panic!("{name} must parse back"));
                assert_eq!(q.name(), name, "canonical form is a fixed point");
                assert_eq!(
                    q.buffering_per_port(),
                    p.buffering_per_port(),
                    "{name} preserves total storage"
                );
            }
        }
        // The product bound itself still holds.
        assert!(DesignPoint::parse("wh67108864").is_some());
        assert!(DesignPoint::parse("cb67108864").is_some());
        assert!(DesignPoint::parse("wh67108865").is_none());
        assert!(DesignPoint::parse("cb67108865").is_none());
    }

    #[test]
    fn matched_buffering_collapses_wh_and_cb_splits() {
        // wh/cb only care about total storage; any (vcs, depth)
        // factorisation of 64 names the same point.
        let a = DesignPoint {
            family: RouterFamily::Wormhole,
            vcs: 8,
            depth: 8,
            radix: 4,
            mesh: false,
            node: ProcessNode::Nm100,
        };
        assert_eq!(a.name(), "wh64");
        let b = DesignPoint {
            family: RouterFamily::CentralBuffer,
            vcs: 4,
            depth: 16,
            radix: 4,
            mesh: false,
            node: ProcessNode::Nm100,
        };
        assert_eq!(b.name(), "cb");
    }

    #[test]
    fn configs_build_and_match_platform() {
        let p = DesignPoint::parse("vc4x4-t8-n70").unwrap();
        let cfg = p.config();
        assert_eq!(cfg.flit_bits, 256);
        assert_eq!(cfg.topology.num_nodes(), 64);
        assert_eq!(cfg.tech.node(), ProcessNode::Nm70);
        cfg.build().expect("parametric on-chip point builds");

        let p = DesignPoint::parse("cb128-m4").unwrap();
        let cfg = p.config();
        assert_eq!(cfg.flit_bits, 32);
        cfg.build().expect("parametric chip-to-chip point builds");
    }

    #[test]
    fn paper_equivalent_config_goes_through_preset_constructors() {
        let via_design = DesignPoint::parse("vc8x8").unwrap().config();
        let via_preset = presets::vc64_onchip();
        assert_eq!(via_design.flit_bits, via_preset.flit_bits);
        assert_eq!(via_design.packet_len, via_preset.packet_len);
        assert_eq!(via_design.f_clk, via_preset.f_clk);
    }
}
