//! Stable hashing for content-addressed caching and derived RNG seeds.
//!
//! The hash primitives themselves (FNV-1a, SplitMix64, hex codecs)
//! have moved down the stack to [`orion_ckpt::hash`] so the checkpoint
//! file format can share them without depending on this crate; they
//! are re-exported here unchanged to keep the `orion-exp` API stable.
//! What remains local is the *policy*: [`MODEL_VERSION`], the knob
//! that ties fingerprints to the simulation code-model.

pub use orion_ckpt::hash::{fnv1a64, from_hex, splitmix64, to_hex};

/// Version of the simulation code-model baked into every fingerprint.
///
/// Bump this whenever a change alters simulation *results* (router
/// pipeline, power models, RNG streams, measurement discipline) so
/// that stale cache entries miss instead of resurfacing as fresh data.
/// Pure orchestration changes do not require a bump.
pub const MODEL_VERSION: u32 = 1;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn splitmix_reference_vector() {
        // First output of the canonical SplitMix64 stream seeded 0.
        assert_eq!(splitmix64(0), 0xe220a8397b1dcdaf);
    }

    #[test]
    fn hex_roundtrip() {
        for fp in [0u64, 1, u64::MAX, 0xdead_beef_0123_4567] {
            assert_eq!(from_hex(&to_hex(fp)), Some(fp));
        }
        assert_eq!(from_hex("xyz"), None);
        assert_eq!(from_hex("0123"), None);
    }
}
