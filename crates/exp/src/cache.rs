//! Content-addressed result cache: one JSONL file per cache directory,
//! keyed by cell fingerprint.
//!
//! * **Hit** — a line whose `fingerprint` matches the cell's current
//!   fingerprint. Fingerprints cover the code-model version, the full
//!   parameter point and the measurement discipline, so a hit is safe
//!   to reuse verbatim.
//! * **Miss** — no such line. The cell is simulated and its record
//!   appended, making interrupted or extended grids resumable: only
//!   new or invalidated cells pay simulation time.
//! * **Corruption** — a line that fails to parse (truncated append,
//!   manual edit, version skew) is skipped and counted. Damage is
//!   per-line: every other entry remains usable.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::record::CellRecord;

/// File name of the cache inside a `--cache-dir`.
pub const CACHE_FILE: &str = "orion-exp-cache.jsonl";

/// An on-disk result cache, loaded eagerly and appended incrementally.
#[derive(Debug)]
pub struct ResultCache {
    path: PathBuf,
    entries: HashMap<u64, CellRecord>,
    corrupt_lines: usize,
}

impl ResultCache {
    /// Opens (or initializes) the cache under `dir`. Missing files and
    /// directories are created lazily on first append; corrupt lines
    /// are skipped and counted, never fatal.
    ///
    /// # Errors
    ///
    /// Returns an I/O error only when an *existing* cache file cannot
    /// be read.
    pub fn open(dir: &Path) -> std::io::Result<ResultCache> {
        let path = dir.join(CACHE_FILE);
        let mut entries = HashMap::new();
        let mut corrupt_lines = 0;
        if path.exists() {
            let text = fs::read_to_string(&path)?;
            for line in text.lines() {
                if line.trim().is_empty() {
                    continue;
                }
                match CellRecord::from_json_line(line) {
                    // Later lines win: a re-simulated cell supersedes
                    // its earlier entry.
                    Some(rec) => {
                        entries.insert(rec.fingerprint, rec);
                    }
                    None => corrupt_lines += 1,
                }
            }
        }
        Ok(ResultCache {
            path,
            entries,
            corrupt_lines,
        })
    }

    /// Looks up a result by fingerprint. The returned record is marked
    /// `cached`.
    pub fn get(&self, fingerprint: u64) -> Option<&CellRecord> {
        self.entries.get(&fingerprint)
    }

    /// Number of usable entries loaded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of unparseable lines skipped at load.
    pub fn corrupt_lines(&self) -> usize {
        self.corrupt_lines
    }

    /// Opens an append handle for writing fresh results as they
    /// complete (creating the directory and file on first use).
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the directory or file cannot be created.
    pub fn appender(&self) -> std::io::Result<CacheAppender> {
        if let Some(parent) = self.path.parent() {
            fs::create_dir_all(parent)?;
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        Ok(CacheAppender {
            writer: BufWriter::new(file),
        })
    }
}

/// An append-only handle to the cache file. Each record is written as
/// one line and flushed immediately, so an interrupted run loses at
/// most the record being written — and a torn final line is exactly
/// the corruption [`ResultCache::open`] tolerates.
#[derive(Debug)]
pub struct CacheAppender {
    writer: BufWriter<File>,
}

impl CacheAppender {
    /// Appends one record and flushes.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn append(&mut self, record: &CellRecord) -> std::io::Result<()> {
        self.writer.write_all(record.to_json_line().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ExperimentSpec;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("orion-exp-cache-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn records(n: usize) -> Vec<CellRecord> {
        let rates: Vec<String> = (1..=n).map(|i| format!("0.{i:02}")).collect();
        let spec = ExperimentSpec::parse(&format!(
            "[experiment]\nname = \"t\"\n[grid]\npresets = [\"vc16\"]\nrates = [{}]\n",
            rates.join(", ")
        ))
        .unwrap();
        spec.expand()
            .iter()
            .map(|c| CellRecord::from_error(c, "placeholder"))
            .collect()
    }

    #[test]
    fn roundtrip_and_miss() {
        let dir = temp_dir("roundtrip");
        let cache = ResultCache::open(&dir).unwrap();
        assert!(cache.is_empty());
        let recs = records(3);
        let mut app = cache.appender().unwrap();
        for r in &recs[..2] {
            app.append(r).unwrap();
        }
        drop(app);

        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.corrupt_lines(), 0);
        assert!(cache.get(recs[0].fingerprint).unwrap().cached);
        assert!(cache.get(recs[2].fingerprint).is_none(), "miss for unseen");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_line_skipped_not_fatal() {
        let dir = temp_dir("corrupt");
        let cache = ResultCache::open(&dir).unwrap();
        let recs = records(3);
        let mut app = cache.appender().unwrap();
        for r in &recs {
            app.append(r).unwrap();
        }
        drop(app);

        // Corrupt the middle line.
        let path = dir.join(CACHE_FILE);
        let text = fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        lines[1] = lines[1][..lines[1].len() / 2].to_string();
        fs::write(&path, lines.join("\n") + "\n").unwrap();

        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.len(), 2, "the other lines survive");
        assert_eq!(cache.corrupt_lines(), 1);
        assert!(cache.get(recs[1].fingerprint).is_none());
        assert!(cache.get(recs[0].fingerprint).is_some());
        assert!(cache.get(recs[2].fingerprint).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn later_entries_supersede_earlier() {
        let dir = temp_dir("supersede");
        let cache = ResultCache::open(&dir).unwrap();
        let mut rec = records(1).remove(0);
        let mut app = cache.appender().unwrap();
        app.append(&rec).unwrap();
        rec.error = Some("newer".into());
        app.append(&rec).unwrap();
        drop(app);

        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(
            cache.get(rec.fingerprint).unwrap().error.as_deref(),
            Some("newer")
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
