//! Content-addressed result cache: one JSONL file per cache directory,
//! keyed by cell fingerprint.
//!
//! * **Hit** — a line whose `fingerprint` matches the cell's current
//!   fingerprint. Fingerprints cover the code-model version, the full
//!   parameter point and the measurement discipline, so a hit is safe
//!   to reuse verbatim.
//! * **Miss** — no such line. The cell is simulated and its record
//!   appended, making interrupted or extended grids resumable: only
//!   new or invalidated cells pay simulation time.
//! * **Corruption** — a line that fails to parse (truncated append,
//!   manual edit, version skew) is skipped and counted. Damage is
//!   per-line: every other entry remains usable.
//!
//! The directory is additionally guarded by an exclusive [`CacheLock`]
//! (two concurrent runs interleaving appends would tear each other's
//! lines), carries a crash-safe [`Manifest`] describing the last run's
//! progress, and heals itself: [`ResultCache::compact`] atomically
//! rewrites a file that accumulated torn or superseded lines.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, ErrorKind, Write};
use std::path::{Path, PathBuf};

use crate::artifact::write_atomic;
use crate::record::{parse_flat_object, CellRecord};

/// File name of the cache inside a `--cache-dir`.
pub const CACHE_FILE: &str = "orion-exp-cache.jsonl";

/// File name of the exclusive lock inside a `--cache-dir`.
pub const LOCK_FILE: &str = "orion-exp-cache.lock";

/// File name of the run manifest inside a `--cache-dir`.
pub const MANIFEST_FILE: &str = "orion-exp-manifest.json";

/// Exclusive advisory lock on a cache directory, held for the duration
/// of an engine run and released (file removed) on drop.
///
/// The lock file is created with `create_new` — an atomic
/// create-or-fail on every platform — and records the holder's PID. A
/// lock whose holder is no longer alive (a run killed mid-grid) is
/// considered stale and broken automatically, so kill-and-resume needs
/// no manual cleanup; a lock held by a live process is an error the
/// CLI surfaces as bad input (exit 2).
#[derive(Debug)]
pub struct CacheLock {
    path: PathBuf,
}

impl CacheLock {
    /// Acquires the lock under `dir`, creating the directory if
    /// needed.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::AlreadyExists`] when another live run holds the
    /// lock; any other I/O error from creating the directory or file.
    pub fn acquire(dir: &Path) -> std::io::Result<CacheLock> {
        fs::create_dir_all(dir)?;
        let path = dir.join(LOCK_FILE);
        let mut tried_break = false;
        loop {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut f) => {
                    let _ = write!(f, "{}", std::process::id());
                    return Ok(CacheLock { path });
                }
                Err(e) if e.kind() == ErrorKind::AlreadyExists => {
                    if !tried_break && stale_lock(&path) {
                        tried_break = true;
                        let _ = fs::remove_file(&path);
                        continue;
                    }
                    let holder = fs::read_to_string(&path).unwrap_or_default();
                    return Err(std::io::Error::new(
                        ErrorKind::AlreadyExists,
                        format!(
                            "cache directory `{}` is locked by a live run (pid {}); \
                             wait for it to finish or remove `{}`",
                            dir.display(),
                            holder.trim(),
                            path.display(),
                        ),
                    ));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for CacheLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Whether a lock file's holder is provably gone: unreadable PIDs are
/// stale (a torn lock write), and on Linux a PID with no `/proc` entry
/// is stale. Elsewhere liveness cannot be checked cheaply, so a
/// well-formed lock is conservatively treated as held.
fn stale_lock(path: &Path) -> bool {
    let Ok(text) = fs::read_to_string(path) else {
        return false;
    };
    let Ok(pid) = text.trim().parse::<u32>() else {
        return true;
    };
    if cfg!(target_os = "linux") {
        !Path::new(&format!("/proc/{pid}")).exists()
    } else {
        false
    }
}

/// Crash-safe progress marker for the last grid run against a cache
/// directory, written atomically so a killed run never leaves a torn
/// manifest. A resumed run reads it purely for reporting — the cache
/// contents, not the manifest, decide what re-simulates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Name of the experiment that ran.
    pub spec_name: String,
    /// Cells in that experiment's expanded grid.
    pub total_cells: usize,
    /// Cells whose results were durably cached when it was written.
    pub completed_cells: usize,
}

impl Manifest {
    /// Writes the manifest under `dir` via an atomic rename.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn write(&self, dir: &Path) -> std::io::Result<()> {
        let mut name = String::new();
        for c in self.spec_name.chars() {
            match c {
                '"' | '\\' => {
                    name.push('\\');
                    name.push(c);
                }
                c => name.push(c),
            }
        }
        let json = format!(
            "{{\"spec_name\":\"{}\",\"total_cells\":{},\"completed_cells\":{}}}\n",
            name, self.total_cells, self.completed_cells,
        );
        write_atomic(&dir.join(MANIFEST_FILE), json.as_bytes())
    }

    /// Reads the manifest under `dir`; `None` when absent or
    /// malformed (both mean "no usable progress information").
    pub fn read(dir: &Path) -> Option<Manifest> {
        let text = fs::read_to_string(dir.join(MANIFEST_FILE)).ok()?;
        let obj = parse_flat_object(text.trim())?;
        Some(Manifest {
            spec_name: obj.get("spec_name")?.as_str()?.to_string(),
            total_cells: obj.get("total_cells")?.as_u64()?.try_into().ok()?,
            completed_cells: obj.get("completed_cells")?.as_u64()?.try_into().ok()?,
        })
    }
}

/// An on-disk result cache, loaded eagerly and appended incrementally.
#[derive(Debug)]
pub struct ResultCache {
    path: PathBuf,
    entries: HashMap<u64, CellRecord>,
    corrupt_lines: usize,
    superseded_lines: usize,
}

impl ResultCache {
    /// Opens (or initializes) the cache under `dir`. Missing files and
    /// directories are created lazily on first append; corrupt lines
    /// are skipped and counted, never fatal.
    ///
    /// # Errors
    ///
    /// Returns an I/O error only when an *existing* cache file cannot
    /// be read.
    pub fn open(dir: &Path) -> std::io::Result<ResultCache> {
        let path = dir.join(CACHE_FILE);
        let mut entries = HashMap::new();
        let mut corrupt_lines = 0;
        let mut superseded_lines = 0;
        if path.exists() {
            let text = fs::read_to_string(&path)?;
            for line in text.lines() {
                if line.trim().is_empty() {
                    continue;
                }
                match CellRecord::from_json_line(line) {
                    // Later lines win: a re-simulated cell supersedes
                    // its earlier entry.
                    Some(rec) => {
                        if entries.insert(rec.fingerprint, rec).is_some() {
                            superseded_lines += 1;
                        }
                    }
                    None => corrupt_lines += 1,
                }
            }
        }
        Ok(ResultCache {
            path,
            entries,
            corrupt_lines,
            superseded_lines,
        })
    }

    /// Looks up a result by fingerprint. The returned record is marked
    /// `cached`.
    pub fn get(&self, fingerprint: u64) -> Option<&CellRecord> {
        self.entries.get(&fingerprint)
    }

    /// Number of usable entries loaded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of unparseable lines skipped at load.
    pub fn corrupt_lines(&self) -> usize {
        self.corrupt_lines
    }

    /// Whether the on-disk file deviates from the loaded entry set:
    /// torn lines (a killed append) or superseded duplicates.
    pub fn needs_compaction(&self) -> bool {
        self.corrupt_lines > 0 || self.superseded_lines > 0
    }

    /// Rewrites the cache file to exactly the loaded entries, sorted
    /// by cell key, via an atomic temp-file rename — healing torn and
    /// duplicate lines a killed run left behind. A no-op (returning
    /// `false`) when the file already matches.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error; the original file survives a
    /// failed rewrite.
    pub fn compact(&self) -> std::io::Result<bool> {
        if !self.needs_compaction() {
            return Ok(false);
        }
        let mut recs: Vec<&CellRecord> = self.entries.values().collect();
        recs.sort_by(|a, b| a.cell.cmp(&b.cell));
        let mut text = String::new();
        for r in recs {
            text.push_str(&r.to_json_line());
            text.push('\n');
        }
        write_atomic(&self.path, text.as_bytes())?;
        Ok(true)
    }

    /// Opens an append handle for writing fresh results as they
    /// complete (creating the directory and file on first use).
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the directory or file cannot be created.
    pub fn appender(&self) -> std::io::Result<CacheAppender> {
        if let Some(parent) = self.path.parent() {
            fs::create_dir_all(parent)?;
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        Ok(CacheAppender {
            writer: BufWriter::new(file),
        })
    }
}

/// An append-only handle to the cache file. Each record is written as
/// one line and flushed immediately, so an interrupted run loses at
/// most the record being written — and a torn final line is exactly
/// the corruption [`ResultCache::open`] tolerates.
#[derive(Debug)]
pub struct CacheAppender {
    writer: BufWriter<File>,
}

impl CacheAppender {
    /// Appends one record and flushes.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn append(&mut self, record: &CellRecord) -> std::io::Result<()> {
        self.writer.write_all(record.to_json_line().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ExperimentSpec;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("orion-exp-cache-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn records(n: usize) -> Vec<CellRecord> {
        let rates: Vec<String> = (1..=n).map(|i| format!("0.{i:02}")).collect();
        let spec = ExperimentSpec::parse(&format!(
            "[experiment]\nname = \"t\"\n[grid]\npresets = [\"vc16\"]\nrates = [{}]\n",
            rates.join(", ")
        ))
        .unwrap();
        spec.expand()
            .iter()
            .map(|c| CellRecord::from_error(c, "placeholder"))
            .collect()
    }

    #[test]
    fn roundtrip_and_miss() {
        let dir = temp_dir("roundtrip");
        let cache = ResultCache::open(&dir).unwrap();
        assert!(cache.is_empty());
        let recs = records(3);
        let mut app = cache.appender().unwrap();
        for r in &recs[..2] {
            app.append(r).unwrap();
        }
        drop(app);

        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.corrupt_lines(), 0);
        assert!(cache.get(recs[0].fingerprint).unwrap().cached);
        assert!(cache.get(recs[2].fingerprint).is_none(), "miss for unseen");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_line_skipped_not_fatal() {
        let dir = temp_dir("corrupt");
        let cache = ResultCache::open(&dir).unwrap();
        let recs = records(3);
        let mut app = cache.appender().unwrap();
        for r in &recs {
            app.append(r).unwrap();
        }
        drop(app);

        // Corrupt the middle line.
        let path = dir.join(CACHE_FILE);
        let text = fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        lines[1] = lines[1][..lines[1].len() / 2].to_string();
        fs::write(&path, lines.join("\n") + "\n").unwrap();

        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.len(), 2, "the other lines survive");
        assert_eq!(cache.corrupt_lines(), 1);
        assert!(cache.get(recs[1].fingerprint).is_none());
        assert!(cache.get(recs[0].fingerprint).is_some());
        assert!(cache.get(recs[2].fingerprint).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn later_entries_supersede_earlier() {
        let dir = temp_dir("supersede");
        let cache = ResultCache::open(&dir).unwrap();
        let mut rec = records(1).remove(0);
        let mut app = cache.appender().unwrap();
        app.append(&rec).unwrap();
        rec.error = Some("newer".into());
        app.append(&rec).unwrap();
        drop(app);

        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(
            cache.get(rec.fingerprint).unwrap().error.as_deref(),
            Some("newer")
        );
        assert!(cache.needs_compaction(), "a superseded line is debris");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lock_is_exclusive_and_released_on_drop() {
        let dir = temp_dir("lock");
        let lock = CacheLock::acquire(&dir).unwrap();
        let second = CacheLock::acquire(&dir);
        let err = second.expect_err("a live lock must not be re-acquired");
        assert_eq!(err.kind(), ErrorKind::AlreadyExists);
        assert!(err.to_string().contains(LOCK_FILE), "{err}");
        drop(lock);
        assert!(!dir.join(LOCK_FILE).exists(), "drop removes the lock");
        let relock = CacheLock::acquire(&dir).unwrap();
        drop(relock);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_lock_is_broken_automatically() {
        let dir = temp_dir("stale-lock");
        fs::create_dir_all(&dir).unwrap();
        // A garbage PID is always stale; on Linux a dead PID would be
        // detected the same way via /proc.
        fs::write(dir.join(LOCK_FILE), "not-a-pid").unwrap();
        let lock = CacheLock::acquire(&dir).expect("stale lock must be broken");
        drop(lock);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_roundtrips_atomically() {
        let dir = temp_dir("manifest");
        fs::create_dir_all(&dir).unwrap();
        assert_eq!(Manifest::read(&dir), None, "absent manifest reads None");
        let m = Manifest {
            spec_name: "fig5".into(),
            total_cells: 16,
            completed_cells: 7,
        };
        m.write(&dir).unwrap();
        assert_eq!(Manifest::read(&dir), Some(m));
        assert!(!dir.join(format!("{MANIFEST_FILE}.tmp")).exists());
        fs::write(dir.join(MANIFEST_FILE), "{torn").unwrap();
        assert_eq!(Manifest::read(&dir), None, "torn manifest reads None");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_heals_torn_and_duplicate_lines() {
        let dir = temp_dir("compact");
        let cache = ResultCache::open(&dir).unwrap();
        let recs = records(3);
        let mut app = cache.appender().unwrap();
        for r in &recs {
            app.append(r).unwrap();
        }
        app.append(&recs[1]).unwrap(); // duplicate
        drop(app);
        // Tear the final line, as a SIGKILL mid-append would.
        let path = dir.join(CACHE_FILE);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() - 30]).unwrap();

        let cache = ResultCache::open(&dir).unwrap();
        assert!(cache.needs_compaction());
        assert!(cache.compact().unwrap(), "a rewrite happened");

        let healed = ResultCache::open(&dir).unwrap();
        assert_eq!(healed.len(), 3);
        assert!(!healed.needs_compaction(), "compaction converges");
        assert!(!healed.compact().unwrap(), "second compact is a no-op");
        let keys: Vec<String> = fs::read_to_string(&path)
            .unwrap()
            .lines()
            .map(|l| l.to_string())
            .collect();
        assert_eq!(keys.len(), 3, "exactly one line per cell");
        let _ = fs::remove_dir_all(&dir);
    }
}
