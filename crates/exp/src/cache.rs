//! Content-addressed result cache: one JSONL file per cache directory,
//! keyed by cell fingerprint.
//!
//! * **Hit** — a line whose `fingerprint` matches the cell's current
//!   fingerprint. Fingerprints cover the code-model version, the full
//!   parameter point and the measurement discipline, so a hit is safe
//!   to reuse verbatim.
//! * **Miss** — no such line. The cell is simulated and its record
//!   appended, making interrupted or extended grids resumable: only
//!   new or invalidated cells pay simulation time.
//! * **Corruption** — a line that fails to parse (truncated append,
//!   manual edit, version skew) is skipped and counted. Damage is
//!   per-line: every other entry remains usable.
//!
//! The directory is additionally guarded by a multi-reader /
//! single-writer advisory [`CacheLock`] (two concurrent writers
//! interleaving appends would tear each other's lines, but any number
//! of fully-cached runs may read side by side), carries a crash-safe
//! [`Manifest`] describing the last run's progress, and heals itself:
//! [`ResultCache::compact`] atomically rewrites a file that
//! accumulated torn or superseded lines.
//!
//! # Lock protocol
//!
//! Three kinds of PID-stamped lock files live next to the cache:
//!
//! * [`LOCK_FILE`] — the single writer's lock, held for a whole run.
//! * `orion-exp-cache.rlock.<pid>-<n>` — one per shared reader.
//! * [`INTENT_FILE`] — a writer's *intent*, held only while it waits
//!   for readers to drain. New readers refuse to start while an intent
//!   is posted, so a steady stream of readers cannot starve a writer
//!   (writer fairness).
//!
//! All three are created with `create_new` (atomic create-or-fail) and
//! record the holder's PID. A file whose holder is provably dead is
//! *stale* and broken automatically — via an atomic rename to a
//! breaker-unique name and a **post-rename liveness re-check**, so two
//! racing breakers can never delete a lock a live process just
//! re-acquired (the TOCTOU window a plain check-then-remove leaves
//! open).

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, ErrorKind, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::artifact::write_atomic;
use crate::record::{parse_flat_object, CellRecord};

/// File name of the cache inside a `--cache-dir`.
pub const CACHE_FILE: &str = "orion-exp-cache.jsonl";

/// File name of the exclusive writer lock inside a `--cache-dir`.
pub const LOCK_FILE: &str = "orion-exp-cache.lock";

/// File name of the writer-intent marker inside a `--cache-dir`.
pub const INTENT_FILE: &str = "orion-exp-cache.lock.intent";

/// File-name prefix of shared reader locks inside a `--cache-dir`.
pub const RLOCK_PREFIX: &str = "orion-exp-cache.rlock.";

/// File name of the run manifest inside a `--cache-dir`.
pub const MANIFEST_FILE: &str = "orion-exp-manifest.json";

/// Distinguishes reader locks taken by different threads of one
/// process (the PID alone would collide).
static RLOCK_SEQ: AtomicU64 = AtomicU64::new(0);

/// How the lock is held: by the single writer or by one of many
/// readers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Exclusive: no other writer, no readers.
    Exclusive,
    /// Shared: any number of readers, no writer.
    Shared,
}

/// Advisory multi-reader / single-writer lock on a cache directory,
/// held for the duration of a run and released (file removed) on drop.
///
/// A lock whose holder is no longer alive (a run killed mid-grid) is
/// considered stale and broken automatically, so kill-and-resume needs
/// no manual cleanup; a lock held by a live process is an error the
/// CLI surfaces as bad input (exit 2).
#[derive(Debug)]
pub struct CacheLock {
    path: PathBuf,
    mode: LockMode,
}

impl CacheLock {
    /// Acquires the **exclusive** (writer) lock under `dir` without
    /// waiting, creating the directory if needed.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::AlreadyExists`] when another live writer or reader
    /// holds the lock; any other I/O error from creating the directory
    /// or file.
    pub fn acquire(dir: &Path) -> std::io::Result<CacheLock> {
        CacheLock::acquire_exclusive_wait(dir, Duration::ZERO)
    }

    /// Acquires the exclusive (writer) lock, waiting up to `patience`
    /// for live readers to drain. While waiting, a writer *intent* is
    /// posted that refuses new readers, so the writer cannot be
    /// starved by a stream of short-lived readers.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::AlreadyExists`] when a live writer (or a live
    /// waiting writer) holds the directory, or readers did not drain
    /// within `patience`; other I/O errors are propagated.
    pub fn acquire_exclusive_wait(dir: &Path, patience: Duration) -> std::io::Result<CacheLock> {
        fs::create_dir_all(dir)?;
        let deadline = Instant::now() + patience;
        // Post the intent first: at most one writer may wait, and its
        // presence keeps new readers out (fairness).
        let intent = Intent::post(dir)?;
        let lock_path = dir.join(LOCK_FILE);
        loop {
            match try_create_pid_file(&lock_path)? {
                Ok(()) => {}
                Err(holder) => {
                    // A live writer from before our intent: not stale,
                    // so fail (or keep waiting out our patience — a
                    // writer exits by removing its lock).
                    if Instant::now() < deadline {
                        std::thread::sleep(Duration::from_millis(5));
                        continue;
                    }
                    return Err(held_error(dir, &lock_path, "a live run", &holder));
                }
            }
            // TOCTOU closure (supervision-PR follow-up): `create_new`
            // succeeding is not proof we own the file — a racing
            // breaker that misjudged staleness could have renamed our
            // fresh lock away and a third party recreated it. Re-read
            // and verify the PID is ours *after* acquisition.
            if read_pid(&lock_path) != Some(std::process::id()) {
                continue;
            }
            break;
        }
        let lock = CacheLock {
            path: lock_path,
            mode: LockMode::Exclusive,
        };
        // Writer excludes readers: wait for live ones to drain (their
        // stale husks are broken on the way).
        loop {
            match live_readers(dir) {
                None => break,
                Some(reader) => {
                    if Instant::now() < deadline {
                        std::thread::sleep(Duration::from_millis(5));
                    } else {
                        // `lock` drops here, removing the writer file.
                        return Err(held_error(
                            dir,
                            &reader,
                            "a live shared reader",
                            &fs::read_to_string(&reader).unwrap_or_default(),
                        ));
                    }
                }
            }
        }
        drop(intent);
        Ok(lock)
    }

    /// Acquires a **shared** (reader) lock under `dir`, creating the
    /// directory if needed. Any number of readers may hold the lock at
    /// once; a live writer — or a writer *waiting* for the lock —
    /// excludes new readers.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::AlreadyExists`] when a live writer holds or awaits
    /// the lock; any other I/O error from creating the directory or
    /// file.
    pub fn acquire_shared(dir: &Path) -> std::io::Result<CacheLock> {
        fs::create_dir_all(dir)?;
        let intent_path = dir.join(INTENT_FILE);
        let lock_path = dir.join(LOCK_FILE);
        // Fairness: a posted (live) writer intent refuses new readers.
        if pid_file_held(&intent_path) {
            return Err(held_error(
                dir,
                &intent_path,
                "a waiting writer",
                &fs::read_to_string(&intent_path).unwrap_or_default(),
            ));
        }
        if pid_file_held(&lock_path) {
            return Err(held_error(
                dir,
                &lock_path,
                "a live run",
                &fs::read_to_string(&lock_path).unwrap_or_default(),
            ));
        }
        let seq = RLOCK_SEQ.fetch_add(1, Ordering::Relaxed);
        let rpath = dir.join(format!("{RLOCK_PREFIX}{}-{seq}", std::process::id()));
        let mut f = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&rpath)?;
        let _ = write!(f, "{}", std::process::id());
        drop(f);
        // Re-check: a writer that slipped in between our check and the
        // rlock creation wins — back out so it is not torn under.
        if pid_file_held(&lock_path) || pid_file_held(&intent_path) {
            let _ = fs::remove_file(&rpath);
            return Err(held_error(
                dir,
                &lock_path,
                "a live run",
                &fs::read_to_string(&lock_path).unwrap_or_default(),
            ));
        }
        Ok(CacheLock {
            path: rpath,
            mode: LockMode::Shared,
        })
    }

    /// How this lock is held.
    pub fn mode(&self) -> LockMode {
        self.mode
    }
}

impl Drop for CacheLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// RAII writer-intent marker: removed on drop, including every error
/// path out of the exclusive acquisition.
#[derive(Debug)]
struct Intent {
    path: PathBuf,
}

impl Intent {
    fn post(dir: &Path) -> std::io::Result<Intent> {
        let path = dir.join(INTENT_FILE);
        match try_create_pid_file(&path)? {
            Ok(()) => Ok(Intent { path }),
            Err(holder) => Err(held_error(dir, &path, "a waiting writer", &holder)),
        }
    }
}

impl Drop for Intent {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Tries to `create_new` a PID-stamped lock file, breaking stale
/// holders. `Ok(Ok(()))` = created; `Ok(Err(holder))` = a live holder
/// (its PID text returned) kept it.
///
/// # Errors
///
/// Propagates I/O errors other than `AlreadyExists`.
fn try_create_pid_file(path: &Path) -> std::io::Result<Result<(), String>> {
    loop {
        match OpenOptions::new().write(true).create_new(true).open(path) {
            Ok(mut f) => {
                let _ = write!(f, "{}", std::process::id());
                return Ok(Ok(()));
            }
            Err(e) if e.kind() == ErrorKind::AlreadyExists => {
                if break_stale(path) {
                    continue;
                }
                return Ok(Err(fs::read_to_string(path).unwrap_or_default()));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Whether a PID-stamped lock file currently excludes us: it exists
/// and its holder is alive (stale files are broken on the way).
fn pid_file_held(path: &Path) -> bool {
    path.exists() && !break_stale(path) && path.exists()
}

/// The first live reader-lock path under `dir`, after breaking stale
/// ones; `None` when no live reader remains.
fn live_readers(dir: &Path) -> Option<PathBuf> {
    let entries = fs::read_dir(dir).ok()?;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if !name.starts_with(RLOCK_PREFIX) {
            continue;
        }
        let path = entry.path();
        if !break_stale(&path) && path.exists() {
            return Some(path);
        }
    }
    None
}

/// Breaks `path` if its holder is provably dead. Returns `true` when
/// the file is gone afterwards (broken by us *or* by a racing
/// breaker), `false` when a live holder keeps it.
///
/// The break is race-safe in two steps: an atomic `rename` to a
/// breaker-unique name claims the file (exactly one of N racing
/// breakers wins), then the holder's liveness is **re-verified on the
/// renamed file** before deletion. If the holder turns out alive — it
/// re-acquired between our staleness check and the rename — the file
/// is renamed back, closing the check-then-remove TOCTOU window.
fn break_stale(path: &Path) -> bool {
    if !stale_lock(path) {
        return !path.exists();
    }
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("lock")
        .to_string();
    // A dotfile name outside every lock-file prefix, unique per
    // breaker, so claims are invisible to the reader scan and exactly
    // one of N racing renames can succeed.
    let claim = path.with_file_name(format!(
        ".breaking.{}.{}.{name}",
        std::process::id(),
        RLOCK_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    match fs::rename(path, &claim) {
        Ok(()) => {
            if stale_lock(&claim) {
                let _ = fs::remove_file(&claim);
                true
            } else {
                // The holder is alive after all: put its lock back.
                let _ = fs::rename(&claim, path);
                false
            }
        }
        // Someone else claimed (or the holder released) it first.
        Err(_) => !path.exists(),
    }
}

/// Whether a lock file's holder is provably gone: unreadable PIDs are
/// stale (a torn lock write), and on Linux a PID with no `/proc` entry
/// is stale. Elsewhere liveness cannot be checked cheaply, so a
/// well-formed lock is conservatively treated as held. A missing file
/// is *not* stale — there is nothing to break.
fn stale_lock(path: &Path) -> bool {
    let Ok(text) = fs::read_to_string(path) else {
        return false;
    };
    let Ok(pid) = text.trim().parse::<u32>() else {
        return true;
    };
    !pid_alive(pid)
}

/// Reads the PID a lock file records, `None` when missing/torn.
fn read_pid(path: &Path) -> Option<u32> {
    fs::read_to_string(path).ok()?.trim().parse().ok()
}

/// Whether `pid` names a live process (Linux: `/proc` entry;
/// elsewhere conservatively `true`).
fn pid_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new(&format!("/proc/{pid}")).exists()
    } else {
        true
    }
}

/// A uniform "directory is locked" error.
fn held_error(dir: &Path, path: &Path, what: &str, holder: &str) -> std::io::Error {
    std::io::Error::new(
        ErrorKind::AlreadyExists,
        format!(
            "cache directory `{}` is locked by {what} (pid {}); \
             wait for it to finish or remove `{}`",
            dir.display(),
            holder.trim(),
            path.display(),
        ),
    )
}

/// Crash-safe progress marker for the last grid run against a cache
/// directory, written atomically so a killed run never leaves a torn
/// manifest. A resumed run reads it purely for reporting — the cache
/// contents, not the manifest, decide what re-simulates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Name of the experiment that ran.
    pub spec_name: String,
    /// Cells in that experiment's expanded grid.
    pub total_cells: usize,
    /// Cells whose results were durably cached when it was written.
    pub completed_cells: usize,
}

impl Manifest {
    /// Writes the manifest under `dir` via an atomic rename.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn write(&self, dir: &Path) -> std::io::Result<()> {
        let mut name = String::new();
        for c in self.spec_name.chars() {
            match c {
                '"' | '\\' => {
                    name.push('\\');
                    name.push(c);
                }
                c => name.push(c),
            }
        }
        let json = format!(
            "{{\"spec_name\":\"{}\",\"total_cells\":{},\"completed_cells\":{}}}\n",
            name, self.total_cells, self.completed_cells,
        );
        write_atomic(&dir.join(MANIFEST_FILE), json.as_bytes())
    }

    /// Reads the manifest under `dir`; `None` when absent or
    /// malformed (both mean "no usable progress information").
    pub fn read(dir: &Path) -> Option<Manifest> {
        let text = fs::read_to_string(dir.join(MANIFEST_FILE)).ok()?;
        let obj = parse_flat_object(text.trim())?;
        Some(Manifest {
            spec_name: obj.get("spec_name")?.as_str()?.to_string(),
            total_cells: obj.get("total_cells")?.as_u64()?.try_into().ok()?,
            completed_cells: obj.get("completed_cells")?.as_u64()?.try_into().ok()?,
        })
    }
}

/// An on-disk result cache, loaded eagerly and appended incrementally.
#[derive(Debug)]
pub struct ResultCache {
    path: PathBuf,
    entries: HashMap<u64, CellRecord>,
    corrupt_lines: usize,
    superseded_lines: usize,
}

impl ResultCache {
    /// Opens (or initializes) the cache under `dir`. Missing files and
    /// directories are created lazily on first append; corrupt lines
    /// are skipped and counted, never fatal.
    ///
    /// # Errors
    ///
    /// Returns an I/O error only when an *existing* cache file cannot
    /// be read.
    pub fn open(dir: &Path) -> std::io::Result<ResultCache> {
        let path = dir.join(CACHE_FILE);
        let mut entries = HashMap::new();
        let mut corrupt_lines = 0;
        let mut superseded_lines = 0;
        if path.exists() {
            let text = fs::read_to_string(&path)?;
            for line in text.lines() {
                if line.trim().is_empty() {
                    continue;
                }
                match CellRecord::from_json_line(line) {
                    // Later lines win: a re-simulated cell supersedes
                    // its earlier entry.
                    Some(rec) => {
                        if entries.insert(rec.fingerprint, rec).is_some() {
                            superseded_lines += 1;
                        }
                    }
                    None => corrupt_lines += 1,
                }
            }
        }
        Ok(ResultCache {
            path,
            entries,
            corrupt_lines,
            superseded_lines,
        })
    }

    /// Looks up a result by fingerprint. The returned record is marked
    /// `cached`.
    pub fn get(&self, fingerprint: u64) -> Option<&CellRecord> {
        self.entries.get(&fingerprint)
    }

    /// Iterates over every loaded `(fingerprint, record)` pair, in
    /// arbitrary order.
    pub fn entries(&self) -> impl Iterator<Item = (u64, &CellRecord)> {
        self.entries.iter().map(|(fp, rec)| (*fp, rec))
    }

    /// Number of usable entries loaded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of unparseable lines skipped at load.
    pub fn corrupt_lines(&self) -> usize {
        self.corrupt_lines
    }

    /// Whether the on-disk file deviates from the loaded entry set:
    /// torn lines (a killed append) or superseded duplicates.
    pub fn needs_compaction(&self) -> bool {
        self.corrupt_lines > 0 || self.superseded_lines > 0
    }

    /// Rewrites the cache file to exactly the loaded entries, sorted
    /// by cell key, via an atomic temp-file rename — healing torn and
    /// duplicate lines a killed run left behind. A no-op (returning
    /// `false`) when the file already matches. Also garbage-collects
    /// checkpoint files of completed cells (see
    /// [`gc_checkpoints`](Self::gc_checkpoints)).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error; the original file survives a
    /// failed rewrite.
    pub fn compact(&self) -> std::io::Result<bool> {
        self.gc_checkpoints();
        if !self.needs_compaction() {
            return Ok(false);
        }
        let mut recs: Vec<&CellRecord> = self.entries.values().collect();
        recs.sort_by(|a, b| a.cell.cmp(&b.cell));
        let mut text = String::new();
        for r in recs {
            text.push_str(&r.to_json_line());
            text.push('\n');
        }
        write_atomic(&self.path, text.as_bytes())?;
        Ok(true)
    }

    /// Removes leftover mid-run checkpoints of cells whose results are
    /// already cached. A finished cell normally deletes its own
    /// checkpoint, but a process killed between the final append and
    /// that deletion leaves debris — compaction heals it here, exactly
    /// like torn cache lines. Best-effort: an undeletable file only
    /// costs disk space, never correctness (a leftover checkpoint is
    /// masked by the cache hit anyway).
    fn gc_checkpoints(&self) {
        let Some(dir) = self.path.parent() else {
            return;
        };
        let Ok(entries) = fs::read_dir(dir.join("ckpt")) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name.strip_suffix(".ckpt") else {
                continue;
            };
            let Some(fp) = crate::fingerprint::from_hex(stem) else {
                continue;
            };
            if self.entries.contains_key(&fp) {
                let _ = fs::remove_file(entry.path());
            }
        }
    }

    /// Opens an append handle for writing fresh results as they
    /// complete (creating the directory and file on first use).
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the directory or file cannot be created.
    pub fn appender(&self) -> std::io::Result<CacheAppender> {
        if let Some(parent) = self.path.parent() {
            fs::create_dir_all(parent)?;
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        Ok(CacheAppender {
            writer: BufWriter::new(file),
        })
    }
}

/// An append-only handle to the cache file. Each record is written as
/// one line and flushed immediately, so an interrupted run loses at
/// most the record being written — and a torn final line is exactly
/// the corruption [`ResultCache::open`] tolerates.
#[derive(Debug)]
pub struct CacheAppender {
    writer: BufWriter<File>,
}

impl CacheAppender {
    /// Appends one record and flushes. Failpoint: `cache.append`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error; an armed `cache.append`
    /// failpoint with the `error` action surfaces the same way, so
    /// chaos tests exercise the exact degraded path a full disk would.
    pub fn append(&mut self, record: &CellRecord) -> std::io::Result<()> {
        orion_core::failpoint::hit("cache.append")
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        self.writer.write_all(record.to_json_line().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ExperimentSpec;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("orion-exp-cache-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn records(n: usize) -> Vec<CellRecord> {
        let rates: Vec<String> = (1..=n).map(|i| format!("0.{i:02}")).collect();
        let spec = ExperimentSpec::parse(&format!(
            "[experiment]\nname = \"t\"\n[grid]\npresets = [\"vc16\"]\nrates = [{}]\n",
            rates.join(", ")
        ))
        .unwrap();
        spec.expand()
            .iter()
            .map(|c| CellRecord::from_error(c, "placeholder"))
            .collect()
    }

    #[test]
    fn roundtrip_and_miss() {
        let dir = temp_dir("roundtrip");
        let cache = ResultCache::open(&dir).unwrap();
        assert!(cache.is_empty());
        let recs = records(3);
        let mut app = cache.appender().unwrap();
        for r in &recs[..2] {
            app.append(r).unwrap();
        }
        drop(app);

        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.corrupt_lines(), 0);
        assert!(cache.get(recs[0].fingerprint).unwrap().cached);
        assert!(cache.get(recs[2].fingerprint).is_none(), "miss for unseen");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_line_skipped_not_fatal() {
        let dir = temp_dir("corrupt");
        let cache = ResultCache::open(&dir).unwrap();
        let recs = records(3);
        let mut app = cache.appender().unwrap();
        for r in &recs {
            app.append(r).unwrap();
        }
        drop(app);

        // Corrupt the middle line.
        let path = dir.join(CACHE_FILE);
        let text = fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        lines[1] = lines[1][..lines[1].len() / 2].to_string();
        fs::write(&path, lines.join("\n") + "\n").unwrap();

        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.len(), 2, "the other lines survive");
        assert_eq!(cache.corrupt_lines(), 1);
        assert!(cache.get(recs[1].fingerprint).is_none());
        assert!(cache.get(recs[0].fingerprint).is_some());
        assert!(cache.get(recs[2].fingerprint).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn later_entries_supersede_earlier() {
        let dir = temp_dir("supersede");
        let cache = ResultCache::open(&dir).unwrap();
        let mut rec = records(1).remove(0);
        let mut app = cache.appender().unwrap();
        app.append(&rec).unwrap();
        rec.error = Some("newer".into());
        app.append(&rec).unwrap();
        drop(app);

        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(
            cache.get(rec.fingerprint).unwrap().error.as_deref(),
            Some("newer")
        );
        assert!(cache.needs_compaction(), "a superseded line is debris");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lock_is_exclusive_and_released_on_drop() {
        let dir = temp_dir("lock");
        let lock = CacheLock::acquire(&dir).unwrap();
        let second = CacheLock::acquire(&dir);
        let err = second.expect_err("a live lock must not be re-acquired");
        assert_eq!(err.kind(), ErrorKind::AlreadyExists);
        assert!(err.to_string().contains(LOCK_FILE), "{err}");
        drop(lock);
        assert!(!dir.join(LOCK_FILE).exists(), "drop removes the lock");
        let relock = CacheLock::acquire(&dir).unwrap();
        drop(relock);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_lock_is_broken_automatically() {
        let dir = temp_dir("stale-lock");
        fs::create_dir_all(&dir).unwrap();
        // A garbage PID is always stale; on Linux a dead PID would be
        // detected the same way via /proc.
        fs::write(dir.join(LOCK_FILE), "not-a-pid").unwrap();
        let lock = CacheLock::acquire(&dir).expect("stale lock must be broken");
        drop(lock);
        let _ = fs::remove_dir_all(&dir);
    }

    /// A PID no live process can have: Linux caps PIDs at 2^22 by
    /// default and the value is far beyond any configured `pid_max`.
    const DEAD_PID: &str = "4294967294";

    #[test]
    fn shared_locks_coexist_and_exclude_writers() {
        let dir = temp_dir("rwlock");
        let r1 = CacheLock::acquire_shared(&dir).unwrap();
        let r2 = CacheLock::acquire_shared(&dir).unwrap();
        assert_eq!(r1.mode(), LockMode::Shared);
        assert_eq!(r2.mode(), LockMode::Shared);

        let w = CacheLock::acquire(&dir);
        let err = w.expect_err("readers exclude the writer");
        assert_eq!(err.kind(), ErrorKind::AlreadyExists);
        assert!(err.to_string().contains("reader"), "{err}");
        assert!(
            !dir.join(INTENT_FILE).exists(),
            "failed writer leaves no intent behind"
        );

        drop(r1);
        drop(r2);
        let w = CacheLock::acquire(&dir).expect("drained readers free the writer");
        assert_eq!(w.mode(), LockMode::Exclusive);
        let r3 = CacheLock::acquire_shared(&dir);
        assert_eq!(
            r3.expect_err("writer excludes readers").kind(),
            ErrorKind::AlreadyExists
        );
        drop(w);
        let _ = CacheLock::acquire_shared(&dir).expect("writer release frees readers");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn waiting_writer_refuses_new_readers_then_acquires() {
        let dir = temp_dir("fairness");
        let reader = CacheLock::acquire_shared(&dir).unwrap();
        let dir2 = dir.clone();
        let writer = std::thread::spawn(move || {
            CacheLock::acquire_exclusive_wait(&dir2, Duration::from_secs(10))
        });
        // Wait for the writer's intent to be posted.
        for _ in 0..1000 {
            if dir.join(INTENT_FILE).exists() {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(dir.join(INTENT_FILE).exists(), "writer posted its intent");
        let late = CacheLock::acquire_shared(&dir);
        let err = late.expect_err("intent refuses new readers (fairness)");
        assert_eq!(err.kind(), ErrorKind::AlreadyExists);
        assert!(err.to_string().contains("writer"), "{err}");
        drop(reader);
        let w = writer
            .join()
            .unwrap()
            .expect("writer acquires once drained");
        assert_eq!(w.mode(), LockMode::Exclusive);
        assert!(!dir.join(INTENT_FILE).exists(), "intent cleared on acquire");
        drop(w);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_reader_locks_are_broken_by_writers() {
        let dir = temp_dir("stale-reader");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(format!("{RLOCK_PREFIX}{DEAD_PID}-0")), DEAD_PID).unwrap();
        let w = CacheLock::acquire(&dir).expect("stale reader must not block a writer");
        drop(w);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn racing_breakers_break_exactly_once_without_stealing() {
        let dir = temp_dir("racing-breakers");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(LOCK_FILE);

        // Two breakers racing on a genuinely stale lock: both must
        // report it gone, exactly one rename wins, no debris remains.
        for _ in 0..50 {
            fs::write(&path, DEAD_PID).unwrap();
            let (a, b) = std::thread::scope(|s| {
                let t1 = s.spawn(|| break_stale(&path));
                let t2 = s.spawn(|| break_stale(&path));
                (t1.join().unwrap(), t2.join().unwrap())
            });
            assert!(a && b, "both racers observe the stale lock broken");
            assert!(!path.exists());
            let debris: Vec<String> = fs::read_dir(&dir)
                .unwrap()
                .flatten()
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .collect();
            assert!(debris.is_empty(), "leftover claim files: {debris:?}");
        }

        // A live holder survives a breaker: liveness is re-verified
        // after the rename claims the file, so the lock is put back.
        fs::write(&path, format!("{}", std::process::id())).unwrap();
        assert!(!break_stale(&path), "live lock must not be broken");
        assert!(path.exists(), "live lock file restored");
        assert_eq!(read_pid(&path), Some(std::process::id()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_roundtrips_atomically() {
        let dir = temp_dir("manifest");
        fs::create_dir_all(&dir).unwrap();
        assert_eq!(Manifest::read(&dir), None, "absent manifest reads None");
        let m = Manifest {
            spec_name: "fig5".into(),
            total_cells: 16,
            completed_cells: 7,
        };
        m.write(&dir).unwrap();
        assert_eq!(Manifest::read(&dir), Some(m));
        assert!(!dir.join(format!("{MANIFEST_FILE}.tmp")).exists());
        fs::write(dir.join(MANIFEST_FILE), "{torn").unwrap();
        assert_eq!(Manifest::read(&dir), None, "torn manifest reads None");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_heals_torn_and_duplicate_lines() {
        let dir = temp_dir("compact");
        let cache = ResultCache::open(&dir).unwrap();
        let recs = records(3);
        let mut app = cache.appender().unwrap();
        for r in &recs {
            app.append(r).unwrap();
        }
        app.append(&recs[1]).unwrap(); // duplicate
        drop(app);
        // Tear the final line, as a SIGKILL mid-append would.
        let path = dir.join(CACHE_FILE);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() - 30]).unwrap();

        let cache = ResultCache::open(&dir).unwrap();
        assert!(cache.needs_compaction());
        assert!(cache.compact().unwrap(), "a rewrite happened");

        let healed = ResultCache::open(&dir).unwrap();
        assert_eq!(healed.len(), 3);
        assert!(!healed.needs_compaction(), "compaction converges");
        assert!(!healed.compact().unwrap(), "second compact is a no-op");
        let keys: Vec<String> = fs::read_to_string(&path)
            .unwrap()
            .lines()
            .map(|l| l.to_string())
            .collect();
        assert_eq!(keys.len(), 3, "exactly one line per cell");
        let _ = fs::remove_dir_all(&dir);
    }
}
