//! A minimal TOML reader for experiment specs.
//!
//! The build environment has no registry access, so rather than pull in
//! a full TOML crate this module parses the small, line-oriented subset
//! the spec format needs:
//!
//! * `# comments` and blank lines,
//! * `[section]` headers (one level, no dotted or array-of-table
//!   syntax),
//! * `key = value` pairs where a value is a double-quoted string, an
//!   integer, a float, a boolean, or a (possibly multi-line) array of
//!   those scalars.
//!
//! Every error carries the 1-based line number it was found on, so spec
//! diagnostics can point at the offending line.

use std::collections::BTreeMap;
use std::fmt;

/// A scalar or array value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A double-quoted string.
    Str(String),
    /// An integer (no underscores or exponents).
    Int(i64),
    /// A float.
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
    /// A homogeneous or mixed array of scalars.
    Array(Vec<Value>),
}

impl Value {
    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
        }
    }
}

/// A value plus the line it was defined on.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// The parsed value.
    pub value: Value,
    /// 1-based line of the `key = value` pair.
    pub line: usize,
}

/// A parsed document: sections (`""` is the root, before any header)
/// mapping keys to values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Document {
    /// Section name → key → entry.
    pub sections: BTreeMap<String, BTreeMap<String, Entry>>,
    section_lines: BTreeMap<String, usize>,
}

impl Document {
    /// The entry for `key` in `section`, if present.
    pub fn get(&self, section: &str, key: &str) -> Option<&Entry> {
        self.sections.get(section).and_then(|s| s.get(key))
    }

    /// Whether a `[section]` header was present.
    pub fn has_section(&self, section: &str) -> bool {
        self.sections.contains_key(section)
    }

    /// The line a section header appeared on (0 for the root).
    pub fn section_line(&self, section: &str) -> usize {
        self.section_lines.get(section).copied().unwrap_or(0)
    }
}

/// A syntax error with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line the error was found on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Longest line (in bytes) the parser accepts. Specs are hand-written
/// configuration; a line past this limit is a corrupt or non-spec file
/// (a binary, a minified blob), and rejecting it early keeps error
/// messages — which echo the offending line — bounded.
pub const MAX_LINE_LEN: usize = 4096;

/// Validates `bytes` as UTF-8, reporting the 1-based line of the first
/// invalid byte instead of panicking or losing position information.
///
/// # Errors
///
/// Returns a [`ParseError`] pointing at the line that contains the
/// first invalid byte sequence.
pub fn validate_utf8(bytes: &[u8]) -> Result<&str, ParseError> {
    std::str::from_utf8(bytes).map_err(|e| {
        let offset = e.valid_up_to();
        let line = bytes[..offset].iter().filter(|&&b| b == b'\n').count() + 1;
        err(line, format!("invalid UTF-8 at byte offset {offset}"))
    })
}

/// Parses a complete document from raw bytes: UTF-8 validation with a
/// line-numbered error, then [`parse`].
///
/// # Errors
///
/// Returns the first [`ParseError`] — invalid UTF-8 or a syntax error.
pub fn parse_bytes(bytes: &[u8]) -> Result<Document, ParseError> {
    parse(validate_utf8(bytes)?)
}

fn check_line_len(raw: &str, lineno: usize) -> Result<(), ParseError> {
    if raw.len() > MAX_LINE_LEN {
        return Err(err(
            lineno,
            format!(
                "line is {} bytes, which exceeds the {MAX_LINE_LEN}-byte limit",
                raw.len()
            ),
        ));
    }
    Ok(())
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Strips a trailing comment that is not inside a string literal.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn valid_key(key: &str) -> bool {
    !key.is_empty()
        && key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

/// Parses a scalar token (no arrays).
fn parse_scalar(token: &str, line: usize) -> Result<Value, ParseError> {
    let token = token.trim();
    if let Some(rest) = token.strip_prefix('"') {
        let Some(inner) = rest.strip_suffix('"') else {
            return Err(err(line, format!("unterminated string `{token}`")));
        };
        // Reject internal unescaped quotes like `"a"b"`.
        let mut out = String::new();
        let mut chars = inner.chars();
        while let Some(c) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    other => {
                        return Err(err(
                            line,
                            format!("unsupported escape `\\{}`", other.unwrap_or(' ')),
                        ))
                    }
                },
                '"' => return Err(err(line, format!("stray quote inside string `{token}`"))),
                c => out.push(c),
            }
        }
        return Ok(Value::Str(out));
    }
    match token {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        "" => return Err(err(line, "missing value")),
        _ => {}
    }
    if let Ok(i) = token.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Ok(f) = token.parse::<f64>() {
        if f.is_finite() {
            return Ok(Value::Float(f));
        }
    }
    Err(err(line, format!("unrecognised value `{token}`")))
}

/// Splits the inside of an array on top-level commas (strings may
/// contain commas).
fn split_array_items(body: &str, line: usize) -> Result<Vec<String>, ParseError> {
    let mut items = Vec::new();
    let mut current = String::new();
    let mut in_str = false;
    let mut escaped = false;
    for c in body.chars() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                current.push(c);
                continue;
            }
            '"' if !escaped => {
                in_str = !in_str;
                current.push(c);
            }
            ',' if !in_str => {
                items.push(std::mem::take(&mut current));
                current.clear();
            }
            '[' | ']' if !in_str => {
                return Err(err(line, "nested arrays are not supported"));
            }
            c => current.push(c),
        }
        escaped = false;
    }
    if in_str {
        return Err(err(line, "unterminated string in array"));
    }
    if !current.trim().is_empty() {
        items.push(current);
    }
    Ok(items)
}

/// Parses a complete document.
///
/// # Errors
///
/// Returns the first [`ParseError`] with its line number.
pub fn parse(text: &str) -> Result<Document, ParseError> {
    let mut doc = Document::default();
    doc.sections.insert(String::new(), BTreeMap::new());
    let mut current = String::new();

    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let lineno = idx + 1;
        check_line_len(raw, lineno)?;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return Err(err(lineno, format!("malformed section header `{line}`")));
            };
            let name = name.trim();
            if name.starts_with('[') || name.ends_with(']') {
                return Err(err(
                    lineno,
                    "array-of-tables `[[...]]` syntax is not supported",
                ));
            }
            if !valid_key(name) {
                return Err(err(lineno, format!("invalid section name `{name}`")));
            }
            if doc.sections.contains_key(name) {
                return Err(err(lineno, format!("duplicate section `[{name}]`")));
            }
            doc.sections.insert(name.to_string(), BTreeMap::new());
            doc.section_lines.insert(name.to_string(), lineno);
            current = name.to_string();
            continue;
        }
        let Some(eq) = line.find('=') else {
            return Err(err(
                lineno,
                format!("expected `key = value`, found `{line}`"),
            ));
        };
        let key = line[..eq].trim();
        if !valid_key(key) {
            return Err(err(lineno, format!("invalid key `{key}`")));
        }
        let mut rhs = line[eq + 1..].trim().to_string();

        // Multi-line array: keep consuming lines until brackets balance.
        if rhs.starts_with('[') {
            while !balanced(&rhs) {
                let Some((next_idx, next)) = lines.next() else {
                    return Err(err(lineno, format!("unterminated array for key `{key}`")));
                };
                check_line_len(next, next_idx + 1)?;
                rhs.push(' ');
                rhs.push_str(strip_comment(next).trim());
            }
        }

        let value = if let Some(body) = rhs.strip_prefix('[') {
            let Some(body) = body.strip_suffix(']') else {
                return Err(err(lineno, format!("malformed array for key `{key}`")));
            };
            let items = split_array_items(body, lineno)?;
            let mut values = Vec::new();
            for item in items {
                values.push(parse_scalar(&item, lineno)?);
            }
            Value::Array(values)
        } else {
            parse_scalar(&rhs, lineno)?
        };

        let section = doc.sections.get_mut(&current).expect("current exists");
        if section.contains_key(key) {
            return Err(err(lineno, format!("duplicate key `{key}`")));
        }
        section.insert(
            key.to_string(),
            Entry {
                value,
                line: lineno,
            },
        );
    }
    Ok(doc)
}

/// Whether every `[` outside a string has a matching `]`.
fn balanced(s: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escaped = false;
    for c in s.chars() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
        escaped = false;
    }
    depth == 0 && !in_str
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_scalars_and_arrays() {
        let doc = parse(
            r#"
# a comment
top = 1

[experiment]
name = "fig5"      # trailing comment
quick = false
scale = 2.5

[grid]
rates = [0.02, 0.04, 0.06]
presets = ["wh64", "vc64"]
"#,
        )
        .unwrap();
        assert_eq!(doc.get("", "top").unwrap().value, Value::Int(1));
        assert_eq!(
            doc.get("experiment", "name").unwrap().value,
            Value::Str("fig5".into())
        );
        assert_eq!(
            doc.get("experiment", "quick").unwrap().value,
            Value::Bool(false)
        );
        assert_eq!(
            doc.get("experiment", "scale").unwrap().value,
            Value::Float(2.5)
        );
        match &doc.get("grid", "rates").unwrap().value {
            Value::Array(v) => assert_eq!(v.len(), 3),
            other => panic!("expected array, got {other:?}"),
        }
        match &doc.get("grid", "presets").unwrap().value {
            Value::Array(v) => assert_eq!(v[1], Value::Str("vc64".into())),
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn multi_line_arrays() {
        let doc = parse("[g]\nrates = [\n  0.1, # one\n  0.2,\n  0.3\n]\nnext = 4\n").unwrap();
        match &doc.get("g", "rates").unwrap().value {
            Value::Array(v) => assert_eq!(v.len(), 3),
            other => panic!("expected array, got {other:?}"),
        }
        assert_eq!(doc.get("g", "next").unwrap().value, Value::Int(4));
    }

    #[test]
    fn strings_keep_hashes_and_escapes() {
        let doc = parse("k = \"a # not comment\"\ne = \"q\\\"t\\\\\"\n").unwrap();
        assert_eq!(
            doc.get("", "k").unwrap().value,
            Value::Str("a # not comment".into())
        );
        assert_eq!(doc.get("", "e").unwrap().value, Value::Str("q\"t\\".into()));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("ok = 1\nbroken\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse("\n\nk = \"unterminated\n").unwrap_err();
        assert_eq!(e.line, 3);
        let e = parse("[a]\nx = 1\n[a]\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("duplicate"));
        let e = parse("k = [1, [2]]\n").unwrap_err();
        assert!(e.message.contains("nested"));
        let e = parse("[g]\nr = [1, 2\n").unwrap_err();
        assert!(e.message.contains("unterminated array"));
    }

    #[test]
    fn rejects_bad_tokens() {
        assert!(parse("k = 1..5\n").is_err());
        assert!(parse("k =\n").is_err());
        assert!(parse("bad key = 1\n").is_err());
        assert!(parse("[bad name]\n").is_err());
        assert!(parse("[[table]]\n").is_err());
        assert!(parse("k = 1\nk = 2\n").is_err());
    }

    #[test]
    fn entry_lines_recorded() {
        let doc = parse("\n[s]\nk = 1\n").unwrap();
        assert_eq!(doc.get("s", "k").unwrap().line, 3);
        assert_eq!(doc.section_line("s"), 2);
        assert!(doc.has_section("s"));
        assert!(!doc.has_section("t"));
    }

    #[test]
    fn value_kinds() {
        assert_eq!(Value::Int(1).kind(), "integer");
        assert_eq!(Value::Str(String::new()).kind(), "string");
        assert_eq!(Value::Float(0.5).kind(), "float");
        assert_eq!(Value::Bool(true).kind(), "boolean");
        assert_eq!(Value::Array(vec![]).kind(), "array");
    }
}
