//! Artifact writers: the engine's records as versioned JSONL and CSV
//! files.
//!
//! Files are written atomically-enough for experiment use (full
//! buffer, single create) with records in the order the engine
//! returns them — sorted by cell key — so two runs of the same spec
//! produce byte-identical files regardless of thread count or cache
//! state.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::record::CellRecord;

/// Paths of the artifacts one engine run produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifacts {
    /// The JSONL file (one [`CellRecord`] per line).
    pub jsonl: PathBuf,
    /// The CSV file (header + one row per record).
    pub csv: PathBuf,
}

/// Renders records as JSONL bytes.
pub fn to_jsonl(records: &[CellRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_json_line());
        out.push('\n');
    }
    out
}

/// Renders records as CSV bytes (header included).
pub fn to_csv(records: &[CellRecord]) -> String {
    let mut out = String::from(CellRecord::csv_header());
    out.push('\n');
    for r in records {
        out.push_str(&r.to_csv_row());
        out.push('\n');
    }
    out
}

/// Writes `<name>.jsonl` and `<name>.csv` under `dir` (created if
/// missing).
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn write_artifacts(
    dir: &Path,
    name: &str,
    records: &[CellRecord],
) -> std::io::Result<Artifacts> {
    fs::create_dir_all(dir)?;
    let jsonl = dir.join(format!("{name}.jsonl"));
    let csv = dir.join(format!("{name}.csv"));
    let mut f = fs::File::create(&jsonl)?;
    f.write_all(to_jsonl(records).as_bytes())?;
    let mut f = fs::File::create(&csv)?;
    f.write_all(to_csv(records).as_bytes())?;
    Ok(Artifacts { jsonl, csv })
}
