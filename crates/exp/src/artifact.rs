//! Artifact writers: the engine's records as versioned JSONL and CSV
//! files.
//!
//! Files are written **atomically**: bytes land in a `.tmp` sibling,
//! are fsynced, and are renamed over the destination in one step. A
//! run killed mid-write therefore leaves either the previous complete
//! artifact or the new complete artifact — never a torn file. Records
//! are written in the order the engine returns them — sorted by cell
//! key — so two runs of the same spec produce byte-identical files
//! regardless of thread count or cache state.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::record::CellRecord;

/// Paths of the artifacts one engine run produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifacts {
    /// The JSONL file (one [`CellRecord`] per line).
    pub jsonl: PathBuf,
    /// The CSV file (header + one row per record).
    pub csv: PathBuf,
}

/// Renders records as JSONL bytes.
pub fn to_jsonl(records: &[CellRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_json_line());
        out.push('\n');
    }
    out
}

/// Renders records as CSV bytes (header included).
pub fn to_csv(records: &[CellRecord]) -> String {
    let mut out = String::from(CellRecord::csv_header());
    out.push('\n');
    for r in records {
        out.push_str(&r.to_csv_row());
        out.push('\n');
    }
    out
}

/// Writes `bytes` to `path` crash-safely: a `.tmp` sibling is written
/// in full, fsynced, then renamed over the destination. Readers never
/// observe a partially written file.
///
/// # Errors
///
/// Returns the underlying I/O error; a failed write leaves the
/// destination untouched (the orphan `.tmp` is removed best-effort).
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut tmp_name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    let result = (|| {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Writes `<name>.jsonl` and `<name>.csv` under `dir` (created if
/// missing), each via [`write_atomic`].
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn write_artifacts(
    dir: &Path,
    name: &str,
    records: &[CellRecord],
) -> std::io::Result<Artifacts> {
    fs::create_dir_all(dir)?;
    let jsonl = dir.join(format!("{name}.jsonl"));
    let csv = dir.join(format!("{name}.csv"));
    write_atomic(&jsonl, to_jsonl(records).as_bytes())?;
    write_atomic(&csv, to_csv(records).as_bytes())?;
    Ok(Artifacts { jsonl, csv })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_write_replaces_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join(format!("orion-exp-atomic-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.jsonl");
        write_atomic(&path, b"first\n").unwrap();
        write_atomic(&path, b"second\n").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "second\n");
        assert!(
            !dir.join("out.jsonl.tmp").exists(),
            "temp file must not survive a successful write"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
