//! Artifact writers: the engine's records as versioned JSONL and CSV
//! files.
//!
//! Files are written **atomically**: bytes land in a `.tmp` sibling,
//! are fsynced, and are renamed over the destination in one step. A
//! run killed mid-write therefore leaves either the previous complete
//! artifact or the new complete artifact — never a torn file. Records
//! are written in the order the engine returns them — sorted by cell
//! key — so two runs of the same spec produce byte-identical files
//! regardless of thread count or cache state.

use std::fs;
use std::path::{Path, PathBuf};

use crate::record::CellRecord;

// The atomic-write primitive moved down to `orion-ckpt` so checkpoint
// files and artifacts share one crash-safety implementation; the
// re-export keeps this crate's API unchanged.
pub use orion_ckpt::io::write_atomic;

/// Paths of the artifacts one engine run produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifacts {
    /// The JSONL file (one [`CellRecord`] per line).
    pub jsonl: PathBuf,
    /// The CSV file (header + one row per record).
    pub csv: PathBuf,
}

/// Strips execution provenance before a record enters an artifact.
///
/// Artifacts are a pure function of the spec: the checkpoint
/// provenance fields (`resumed_from_cycle`, `checkpoints_written`)
/// describe how one particular execution happened to run — resumed
/// from a snapshot or from cycle 0 — not what the result is, and the
/// results themselves are bit-identical either way. Normalizing them
/// here is what makes a resumed run's artifacts byte-identical to an
/// uninterrupted run's (the guarantee the CI `chaos-resume` job checks
/// with `cmp`). Cache lines and serve responses keep the real
/// provenance.
fn normalized(r: &CellRecord) -> CellRecord {
    let mut r = r.clone();
    r.resumed_from_cycle = None;
    r.checkpoints_written = 0;
    r
}

/// Renders records as JSONL bytes (execution provenance normalized —
/// see [`write_artifacts`]).
pub fn to_jsonl(records: &[CellRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&normalized(r).to_json_line());
        out.push('\n');
    }
    out
}

/// Renders records as CSV bytes (header included; execution
/// provenance normalized — see [`write_artifacts`]).
pub fn to_csv(records: &[CellRecord]) -> String {
    let mut out = String::from(CellRecord::csv_header());
    out.push('\n');
    for r in records {
        out.push_str(&normalized(r).to_csv_row());
        out.push('\n');
    }
    out
}

/// Writes `<name>.jsonl` and `<name>.csv` under `dir` (created if
/// missing), each via [`write_atomic`].
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn write_artifacts(
    dir: &Path,
    name: &str,
    records: &[CellRecord],
) -> std::io::Result<Artifacts> {
    fs::create_dir_all(dir)?;
    let jsonl = dir.join(format!("{name}.jsonl"));
    let csv = dir.join(format!("{name}.csv"));
    write_atomic(&jsonl, to_jsonl(records).as_bytes())?;
    write_atomic(&csv, to_csv(records).as_bytes())?;
    Ok(Artifacts { jsonl, csv })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_write_replaces_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join(format!("orion-exp-atomic-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.jsonl");
        write_atomic(&path, b"first\n").unwrap();
        write_atomic(&path, b"second\n").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "second\n");
        assert!(
            !dir.join("out.jsonl.tmp").exists(),
            "temp file must not survive a successful write"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
