//! The versioned per-cell result record: one JSON object per line in
//! artifacts and cache files, one row in CSV exports.
//!
//! Records are written with a **fixed field order** and Rust's
//! shortest-roundtrip `{}` float formatting, so a record's byte
//! representation is a pure function of its contents — the property
//! the determinism tests rely on (`--threads 8` artifacts must equal
//! `--threads 1` artifacts byte-for-byte).
//!
//! Numbers are parsed back from their **raw JSON tokens**, not through
//! `f64`: `derived_seed` is a full-range `u64` that an `f64` detour
//! would silently round.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use orion_core::Report;
use orion_sim::Component;

use crate::fingerprint;
use crate::spec::{flow_control_name, vc_discipline_name, Cell};

/// Version of the record layout (JSONL fields and CSV columns). Bump
/// on any field addition, removal or reordering.
///
/// Version history: 1 = initial layout; 2 = added the supervision
/// fields `cell_outcome` and `attempts`; 3 = added the per-cell
/// metrics fields `flits_delivered`, `latency_p50` and `latency_p99`;
/// 4 = added the checkpoint provenance fields `resumed_from_cycle`
/// and `checkpoints_written` (old caches are invalidated by design —
/// their lines parse as version skew and re-simulate).
pub const SCHEMA_VERSION: u32 = 4;

/// One grid cell's outcome, flattened for artifacts and the cache.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// Record-layout version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The cell key (stable identity; artifact sort order).
    pub cell: String,
    /// Content-address of the result (see [`crate::fingerprint`]).
    pub fingerprint: u64,
    /// Preset name.
    pub preset: String,
    /// Traffic pattern name.
    pub traffic: String,
    /// Injection rate in packets/cycle/node.
    pub rate: f64,
    /// Spec-level seed.
    pub seed: u64,
    /// RNG seed derived from the cell key.
    pub derived_seed: u64,
    /// Resolved flow control.
    pub flow_control: String,
    /// Resolved VC discipline.
    pub vc_discipline: String,
    /// Resolved packet length in flits.
    pub packet_len: u32,
    /// How the run ended ([`orion_core::RunOutcome`] label, or
    /// `"error"` when the configuration was rejected).
    pub outcome: String,
    /// Typed-error message for rejected configurations, or the panic
    /// payload for crashed cells.
    pub error: Option<String>,
    /// Supervision verdict for this cell: `"ok"` (first-try success),
    /// `"retried"` (succeeded after one or more panicking attempts),
    /// `"crashed"` (every attempt panicked; quarantined) or
    /// `"timed-out"` (exceeded its wall-clock budget).
    pub cell_outcome: String,
    /// Simulation attempts made (1 for a first-try success).
    pub attempts: u32,
    /// Whether the network was at or beyond saturation.
    pub saturated: bool,
    /// Average tagged-packet latency in cycles (NaN when no packet
    /// completed; serialized as `null`).
    pub avg_latency: f64,
    /// Analytic zero-load latency in cycles.
    pub zero_load_latency: f64,
    /// Measured cycles (after warm-up).
    pub measured_cycles: u64,
    /// Delivered flits per cycle over the measured window.
    pub throughput: f64,
    /// Total network power in watts.
    pub total_power_w: f64,
    /// Buffer component power in watts.
    pub buffer_w: f64,
    /// Crossbar component power in watts.
    pub crossbar_w: f64,
    /// Arbiter component power in watts.
    pub arbiter_w: f64,
    /// Link component power in watts.
    pub link_w: f64,
    /// Central-buffer component power in watts.
    pub central_w: f64,
    /// Packets injected during the run.
    pub packets_injected: u64,
    /// Packets delivered during the run.
    pub packets_delivered: u64,
    /// Packets dropped (fault runs).
    pub packets_dropped: u64,
    /// Packets detoured around faults.
    pub packets_detoured: u64,
    /// Flits ejected during the run.
    pub flits_delivered: u64,
    /// Median tagged-packet latency in cycles (NaN when the latency
    /// sample is empty; serialized as `null`).
    pub latency_p50: f64,
    /// 99th-percentile tagged-packet latency in cycles (NaN when the
    /// latency sample is empty; serialized as `null`).
    pub latency_p99: f64,
    /// The cycle a mid-run checkpoint resumed this cell from, or
    /// `None` (serialized `null`) when the cell ran from cycle 0.
    /// Provenance only: resumed results are bit-identical to
    /// uninterrupted ones.
    pub resumed_from_cycle: Option<u64>,
    /// Checkpoints persisted while this cell ran (0 when
    /// checkpointing was off).
    pub checkpoints_written: u64,
    /// Whether this record came from the cache rather than a fresh
    /// simulation. Runtime bookkeeping only — never serialized, so
    /// cached and fresh runs produce identical artifacts.
    pub cached: bool,
}

impl CellRecord {
    /// Builds the record for a completed (or degraded) simulation.
    pub fn from_report(cell: &Cell, report: &Report) -> CellRecord {
        let zero = |x: f64| if x == 0.0 { 0.0 } else { x };
        CellRecord {
            schema_version: SCHEMA_VERSION,
            cell: cell.key(),
            fingerprint: cell.fingerprint(),
            preset: cell.preset.clone(),
            traffic: cell.traffic.as_str().to_string(),
            rate: cell.rate,
            seed: cell.seed,
            derived_seed: cell.derived_seed(),
            flow_control: flow_control_name(cell.flow_control).to_string(),
            vc_discipline: vc_discipline_name(cell.vc_discipline).to_string(),
            packet_len: cell.packet_len,
            outcome: report.outcome().label().to_string(),
            error: None,
            cell_outcome: "ok".to_string(),
            attempts: 1,
            saturated: report.is_saturated(),
            avg_latency: report.avg_latency(),
            zero_load_latency: report.zero_load_latency(),
            measured_cycles: report.measured_cycles(),
            throughput: zero(report.throughput_flits_per_cycle()),
            total_power_w: report.total_power().0,
            buffer_w: report.component_power(Component::Buffer).0,
            crossbar_w: report.component_power(Component::Crossbar).0,
            arbiter_w: report.component_power(Component::Arbiter).0,
            link_w: report.component_power(Component::Link).0,
            central_w: report.component_power(Component::CentralBuffer).0,
            packets_injected: report.stats().packets_injected,
            packets_delivered: report.stats().packets_delivered,
            packets_dropped: report.stats().packets_dropped,
            packets_detoured: report.stats().packets_detoured,
            flits_delivered: report.stats().flits_delivered,
            latency_p50: percentile_or_nan(report, 50.0),
            latency_p99: percentile_or_nan(report, 99.0),
            resumed_from_cycle: None,
            checkpoints_written: 0,
            cached: false,
        }
    }

    /// Builds the record for a cell whose configuration was rejected
    /// with a typed error (the cell still occupies its grid point, so
    /// artifacts stay rectangular).
    pub fn from_error(cell: &Cell, message: &str) -> CellRecord {
        CellRecord {
            schema_version: SCHEMA_VERSION,
            cell: cell.key(),
            fingerprint: cell.fingerprint(),
            preset: cell.preset.clone(),
            traffic: cell.traffic.as_str().to_string(),
            rate: cell.rate,
            seed: cell.seed,
            derived_seed: cell.derived_seed(),
            flow_control: flow_control_name(cell.flow_control).to_string(),
            vc_discipline: vc_discipline_name(cell.vc_discipline).to_string(),
            packet_len: cell.packet_len,
            outcome: "error".to_string(),
            error: Some(message.to_string()),
            cell_outcome: "ok".to_string(),
            attempts: 1,
            saturated: false,
            avg_latency: f64::NAN,
            zero_load_latency: 0.0,
            measured_cycles: 0,
            throughput: 0.0,
            total_power_w: 0.0,
            buffer_w: 0.0,
            crossbar_w: 0.0,
            arbiter_w: 0.0,
            link_w: 0.0,
            central_w: 0.0,
            packets_injected: 0,
            packets_delivered: 0,
            packets_dropped: 0,
            packets_detoured: 0,
            flits_delivered: 0,
            latency_p50: f64::NAN,
            latency_p99: f64::NAN,
            resumed_from_cycle: None,
            checkpoints_written: 0,
            cached: false,
        }
    }

    /// Builds the quarantine record for a cell whose every supervised
    /// attempt panicked. The panic payload lands in `error`, so the
    /// grid stays rectangular and the failure is inspectable, while
    /// all other cells keep their results.
    pub fn from_crash(cell: &Cell, panic_msg: &str, attempts: u32) -> CellRecord {
        let mut r = CellRecord::from_error(cell, panic_msg);
        r.outcome = "crashed".to_string();
        r.cell_outcome = "crashed".to_string();
        r.attempts = attempts;
        r
    }

    /// Builds the quarantine record for a cell whose attempt exceeded
    /// its wall-clock budget. Classification is post-hoc (a running
    /// cell cannot be preempted), so the overrun is recorded but its
    /// numbers are discarded as untrustworthy under load.
    pub fn from_timeout(cell: &Cell, budget_ms: u64, elapsed_ms: u64, attempts: u32) -> CellRecord {
        let mut r = CellRecord::from_error(
            cell,
            &format!("cell exceeded its {budget_ms} ms wall-clock budget (took {elapsed_ms} ms)"),
        );
        r.outcome = "timed-out".to_string();
        r.cell_outcome = "timed-out".to_string();
        r.attempts = attempts;
        r
    }

    /// Builds the hand-off record for a cell stopped at a checkpoint
    /// boundary by a graceful drain. The persisted checkpoint, not
    /// this record, carries the state: the record only marks the cell
    /// incomplete (it is never cached), so the next run over the same
    /// cache directory resumes the cell from its checkpoint.
    pub fn from_drain(cell: &Cell, cycle: u64) -> CellRecord {
        let mut r = CellRecord::from_error(
            cell,
            &format!("cell drained at cycle {cycle}; checkpoint persisted for resume"),
        );
        r.outcome = "drained".to_string();
        r.cell_outcome = "drained".to_string();
        r
    }

    /// Whether the cell failed (configuration rejected).
    pub fn is_error(&self) -> bool {
        self.outcome == "error"
    }

    /// Whether this cell was stopped mid-run by a graceful drain
    /// (incomplete by design; resumable from its checkpoint).
    pub fn is_drained(&self) -> bool {
        self.cell_outcome == "drained"
    }

    /// Whether every supervised attempt of this cell panicked.
    pub fn is_crashed(&self) -> bool {
        self.cell_outcome == "crashed"
    }

    /// Whether this cell exceeded its wall-clock budget.
    pub fn is_timed_out(&self) -> bool {
        self.cell_outcome == "timed-out"
    }

    /// Serializes to one JSON line (no trailing newline). Field order
    /// is fixed; `cached` is deliberately omitted.
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push('{');
        push_num(&mut s, "schema_version", self.schema_version);
        push_str(&mut s, "cell", &self.cell);
        push_raw_str(
            &mut s,
            "fingerprint",
            &fingerprint::to_hex(self.fingerprint),
        );
        push_str(&mut s, "preset", &self.preset);
        push_str(&mut s, "traffic", &self.traffic);
        push_f64(&mut s, "rate", self.rate);
        push_num(&mut s, "seed", self.seed);
        push_num(&mut s, "derived_seed", self.derived_seed);
        push_str(&mut s, "flow_control", &self.flow_control);
        push_str(&mut s, "vc_discipline", &self.vc_discipline);
        push_num(&mut s, "packet_len", self.packet_len);
        push_str(&mut s, "outcome", &self.outcome);
        match &self.error {
            Some(e) => push_str(&mut s, "error", e),
            None => push_null(&mut s, "error"),
        }
        push_str(&mut s, "cell_outcome", &self.cell_outcome);
        push_num(&mut s, "attempts", self.attempts);
        push_bool(&mut s, "saturated", self.saturated);
        push_f64(&mut s, "avg_latency", self.avg_latency);
        push_f64(&mut s, "zero_load_latency", self.zero_load_latency);
        push_num(&mut s, "measured_cycles", self.measured_cycles);
        push_f64(&mut s, "throughput", self.throughput);
        push_f64(&mut s, "total_power_w", self.total_power_w);
        push_f64(&mut s, "buffer_w", self.buffer_w);
        push_f64(&mut s, "crossbar_w", self.crossbar_w);
        push_f64(&mut s, "arbiter_w", self.arbiter_w);
        push_f64(&mut s, "link_w", self.link_w);
        push_f64(&mut s, "central_w", self.central_w);
        push_num(&mut s, "packets_injected", self.packets_injected);
        push_num(&mut s, "packets_delivered", self.packets_delivered);
        push_num(&mut s, "packets_dropped", self.packets_dropped);
        push_num(&mut s, "packets_detoured", self.packets_detoured);
        push_num(&mut s, "flits_delivered", self.flits_delivered);
        push_f64(&mut s, "latency_p50", self.latency_p50);
        push_f64(&mut s, "latency_p99", self.latency_p99);
        match self.resumed_from_cycle {
            Some(c) => push_num(&mut s, "resumed_from_cycle", c),
            None => push_null(&mut s, "resumed_from_cycle"),
        }
        push_num(&mut s, "checkpoints_written", self.checkpoints_written);
        s.pop(); // trailing comma
        s.push('}');
        s
    }

    /// Parses a record from one JSON line, rejecting anything
    /// malformed, incomplete or from a different schema version. The
    /// parsed record is marked `cached`.
    pub fn from_json_line(line: &str) -> Option<CellRecord> {
        let obj = parse_flat_object(line)?;
        let schema_version: u32 = obj.get("schema_version")?.as_u64()?.try_into().ok()?;
        if schema_version != SCHEMA_VERSION {
            return None;
        }
        Some(CellRecord {
            schema_version,
            cell: obj.get("cell")?.as_str()?.to_string(),
            fingerprint: fingerprint::from_hex(obj.get("fingerprint")?.as_str()?)?,
            preset: obj.get("preset")?.as_str()?.to_string(),
            traffic: obj.get("traffic")?.as_str()?.to_string(),
            rate: obj.get("rate")?.as_f64()?,
            seed: obj.get("seed")?.as_u64()?,
            derived_seed: obj.get("derived_seed")?.as_u64()?,
            flow_control: obj.get("flow_control")?.as_str()?.to_string(),
            vc_discipline: obj.get("vc_discipline")?.as_str()?.to_string(),
            packet_len: obj.get("packet_len")?.as_u64()?.try_into().ok()?,
            outcome: obj.get("outcome")?.as_str()?.to_string(),
            error: match obj.get("error")? {
                JsonVal::Null => None,
                v => Some(v.as_str()?.to_string()),
            },
            cell_outcome: obj.get("cell_outcome")?.as_str()?.to_string(),
            attempts: obj.get("attempts")?.as_u64()?.try_into().ok()?,
            saturated: obj.get("saturated")?.as_bool()?,
            avg_latency: match obj.get("avg_latency")? {
                JsonVal::Null => f64::NAN,
                v => v.as_f64()?,
            },
            zero_load_latency: obj.get("zero_load_latency")?.as_f64()?,
            measured_cycles: obj.get("measured_cycles")?.as_u64()?,
            throughput: obj.get("throughput")?.as_f64()?,
            total_power_w: obj.get("total_power_w")?.as_f64()?,
            buffer_w: obj.get("buffer_w")?.as_f64()?,
            crossbar_w: obj.get("crossbar_w")?.as_f64()?,
            arbiter_w: obj.get("arbiter_w")?.as_f64()?,
            link_w: obj.get("link_w")?.as_f64()?,
            central_w: obj.get("central_w")?.as_f64()?,
            packets_injected: obj.get("packets_injected")?.as_u64()?,
            packets_delivered: obj.get("packets_delivered")?.as_u64()?,
            packets_dropped: obj.get("packets_dropped")?.as_u64()?,
            packets_detoured: obj.get("packets_detoured")?.as_u64()?,
            flits_delivered: obj.get("flits_delivered")?.as_u64()?,
            latency_p50: match obj.get("latency_p50")? {
                JsonVal::Null => f64::NAN,
                v => v.as_f64()?,
            },
            latency_p99: match obj.get("latency_p99")? {
                JsonVal::Null => f64::NAN,
                v => v.as_f64()?,
            },
            resumed_from_cycle: match obj.get("resumed_from_cycle")? {
                JsonVal::Null => None,
                v => Some(v.as_u64()?),
            },
            checkpoints_written: obj.get("checkpoints_written")?.as_u64()?,
            cached: true,
        })
    }

    /// CSV column header, matching [`CellRecord::to_csv_row`].
    pub fn csv_header() -> &'static str {
        "schema_version,cell,fingerprint,preset,traffic,rate,seed,derived_seed,\
         flow_control,vc_discipline,packet_len,outcome,cell_outcome,attempts,\
         saturated,avg_latency,zero_load_latency,measured_cycles,throughput,\
         total_power_w,buffer_w,crossbar_w,arbiter_w,link_w,central_w,\
         packets_injected,packets_delivered,packets_dropped,packets_detoured,\
         flits_delivered,latency_p50,latency_p99,resumed_from_cycle,\
         checkpoints_written"
    }

    /// One CSV data row (no trailing newline). The free-text `error`
    /// field is JSONL-only; CSV carries the outcome label.
    pub fn to_csv_row(&self) -> String {
        let f = |x: f64| {
            if x.is_nan() {
                String::new()
            } else {
                format!("{x}")
            }
        };
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.schema_version,
            self.cell,
            fingerprint::to_hex(self.fingerprint),
            self.preset,
            self.traffic,
            self.rate,
            self.seed,
            self.derived_seed,
            self.flow_control,
            self.vc_discipline,
            self.packet_len,
            self.outcome,
            self.cell_outcome,
            self.attempts,
            self.saturated,
            f(self.avg_latency),
            f(self.zero_load_latency),
            self.measured_cycles,
            f(self.throughput),
            f(self.total_power_w),
            f(self.buffer_w),
            f(self.crossbar_w),
            f(self.arbiter_w),
            f(self.link_w),
            f(self.central_w),
            self.packets_injected,
            self.packets_delivered,
            self.packets_dropped,
            self.packets_detoured,
            self.flits_delivered,
            f(self.latency_p50),
            f(self.latency_p99),
            self.resumed_from_cycle
                .map(|c| c.to_string())
                .unwrap_or_default(),
            self.checkpoints_written,
        )
    }
}

/// The `p`-th latency percentile of a report's tagged sample as `f64`,
/// NaN when the sample is empty (serialized as `null`, like
/// `avg_latency`).
fn percentile_or_nan(report: &Report, p: f64) -> f64 {
    report
        .stats()
        .latency_percentile(p)
        .map(|v| v as f64)
        .unwrap_or(f64::NAN)
}

fn push_key(s: &mut String, key: &str) {
    s.push('"');
    s.push_str(key);
    s.push_str("\":");
}

fn push_num<N: std::fmt::Display>(s: &mut String, key: &str, v: N) {
    push_key(s, key);
    let _ = write!(s, "{v},");
}

fn push_f64(s: &mut String, key: &str, v: f64) {
    push_key(s, key);
    if v.is_finite() {
        let _ = write!(s, "{v},");
    } else {
        s.push_str("null,");
    }
}

fn push_bool(s: &mut String, key: &str, v: bool) {
    push_key(s, key);
    s.push_str(if v { "true," } else { "false," });
}

fn push_null(s: &mut String, key: &str) {
    push_key(s, key);
    s.push_str("null,");
}

fn push_raw_str(s: &mut String, key: &str, v: &str) {
    push_key(s, key);
    s.push('"');
    s.push_str(v);
    s.push_str("\",");
}

fn push_str(s: &mut String, key: &str, v: &str) {
    push_key(s, key);
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\t' => s.push_str("\\t"),
            '\r' => s.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push_str("\",");
}

/// A value in a flat JSON object. Numbers keep their **raw token**
/// so `u64`s round-trip without an `f64` detour.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonVal {
    /// A string (unescaped).
    Str(String),
    /// A number, as its raw source token.
    Num(String),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
}

impl JsonVal {
    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonVal::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number parsed as `u64`, exact.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonVal::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonVal::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonVal::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses a single-line flat JSON object (string/number/bool/null
/// values only — no nesting). Returns `None` on any malformation.
pub fn parse_flat_object(line: &str) -> Option<BTreeMap<String, JsonVal>> {
    let mut out = BTreeMap::new();
    let bytes = line.trim().as_bytes();
    let mut i = 0usize;
    let skip_ws = |i: &mut usize| {
        while *i < bytes.len() && (bytes[*i] as char).is_ascii_whitespace() {
            *i += 1;
        }
    };

    let parse_string = |i: &mut usize| -> Option<String> {
        if bytes.get(*i) != Some(&b'"') {
            return None;
        }
        *i += 1;
        let mut s = String::new();
        loop {
            match bytes.get(*i)? {
                b'"' => {
                    *i += 1;
                    return Some(s);
                }
                b'\\' => {
                    *i += 1;
                    match bytes.get(*i)? {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'/' => s.push('/'),
                        b'u' => {
                            let hex = line.trim().get(*i + 1..*i + 5)?;
                            let code = u32::from_str_radix(hex, 16).ok()?;
                            s.push(char::from_u32(code)?);
                            *i += 4;
                        }
                        _ => return None,
                    }
                    *i += 1;
                }
                _ => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&bytes[*i..]).ok()?;
                    let c = rest.chars().next()?;
                    s.push(c);
                    *i += c.len_utf8();
                }
            }
        }
    };

    skip_ws(&mut i);
    if bytes.get(i) != Some(&b'{') {
        return None;
    }
    i += 1;
    skip_ws(&mut i);
    if bytes.get(i) == Some(&b'}') {
        return if i + 1 == bytes.len() {
            Some(out)
        } else {
            None
        };
    }
    loop {
        skip_ws(&mut i);
        let key = parse_string(&mut i)?;
        skip_ws(&mut i);
        if bytes.get(i) != Some(&b':') {
            return None;
        }
        i += 1;
        skip_ws(&mut i);
        let val = match bytes.get(i)? {
            b'"' => JsonVal::Str(parse_string(&mut i)?),
            b't' if line.trim().get(i..i + 4) == Some("true") => {
                i += 4;
                JsonVal::Bool(true)
            }
            b'f' if line.trim().get(i..i + 5) == Some("false") => {
                i += 5;
                JsonVal::Bool(false)
            }
            b'n' if line.trim().get(i..i + 4) == Some("null") => {
                i += 4;
                JsonVal::Null
            }
            b'-' | b'0'..=b'9' => {
                let start = i;
                while i < bytes.len()
                    && matches!(bytes[i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    i += 1;
                }
                let raw = std::str::from_utf8(&bytes[start..i]).ok()?;
                // Validate the token parses as a number at all.
                raw.parse::<f64>().ok()?;
                JsonVal::Num(raw.to_string())
            }
            _ => return None,
        };
        if out.insert(key, val).is_some() {
            return None; // duplicate key: corrupt line
        }
        skip_ws(&mut i);
        match bytes.get(i)? {
            b',' => i += 1,
            b'}' => {
                i += 1;
                skip_ws(&mut i);
                return if i == bytes.len() { Some(out) } else { None };
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ExperimentSpec;

    fn sample_cell() -> Cell {
        ExperimentSpec::parse(
            "[experiment]\nname = \"t\"\n[grid]\npresets = [\"vc16\"]\nrates = [0.05]\n",
        )
        .unwrap()
        .expand()
        .remove(0)
    }

    fn sample_record() -> CellRecord {
        let cell = sample_cell();
        let mut r = CellRecord::from_error(&cell, "boom \"quoted\" \\ path");
        r.avg_latency = 33.25;
        r.latency_p50 = 31.0;
        r.latency_p99 = 88.5;
        r.total_power_w = 0.123456789012345;
        r.measured_cycles = 12345;
        r.outcome = "completed".into();
        r.error = None;
        r
    }

    #[test]
    fn json_roundtrip_exact() {
        let rec = sample_record();
        let line = rec.to_json_line();
        let back = CellRecord::from_json_line(&line).expect("parses");
        // `cached` flips on load; everything else must round-trip.
        let mut expect = rec.clone();
        expect.cached = true;
        assert_eq!(back, expect);
        // Serialization is canonical: re-serializing gives the same bytes.
        assert_eq!(back.to_json_line(), line);
    }

    #[test]
    fn u64_seeds_roundtrip_without_f64_loss() {
        let mut rec = sample_record();
        rec.derived_seed = u64::MAX - 1; // not representable as f64
        let back = CellRecord::from_json_line(&rec.to_json_line()).unwrap();
        assert_eq!(back.derived_seed, u64::MAX - 1);
    }

    #[test]
    fn nan_latency_serializes_as_null() {
        let rec = CellRecord::from_error(&sample_cell(), "bad");
        let line = rec.to_json_line();
        assert!(line.contains("\"avg_latency\":null"));
        let back = CellRecord::from_json_line(&line).unwrap();
        assert!(back.avg_latency.is_nan());
        assert_eq!(back.error.as_deref(), Some("bad"));
        assert!(back.is_error());
    }

    #[test]
    fn corrupt_lines_rejected() {
        let good = sample_record().to_json_line();
        for bad in [
            "",
            "{",
            "not json",
            "{}",                      // missing fields
            &good[..good.len() - 10],  // truncated
            &format!("{good}trailer"), // trailing garbage
            &good.replace("\"schema_version\":4", "\"schema_version\":999"),
            // Version skew: a v3 line (no checkpoint provenance
            // fields) must not load.
            &good
                .replace("\"schema_version\":4", "\"schema_version\":3")
                .replace(",\"resumed_from_cycle\":null", "")
                .replace(",\"checkpoints_written\":0", ""),
        ] {
            assert_eq!(CellRecord::from_json_line(bad), None, "accepted: {bad:?}");
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let mut rec = sample_record();
        rec.error = Some("line1\nline2\ttab \"q\" back\\slash \u{1}".into());
        rec.outcome = "error".into();
        let back = CellRecord::from_json_line(&rec.to_json_line()).unwrap();
        assert_eq!(back.error, rec.error);
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let header_cols = CellRecord::csv_header().split(',').count();
        let row_cols = sample_record().to_csv_row().split(',').count();
        assert_eq!(header_cols, row_cols);
        assert_eq!(header_cols, 34);
    }

    #[test]
    fn checkpoint_provenance_roundtrips() {
        let mut rec = sample_record();
        rec.resumed_from_cycle = Some(8192);
        rec.checkpoints_written = 7;
        let line = rec.to_json_line();
        assert!(line.contains("\"resumed_from_cycle\":8192"));
        assert!(line.contains("\"checkpoints_written\":7"));
        let back = CellRecord::from_json_line(&line).unwrap();
        assert_eq!(back.resumed_from_cycle, Some(8192));
        assert_eq!(back.checkpoints_written, 7);
        assert!(
            rec.to_csv_row().ends_with(",8192,7"),
            "{}",
            rec.to_csv_row()
        );

        // A fresh cycle-0 cell serializes null / 0 and a blank CSV cell.
        let fresh = sample_record();
        assert!(fresh.to_json_line().contains("\"resumed_from_cycle\":null"));
        assert!(fresh.to_csv_row().ends_with(",,0"));
    }

    #[test]
    fn percentile_fields_roundtrip() {
        let mut rec = sample_record();
        rec.flits_delivered = 605;
        rec.latency_p50 = 31.0;
        rec.latency_p99 = 88.0;
        let line = rec.to_json_line();
        assert!(line.contains("\"latency_p50\":31"));
        let back = CellRecord::from_json_line(&line).unwrap();
        assert_eq!(back.flits_delivered, 605);
        assert_eq!(back.latency_p50, 31.0);
        assert_eq!(back.latency_p99, 88.0);
        let row = rec.to_csv_row();
        assert!(row.ends_with(",605,31,88,,0"), "{row}");

        // Empty latency sample: percentiles serialize as null and CSV
        // leaves the cells blank, like `avg_latency`.
        let empty = CellRecord::from_error(&sample_cell(), "bad");
        assert!(empty.to_json_line().contains("\"latency_p99\":null"));
        assert!(empty.to_csv_row().ends_with(",0,,,,0"));
        let back = CellRecord::from_json_line(&empty.to_json_line()).unwrap();
        assert!(back.latency_p50.is_nan() && back.latency_p99.is_nan());
    }

    #[test]
    fn supervision_records_roundtrip() {
        let cell = sample_cell();
        let crash = CellRecord::from_crash(&cell, "index out of bounds: 9 >= 5", 3);
        assert!(crash.is_crashed() && !crash.is_error() && !crash.is_timed_out());
        assert_eq!(crash.outcome, "crashed");
        assert_eq!(crash.attempts, 3);
        let back = CellRecord::from_json_line(&crash.to_json_line()).unwrap();
        assert_eq!(back.cell_outcome, "crashed");
        assert_eq!(back.attempts, 3);
        assert_eq!(back.error.as_deref(), Some("index out of bounds: 9 >= 5"));

        let timeout = CellRecord::from_timeout(&cell, 50, 1234, 1);
        assert!(timeout.is_timed_out() && !timeout.is_crashed());
        assert!(
            timeout.error.as_deref().unwrap().contains("50 ms"),
            "{:?}",
            timeout.error
        );
        assert!(timeout.to_csv_row().contains(",timed-out,"));
    }
}
