//! The checkpoint file format: versioned, checksummed, owner-stamped.
//!
//! ```text
//! +--------+---------+-------------+---------------------+----------+
//! | "ORCK" | version | fingerprint | payload (len-prefix)| fnv1a64  |
//! | 4 B    | u32 LE  | u64 LE      | u64 LE + bytes      | u64 LE   |
//! +--------+---------+-------------+---------------------+----------+
//! ```
//!
//! The footer checksum covers every preceding byte, so a torn write, a
//! bit flip or a truncation is detected *before* the payload is even
//! parsed — corruption surfaces as a typed [`CkptError`], never a
//! panic and never silently-wrong simulation state. The fingerprint
//! stamps which experiment owns the snapshot; loading under a
//! different fingerprint is rejected the same way a wrong-shape
//! network image would be, just earlier and cheaper.
//!
//! Files are written with [`write_atomic`], so a crash mid-save leaves
//! either the previous complete checkpoint or the new complete one.
//! The failpoints `ckpt.write` and `ckpt.restore` fire at the
//! respective boundaries for crash testing.

use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};

use orion_core::failpoint;
use orion_core::RunCheckpoint;
use orion_sim::snapshot::{ByteReader, ByteWriter};
use orion_sim::SnapshotError;

use crate::hash::{fnv1a64, to_hex};
use crate::io::write_atomic;

/// Leading magic bytes of every checkpoint file.
pub const CKPT_MAGIC: [u8; 4] = *b"ORCK";

/// Version of the checkpoint *file* framing (magic, fingerprint,
/// checksum). The run-state payload is versioned separately by
/// [`orion_core::RUN_CHECKPOINT_VERSION`].
pub const CKPT_SCHEMA_VERSION: u32 = 1;

/// Why a checkpoint file could not be saved or loaded. Every variant
/// is a typed, recoverable condition — corruption of any kind degrades
/// to "no checkpoint" (cycle-0 replay), never a panic.
#[derive(Debug)]
pub enum CkptError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file is shorter than its declared structure.
    Truncated,
    /// The file does not start with [`CKPT_MAGIC`].
    BadMagic,
    /// The file framing has an unknown version.
    WrongVersion(u32),
    /// The footer checksum does not match the file contents.
    ChecksumMismatch,
    /// The file belongs to a different experiment.
    WrongFingerprint {
        /// The fingerprint the caller expected.
        expected: u64,
        /// The fingerprint stamped in the file.
        found: u64,
    },
    /// The framing is intact but the run-state payload is not.
    Payload(SnapshotError),
    /// An armed failpoint injected this failure (crash testing).
    Injected(failpoint::FailpointError),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
            CkptError::Truncated => write!(f, "checkpoint file truncated"),
            CkptError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CkptError::WrongVersion(v) => write!(f, "unknown checkpoint file version {v}"),
            CkptError::ChecksumMismatch => write!(f, "checkpoint checksum mismatch"),
            CkptError::WrongFingerprint { expected, found } => write!(
                f,
                "checkpoint belongs to a different experiment \
                 (expected fingerprint {}, found {})",
                to_hex(*expected),
                to_hex(*found)
            ),
            CkptError::Payload(e) => write!(f, "checkpoint payload invalid: {e}"),
            CkptError::Injected(e) => write!(f, "{e}"),
        }
    }
}

impl Error for CkptError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CkptError::Io(e) => Some(e),
            CkptError::Payload(e) => Some(e),
            CkptError::Injected(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> CkptError {
        CkptError::Io(e)
    }
}

/// The canonical on-disk location for a cell's checkpoint under a
/// cache directory: `<cache_dir>/ckpt/<fingerprint-hex>.ckpt`.
pub fn checkpoint_path(cache_dir: &Path, fingerprint: u64) -> PathBuf {
    cache_dir
        .join("ckpt")
        .join(format!("{}.ckpt", to_hex(fingerprint)))
}

/// Encodes a checkpoint into the framed byte form (shared by
/// [`save_checkpoint`] and the tests that corrupt files surgically).
pub fn encode_checkpoint(fingerprint: u64, ck: &RunCheckpoint) -> Vec<u8> {
    let payload = ck.to_bytes();
    let mut w = ByteWriter::new();
    w.bytes(&CKPT_MAGIC);
    w.u32(CKPT_SCHEMA_VERSION);
    w.u64(fingerprint);
    w.usize(payload.len());
    w.bytes(&payload);
    let checksum = {
        let body = w.into_vec();
        let sum = fnv1a64(&body);
        let mut w = ByteWriter::new();
        w.bytes(&body);
        w.u64(sum);
        w
    };
    checksum.into_vec()
}

/// Decodes framed checkpoint bytes, validating magic, version,
/// checksum and owner before touching the payload.
///
/// # Errors
///
/// A typed [`CkptError`] for any malformation; no byte sequence
/// panics.
pub fn decode_checkpoint(bytes: &[u8], fingerprint: u64) -> Result<RunCheckpoint, CkptError> {
    // The footer is validated first: everything else is untrustworthy
    // until the checksum says the bytes are the ones that were written.
    if bytes.len() < 8 {
        return Err(CkptError::Truncated);
    }
    let (body, footer) = bytes.split_at(bytes.len() - 8);
    let mut f = ByteReader::new(footer);
    let declared = f.u64().map_err(|_| CkptError::Truncated)?;
    if fnv1a64(body) != declared {
        return Err(CkptError::ChecksumMismatch);
    }
    let mut r = ByteReader::new(body);
    let magic = r.take_bytes(4).map_err(|_| CkptError::Truncated)?;
    if magic != CKPT_MAGIC {
        return Err(CkptError::BadMagic);
    }
    let version = r.u32().map_err(|_| CkptError::Truncated)?;
    if version != CKPT_SCHEMA_VERSION {
        return Err(CkptError::WrongVersion(version));
    }
    let found = r.u64().map_err(|_| CkptError::Truncated)?;
    if found != fingerprint {
        return Err(CkptError::WrongFingerprint {
            expected: fingerprint,
            found,
        });
    }
    let len = r.count(1).map_err(|_| CkptError::Truncated)?;
    let payload = r.take_bytes(len).map_err(|_| CkptError::Truncated)?;
    if !r.is_empty() {
        return Err(CkptError::Payload(SnapshotError::Invalid("trailing bytes")));
    }
    RunCheckpoint::from_bytes(payload).map_err(CkptError::Payload)
}

/// Persists a checkpoint atomically at `path`, stamped with its
/// owner's `fingerprint`. Parent directories are created as needed.
/// Failpoint: `ckpt.write`.
///
/// # Errors
///
/// [`CkptError::Io`] from the filesystem; [`CkptError::Injected`] when
/// the `ckpt.write` failpoint is armed with the `error` action.
pub fn save_checkpoint(path: &Path, fingerprint: u64, ck: &RunCheckpoint) -> Result<(), CkptError> {
    failpoint::hit("ckpt.write").map_err(CkptError::Injected)?;
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    write_atomic(path, &encode_checkpoint(fingerprint, ck))?;
    Ok(())
}

/// Loads and validates the checkpoint at `path`, rejecting anything
/// torn, corrupted, version-skewed or owned by a different experiment.
/// Failpoint: `ckpt.restore`.
///
/// # Errors
///
/// A typed [`CkptError`]; a missing file surfaces as
/// [`CkptError::Io`] with [`std::io::ErrorKind::NotFound`].
pub fn load_checkpoint(path: &Path, fingerprint: u64) -> Result<RunCheckpoint, CkptError> {
    failpoint::hit("ckpt.restore").map_err(CkptError::Injected)?;
    let bytes = std::fs::read(path)?;
    decode_checkpoint(&bytes, fingerprint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_core::RunPhase;

    fn sample() -> RunCheckpoint {
        RunCheckpoint {
            phase: RunPhase::Measure,
            cycle: 4096,
            measure_start: 1000,
            tagged_budget: 250,
            backlog_samples: vec![1, 2, 3],
            rng: [9, 8, 7, 6],
            traffic_cursors: vec![0, 4],
            trace_cursor: 0,
            auditor_energy: 3.5e-8,
            net: (0..u8::MAX).collect(),
        }
    }

    fn temp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("orion-ckpt-file-{}-{tag}.ckpt", std::process::id()))
    }

    #[test]
    fn save_load_roundtrip() {
        let path = temp("roundtrip");
        let ck = sample();
        save_checkpoint(&path, 0xabcd, &ck).unwrap();
        assert_eq!(load_checkpoint(&path, 0xabcd).unwrap(), ck);
        assert!(!path.with_extension("ckpt.tmp").exists());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_not_found() {
        let err = load_checkpoint(Path::new("/nonexistent/x.ckpt"), 1).unwrap_err();
        match err {
            CkptError::Io(e) => assert_eq!(e.kind(), std::io::ErrorKind::NotFound),
            other => panic!("expected Io(NotFound), got {other:?}"),
        }
    }

    #[test]
    fn wrong_owner_rejected() {
        let bytes = encode_checkpoint(7, &sample());
        assert!(matches!(
            decode_checkpoint(&bytes, 8),
            Err(CkptError::WrongFingerprint {
                expected: 8,
                found: 7
            })
        ));
    }

    #[test]
    fn every_single_byte_corruption_is_detected() {
        // The checksum must catch any one-byte flip anywhere in the
        // file — including in raw payload regions the structural
        // validation cannot vet.
        let good = encode_checkpoint(42, &sample());
        assert!(decode_checkpoint(&good, 42).is_ok());
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x01;
            assert!(
                decode_checkpoint(&bad, 42).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let good = encode_checkpoint(42, &sample());
        for cut in 0..good.len() {
            assert!(
                decode_checkpoint(&good[..cut], 42).is_err(),
                "prefix of {cut} bytes accepted"
            );
        }
        // Trailing garbage shifts the footer off the real checksum.
        let mut long = good.clone();
        long.push(0);
        assert!(decode_checkpoint(&long, 42).is_err());
    }

    #[test]
    fn version_skew_rejected() {
        let ck = sample();
        let payload = ck.to_bytes();
        let mut w = ByteWriter::new();
        w.bytes(&CKPT_MAGIC);
        w.u32(CKPT_SCHEMA_VERSION + 1);
        w.u64(42);
        w.usize(payload.len());
        w.bytes(&payload);
        let body = w.into_vec();
        let sum = fnv1a64(&body);
        let mut w = ByteWriter::new();
        w.bytes(&body);
        w.u64(sum);
        assert!(matches!(
            decode_checkpoint(&w.into_vec(), 42),
            Err(CkptError::WrongVersion(v)) if v == CKPT_SCHEMA_VERSION + 1
        ));
    }

    #[test]
    fn checkpoint_path_is_content_addressed() {
        let p = checkpoint_path(Path::new("/cache"), 0xdead_beef);
        assert_eq!(
            p,
            Path::new("/cache/ckpt/00000000deadbeef.ckpt"),
            "layout is part of the on-disk contract"
        );
    }
}
