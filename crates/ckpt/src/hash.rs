//! Stable hashing shared by the checkpoint file format, the result
//! cache and derived RNG seeds.
//!
//! Two requirements rule out `std::hash`: the hash must be identical
//! across runs, platforms and Rust versions (the default hasher is
//! randomly keyed per process), and it must be cheap to reimplement
//! when checking cache or checkpoint files by hand. FNV-1a over a
//! canonical byte string satisfies both; SplitMix64 then whitens
//! fingerprints into RNG seeds so that keys sharing long prefixes
//! still get well-spread seeds.

/// 64-bit FNV-1a over a byte string. Stable across platforms.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// SplitMix64 finalizer: bijective avalanche over a 64-bit word.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Renders a fingerprint the way cache and checkpoint files store it:
/// 16 lowercase hex digits.
pub fn to_hex(fp: u64) -> String {
    format!("{fp:016x}")
}

/// Parses a 16-hex-digit fingerprint back to its integer form.
pub fn from_hex(s: &str) -> Option<u64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn splitmix_reference_vector() {
        // First output of the canonical SplitMix64 stream seeded 0.
        assert_eq!(splitmix64(0), 0xe220a8397b1dcdaf);
    }

    #[test]
    fn hex_roundtrip() {
        for fp in [0u64, 1, u64::MAX, 0xdead_beef_0123_4567] {
            assert_eq!(from_hex(&to_hex(fp)), Some(fp));
        }
        assert_eq!(from_hex("xyz"), None);
        assert_eq!(from_hex("0123"), None);
    }
}
