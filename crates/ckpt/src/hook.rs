//! The checkpoint *policy*: periodic persistence, graceful-drain
//! cancellation, resume-or-replay, and garbage collection.
//!
//! [`run_checkpointed`] is what every execution layer (the batch
//! engine, the serving runner, the explore loop, the CLI) calls
//! instead of hand-rolling resume logic. Its contract:
//!
//! 1. A valid checkpoint at the given path resumes the run from its
//!    cycle — bit-identically, per the `orion-core` guarantee.
//! 2. *Any* defect in that file — torn write, bit flip, version skew,
//!    wrong owner, shape mismatch — degrades to a cycle-0 replay. A
//!    checkpoint can make a rerun faster; it can never make it wrong
//!    or make it fail.
//! 3. Each finished run deletes its checkpoint (GC); an aborted run
//!    (drain) leaves the latest one behind for the next process.
//! 4. Checkpoint-write failures are recorded, not fatal: losing a
//!    checkpoint loses restart time, not results.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use orion_core::{Experiment, RunCheckpoint, RunControl, RunError, RunHook, RunResult};

use crate::file::{load_checkpoint, save_checkpoint, CkptError};

/// A [`RunHook`] that persists each checkpoint to one file (atomic
/// replace, newest wins) and stops the run when a shared cancel flag
/// is raised — the mechanism behind graceful daemon drains.
#[derive(Debug)]
pub struct CheckpointHook {
    every: u64,
    path: PathBuf,
    fingerprint: u64,
    cancel: Option<Arc<AtomicBool>>,
    written: u64,
    last_error: Option<CkptError>,
}

impl CheckpointHook {
    /// Creates a hook persisting to `path` every `every` cycles,
    /// stamping files with `fingerprint`. A `cancel` flag, when
    /// provided and raised, stops the run at the next checkpoint
    /// boundary (after persisting it).
    pub fn new(
        path: &Path,
        fingerprint: u64,
        every: u64,
        cancel: Option<Arc<AtomicBool>>,
    ) -> CheckpointHook {
        CheckpointHook {
            every,
            path: path.to_path_buf(),
            fingerprint,
            cancel,
            written: 0,
            last_error: None,
        }
    }

    /// Checkpoints successfully persisted so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// The most recent persistence failure, if any. Failures do not
    /// stop the run — they only cost restart time after a crash.
    pub fn last_error(&self) -> Option<&CkptError> {
        self.last_error.as_ref()
    }
}

impl RunHook for CheckpointHook {
    fn every(&self) -> u64 {
        self.every
    }

    fn on_checkpoint(&mut self, ck: &RunCheckpoint) -> RunControl {
        match save_checkpoint(&self.path, self.fingerprint, ck) {
            Ok(()) => self.written += 1,
            Err(e) => self.last_error = Some(e),
        }
        match &self.cancel {
            Some(flag) if flag.load(Ordering::SeqCst) => RunControl::Stop,
            _ => RunControl::Continue,
        }
    }
}

/// Knobs for [`run_checkpointed`].
#[derive(Debug, Clone)]
pub struct CheckpointOptions {
    /// Where the checkpoint file lives (see
    /// [`checkpoint_path`](crate::file::checkpoint_path) for the
    /// cache-directory convention).
    pub path: PathBuf,
    /// Owner stamp — typically the cell fingerprint, or a hash of the
    /// experiment debug form for ad-hoc runs.
    pub fingerprint: u64,
    /// Cycle stride between checkpoints (0 = never persist; resume
    /// still works if a file exists).
    pub every: u64,
    /// Raised by a supervisor to stop the run at the next boundary.
    pub cancel: Option<Arc<AtomicBool>>,
}

/// What [`run_checkpointed`] did, beyond the run result itself.
#[derive(Debug)]
pub struct CheckpointedRun {
    /// How the run ended (finished report, or the drain checkpoint).
    pub result: RunResult,
    /// The cycle a valid checkpoint resumed from; `None` for a
    /// cycle-0 run (no file, or a corrupt one that was discarded).
    pub resumed_from_cycle: Option<u64>,
    /// Checkpoints successfully persisted during this run.
    pub checkpoints_written: u64,
    /// The last checkpoint-write failure, rendered (`None` when every
    /// write succeeded).
    pub ckpt_error: Option<String>,
}

/// Runs `experiment` with durable checkpointing: resume from a valid
/// snapshot at `opts.path`, fall back to cycle 0 on any corruption or
/// mismatch, persist every `opts.every` cycles, delete the file once
/// the run finishes.
///
/// # Errors
///
/// [`RunError::Config`] for invalid experiments and
/// [`RunError::Unsupported`] for observed runs — the same conditions
/// a plain hooked run rejects. [`RunError::Resume`] never escapes: a
/// bad checkpoint triggers the cycle-0 fallback instead.
pub fn run_checkpointed(
    experiment: Experiment,
    opts: &CheckpointOptions,
) -> Result<CheckpointedRun, RunError> {
    let resume = load_checkpoint(&opts.path, opts.fingerprint).ok();
    let resumed_from_cycle = resume.as_ref().map(|ck| ck.cycle);
    let mut hook = CheckpointHook::new(
        &opts.path,
        opts.fingerprint,
        opts.every,
        opts.cancel.clone(),
    );
    let attempt = experiment.clone().run_with_hook(&mut hook, resume);
    let (result, resumed_from_cycle, hook) = match attempt {
        // The file validated but the run rejected it (e.g. a stale
        // snapshot after the experiment shape changed under the same
        // fingerprint): discard and replay from cycle 0.
        Err(RunError::Resume(_)) if resumed_from_cycle.is_some() => {
            let _ = std::fs::remove_file(&opts.path);
            let mut fresh = CheckpointHook::new(
                &opts.path,
                opts.fingerprint,
                opts.every,
                opts.cancel.clone(),
            );
            (experiment.run_with_hook(&mut fresh, None)?, None, fresh)
        }
        other => (other?, resumed_from_cycle, hook),
    };
    if matches!(result, RunResult::Finished(_)) {
        // GC: a finished run's checkpoint is debris. Best-effort — a
        // leftover is healed by the next cache compaction.
        let _ = std::fs::remove_file(&opts.path);
    }
    Ok(CheckpointedRun {
        result,
        resumed_from_cycle,
        checkpoints_written: hook.written(),
        ckpt_error: hook.last_error().map(|e| e.to_string()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_core::{presets, Experiment};
    use std::fs;

    fn temp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("orion-ckpt-hook-{}-{tag}.ckpt", std::process::id()))
    }

    fn quick() -> Experiment {
        Experiment::new(presets::vc16_onchip())
            .injection_rate(0.05)
            .seed(3)
            .warmup(200)
            .sample_packets(200)
            .max_cycles(100_000)
    }

    fn report_fingerprint(result: &RunResult) -> (u64, u64, u64) {
        match result {
            RunResult::Finished(r) => (
                r.avg_latency().to_bits(),
                r.total_power().0.to_bits(),
                r.stats().packets_delivered,
            ),
            RunResult::Aborted(_) => panic!("expected a finished run"),
        }
    }

    #[test]
    fn cancel_persists_then_resume_is_bit_identical() {
        let path = temp("drain");
        let _ = fs::remove_file(&path);
        let baseline = quick().run().unwrap();

        // Drain almost immediately: the first checkpoint stops the run.
        let cancel = Arc::new(AtomicBool::new(true));
        let out = run_checkpointed(
            quick(),
            &CheckpointOptions {
                path: path.clone(),
                fingerprint: 11,
                every: 64,
                cancel: Some(cancel),
            },
        )
        .unwrap();
        assert!(matches!(out.result, RunResult::Aborted(_)));
        assert_eq!(out.checkpoints_written, 1);
        assert!(path.exists(), "drain leaves the checkpoint behind");

        // A new "process" resumes and must agree with the baseline.
        let out = run_checkpointed(
            quick(),
            &CheckpointOptions {
                path: path.clone(),
                fingerprint: 11,
                every: 64,
                cancel: None,
            },
        )
        .unwrap();
        assert_eq!(out.resumed_from_cycle, Some(64));
        let got = report_fingerprint(&out.result);
        assert_eq!(
            got,
            (
                baseline.avg_latency().to_bits(),
                baseline.total_power().0.to_bits(),
                baseline.stats().packets_delivered
            )
        );
        assert!(!path.exists(), "finished run garbage-collects its file");
    }

    #[test]
    fn corrupt_checkpoint_falls_back_to_cycle_zero() {
        let path = temp("corrupt");
        let baseline = quick().run().unwrap();
        for corruption in ["garbage bytes", ""] {
            fs::write(&path, corruption).unwrap();
            let out = run_checkpointed(
                quick(),
                &CheckpointOptions {
                    path: path.clone(),
                    fingerprint: 11,
                    every: 0,
                    cancel: None,
                },
            )
            .unwrap();
            assert_eq!(out.resumed_from_cycle, None, "corrupt file is discarded");
            let got = report_fingerprint(&out.result);
            assert_eq!(got.2, baseline.stats().packets_delivered);
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn foreign_checkpoint_falls_back_to_cycle_zero() {
        // A checkpoint owned by a different fingerprint is rejected at
        // the framing layer, before any payload parsing.
        let path = temp("foreign");
        let cancel = Arc::new(AtomicBool::new(true));
        run_checkpointed(
            quick(),
            &CheckpointOptions {
                path: path.clone(),
                fingerprint: 1,
                every: 64,
                cancel: Some(cancel),
            },
        )
        .unwrap();
        assert!(path.exists());
        let out = run_checkpointed(
            quick(),
            &CheckpointOptions {
                path: path.clone(),
                fingerprint: 2,
                every: 0,
                cancel: None,
            },
        )
        .unwrap();
        assert_eq!(out.resumed_from_cycle, None);
        assert!(matches!(out.result, RunResult::Finished(_)));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn mismatched_experiment_checkpoint_replays_from_zero() {
        // Same fingerprint, different network shape: framing validates,
        // restore rejects, and the fallback replays from cycle 0.
        let path = temp("mismatch");
        let cancel = Arc::new(AtomicBool::new(true));
        run_checkpointed(
            quick(),
            &CheckpointOptions {
                path: path.clone(),
                fingerprint: 5,
                every: 64,
                cancel: Some(cancel),
            },
        )
        .unwrap();
        let out = run_checkpointed(
            Experiment::new(presets::wh64_onchip())
                .injection_rate(0.03)
                .warmup(100)
                .sample_packets(100)
                .max_cycles(100_000),
            &CheckpointOptions {
                path: path.clone(),
                fingerprint: 5,
                every: 0,
                cancel: None,
            },
        )
        .unwrap();
        assert_eq!(out.resumed_from_cycle, None, "fallback replay");
        assert!(matches!(out.result, RunResult::Finished(_)));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn write_failures_are_recorded_not_fatal() {
        // An unwritable path (a parent component is a regular file, so
        // even a privileged process cannot create the directory): the
        // run must still finish correctly.
        let blocker = temp("write-blocker");
        fs::write(&blocker, b"not a directory").unwrap();
        let path = blocker.join("orion").join("ck.ckpt");
        let out = run_checkpointed(
            quick(),
            &CheckpointOptions {
                path,
                fingerprint: 3,
                every: 64,
                cancel: None,
            },
        )
        .unwrap();
        assert!(matches!(out.result, RunResult::Finished(_)));
        assert_eq!(out.checkpoints_written, 0);
        assert!(out.ckpt_error.is_some(), "failure surfaced, not swallowed");
        let _ = fs::remove_file(&blocker);
    }
}
