//! Crash-safe file writes shared by checkpoint files, the result
//! cache and the artifact writers.

use std::fs;
use std::io::Write;
use std::path::Path;

/// Writes `bytes` to `path` crash-safely: a `.tmp` sibling is written
/// in full, fsynced, then renamed over the destination. Readers never
/// observe a partially written file.
///
/// # Errors
///
/// Returns the underlying I/O error; a failed write leaves the
/// destination untouched (the orphan `.tmp` is removed best-effort).
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut tmp_name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    let result = (|| {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_write_replaces_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join(format!("orion-ckpt-atomic-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.ckpt");
        write_atomic(&path, b"first").unwrap();
        write_atomic(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        assert!(
            !dir.join("out.ckpt.tmp").exists(),
            "temp file must not survive a successful write"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
