//! Durable mid-run checkpoints for the Orion reproduction.
//!
//! `orion-core` defines *what* a resumable run state is
//! ([`RunCheckpoint`](orion_core::RunCheckpoint)) and guarantees that
//! resuming from one is bit-identical to never having stopped. This
//! crate makes that state *durable*: a versioned, checksummed,
//! atomically-written snapshot file that a killed process finds intact
//! on restart — or provably corrupt, in which case the caller degrades
//! gracefully to a cycle-0 replay instead of trusting torn bytes.
//!
//! * [`save_checkpoint`] / [`load_checkpoint`] — the file codec:
//!   magic, [`CKPT_SCHEMA_VERSION`], owner fingerprint, payload,
//!   FNV-1a footer, written via [`write_atomic`].
//! * [`CheckpointHook`] — a [`RunHook`](orion_core::RunHook) that
//!   persists every checkpoint and honors a shared cancel flag (how a
//!   draining daemon stops in-flight cells at a safe boundary).
//! * [`run_checkpointed`] — the full policy: resume from a valid
//!   snapshot, fall back to cycle 0 on any corruption, persist on a
//!   stride, garbage-collect the file once the run finishes.
//! * [`hash`] / [`io`] — the stable-hash and atomic-write primitives
//!   (grown out of `orion-exp`, which now re-exports them from here),
//!   shared by the cache, the artifact writers and this file format.
//!
//! Crash injection at the torn-state boundaries (`ckpt.write`,
//! `ckpt.restore`, `cache.append`) goes through
//! [`orion_core::failpoint`]; the chaos tests in this crate and the CI
//! `chaos-resume` job kill the process at each of them and assert the
//! final artifacts are byte-identical to an uninterrupted run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod file;
pub mod hash;
pub mod hook;
pub mod io;

pub use file::{
    checkpoint_path, load_checkpoint, save_checkpoint, CkptError, CKPT_MAGIC, CKPT_SCHEMA_VERSION,
};
pub use hash::{fnv1a64, from_hex, splitmix64, to_hex};
pub use hook::{run_checkpointed, CheckpointHook, CheckpointOptions, CheckpointedRun};
pub use io::write_atomic;
