//! Property tests for the checkpoint file codec: *arbitrary* run
//! states round-trip exactly through `save_checkpoint` /
//! `load_checkpoint`, and *arbitrary* corruption — any bit flip, any
//! truncation, any foreign owner stamp — is a typed load error, never
//! a panic and never silently-wrong state. These generalize the
//! exhaustive unit sweeps in `file.rs` (which use one fixed payload)
//! to the whole state space.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use orion_ckpt::{load_checkpoint, save_checkpoint, CkptError};
use orion_core::{RunCheckpoint, RunPhase};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::RngCore;

static SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh path per case: cases must never share a file.
fn temp_path() -> PathBuf {
    std::env::temp_dir().join(format!(
        "orion-ckpt-prop-{}-{}.ckpt",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Full-state-space checkpoint generator, including extreme integers,
/// empty and large vectors, and every f64 bit pattern (NaNs included —
/// the codec must preserve bits, not values).
struct ArbCheckpoint;

impl Strategy for ArbCheckpoint {
    type Value = RunCheckpoint;

    fn generate(&self, rng: &mut StdRng) -> RunCheckpoint {
        fn vec_usize(rng: &mut StdRng, max_len: u64) -> Vec<usize> {
            let n = rng.next_u64() % max_len;
            (0..n).map(|_| rng.next_u64() as usize).collect()
        }
        let phase = if rng.next_u64() & 1 == 0 {
            RunPhase::Warmup {
                done: rng.next_u64(),
            }
        } else {
            RunPhase::Measure
        };
        let net_len = rng.next_u64() % 256;
        RunCheckpoint {
            phase,
            cycle: rng.next_u64(),
            measure_start: rng.next_u64(),
            tagged_budget: rng.next_u64(),
            backlog_samples: vec_usize(rng, 16),
            rng: [
                rng.next_u64(),
                rng.next_u64(),
                rng.next_u64(),
                rng.next_u64(),
            ],
            traffic_cursors: vec_usize(rng, 32),
            trace_cursor: rng.next_u64() as usize,
            auditor_energy: f64::from_bits(rng.next_u64()),
            net: (0..net_len).map(|_| rng.next_u64() as u8).collect(),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// save → load is the identity on the serialized form. Comparing
    /// re-encoded bytes (not structs) keeps the property NaN-safe.
    #[test]
    fn file_round_trip_is_exact(ck in ArbCheckpoint, fp in any::<u64>()) {
        let path = temp_path();
        save_checkpoint(&path, fp, &ck).unwrap();
        let loaded = load_checkpoint(&path, fp).unwrap();
        prop_assert_eq!(loaded.to_bytes(), ck.to_bytes());
        let _ = std::fs::remove_file(&path);
    }

    /// Flipping any single bit anywhere in the file — magic, version,
    /// owner stamp, payload or footer — must fail the load with a
    /// typed error.
    #[test]
    fn any_bit_flip_is_rejected(
        ck in ArbCheckpoint,
        fp in any::<u64>(),
        pos in any::<usize>(),
        bit in 0u8..8,
    ) {
        let path = temp_path();
        save_checkpoint(&path, fp, &ck).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let i = pos % bytes.len();
        bytes[i] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();
        prop_assert!(
            load_checkpoint(&path, fp).is_err(),
            "flipped bit {} of byte {}/{} loaded successfully",
            bit, i, bytes.len()
        );
        let _ = std::fs::remove_file(&path);
    }

    /// Any strict prefix of the file — a torn write caught mid-flush —
    /// must fail the load with a typed error.
    #[test]
    fn any_truncation_is_rejected(
        ck in ArbCheckpoint,
        fp in any::<u64>(),
        cut in any::<usize>(),
    ) {
        let path = temp_path();
        save_checkpoint(&path, fp, &ck).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let keep = cut % bytes.len();
        std::fs::write(&path, &bytes[..keep]).unwrap();
        prop_assert!(
            load_checkpoint(&path, fp).is_err(),
            "prefix of {}/{} bytes loaded successfully",
            keep, bytes.len()
        );
        let _ = std::fs::remove_file(&path);
    }

    /// A structurally perfect file owned by a different fingerprint is
    /// rejected at the framing layer, before any payload parsing.
    #[test]
    fn foreign_owner_is_rejected(ck in ArbCheckpoint, fp in any::<u64>(), other in any::<u64>()) {
        prop_assume!(fp != other);
        let path = temp_path();
        save_checkpoint(&path, fp, &ck).unwrap();
        let verdict = load_checkpoint(&path, other);
        prop_assert!(
            matches!(verdict, Err(CkptError::WrongFingerprint { .. })),
            "expected WrongFingerprint, got {:?}",
            verdict.map(|ck| ck.cycle)
        );
        let _ = std::fs::remove_file(&path);
    }
}
