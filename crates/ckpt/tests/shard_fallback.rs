//! Durable-checkpoint behavior across shard counts. The owner
//! fingerprint is the first line of defense, but fingerprints collide
//! by design when a caller reuses one across engine settings — so the
//! network image's own frame (engine tag + topology shape + shard
//! count) must catch a shard-count change, and [`run_checkpointed`]
//! must degrade that typed mismatch into a clean cycle-0 replay
//! rather than an error or silent corruption.

use orion_ckpt::{run_checkpointed, save_checkpoint, CheckpointOptions};
use orion_core::{presets, Experiment, RunCheckpoint, RunControl, RunHook, RunResult};
use std::fs;
use std::path::PathBuf;

fn temp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "orion-shard-fallback-{}-{tag}.ckpt",
        std::process::id()
    ))
}

fn quick(shards: usize) -> Experiment {
    Experiment::new(presets::vc16_onchip())
        .injection_rate(0.05)
        .seed(3)
        .warmup(150)
        .sample_packets(150)
        .max_cycles(100_000)
        .shards(shards)
}

fn fingerprint_of(result: &RunResult) -> (u64, u64, u64) {
    match result {
        RunResult::Finished(r) => (
            r.avg_latency().to_bits(),
            r.total_power().0.to_bits(),
            r.stats().packets_delivered,
        ),
        RunResult::Aborted(_) => panic!("expected a finished run"),
    }
}

struct StopAtFirst {
    taken: Option<RunCheckpoint>,
}

impl RunHook for StopAtFirst {
    fn every(&self) -> u64 {
        100
    }
    fn on_checkpoint(&mut self, checkpoint: &RunCheckpoint) -> RunControl {
        self.taken = Some(checkpoint.clone());
        RunControl::Stop
    }
}

/// A checkpoint captured at `--shards 4` restored at `--shards 1`
/// (same owner fingerprint, simulating a caller that changed engine
/// settings between process runs): the run must fall back to a clean
/// cycle-0 replay and still produce the exact single-engine report.
#[test]
fn foreign_shard_checkpoint_degrades_to_cycle_zero_replay() {
    let path = temp("foreign-shards");
    let _ = fs::remove_file(&path);

    // Persist a genuine mid-run 4-shard checkpoint under fingerprint 7.
    let mut stopper = StopAtFirst { taken: None };
    quick(4).run_with_hook(&mut stopper, None).expect("valid");
    let foreign = stopper.taken.expect("hook captured a checkpoint");
    save_checkpoint(&path, 7, &foreign).expect("save");

    let baseline = quick(1).run().expect("valid");
    let out = run_checkpointed(
        quick(1),
        &CheckpointOptions {
            path: path.clone(),
            fingerprint: 7,
            every: 0,
            cancel: None,
        },
    )
    .expect("fallback must not surface a resume error");
    assert_eq!(
        out.resumed_from_cycle, None,
        "a discarded foreign checkpoint must not report as a resume"
    );
    let got = fingerprint_of(&out.result);
    assert_eq!(
        got,
        (
            baseline.avg_latency().to_bits(),
            baseline.total_power().0.to_bits(),
            baseline.stats().packets_delivered,
        ),
        "cycle-0 fallback diverged from the plain run"
    );
    assert!(
        !path.exists(),
        "the mismatched checkpoint file must be discarded"
    );
}

/// The mirror-image restore: a single-engine checkpoint offered to a
/// sharded run likewise replays from cycle 0 and matches the plain
/// sharded report (which itself is bit-identical to the mono report).
#[test]
fn mono_checkpoint_degrades_under_sharded_run() {
    let path = temp("mono-into-sharded");
    let _ = fs::remove_file(&path);

    let mut stopper = StopAtFirst { taken: None };
    quick(1).run_with_hook(&mut stopper, None).expect("valid");
    save_checkpoint(&path, 9, &stopper.taken.expect("checkpoint")).expect("save");

    let baseline = quick(2).run().expect("valid");
    let out = run_checkpointed(
        quick(2),
        &CheckpointOptions {
            path,
            fingerprint: 9,
            every: 0,
            cancel: None,
        },
    )
    .expect("fallback must not surface a resume error");
    assert_eq!(out.resumed_from_cycle, None);
    assert_eq!(
        fingerprint_of(&out.result),
        (
            baseline.avg_latency().to_bits(),
            baseline.total_power().0.to_bits(),
            baseline.stats().packets_delivered,
        )
    );
}

/// Sharded runs themselves checkpoint and resume durably: a cancel
/// mid-run leaves a file behind, and a second [`run_checkpointed`]
/// resumes from it to a bit-identical finish.
#[test]
fn sharded_run_checkpoints_and_resumes_durably() {
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    let path = temp("sharded-durable");
    let _ = fs::remove_file(&path);
    let baseline = quick(2).run().expect("valid");

    let cancel = Arc::new(AtomicBool::new(true));
    let out = run_checkpointed(
        quick(2),
        &CheckpointOptions {
            path: path.clone(),
            fingerprint: 21,
            every: 80,
            cancel: Some(cancel),
        },
    )
    .expect("valid");
    assert!(matches!(out.result, RunResult::Aborted(_)));
    assert!(path.exists(), "drain leaves the checkpoint behind");

    let out = run_checkpointed(
        quick(2),
        &CheckpointOptions {
            path: path.clone(),
            fingerprint: 21,
            every: 80,
            cancel: None,
        },
    )
    .expect("valid");
    assert_eq!(out.resumed_from_cycle, Some(80));
    assert_eq!(
        fingerprint_of(&out.result),
        (
            baseline.avg_latency().to_bits(),
            baseline.total_power().0.to_bits(),
            baseline.stats().packets_delivered,
        ),
        "sharded resume diverged from the uninterrupted run"
    );
    assert!(!path.exists(), "a finished run must GC its checkpoint");
}
