//! Flit-lifecycle tracing: opt-in per-packet spans recording
//! injection, per-hop pipeline timestamps, and ejection.
//!
//! Spans live in a bounded ring: once `capacity` completed spans have
//! accumulated, the oldest is dropped for each new completion, so
//! memory stays fixed no matter how long the run is. Active (not yet
//! ejected) spans are bounded too — packets beyond the in-flight
//! budget simply go untraced.
//!
//! The split the paper's §4.1 measurement discipline cares about falls
//! straight out of a span: *queuing time* (injection → first switch
//! allocation at the source router) versus *network time* (the rest,
//! through ejection of the tail flit).

/// Schema version stamped on every trace line.
pub const TRACE_SCHEMA_VERSION: u32 = 1;

/// Per-hop events a traced packet can record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopStage {
    /// Won virtual-channel allocation at a router.
    VaGrant,
    /// Won switch allocation and traversed the crossbar.
    SaGrant,
    /// Head flit departed on an output link.
    LinkTraversal,
}

impl HopStage {
    /// Stable lowercase label used in the JSONL export.
    pub fn label(self) -> &'static str {
        match self {
            HopStage::VaGrant => "va_grant",
            HopStage::SaGrant => "sa_grant",
            HopStage::LinkTraversal => "link",
        }
    }
}

/// One timestamped pipeline event at a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopEvent {
    /// Node where the event happened.
    pub node: usize,
    /// Pipeline stage.
    pub stage: HopStage,
    /// Cycle of the event.
    pub cycle: u64,
}

/// Hard cap on recorded hop events per span; traffic that loops (e.g.
/// under faults) cannot grow a span without bound.
pub const MAX_HOPS: usize = 64;

/// The full lifecycle of one traced packet.
#[derive(Debug, Clone, PartialEq)]
pub struct PacketSpan {
    /// Packet id.
    pub packet: u64,
    /// Source node.
    pub src: usize,
    /// Destination node.
    pub dst: usize,
    /// Packet length in flits.
    pub len: usize,
    /// Cycle the packet was created/enqueued at the source.
    pub injected_at: u64,
    /// Cycle the tail flit was ejected, once complete.
    pub ejected_at: Option<u64>,
    /// Recorded pipeline events, in order, capped at [`MAX_HOPS`].
    pub hops: Vec<HopEvent>,
}

impl PacketSpan {
    /// Total injection→ejection latency, if complete.
    pub fn latency(&self) -> Option<u64> {
        self.ejected_at.map(|e| e - self.injected_at)
    }

    /// Source-queuing time: injection until the first switch
    /// allocation at the source router. Falls back to the first
    /// recorded event of any kind, and to total latency if no events
    /// were recorded at all.
    pub fn queuing_cycles(&self) -> Option<u64> {
        let first = self
            .hops
            .iter()
            .find(|h| h.node == self.src && h.stage == HopStage::SaGrant)
            .or_else(|| self.hops.first());
        match first {
            Some(h) => Some(h.cycle.saturating_sub(self.injected_at)),
            None => self.latency(),
        }
    }

    /// Network time: total latency minus queuing time.
    pub fn network_cycles(&self) -> Option<u64> {
        Some(self.latency()?.saturating_sub(self.queuing_cycles()?))
    }

    /// Serializes the span as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = format!(
            "{{\"schema_version\":{TRACE_SCHEMA_VERSION},\"packet\":{},\"src\":{},\
             \"dst\":{},\"len\":{},\"injected_at\":{},\"ejected_at\":{},",
            self.packet,
            self.src,
            self.dst,
            self.len,
            self.injected_at,
            self.ejected_at
                .map_or("null".to_string(), |v| v.to_string()),
        );
        out.push_str(&format!(
            "\"latency\":{},\"queuing_cycles\":{},\"network_cycles\":{},\"hops\":[",
            self.latency().map_or("null".to_string(), |v| v.to_string()),
            self.queuing_cycles()
                .map_or("null".to_string(), |v| v.to_string()),
            self.network_cycles()
                .map_or("null".to_string(), |v| v.to_string()),
        ));
        for (i, h) in self.hops.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"node\":{},\"stage\":\"{}\",\"cycle\":{}}}",
                h.node,
                h.stage.label(),
                h.cycle
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Bounded tracer: tracks the first `max_active` in-flight packets and
/// keeps the most recent `capacity` completed spans.
#[derive(Debug, Clone)]
pub struct FlitTracer {
    capacity: usize,
    max_active: usize,
    active: Vec<PacketSpan>,
    completed: Vec<PacketSpan>,
    dropped: u64,
}

impl FlitTracer {
    /// Creates a tracer holding up to `capacity` completed spans
    /// (clamped to at least 1) and at most `2 * capacity` in-flight
    /// spans.
    pub fn new(capacity: usize) -> FlitTracer {
        let capacity = capacity.max(1);
        FlitTracer {
            capacity,
            max_active: capacity * 2,
            active: Vec::new(),
            completed: Vec::new(),
            dropped: 0,
        }
    }

    /// Completed-span ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Completed spans evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Starts a span for `packet`, unless the in-flight budget is
    /// exhausted (in which case the packet goes untraced).
    pub fn packet_injected(&mut self, packet: u64, src: usize, dst: usize, len: usize, cycle: u64) {
        if self.active.len() >= self.max_active {
            return;
        }
        self.active.push(PacketSpan {
            packet,
            src,
            dst,
            len,
            injected_at: cycle,
            ejected_at: None,
            hops: Vec::new(),
        });
    }

    /// Records a pipeline event for `packet`, if traced.
    pub fn hop(&mut self, packet: u64, node: usize, stage: HopStage, cycle: u64) {
        if let Some(span) = self.active.iter_mut().find(|s| s.packet == packet) {
            if span.hops.len() < MAX_HOPS {
                span.hops.push(HopEvent { node, stage, cycle });
            }
        }
    }

    /// Completes the span for `packet` (tail flit ejected), moving it
    /// into the bounded completed ring.
    pub fn packet_delivered(&mut self, packet: u64, cycle: u64) {
        let Some(idx) = self.active.iter().position(|s| s.packet == packet) else {
            return;
        };
        let mut span = self.active.swap_remove(idx);
        span.ejected_at = Some(cycle);
        if self.completed.len() >= self.capacity {
            self.completed.remove(0);
            self.dropped += 1;
        }
        self.completed.push(span);
    }

    /// Discards the span for `packet` (e.g. the packet was dropped at
    /// a faulty link).
    pub fn packet_dropped(&mut self, packet: u64) {
        if let Some(idx) = self.active.iter().position(|s| s.packet == packet) {
            self.active.swap_remove(idx);
        }
    }

    /// Completed spans, oldest retained first.
    pub fn spans(&self) -> &[PacketSpan] {
        &self.completed
    }

    /// Consumes the tracer, returning completed spans.
    pub fn into_spans(self) -> Vec<PacketSpan> {
        self.completed
    }
}

/// Serializes spans as JSONL (one span per line, trailing newline).
pub fn spans_to_jsonl(spans: &[PacketSpan]) -> String {
    let mut out = String::new();
    for span in spans {
        out.push_str(&span.to_json_line());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traced_packet(t: &mut FlitTracer, packet: u64) {
        t.packet_injected(packet, 0, 5, 5, 100);
        t.hop(packet, 0, HopStage::VaGrant, 103);
        t.hop(packet, 0, HopStage::SaGrant, 104);
        t.hop(packet, 0, HopStage::LinkTraversal, 106);
        t.hop(packet, 5, HopStage::SaGrant, 108);
        t.packet_delivered(packet, 115);
    }

    #[test]
    fn span_splits_queuing_from_network_time() {
        let mut t = FlitTracer::new(8);
        traced_packet(&mut t, 1);
        let span = &t.spans()[0];
        assert_eq!(span.latency(), Some(15));
        assert_eq!(
            span.queuing_cycles(),
            Some(4),
            "injection to source SA grant"
        );
        assert_eq!(span.network_cycles(), Some(11));
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let mut t = FlitTracer::new(2);
        for p in 0..5 {
            traced_packet(&mut t, p);
        }
        assert_eq!(t.spans().len(), 2);
        assert_eq!(t.dropped(), 3);
        assert_eq!(t.spans()[0].packet, 3, "oldest evicted first");
    }

    #[test]
    fn in_flight_budget_limits_tracing() {
        let mut t = FlitTracer::new(1);
        t.packet_injected(1, 0, 1, 1, 0);
        t.packet_injected(2, 0, 1, 1, 0);
        t.packet_injected(3, 0, 1, 1, 0);
        t.packet_delivered(3, 9);
        assert!(
            t.spans().is_empty(),
            "packet 3 exceeded the budget, untraced"
        );
        t.packet_delivered(1, 9);
        assert_eq!(t.spans().len(), 1);
    }

    #[test]
    fn dropped_packets_leave_no_span() {
        let mut t = FlitTracer::new(4);
        t.packet_injected(7, 0, 3, 5, 10);
        t.packet_dropped(7);
        t.packet_delivered(7, 99);
        assert!(t.spans().is_empty());
    }

    #[test]
    fn hops_are_capped() {
        let mut t = FlitTracer::new(1);
        t.packet_injected(1, 0, 1, 1, 0);
        for c in 0..(MAX_HOPS as u64 + 10) {
            t.hop(1, 0, HopStage::LinkTraversal, c);
        }
        t.packet_delivered(1, 999);
        assert_eq!(t.spans()[0].hops.len(), MAX_HOPS);
    }

    #[test]
    fn jsonl_contains_breakdown_fields() {
        let mut t = FlitTracer::new(1);
        traced_packet(&mut t, 42);
        let line = spans_to_jsonl(t.spans());
        assert!(line.starts_with(&format!("{{\"schema_version\":{TRACE_SCHEMA_VERSION},")));
        assert!(line.contains("\"packet\":42"));
        assert!(line.contains("\"queuing_cycles\":4"));
        assert!(line.contains("\"network_cycles\":11"));
        assert!(line.contains("\"stage\":\"va_grant\""));
        assert!(line.ends_with("]}\n"));
    }
}
