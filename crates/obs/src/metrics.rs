//! A lightweight metrics registry: typed counters, gauges and
//! fixed-bucket histograms keyed by `&'static str`.
//!
//! The registry is deliberately dependency-free and allocation-light:
//! metric sets in a simulator are tiny (tens of keys), so storage is a
//! `Vec` scanned linearly and keys keep their insertion order, which
//! makes every snapshot deterministic without sorting at update time.
//! Snapshots serialize to JSON or CSV with the same fixed field order
//! every run — artifact diffs are meaningful.

/// Default histogram bucket upper bounds: powers of two from 1 to
/// 65 536 cycles, spanning zero-load latencies (~15 cycles, §4.1) to
/// deep-saturation queuing. Values above the last bound land in an
/// overflow bucket.
pub const DEFAULT_BOUNDS: [u64; 17] = [
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536,
];

/// A fixed-bucket histogram over `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Inclusive upper bounds, strictly increasing.
    bounds: Vec<u64>,
    /// `counts[i]` = samples `<= bounds[i]`; the final extra slot is the
    /// overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram with the given inclusive upper
    /// bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[u64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, if any was recorded.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, if any was recorded.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean sample; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Approximate `p`-th quantile (0..=100): the upper bound of the
    /// bucket containing the quantile rank (exact `max` for the
    /// overflow bucket). `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `0..=100`.
    pub fn quantile(&self, p: f64) -> Option<u64> {
        assert!((0.0..=100.0).contains(&p), "quantile outside 0..=100");
        if self.count == 0 {
            return None;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                });
            }
        }
        Some(self.max)
    }

    /// `(upper_bound, count)` pairs, the overflow bucket reported with
    /// `u64::MAX` as its bound.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(u64::MAX))
            .zip(self.counts.iter().copied())
    }
}

/// The registry: named counters, gauges and histograms.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, f64)>,
    histograms: Vec<(&'static str, Histogram)>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `n` to the counter `key`, creating it at zero on first use.
    pub fn add(&mut self, key: &'static str, n: u64) {
        match self.counters.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v += n,
            None => self.counters.push((key, n)),
        }
    }

    /// Increments the counter `key` by one.
    pub fn inc(&mut self, key: &'static str) {
        self.add(key, 1);
    }

    /// Current value of counter `key` (0 if never touched).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Sets the gauge `key` to `value`.
    pub fn set_gauge(&mut self, key: &'static str, value: f64) {
        match self.gauges.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v = value,
            None => self.gauges.push((key, value)),
        }
    }

    /// Current value of gauge `key`, if ever set.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    /// Records `value` into histogram `key`, creating it with
    /// [`DEFAULT_BOUNDS`] on first use.
    pub fn observe(&mut self, key: &'static str, value: u64) {
        match self.histograms.iter_mut().find(|(k, _)| *k == key) {
            Some((_, h)) => h.observe(value),
            None => {
                let mut h = Histogram::new(&DEFAULT_BOUNDS);
                h.observe(value);
                self.histograms.push((key, h));
            }
        }
    }

    /// The histogram registered under `key`, if any.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, h)| h)
    }

    /// An immutable, name-sorted snapshot for serialization.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<(String, u64)> = self
            .counters
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect();
        counters.sort();
        let mut gauges: Vec<(String, f64)> = self
            .gauges
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        let mut histograms: Vec<(String, Histogram)> = self
            .histograms
            .iter()
            .map(|(k, h)| (k.to_string(), h.clone()))
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Formats a float the way the workspace's artifacts do: shortest
/// round-trip decimal, `null` for non-finite values.
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A frozen, name-sorted view of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// `(name, histogram)` pairs, sorted by name.
    pub histograms: Vec<(String, Histogram)>,
}

impl MetricsSnapshot {
    /// Serializes the snapshot as a single JSON object with fixed field
    /// order (`schema_version`, `counters`, `gauges`, `histograms`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema_version\":1,\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{k}\":{v}"));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{k}\":{}", json_f64(*v)));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{k}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                h.count(),
                h.sum(),
                h.min().map_or("null".into(), |v| v.to_string()),
                h.max().map_or("null".into(), |v| v.to_string()),
            ));
            for (j, (bound, count)) in h.buckets().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                if bound == u64::MAX {
                    out.push_str(&format!("[null,{count}]"));
                } else {
                    out.push_str(&format!("[{bound},{count}]"));
                }
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Serializes the snapshot as CSV rows `kind,name,field,value`
    /// (counters and gauges use field `value`; histograms emit one row
    /// per summary statistic).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,field,value\n");
        for (k, v) in &self.counters {
            out.push_str(&format!("counter,{k},value,{v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("gauge,{k},value,{v}\n"));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!("histogram,{k},count,{}\n", h.count()));
            out.push_str(&format!("histogram,{k},sum,{}\n", h.sum()));
            if let (Some(mn), Some(mx)) = (h.min(), h.max()) {
                out.push_str(&format!("histogram,{k},min,{mn}\n"));
                out.push_str(&format!("histogram,{k},max,{mx}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut m = MetricsRegistry::new();
        m.inc("a");
        m.add("a", 4);
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.counter("never"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let mut m = MetricsRegistry::new();
        m.set_gauge("g", 1.5);
        m.set_gauge("g", 2.5);
        assert_eq!(m.gauge("g"), Some(2.5));
        assert_eq!(m.gauge("missing"), None);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::new(&[10, 100]);
        for v in [5, 7, 50, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1062);
        assert_eq!(h.min(), Some(5));
        assert_eq!(h.max(), Some(1000));
        let buckets: Vec<(u64, u64)> = h.buckets().collect();
        assert_eq!(buckets, vec![(10, 2), (100, 1), (u64::MAX, 1)]);
    }

    #[test]
    fn quantiles_on_empty_histogram_are_none_not_panic() {
        let h = Histogram::new(&DEFAULT_BOUNDS);
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(50.0), None);
        assert_eq!(h.quantile(100.0), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn quantiles_walk_buckets() {
        let mut h = Histogram::new(&[10, 100]);
        for _ in 0..9 {
            h.observe(5);
        }
        h.observe(5000);
        assert_eq!(h.quantile(50.0), Some(10), "bucket bound, not sample");
        assert_eq!(h.quantile(100.0), Some(5000), "overflow reports exact max");
    }

    #[test]
    fn snapshot_is_sorted_and_serializes() {
        let mut m = MetricsRegistry::new();
        m.inc("zeta");
        m.inc("alpha");
        m.set_gauge("mid", f64::NAN);
        m.observe("lat", 12);
        let snap = m.snapshot();
        assert_eq!(snap.counters[0].0, "alpha");
        let json = snap.to_json();
        assert!(json.starts_with("{\"schema_version\":1,"));
        assert!(json.contains("\"alpha\":1"));
        assert!(json.contains("\"mid\":null"), "NaN gauges become null");
        assert!(json.contains("\"lat\":{\"count\":1"));
        let csv = snap.to_csv();
        assert!(csv.starts_with("kind,name,field,value\n"));
        assert!(csv.contains("counter,zeta,value,1\n"));
        assert!(csv.contains("histogram,lat,count,1\n"));
    }
}
