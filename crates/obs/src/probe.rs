//! The probe scheduler: periodic per-node, per-component state
//! sampling into a versioned JSONL time series.
//!
//! Every `sample_every` cycles the simulator hands the prober one
//! [`NodeState`] per node (buffer occupancy, free credits, cumulative
//! link flits, cumulative per-component energy). The prober stores the
//! cumulative values and the per-interval deltas, so a row answers both
//! "how much energy has node 5 burned so far" and "how hot was node 5
//! in the last window" — the latter is the paper's Fig. 6 per-node
//! power map sampled over time.

use crate::metrics::json_f64;

/// Schema version stamped on every probe row. Bump when the row format
/// changes incompatibly.
pub const PROBE_SCHEMA_VERSION: u32 = 1;

/// Component labels, index-aligned with `orion-sim`'s
/// `Component::ALL` order. The sim crate pins this ordering with a
/// test, so probe rows and energy ledgers always agree on which column
/// is which.
pub const COMPONENTS: [&str; 5] = ["buffer", "central_buffer", "crossbar", "arbiter", "link"];

/// One node's instantaneous state, as sampled by the simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NodeState {
    /// Flits currently buffered in the node's router (all ports/VCs).
    pub buffered_flits: usize,
    /// Downstream flow-control credits available across the node's
    /// router outputs.
    pub free_credits: usize,
    /// Cumulative flits that traversed the node's outgoing links.
    pub link_flits: u64,
    /// Cumulative energy per component, joules, in [`COMPONENTS`] order.
    pub energy_j: [f64; 5],
}

/// One sampled row of the probe time series.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeRow {
    /// Cycle at which the sample was taken.
    pub cycle: u64,
    /// Node index.
    pub node: usize,
    /// Flits buffered at sample time.
    pub buffered_flits: usize,
    /// Free credits at sample time.
    pub free_credits: usize,
    /// Cumulative link flits at sample time.
    pub link_flits: u64,
    /// Link flits since the previous sample of this node.
    pub delta_link_flits: u64,
    /// Cumulative per-component energy, joules.
    pub energy_j: [f64; 5],
    /// Per-component energy since the previous sample, joules.
    pub delta_energy_j: [f64; 5],
}

impl ProbeRow {
    /// Total cumulative energy across components, joules.
    pub fn total_energy_j(&self) -> f64 {
        self.energy_j.iter().sum()
    }

    /// Total energy since the previous sample, joules.
    pub fn delta_total_energy_j(&self) -> f64 {
        self.delta_energy_j.iter().sum()
    }

    /// Serializes the row as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = format!(
            "{{\"schema_version\":{PROBE_SCHEMA_VERSION},\"cycle\":{},\"node\":{},\
             \"buffered_flits\":{},\"free_credits\":{},\"link_flits\":{},\
             \"delta_link_flits\":{},\"energy_j\":{{",
            self.cycle,
            self.node,
            self.buffered_flits,
            self.free_credits,
            self.link_flits,
            self.delta_link_flits,
        );
        for (i, name) in COMPONENTS.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{}", json_f64(self.energy_j[i])));
        }
        out.push_str("},\"delta_energy_j\":{");
        for (i, name) in COMPONENTS.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{}", json_f64(self.delta_energy_j[i])));
        }
        out.push_str(&format!(
            "}},\"total_energy_j\":{}}}",
            json_f64(self.total_energy_j())
        ));
        out
    }
}

/// Periodic sampler: call [`Prober::due`] each cycle and
/// [`Prober::record`] when it fires.
#[derive(Debug, Clone)]
pub struct Prober {
    sample_every: u64,
    last: Vec<NodeState>,
    rows: Vec<ProbeRow>,
    last_cycle: Option<u64>,
}

impl Prober {
    /// Creates a prober that fires every `sample_every` cycles
    /// (clamped to at least 1).
    pub fn new(sample_every: u64) -> Prober {
        Prober {
            sample_every: sample_every.max(1),
            last: Vec::new(),
            rows: Vec::new(),
            last_cycle: None,
        }
    }

    /// Sampling period in cycles.
    pub fn sample_every(&self) -> u64 {
        self.sample_every
    }

    /// Whether a sample is due at `cycle` (multiples of the period,
    /// and never twice for the same cycle).
    pub fn due(&self, cycle: u64) -> bool {
        cycle.is_multiple_of(self.sample_every) && self.last_cycle != Some(cycle)
    }

    /// Records one sample: a state per node, in node order. Deltas are
    /// computed against the previous `record` call (first call's deltas
    /// equal the cumulative values).
    pub fn record(&mut self, cycle: u64, states: &[NodeState]) {
        if self.last_cycle == Some(cycle) {
            return;
        }
        for (node, s) in states.iter().enumerate() {
            let prev = self.last.get(node).copied().unwrap_or_default();
            let mut delta_energy = [0.0; 5];
            for (d, (now, before)) in delta_energy
                .iter_mut()
                .zip(s.energy_j.iter().zip(prev.energy_j.iter()))
            {
                *d = now - before;
            }
            self.rows.push(ProbeRow {
                cycle,
                node,
                buffered_flits: s.buffered_flits,
                free_credits: s.free_credits,
                link_flits: s.link_flits,
                delta_link_flits: s.link_flits.saturating_sub(prev.link_flits),
                energy_j: s.energy_j,
                delta_energy_j: delta_energy,
            });
        }
        self.last = states.to_vec();
        self.last_cycle = Some(cycle);
    }

    /// All rows sampled so far, in (cycle, node) order.
    pub fn rows(&self) -> &[ProbeRow] {
        &self.rows
    }

    /// Consumes the prober, returning its rows.
    pub fn into_rows(self) -> Vec<ProbeRow> {
        self.rows
    }
}

/// Serializes rows as JSONL (one row per line, trailing newline).
pub fn rows_to_jsonl(rows: &[ProbeRow]) -> String {
    let mut out = String::new();
    for row in rows {
        out.push_str(&row.to_json_line());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(buffered: usize, link: u64, e: f64) -> NodeState {
        NodeState {
            buffered_flits: buffered,
            free_credits: 8,
            link_flits: link,
            energy_j: [e, 0.0, 0.0, 0.0, e],
        }
    }

    #[test]
    fn due_respects_period_and_dedup() {
        let mut p = Prober::new(10);
        assert!(p.due(0));
        assert!(!p.due(5));
        assert!(p.due(20));
        p.record(20, &[state(0, 0, 0.0)]);
        assert!(!p.due(20), "never samples the same cycle twice");
        assert!(p.due(30));
    }

    #[test]
    fn deltas_track_previous_sample() {
        let mut p = Prober::new(5);
        p.record(5, &[state(2, 10, 1.0)]);
        p.record(10, &[state(3, 25, 4.0)]);
        let rows = p.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0].delta_link_flits, 10,
            "first sample deltas = cumulative"
        );
        assert_eq!(rows[1].delta_link_flits, 15);
        assert!((rows[1].delta_energy_j[0] - 3.0).abs() < 1e-12);
        assert!((rows[1].total_energy_j() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn jsonl_round_trips_fields() {
        let mut p = Prober::new(1);
        p.record(7, &[state(1, 3, 0.5)]);
        let jsonl = rows_to_jsonl(p.rows());
        let line = jsonl.lines().next().unwrap();
        assert!(line.starts_with(&format!("{{\"schema_version\":{PROBE_SCHEMA_VERSION},")));
        assert!(line.contains("\"cycle\":7"));
        assert!(line.contains("\"node\":0"));
        assert!(line.contains("\"buffered_flits\":1"));
        assert!(line.contains("\"link\":0.5"));
        assert!(line.contains("\"total_energy_j\":1"));
    }

    #[test]
    fn zero_period_is_clamped() {
        assert_eq!(Prober::new(0).sample_every(), 1);
    }
}
