//! # orion-obs
//!
//! Zero-cost observability for the Orion simulator: a metrics
//! registry, a periodic per-node probe scheduler, and opt-in
//! flit-lifecycle tracing.
//!
//! The crate is a dependency-free leaf: it speaks plain `u64`/`usize`
//! so it never pulls simulator types into its API. The simulator holds
//! an `Option<ObsSink>`; every event site is a single `if let
//! Some(obs)` check, and with no sink attached a run is bit-identical
//! to an uninstrumented build (pinned by `orion-core`'s
//! `sweep_identity` test and the `obs_overhead` bench).
//!
//! ```
//! use orion_obs::{keys, ObsSink};
//!
//! let mut obs = ObsSink::new().with_tracer(16);
//! obs.packet_injected(1, 0, 5, 5, 100);
//! obs.sa_grant(0, 1, 104);
//! obs.packet_delivered(1, 115, 15);
//! let observations = obs.into_observations(10);
//! assert_eq!(observations.metrics.counters[0].0, keys::PACKETS_DELIVERED);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod probe;
pub mod trace;

pub use metrics::{Histogram, MetricsRegistry, MetricsSnapshot, DEFAULT_BOUNDS};
pub use probe::{rows_to_jsonl, NodeState, ProbeRow, Prober, COMPONENTS, PROBE_SCHEMA_VERSION};
pub use trace::{
    spans_to_jsonl, FlitTracer, HopEvent, HopStage, PacketSpan, MAX_HOPS, TRACE_SCHEMA_VERSION,
};

/// Metric key catalog. All simulator-published metrics use these
/// static keys; docs/OBSERVABILITY.md mirrors this list.
pub mod keys {
    /// Packets enqueued at sources.
    pub const PACKETS_INJECTED: &str = "sim.packets.injected";
    /// Packets whose tail flit was ejected.
    pub const PACKETS_DELIVERED: &str = "sim.packets.delivered";
    /// Packets dropped (unroutable under faults).
    pub const PACKETS_DROPPED: &str = "sim.packets.dropped";
    /// Flits ejected at destinations.
    pub const FLITS_EJECTED: &str = "sim.flits.ejected";
    /// Virtual-channel allocation grants.
    pub const VA_GRANTS: &str = "sim.va.grants";
    /// Switch allocation grants (crossbar traversals start here).
    pub const SA_GRANTS: &str = "sim.sa.grants";
    /// Flits that traversed a link.
    pub const LINK_FLITS: &str = "sim.link.flits";
    /// Credits returned upstream.
    pub const CREDITS_RETURNED: &str = "sim.credits.returned";
    /// End-to-end packet latency histogram (cycles).
    pub const PACKET_LATENCY: &str = "sim.packet.latency_cycles";
    /// Source-queuing portion of traced-packet latency (cycles).
    pub const TRACE_QUEUING: &str = "trace.queuing_cycles";
    /// Network portion of traced-packet latency (cycles).
    pub const TRACE_NETWORK: &str = "trace.network_cycles";
}

/// One observability event, as published by a simulator event site.
///
/// Shard workers record events instead of applying them, so a
/// coordinator can replay every shard's stream into one master sink in
/// the exact order a single-network run would have produced — the
/// property that makes an instrumented sharded run bit-identical to an
/// instrumented monolithic one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsEvent {
    /// A packet was enqueued at a source.
    PacketInjected {
        /// Packet id.
        packet: u64,
        /// Source node.
        src: usize,
        /// Destination node.
        dst: usize,
        /// Packet length in flits.
        len: usize,
        /// Injection cycle.
        cycle: u64,
    },
    /// A packet was dropped before entering the network.
    PacketDropped {
        /// Packet id.
        packet: u64,
    },
    /// A flit was ejected at its destination.
    FlitEjected,
    /// A packet's tail flit was ejected.
    PacketDelivered {
        /// Packet id.
        packet: u64,
        /// Delivery cycle.
        cycle: u64,
        /// End-to-end latency in cycles.
        latency: u64,
    },
    /// A packet won VC allocation.
    VaGrant {
        /// Router node.
        node: usize,
        /// Packet id.
        packet: u64,
        /// Grant cycle.
        cycle: u64,
    },
    /// A packet won switch allocation.
    SaGrant {
        /// Router node.
        node: usize,
        /// Packet id.
        packet: u64,
        /// Grant cycle.
        cycle: u64,
    },
    /// A flit departed a node on an output link.
    LinkTraversal {
        /// Source node of the link.
        node: usize,
        /// Packet id.
        packet: u64,
        /// Traversal cycle.
        cycle: u64,
    },
    /// A credit was returned upstream.
    CreditReturned,
}

impl ObsEvent {
    /// Intra-cycle phase ordinal the event was emitted in: 0 for
    /// injection, 1 for delivery/ejection, 2 for router activity.
    /// Replaying each phase across all shards (shards in ascending
    /// node order within a phase) reproduces the event order of a
    /// single-network step.
    pub fn phase(&self) -> u8 {
        match self {
            ObsEvent::PacketInjected { .. } | ObsEvent::PacketDropped { .. } => 0,
            ObsEvent::FlitEjected | ObsEvent::PacketDelivered { .. } => 1,
            ObsEvent::VaGrant { .. }
            | ObsEvent::SaGrant { .. }
            | ObsEvent::LinkTraversal { .. }
            | ObsEvent::CreditReturned => 2,
        }
    }
}

/// The observer handle the simulator publishes events into.
///
/// Metrics are always on once a sink exists; tracing is a further
/// opt-in ([`ObsSink::with_tracer`]) because spans cost memory per
/// in-flight packet.
#[derive(Debug, Clone, Default)]
pub struct ObsSink {
    /// Counter/gauge/histogram registry.
    pub metrics: MetricsRegistry,
    /// Optional bounded flit tracer.
    pub tracer: Option<FlitTracer>,
    /// When `Some`, events are buffered instead of applied
    /// ([`ObsSink::recorder`]); a coordinator replays them into a
    /// master sink with [`ObsSink::apply`].
    recording: Option<Vec<ObsEvent>>,
}

impl ObsSink {
    /// Creates a sink with metrics only.
    pub fn new() -> ObsSink {
        ObsSink::default()
    }

    /// Enables flit tracing with a ring of `capacity` completed spans.
    pub fn with_tracer(mut self, capacity: usize) -> ObsSink {
        self.tracer = Some(FlitTracer::new(capacity));
        self
    }

    /// Creates a recording sink: every event method buffers an
    /// [`ObsEvent`] instead of updating metrics or traces. Drain with
    /// [`ObsSink::take_events`] and replay with [`ObsSink::apply`].
    pub fn recorder() -> ObsSink {
        ObsSink {
            recording: Some(Vec::new()),
            ..ObsSink::default()
        }
    }

    /// `true` when this sink buffers events rather than applying them.
    pub fn is_recorder(&self) -> bool {
        self.recording.is_some()
    }

    /// Moves the buffered events into `out` (cleared first), keeping
    /// the buffer's allocation for the next cycle.
    pub fn take_events(&mut self, out: &mut Vec<ObsEvent>) {
        out.clear();
        if let Some(buf) = &mut self.recording {
            std::mem::swap(buf, out);
        }
    }

    /// Applies one recorded event to this sink exactly as the original
    /// event-method call would have.
    pub fn apply(&mut self, e: &ObsEvent) {
        match *e {
            ObsEvent::PacketInjected {
                packet,
                src,
                dst,
                len,
                cycle,
            } => self.packet_injected(packet, src, dst, len, cycle),
            ObsEvent::PacketDropped { packet } => self.packet_dropped(packet),
            ObsEvent::FlitEjected => self.flit_ejected(),
            ObsEvent::PacketDelivered {
                packet,
                cycle,
                latency,
            } => self.packet_delivered(packet, cycle, latency),
            ObsEvent::VaGrant {
                node,
                packet,
                cycle,
            } => self.va_grant(node, packet, cycle),
            ObsEvent::SaGrant {
                node,
                packet,
                cycle,
            } => self.sa_grant(node, packet, cycle),
            ObsEvent::LinkTraversal {
                node,
                packet,
                cycle,
            } => self.link_traversal(node, packet, cycle),
            ObsEvent::CreditReturned => self.credit_returned(),
        }
    }

    /// A packet was enqueued at `src` bound for `dst`.
    pub fn packet_injected(&mut self, packet: u64, src: usize, dst: usize, len: usize, cycle: u64) {
        if let Some(buf) = &mut self.recording {
            buf.push(ObsEvent::PacketInjected {
                packet,
                src,
                dst,
                len,
                cycle,
            });
            return;
        }
        self.metrics.inc(keys::PACKETS_INJECTED);
        if let Some(t) = &mut self.tracer {
            t.packet_injected(packet, src, dst, len, cycle);
        }
    }

    /// A packet was dropped before entering the network.
    pub fn packet_dropped(&mut self, packet: u64) {
        if let Some(buf) = &mut self.recording {
            buf.push(ObsEvent::PacketDropped { packet });
            return;
        }
        self.metrics.inc(keys::PACKETS_DROPPED);
        if let Some(t) = &mut self.tracer {
            t.packet_dropped(packet);
        }
    }

    /// A flit was ejected at its destination.
    pub fn flit_ejected(&mut self) {
        if let Some(buf) = &mut self.recording {
            buf.push(ObsEvent::FlitEjected);
            return;
        }
        self.metrics.inc(keys::FLITS_EJECTED);
    }

    /// A packet's tail flit was ejected `latency` cycles after
    /// creation.
    pub fn packet_delivered(&mut self, packet: u64, cycle: u64, latency: u64) {
        if let Some(buf) = &mut self.recording {
            buf.push(ObsEvent::PacketDelivered {
                packet,
                cycle,
                latency,
            });
            return;
        }
        self.metrics.inc(keys::PACKETS_DELIVERED);
        self.metrics.observe(keys::PACKET_LATENCY, latency);
        if let Some(t) = &mut self.tracer {
            t.packet_delivered(packet, cycle);
        }
    }

    /// A packet won VC allocation at `node`.
    pub fn va_grant(&mut self, node: usize, packet: u64, cycle: u64) {
        if let Some(buf) = &mut self.recording {
            buf.push(ObsEvent::VaGrant {
                node,
                packet,
                cycle,
            });
            return;
        }
        self.metrics.inc(keys::VA_GRANTS);
        if let Some(t) = &mut self.tracer {
            t.hop(packet, node, HopStage::VaGrant, cycle);
        }
    }

    /// A packet won switch allocation at `node`.
    pub fn sa_grant(&mut self, node: usize, packet: u64, cycle: u64) {
        if let Some(buf) = &mut self.recording {
            buf.push(ObsEvent::SaGrant {
                node,
                packet,
                cycle,
            });
            return;
        }
        self.metrics.inc(keys::SA_GRANTS);
        if let Some(t) = &mut self.tracer {
            t.hop(packet, node, HopStage::SaGrant, cycle);
        }
    }

    /// A flit departed `node` on an output link.
    pub fn link_traversal(&mut self, node: usize, packet: u64, cycle: u64) {
        if let Some(buf) = &mut self.recording {
            buf.push(ObsEvent::LinkTraversal {
                node,
                packet,
                cycle,
            });
            return;
        }
        self.metrics.inc(keys::LINK_FLITS);
        if let Some(t) = &mut self.tracer {
            t.hop(packet, node, HopStage::LinkTraversal, cycle);
        }
    }

    /// A credit was returned upstream.
    pub fn credit_returned(&mut self) {
        if let Some(buf) = &mut self.recording {
            buf.push(ObsEvent::CreditReturned);
            return;
        }
        self.metrics.inc(keys::CREDITS_RETURNED);
    }

    /// Freezes the sink into an [`Observations`] bundle, folding the
    /// traced latency breakdown into the metrics registry.
    pub fn into_observations(mut self, sample_every: u64) -> Observations {
        let spans = match self.tracer.take() {
            Some(t) => t.into_spans(),
            None => Vec::new(),
        };
        for span in &spans {
            if let (Some(q), Some(n)) = (span.queuing_cycles(), span.network_cycles()) {
                self.metrics.observe(keys::TRACE_QUEUING, q);
                self.metrics.observe(keys::TRACE_NETWORK, n);
            }
        }
        Observations {
            metrics: self.metrics.snapshot(),
            probes: Vec::new(),
            spans,
            sample_every,
        }
    }
}

/// Everything a run observed, bundled for reports and artifacts.
#[derive(Debug, Clone, Default)]
pub struct Observations {
    /// Final metrics snapshot.
    pub metrics: MetricsSnapshot,
    /// Probe time series (filled in by the caller that owns the
    /// [`Prober`]).
    pub probes: Vec<ProbeRow>,
    /// Completed flit-lifecycle spans.
    pub spans: Vec<PacketSpan>,
    /// Probe sampling period the probes were collected at.
    pub sample_every: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_buffers_and_replay_matches_direct() {
        // Drive the same event sequence into a direct sink and
        // through a recorder + apply round-trip; the metrics must be
        // identical.
        let mut direct = ObsSink::new();
        let mut rec = ObsSink::recorder();
        assert!(rec.is_recorder());
        for sink in [&mut direct, &mut rec] {
            sink.packet_injected(1, 0, 3, 5, 0);
            sink.va_grant(0, 1, 2);
            sink.sa_grant(0, 1, 3);
            sink.link_traversal(0, 1, 5);
            sink.flit_ejected();
            sink.credit_returned();
            sink.packet_delivered(1, 20, 20);
            sink.packet_dropped(2);
        }
        // Recording applied nothing to the recorder's own registry.
        assert_eq!(rec.metrics.counter(keys::PACKETS_INJECTED), 0);
        let mut events = Vec::new();
        rec.take_events(&mut events);
        assert_eq!(events.len(), 8);
        let mut replayed = ObsSink::new();
        for e in &events {
            replayed.apply(e);
        }
        for key in [
            keys::PACKETS_INJECTED,
            keys::PACKETS_DELIVERED,
            keys::PACKETS_DROPPED,
            keys::FLITS_EJECTED,
            keys::VA_GRANTS,
            keys::SA_GRANTS,
            keys::LINK_FLITS,
            keys::CREDITS_RETURNED,
        ] {
            assert_eq!(replayed.metrics.counter(key), direct.metrics.counter(key));
        }
        // Buffer was handed over; the next take returns nothing.
        rec.take_events(&mut events);
        assert!(events.is_empty());
    }

    #[test]
    fn event_phases_partition_the_cycle() {
        assert_eq!(
            ObsEvent::PacketInjected {
                packet: 1,
                src: 0,
                dst: 1,
                len: 1,
                cycle: 0
            }
            .phase(),
            0
        );
        assert_eq!(ObsEvent::PacketDropped { packet: 1 }.phase(), 0);
        assert_eq!(ObsEvent::FlitEjected.phase(), 1);
        assert_eq!(
            ObsEvent::PacketDelivered {
                packet: 1,
                cycle: 9,
                latency: 9
            }
            .phase(),
            1
        );
        assert_eq!(
            ObsEvent::SaGrant {
                node: 0,
                packet: 1,
                cycle: 3
            }
            .phase(),
            2
        );
        assert_eq!(ObsEvent::CreditReturned.phase(), 2);
    }

    #[test]
    fn sink_counts_events_and_histograms_latency() {
        let mut obs = ObsSink::new();
        obs.packet_injected(1, 0, 3, 5, 0);
        obs.va_grant(0, 1, 2);
        obs.sa_grant(0, 1, 3);
        obs.link_traversal(0, 1, 5);
        obs.flit_ejected();
        obs.credit_returned();
        obs.packet_delivered(1, 20, 20);
        let m = &obs.metrics;
        assert_eq!(m.counter(keys::PACKETS_INJECTED), 1);
        assert_eq!(m.counter(keys::PACKETS_DELIVERED), 1);
        assert_eq!(m.counter(keys::VA_GRANTS), 1);
        assert_eq!(m.counter(keys::SA_GRANTS), 1);
        assert_eq!(m.counter(keys::LINK_FLITS), 1);
        assert_eq!(m.counter(keys::CREDITS_RETURNED), 1);
        assert_eq!(m.histogram(keys::PACKET_LATENCY).unwrap().count(), 1);
    }

    #[test]
    fn into_observations_folds_trace_breakdown() {
        let mut obs = ObsSink::new().with_tracer(4);
        obs.packet_injected(9, 1, 2, 5, 100);
        obs.sa_grant(1, 9, 104);
        obs.packet_delivered(9, 115, 15);
        let o = obs.into_observations(25);
        assert_eq!(o.sample_every, 25);
        assert_eq!(o.spans.len(), 1);
        let queuing = o
            .metrics
            .histograms
            .iter()
            .find(|(k, _)| k == keys::TRACE_QUEUING)
            .expect("queuing histogram");
        assert_eq!(queuing.1.count(), 1);
        assert_eq!(queuing.1.sum(), 4);
    }

    #[test]
    fn untraced_sink_produces_no_spans() {
        let mut obs = ObsSink::new();
        obs.packet_injected(1, 0, 1, 1, 0);
        obs.packet_delivered(1, 9, 9);
        let o = obs.into_observations(1);
        assert!(o.spans.is_empty());
        assert!(o
            .metrics
            .histograms
            .iter()
            .all(|(k, _)| k != keys::TRACE_QUEUING));
    }
}
