//! The `simulate` subcommand: run a whole-network experiment from the
//! command line, with fault injection and watchdog control, and render
//! the structured [`RunOutcome`] as human-readable text or JSON.

use orion_core::{presets, Experiment, NetworkConfig, Report, RunOutcome};
use orion_net::{FaultConfig, FaultSchedule};
use orion_sim::StallDiagnostics;

use crate::args::{ArgError, Args};
use crate::run::{CmdOutput, EXIT_DEGRADED, JSON_SCHEMA_VERSION};

const OPTIONS: [&str; 13] = [
    "preset",
    "rate",
    "seed",
    "warmup",
    "sample",
    "max-cycles",
    "watchdog-cycles",
    "audit-every",
    "fault-links",
    "fault-rate",
    "fault-ports",
    "fault-seed",
    "json",
];

fn preset(name: &str) -> Result<NetworkConfig, ArgError> {
    match name {
        "wh64" => Ok(presets::wh64_onchip()),
        "vc16" => Ok(presets::vc16_onchip()),
        "vc64" => Ok(presets::vc64_onchip()),
        "vc128" => Ok(presets::vc128_onchip()),
        "xb" => Ok(presets::xb_chip_to_chip()),
        "cb" => Ok(presets::cb_chip_to_chip()),
        other => Err(ArgError(format!(
            "unknown preset `{other}` (expected wh64|vc16|vc64|vc128|xb|cb)"
        ))),
    }
}

/// Runs a simulation experiment per the parsed command line. The exit
/// code distinguishes how the run ended: 0 for a cleanly completed
/// run, [`EXIT_DEGRADED`] for any other outcome (deadlock, saturation,
/// exhausted budget, faults) — scripts can branch on the code without
/// parsing output.
///
/// # Errors
///
/// Returns an [`ArgError`] for unknown options, malformed numbers and
/// configurations the runner rejects ([`orion_core::ConfigError`]).
pub fn simulate(args: &Args) -> Result<CmdOutput, ArgError> {
    args.ensure_known(&OPTIONS)?;
    // Every simulate option except `--json` takes a value; a trailing
    // `--rate` (parsed as a flag) must not silently fall back to the
    // default.
    for name in OPTIONS.iter().filter(|n| **n != "json") {
        if args.flag(name) {
            return Err(ArgError(format!("--{name} requires a value")));
        }
    }
    let preset_name = args.get("preset").unwrap_or("vc16").to_string();
    let config = preset(&preset_name)?;
    let rate = args.f64_or("rate", 0.05)?;
    let seed = args.u64_or("seed", 1)?;
    let warmup = args.u64_or("warmup", 1000)?;
    let sample = args.u64_or("sample", 10_000)?;
    let max_cycles = args.u64_or("max-cycles", 1_000_000)?;
    let watchdog = args.u64_or("watchdog-cycles", 1000)?;
    let audit_every = args.u64_or("audit-every", 0)?;

    let fault_links = args.u64_or("fault-links", 0)? as usize;
    let fault_rate = args.f64_or("fault-rate", 0.0)?;
    let fault_ports = args.u64_or("fault-ports", 0)? as usize;
    let fault_seed = args.u64_or("fault-seed", seed)?;
    if !(0.0..=1.0).contains(&fault_rate) {
        return Err(ArgError(format!(
            "--fault-rate expects a transient fault rate in [0, 1], got {fault_rate}"
        )));
    }

    let mut experiment = Experiment::new(config.clone())
        .injection_rate(rate)
        .seed(seed)
        .warmup(warmup)
        .sample_packets(sample)
        .max_cycles(max_cycles)
        .watchdog_cycles(watchdog)
        .audit_every(audit_every);

    let faults = fault_links > 0 || fault_rate > 0.0 || fault_ports > 0;
    let mut schedule_summary = None;
    if faults {
        // Permanent faults start in the first half of the horizon, so
        // size the horizon by the cycles this run will plausibly
        // execute (the sample usually completes long before the
        // million-cycle budget) — otherwise most requested faults
        // would begin after the run has already ended.
        let nodes = config.topology.num_nodes() as f64;
        let estimated_cycles = if rate > 0.0 {
            warmup as f64 + 2.0 * sample as f64 / (rate * nodes)
        } else {
            (warmup + 1) as f64
        };
        let horizon = (estimated_cycles.ceil() as u64).clamp(1, warmup.saturating_add(max_cycles));
        let fault_config = FaultConfig {
            seed: fault_seed,
            permanent_links: fault_links,
            transient_rate: fault_rate,
            horizon,
            faulty_router_ports: fault_ports,
            ..FaultConfig::default()
        };
        let schedule = FaultSchedule::generate(&config.topology, &fault_config);
        schedule_summary = Some((schedule.num_faulted_resources(), fault_seed));
        experiment = experiment.fault_schedule(schedule);
    }

    let report = experiment.run().map_err(|e| ArgError(e.to_string()))?;
    let text = if args.flag("json") {
        render_json(&preset_name, rate, &report)
    } else {
        render_human(&preset_name, rate, &report, schedule_summary)
    };
    let code = match report.outcome() {
        RunOutcome::Completed => 0,
        _ => EXIT_DEGRADED,
    };
    Ok(CmdOutput { text, code })
}

fn render_human(preset: &str, rate: f64, report: &Report, faults: Option<(usize, u64)>) -> String {
    let mut out = format!("{preset} at {rate} packets/cycle/node\n");
    if let Some((resources, seed)) = faults {
        out.push_str(&format!(
            "fault schedule: {resources} faulted resources (seed {seed})\n"
        ));
    }
    out.push_str(&format!("outcome: {}\n", report.outcome()));
    out.push_str(&format!("{report}\n"));
    let stats = report.stats();
    if stats.packets_dropped > 0 || stats.packets_detoured > 0 {
        out.push_str(&format!(
            "degradation: {} dropped ({:.1}% of injected), {} detoured\n",
            stats.packets_dropped,
            100.0 * stats.drop_rate(),
            stats.packets_detoured,
        ));
    }
    if let RunOutcome::Corrupted { violations, cycle } = report.outcome() {
        out.push_str(&format!(
            "invariant audit failed at cycle {cycle}; numbers are untrustworthy:\n"
        ));
        for v in violations {
            out.push_str(&format!("  - {v}\n"));
        }
    }
    if let Some(diag) = report.stall_diagnostics() {
        out.push_str(&format!("{diag}"));
    }
    out
}

/// JSON-safe number: JSON has no NaN, so an empty latency sample
/// serializes as `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn json_diagnostics(diag: &StallDiagnostics) -> String {
    format!(
        concat!(
            "{{\"kind\": \"{}\", \"cycle\": {}, \"window\": {}, ",
            "\"cycles_since_flit_movement\": {}, \"cycles_since_delivery\": {}, ",
            "\"flits_in_network\": {}, \"source_backlog\": {}, ",
            "\"stalled_vcs\": {}, \"blocked_head_flits\": {}}}"
        ),
        diag.kind,
        diag.cycle,
        diag.window,
        diag.cycles_since_flit_movement,
        diag.cycles_since_delivery,
        diag.flits_in_network,
        diag.source_backlog,
        diag.stalled_vcs.len(),
        diag.blocked_head_flits(),
    )
}

fn render_json(preset: &str, rate: f64, report: &Report) -> String {
    let stats = report.stats();
    let diagnostics = match report.outcome() {
        RunOutcome::Deadlocked(diag) => json_diagnostics(diag),
        _ => "null".to_string(),
    };
    let audit = match report.outcome() {
        RunOutcome::Corrupted { violations, cycle } => {
            let kinds: Vec<String> = violations
                .iter()
                .map(|v| format!("\"{}\"", v.kind()))
                .collect();
            format!(
                "{{\"cycle\": {cycle}, \"violations\": [{}]}}",
                kinds.join(", ")
            )
        }
        _ => "null".to_string(),
    };
    format!(
        concat!(
            "{{\n",
            "  \"schema_version\": {schema_version},\n",
            "  \"preset\": \"{preset}\",\n",
            "  \"offered_rate\": {rate},\n",
            "  \"outcome\": \"{outcome}\",\n",
            "  \"saturated\": {saturated},\n",
            "  \"avg_latency_cycles\": {latency},\n",
            "  \"zero_load_latency_cycles\": {zero_load},\n",
            "  \"measured_cycles\": {cycles},\n",
            "  \"total_power_w\": {power},\n",
            "  \"packets\": {{\"injected\": {injected}, \"delivered\": {delivered}, ",
            "\"dropped\": {dropped}, \"detoured\": {detoured}}},\n",
            "  \"drop_rate\": {drop_rate},\n",
            "  \"diagnostics\": {diagnostics},\n",
            "  \"audit\": {audit}\n",
            "}}\n"
        ),
        schema_version = JSON_SCHEMA_VERSION,
        preset = preset,
        rate = json_f64(rate),
        outcome = report.outcome().label(),
        saturated = report.is_saturated(),
        latency = json_f64(report.avg_latency()),
        zero_load = json_f64(report.zero_load_latency()),
        cycles = report.measured_cycles(),
        power = json_f64(report.total_power().0),
        injected = stats.packets_injected,
        delivered = stats.packets_delivered,
        dropped = stats.packets_dropped,
        detoured = stats.packets_detoured,
        drop_rate = json_f64(stats.drop_rate()),
        diagnostics = diagnostics,
        audit = audit,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_full(line: &str) -> Result<CmdOutput, ArgError> {
        simulate(&Args::parse(line.split_whitespace().map(String::from)).unwrap())
    }

    fn run_line(line: &str) -> Result<String, ArgError> {
        run_full(line).map(|o| o.text)
    }

    const QUICK: &str = "--warmup 100 --sample 100 --max-cycles 20000";

    #[test]
    fn healthy_run_reports_completed() {
        let out = run_full(&format!("simulate --preset vc16 --rate 0.03 {QUICK}")).unwrap();
        assert!(out.text.contains("outcome: completed"), "{}", out.text);
        assert!(out.text.contains("latency"), "{}", out.text);
        assert!(!out.text.contains("degradation"), "{}", out.text);
        assert_eq!(out.code, 0, "completed runs exit 0");
    }

    #[test]
    fn json_output_is_structured() {
        let out = run_line(&format!(
            "simulate --preset vc16 --rate 0.03 {QUICK} --json"
        ))
        .unwrap();
        assert!(out.contains("\"schema_version\": 2"), "{out}");
        assert!(out.contains("\"outcome\": \"completed\""), "{out}");
        assert!(out.contains("\"diagnostics\": null"), "{out}");
        assert!(out.contains("\"audit\": null"), "{out}");
        assert!(out.contains("\"dropped\": 0"), "{out}");
        assert_eq!(out.matches('{').count(), out.matches('}').count());
    }

    #[test]
    fn audit_passes_cleanly_and_changes_no_numbers() {
        // The auditor is read-only: a pre-saturation run with the
        // tightest cadence must produce byte-identical output to the
        // same run without auditing — and never classify as corrupted.
        for preset in ["wh64", "vc16", "vc64", "vc128"] {
            let base = format!("simulate --preset {preset} --rate 0.03 {QUICK}");
            let plain = run_full(&base).unwrap();
            let audited = run_full(&format!("{base} --audit-every 1")).unwrap();
            assert_eq!(
                plain.text, audited.text,
                "{preset}: audit perturbed the run"
            );
            assert_eq!(audited.code, 0, "{preset}: audit flagged a healthy run");
        }
    }

    #[test]
    fn audit_json_field_is_null_on_clean_runs() {
        let out = run_line(&format!(
            "simulate --preset wh64 --rate 0.03 {QUICK} --audit-every 100 --json"
        ))
        .unwrap();
        assert!(out.contains("\"outcome\": \"completed\""), "{out}");
        assert!(out.contains("\"audit\": null"), "{out}");
    }

    #[test]
    fn deadlock_prone_run_renders_diagnostics() {
        let out = run_full(
            "simulate --preset wh64 --rate 0.5 --warmup 100 --sample 2000 \
             --max-cycles 200000 --watchdog-cycles 400",
        )
        .unwrap();
        // A wormhole torus this deep past saturation either deadlocks
        // (diagnostics rendered) or is caught by backlog divergence.
        let text = &out.text;
        assert!(
            text.contains("deadlock") || text.contains("saturat"),
            "{text}"
        );
        assert!(!text.contains("budget exhausted"), "{text}");
        assert_eq!(out.code, EXIT_DEGRADED, "degraded outcomes exit 3");
    }

    #[test]
    fn fault_flags_degrade_gracefully() {
        let out = run_line(&format!(
            "simulate --preset vc16 --rate 0.03 {QUICK} --fault-links 6 --fault-seed 3"
        ))
        .unwrap();
        assert!(out.contains("fault schedule: "), "{out}");
        assert!(
            out.contains("outcome: faulted") || out.contains("detoured"),
            "{out}"
        );
    }

    #[test]
    fn fault_json_accounts_drops() {
        let out = run_line(&format!(
            "simulate --preset vc16 --rate 0.03 {QUICK} --fault-links 8 --fault-seed 3 --json"
        ))
        .unwrap();
        assert!(
            out.contains("\"outcome\": \"faulted\"") || out.contains("\"outcome\": \"completed\""),
            "{out}"
        );
        assert!(out.contains("\"drop_rate\": "), "{out}");
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let line = format!(
            "simulate --preset vc16 --rate 0.04 {QUICK} --seed 5 --fault-links 2 --fault-seed 7"
        );
        assert_eq!(run_line(&line).unwrap(), run_line(&line).unwrap());
    }

    #[test]
    fn helpful_simulate_errors() {
        assert!(run_line("simulate --preset hypercube").is_err());
        assert!(run_line("simulate --rate eleven").is_err());
        assert!(run_line("simulate --rate 1.5").is_err()); // typed ConfigError surfaced
        assert!(run_line("simulate --fault-rate 2.0").is_err());
        assert!(run_line("simulate --typo 1").is_err());
        assert!(run_line("simulate --rate").is_err()); // value-less option
        assert!(run_line("simulate --audit-every").is_err());
        assert!(run_line("simulate --audit-every many").is_err());
        assert!(run_line(&format!("simulate --rate 0.03 {QUICK} --json")).is_ok());
    }
}
