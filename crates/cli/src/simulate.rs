//! The `simulate` subcommand: run a whole-network experiment from the
//! command line, with fault injection, watchdog control, workload
//! selection and opt-in observability, and render the structured
//! [`RunOutcome`] as human-readable text or JSON.
//!
//! With `--observe-dir DIR` the run additionally collects event
//! metrics, per-node probe time series and (with `--trace-packets N`)
//! flit lifecycle spans, and writes them under `DIR` as
//! `metrics.json`, `probes.jsonl`, `powermap.jsonl` and `trace.jsonl`
//! (see `docs/OBSERVABILITY.md`). The `powermap` subcommand renders
//! the emitted `powermap.jsonl` as the paper's Fig. 6 grid.
//!
//! Error discipline (audited): no production path in this module
//! panics on user input or I/O — every failure maps to a typed
//! [`ArgError`] or a coded [`CmdOutput`]. The `unwrap`s that remain
//! live in `#[cfg(test)]` code or are infallible `unwrap_or` defaults;
//! the single `expect` in [`run_with_checkpoints`] asserts a caller
//! invariant (at least one checkpoint path), not a runtime condition.

use std::path::{Path, PathBuf};

use orion_core::{presets, Experiment, NetworkConfig, ObserveOptions, Report, RunOutcome};
use orion_net::{FaultConfig, FaultSchedule, NodeId, Topology, TopologyKind, TrafficPattern};
use orion_sim::{Component, StallDiagnostics};

use crate::args::{ArgError, Args};
use crate::powermap::POWERMAP_SCHEMA_VERSION;
use crate::run::{CmdOutput, EXIT_DEGRADED, EXIT_RUNTIME, JSON_SCHEMA_VERSION};

const OPTIONS: [&str; 23] = [
    "preset",
    "topology",
    "shards",
    "rate",
    "seed",
    "warmup",
    "sample",
    "max-cycles",
    "watchdog-cycles",
    "audit-every",
    "fault-links",
    "fault-rate",
    "fault-ports",
    "fault-seed",
    "traffic",
    "traffic-src",
    "observe-dir",
    "sample-every",
    "trace-packets",
    "checkpoint-every",
    "checkpoint-file",
    "resume-from",
    "json",
];

/// Per-dimension radix ceiling for `--topology` (matches the design
/// grammar's `MAX_RADIX`: keeps node counts, and therefore simulated
/// state, within what one machine can hold).
const MAX_TOPOLOGY_RADIX: u32 = 64;

/// Parses a `--topology` spec — `KxK` or `KxKxK`, with an optional
/// `-torus` (default) or `-mesh` suffix — into a validated topology.
/// The headline presets: `32x32`, `64x64` and the 3-D `8x8x8`.
///
/// # Errors
///
/// Typed [`ArgError`]s for malformed radices, dimension counts outside
/// 2..=3 and radices outside 2..=[`MAX_TOPOLOGY_RADIX`].
fn parse_topology(spec: &str) -> Result<Topology, ArgError> {
    let (shape, kind) = if let Some(rest) = spec.strip_suffix("-mesh") {
        (rest, TopologyKind::Mesh)
    } else if let Some(rest) = spec.strip_suffix("-torus") {
        (rest, TopologyKind::Torus)
    } else {
        (spec, TopologyKind::Torus)
    };
    let radices: Vec<u32> = shape
        .split('x')
        .map(|r| {
            r.parse().map_err(|_| {
                ArgError(format!(
                    "--topology expects KxK or KxKxK radices (e.g. 32x32, 8x8x8-mesh), got `{spec}`"
                ))
            })
        })
        .collect::<Result<_, _>>()?;
    if !(2..=3).contains(&radices.len()) {
        return Err(ArgError(format!(
            "--topology `{spec}` has {} dimension(s); 2-D (KxK) and 3-D (KxKxK) networks are supported",
            radices.len()
        )));
    }
    for (dim, &radix) in radices.iter().enumerate() {
        if !(2..=MAX_TOPOLOGY_RADIX).contains(&radix) {
            return Err(ArgError(format!(
                "--topology radix {radix} out of range for dimension {dim} (expected 2..={MAX_TOPOLOGY_RADIX})"
            )));
        }
    }
    Topology::new(kind, &radices).map_err(|e| ArgError(format!("--topology {spec}: {e}")))
}

fn preset(name: &str) -> Result<NetworkConfig, ArgError> {
    match name {
        "wh64" => Ok(presets::wh64_onchip()),
        "vc16" => Ok(presets::vc16_onchip()),
        "vc64" => Ok(presets::vc64_onchip()),
        "vc128" => Ok(presets::vc128_onchip()),
        "xb" => Ok(presets::xb_chip_to_chip()),
        "cb" => Ok(presets::cb_chip_to_chip()),
        other => Err(ArgError(format!(
            "unknown preset `{other}` (expected wh64|vc16|vc64|vc128|xb|cb)"
        ))),
    }
}

/// Parses `--traffic-src` coordinates (`x,y[,z...]`) into a node of
/// `config`'s topology, validating dimensionality and range.
fn traffic_src(config: &NetworkConfig, spec: &str) -> Result<NodeId, ArgError> {
    let topo = &config.topology;
    let coords: Vec<u32> = spec
        .split(',')
        .map(|c| {
            c.trim().parse().map_err(|_| {
                ArgError(format!(
                    "--traffic-src expects comma-separated coordinates, got `{spec}`"
                ))
            })
        })
        .collect::<Result<_, _>>()?;
    if coords.len() != topo.dims() {
        return Err(ArgError(format!(
            "--traffic-src `{spec}` has {} coordinate(s); the topology has {} dimension(s)",
            coords.len(),
            topo.dims()
        )));
    }
    for (dim, &c) in coords.iter().enumerate() {
        if c >= topo.radix(dim) {
            return Err(ArgError(format!(
                "--traffic-src coordinate {c} out of range for dimension {dim} (radix {})",
                topo.radix(dim)
            )));
        }
    }
    Ok(topo.node_at(&coords))
}

/// Builds the non-uniform workload requested by `--traffic`; `None`
/// means the default uniform-random workload (kept on the default
/// path so unobserved runs stay byte-identical).
fn traffic_pattern(
    config: &NetworkConfig,
    name: &str,
    src: Option<&str>,
    rate: f64,
) -> Result<Option<TrafficPattern>, ArgError> {
    let topo = &config.topology;
    let pattern_err =
        |e: orion_net::traffic::TrafficError| ArgError(format!("--traffic {name}: {e}"));
    match name {
        "uniform" => Ok(None),
        "broadcast" => {
            let spec = src
                .ok_or_else(|| ArgError("--traffic broadcast requires --traffic-src x,y".into()))?;
            let source = traffic_src(config, spec)?;
            TrafficPattern::broadcast(topo, source, rate)
                .map(Some)
                .map_err(pattern_err)
        }
        "transpose" => TrafficPattern::transpose(topo, rate)
            .map(Some)
            .map_err(pattern_err),
        "tornado" => TrafficPattern::tornado(topo, rate)
            .map(Some)
            .map_err(pattern_err),
        "bit-complement" | "bitcomp" => TrafficPattern::bit_complement(topo, rate)
            .map(Some)
            .map_err(pattern_err),
        other => Err(ArgError(format!(
            "unknown traffic pattern `{other}` \
             (expected uniform|broadcast|transpose|tornado|bit-complement)"
        ))),
    }
}

/// Runs a simulation experiment per the parsed command line. The exit
/// code distinguishes how the run ended: 0 for a cleanly completed
/// run, [`EXIT_DEGRADED`] for any other outcome (deadlock, saturation,
/// exhausted budget, faults) — scripts can branch on the code without
/// parsing output.
///
/// # Errors
///
/// Returns an [`ArgError`] for unknown options, malformed numbers and
/// configurations the runner rejects ([`orion_core::ConfigError`]).
pub fn simulate(args: &Args) -> Result<CmdOutput, ArgError> {
    args.ensure_known(&OPTIONS)?;
    // Every simulate option except `--json` takes a value; a trailing
    // `--rate` (parsed as a flag) must not silently fall back to the
    // default.
    for name in OPTIONS.iter().filter(|n| **n != "json") {
        if args.flag(name) {
            return Err(ArgError(format!("--{name} requires a value")));
        }
    }
    let preset_name = args.get("preset").unwrap_or("vc16").to_string();
    let mut config = preset(&preset_name)?;
    if let Some(spec) = args.get("topology") {
        config.topology = parse_topology(spec)?;
    }
    let shards = args.u64_or("shards", 1)? as usize;
    let rate = args.f64_or("rate", 0.05)?;
    let seed = args.u64_or("seed", 1)?;
    let warmup = args.u64_or("warmup", 1000)?;
    let sample = args.u64_or("sample", 10_000)?;
    let max_cycles = args.u64_or("max-cycles", 1_000_000)?;
    let watchdog = args.u64_or("watchdog-cycles", 1000)?;
    let audit_every = args.u64_or("audit-every", 0)?;

    let observe_dir = args.get("observe-dir").map(PathBuf::from);
    let sample_every = args.u64_or("sample-every", 100)?;
    let trace_packets = args.u64_or("trace-packets", 0)? as usize;
    if observe_dir.is_none() {
        for name in ["sample-every", "trace-packets"] {
            if args.get(name).is_some() {
                return Err(ArgError(format!("--{name} requires --observe-dir")));
            }
        }
    }
    let ckpt_every = args.u64_or("checkpoint-every", 0)?;
    let ckpt_file = args.get("checkpoint-file").map(PathBuf::from);
    let resume_from = args.get("resume-from").map(PathBuf::from);
    if ckpt_every > 0 && ckpt_file.is_none() && resume_from.is_none() {
        return Err(ArgError(
            "--checkpoint-every requires --checkpoint-file (or --resume-from)".into(),
        ));
    }
    if ckpt_file.is_some() && ckpt_every == 0 {
        return Err(ArgError(
            "--checkpoint-file requires --checkpoint-every".into(),
        ));
    }
    if (ckpt_file.is_some() || resume_from.is_some()) && observe_dir.is_some() {
        return Err(ArgError(
            "checkpointing does not snapshot observer state; \
             --checkpoint-file/--resume-from cannot be combined with --observe-dir"
                .into(),
        ));
    }

    let workload = traffic_pattern(
        &config,
        args.get("traffic").unwrap_or("uniform"),
        args.get("traffic-src"),
        rate,
    )?;

    let fault_links = args.u64_or("fault-links", 0)? as usize;
    let fault_rate = args.f64_or("fault-rate", 0.0)?;
    let fault_ports = args.u64_or("fault-ports", 0)? as usize;
    let fault_seed = args.u64_or("fault-seed", seed)?;
    if !(0.0..=1.0).contains(&fault_rate) {
        return Err(ArgError(format!(
            "--fault-rate expects a transient fault rate in [0, 1], got {fault_rate}"
        )));
    }

    let mut experiment = Experiment::new(config.clone())
        .injection_rate(rate)
        .seed(seed)
        .warmup(warmup)
        .sample_packets(sample)
        .max_cycles(max_cycles)
        .watchdog_cycles(watchdog)
        .audit_every(audit_every)
        .shards(shards);
    if let Some(pattern) = workload {
        experiment = experiment.workload(pattern);
    }
    if observe_dir.is_some() {
        experiment = experiment.observe(ObserveOptions {
            sample_every,
            trace_packets,
        });
    }

    let faults = fault_links > 0 || fault_rate > 0.0 || fault_ports > 0;
    let mut schedule_summary = None;
    if faults {
        // Permanent faults start in the first half of the horizon, so
        // size the horizon by the cycles this run will plausibly
        // execute (the sample usually completes long before the
        // million-cycle budget) — otherwise most requested faults
        // would begin after the run has already ended.
        let nodes = config.topology.num_nodes() as f64;
        let estimated_cycles = if rate > 0.0 {
            warmup as f64 + 2.0 * sample as f64 / (rate * nodes)
        } else {
            (warmup + 1) as f64
        };
        let horizon = (estimated_cycles.ceil() as u64).clamp(1, warmup.saturating_add(max_cycles));
        let fault_config = FaultConfig {
            seed: fault_seed,
            permanent_links: fault_links,
            transient_rate: fault_rate,
            horizon,
            faulty_router_ports: fault_ports,
            ..FaultConfig::default()
        };
        let schedule = FaultSchedule::generate(&config.topology, &fault_config);
        schedule_summary = Some((schedule.num_faulted_resources(), fault_seed));
        experiment = experiment.fault_schedule(schedule);
    }

    let report = if ckpt_file.is_some() || resume_from.is_some() {
        // The checkpoint's owner stamp is a hash of every flag that
        // shapes the deterministic run, so a snapshot taken under one
        // command line is never resumed into a different one.
        let canon = format!(
            "simulate|{preset_name}|{topology}|{shards}|{rate}|{seed}|{warmup}|{sample}\
             |{max_cycles}|{watchdog}|{audit_every}|{traffic}|{src}|{fault_links}|{fault_rate}\
             |{fault_ports}|{fault_seed}",
            topology = args.get("topology").unwrap_or(""),
            traffic = args.get("traffic").unwrap_or("uniform"),
            src = args.get("traffic-src").unwrap_or(""),
        );
        run_with_checkpoints(
            experiment,
            ckpt_every,
            ckpt_file.as_deref(),
            resume_from.as_deref(),
            orion_ckpt::hash::fnv1a64(canon.as_bytes()),
        )?
    } else {
        experiment.run().map_err(|e| ArgError(e.to_string()))?
    };
    if let Some(dir) = &observe_dir {
        if let Err(e) = write_observations(dir, &config, &report) {
            return Ok(CmdOutput {
                text: format!(
                    "error: cannot write observability artifacts under `{}`: {e}\n",
                    dir.display()
                ),
                code: EXIT_RUNTIME,
            });
        }
    }
    let text = if args.flag("json") {
        render_json(&preset_name, rate, &report)
    } else {
        render_human(&preset_name, rate, &report, schedule_summary)
    };
    let code = match report.outcome() {
        RunOutcome::Completed => 0,
        _ => EXIT_DEGRADED,
    };
    Ok(CmdOutput { text, code })
}

/// Runs `experiment` under the checkpoint policy: resume from
/// `resume_from` when it holds a valid snapshot owned by `fingerprint`
/// (any defect — torn write, bit flip, version skew, foreign owner —
/// degrades to a cycle-0 replay with a stderr note, never a failure),
/// persist to `ckpt_file` every `every` cycles, and delete the files
/// once the run finishes. All checkpoint chatter goes to stderr so
/// stdout stays a pure function of the result: a resumed run's output
/// is byte-identical to an uninterrupted one.
fn run_with_checkpoints(
    experiment: Experiment,
    every: u64,
    ckpt_file: Option<&Path>,
    resume_from: Option<&Path>,
    fingerprint: u64,
) -> Result<Report, ArgError> {
    use orion_ckpt::{load_checkpoint, CheckpointHook};
    use orion_core::{RunError, RunResult};

    let resume = resume_from.and_then(|p| match load_checkpoint(p, fingerprint) {
        Ok(ck) => {
            eprintln!("resuming from `{}` at cycle {}", p.display(), ck.cycle);
            Some(ck)
        }
        Err(e) => {
            eprintln!(
                "warning: cannot resume from `{}`: {e}; replaying from cycle 0",
                p.display()
            );
            None
        }
    });
    let resumed = resume.is_some();
    let write_path = ckpt_file
        .or(resume_from)
        .expect("caller passes at least one checkpoint path");
    let mut hook = CheckpointHook::new(write_path, fingerprint, every, None);
    let result = match experiment.clone().run_with_hook(&mut hook, resume) {
        Err(RunError::Resume(e)) if resumed => {
            // The file framed and checksummed correctly but the run
            // rejected its contents (a stale snapshot under a
            // colliding stamp): discard and replay from cycle 0.
            eprintln!("warning: checkpoint rejected ({e}); replaying from cycle 0");
            if let Some(p) = resume_from {
                let _ = std::fs::remove_file(p);
            }
            experiment.run_with_hook(&mut hook, None)
        }
        other => other,
    }
    .map_err(|e| ArgError(e.to_string()))?;
    if let Some(e) = hook.last_error() {
        eprintln!("warning: checkpoint write failed: {e} (results are unaffected; only restart time is lost)");
    }
    match result {
        RunResult::Finished(report) => {
            // GC: a finished run leaves no snapshot debris behind.
            let _ = std::fs::remove_file(write_path);
            if let Some(p) = resume_from {
                let _ = std::fs::remove_file(p);
            }
            Ok(*report)
        }
        RunResult::Aborted(_) => unreachable!("no cancel flag to abort the run"),
    }
}

/// Writes the run's observability artifacts under `dir`:
/// `metrics.json` (counter/gauge/histogram snapshot), `probes.jsonl`
/// (per-node time series), `powermap.jsonl` (the Fig. 6 per-node
/// energy/power map) and, when tracing was on, `trace.jsonl` (flit
/// lifecycle spans). Failures surface as I/O errors (exit code 1).
fn write_observations(dir: &Path, config: &NetworkConfig, report: &Report) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("powermap.jsonl"), powermap_jsonl(config, report))?;
    let Some(obs) = report.observations() else {
        return Ok(());
    };
    std::fs::write(dir.join("metrics.json"), obs.metrics.to_json())?;
    std::fs::write(
        dir.join("probes.jsonl"),
        orion_obs::rows_to_jsonl(&obs.probes),
    )?;
    if !obs.spans.is_empty() {
        std::fs::write(
            dir.join("trace.jsonl"),
            orion_obs::spans_to_jsonl(&obs.spans),
        )?;
    }
    Ok(())
}

/// Serializes the per-node energy/power map as one flat JSON object
/// per node (the format the `powermap` subcommand renders).
fn powermap_jsonl(config: &NetworkConfig, report: &Report) -> String {
    let mut out = String::new();
    for node in 0..report.num_nodes() {
        let coords = config.topology.coords(NodeId(node));
        let energy: f64 = Component::ALL
            .iter()
            .map(|c| report.node_component_energy(node, *c).0)
            .sum();
        out.push_str(&format!(
            "{{\"schema_version\":{POWERMAP_SCHEMA_VERSION},\"node\":{node},\
             \"x\":{},\"y\":{},\"total_energy_j\":{},\"power_w\":{}}}\n",
            coords.first().copied().unwrap_or(0),
            coords.get(1).copied().unwrap_or(0),
            fmt_json_f64(energy),
            fmt_json_f64(report.node_power(node).0),
        ));
    }
    out
}

/// Full-precision JSON number (unlike the rounded [`json_f64`] used
/// for report summaries); non-finite values become `null`.
fn fmt_json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn render_human(preset: &str, rate: f64, report: &Report, faults: Option<(usize, u64)>) -> String {
    let mut out = format!("{preset} at {rate} packets/cycle/node\n");
    if let Some((resources, seed)) = faults {
        out.push_str(&format!(
            "fault schedule: {resources} faulted resources (seed {seed})\n"
        ));
    }
    out.push_str(&format!("outcome: {}\n", report.outcome()));
    out.push_str(&format!("{report}\n"));
    let stats = report.stats();
    if stats.packets_dropped > 0 || stats.packets_detoured > 0 {
        out.push_str(&format!(
            "degradation: {} dropped ({:.1}% of injected), {} detoured\n",
            stats.packets_dropped,
            100.0 * stats.drop_rate(),
            stats.packets_detoured,
        ));
    }
    if let RunOutcome::Corrupted { violations, cycle } = report.outcome() {
        out.push_str(&format!(
            "invariant audit failed at cycle {cycle}; numbers are untrustworthy:\n"
        ));
        for v in violations {
            out.push_str(&format!("  - {v}\n"));
        }
    }
    if let Some(diag) = report.stall_diagnostics() {
        out.push_str(&format!("{diag}"));
    }
    out
}

/// JSON-safe number: JSON has no NaN, so an empty latency sample
/// serializes as `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

/// The `p`-th latency percentile of the tagged sample as a JSON
/// number, `null` when no tagged packet completed.
fn percentile_json(stats: &orion_sim::SimStats, p: f64) -> String {
    match stats.latency_percentile(p) {
        Some(v) => format!("{v}"),
        None => "null".to_string(),
    }
}

fn json_diagnostics(diag: &StallDiagnostics) -> String {
    format!(
        concat!(
            "{{\"kind\": \"{}\", \"cycle\": {}, \"window\": {}, ",
            "\"cycles_since_flit_movement\": {}, \"cycles_since_delivery\": {}, ",
            "\"flits_in_network\": {}, \"source_backlog\": {}, ",
            "\"stalled_vcs\": {}, \"blocked_head_flits\": {}}}"
        ),
        diag.kind,
        diag.cycle,
        diag.window,
        diag.cycles_since_flit_movement,
        diag.cycles_since_delivery,
        diag.flits_in_network,
        diag.source_backlog,
        diag.stalled_vcs.len(),
        diag.blocked_head_flits(),
    )
}

fn render_json(preset: &str, rate: f64, report: &Report) -> String {
    let stats = report.stats();
    let diagnostics = match report.outcome() {
        RunOutcome::Deadlocked(diag) => json_diagnostics(diag),
        _ => "null".to_string(),
    };
    let audit = match report.outcome() {
        RunOutcome::Corrupted { violations, cycle } => {
            let kinds: Vec<String> = violations
                .iter()
                .map(|v| format!("\"{}\"", v.kind()))
                .collect();
            format!(
                "{{\"cycle\": {cycle}, \"violations\": [{}]}}",
                kinds.join(", ")
            )
        }
        _ => "null".to_string(),
    };
    format!(
        concat!(
            "{{\n",
            "  \"schema_version\": {schema_version},\n",
            "  \"preset\": \"{preset}\",\n",
            "  \"offered_rate\": {rate},\n",
            "  \"outcome\": \"{outcome}\",\n",
            "  \"saturated\": {saturated},\n",
            "  \"avg_latency_cycles\": {latency},\n",
            "  \"latency_p50_cycles\": {p50},\n",
            "  \"latency_p99_cycles\": {p99},\n",
            "  \"zero_load_latency_cycles\": {zero_load},\n",
            "  \"measured_cycles\": {cycles},\n",
            "  \"total_power_w\": {power},\n",
            "  \"packets\": {{\"injected\": {injected}, \"delivered\": {delivered}, ",
            "\"dropped\": {dropped}, \"detoured\": {detoured}}},\n",
            "  \"flits_delivered\": {flits},\n",
            "  \"drop_rate\": {drop_rate},\n",
            "  \"diagnostics\": {diagnostics},\n",
            "  \"audit\": {audit}\n",
            "}}\n"
        ),
        schema_version = JSON_SCHEMA_VERSION,
        preset = preset,
        rate = json_f64(rate),
        outcome = report.outcome().label(),
        saturated = report.is_saturated(),
        latency = json_f64(report.avg_latency()),
        p50 = percentile_json(stats, 50.0),
        p99 = percentile_json(stats, 99.0),
        zero_load = json_f64(report.zero_load_latency()),
        cycles = report.measured_cycles(),
        power = json_f64(report.total_power().0),
        injected = stats.packets_injected,
        delivered = stats.packets_delivered,
        dropped = stats.packets_dropped,
        detoured = stats.packets_detoured,
        flits = stats.flits_delivered,
        drop_rate = json_f64(stats.drop_rate()),
        diagnostics = diagnostics,
        audit = audit,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_full(line: &str) -> Result<CmdOutput, ArgError> {
        simulate(&Args::parse(line.split_whitespace().map(String::from)).unwrap())
    }

    fn run_line(line: &str) -> Result<String, ArgError> {
        run_full(line).map(|o| o.text)
    }

    const QUICK: &str = "--warmup 100 --sample 100 --max-cycles 20000";

    #[test]
    fn healthy_run_reports_completed() {
        let out = run_full(&format!("simulate --preset vc16 --rate 0.03 {QUICK}")).unwrap();
        assert!(out.text.contains("outcome: completed"), "{}", out.text);
        assert!(out.text.contains("latency"), "{}", out.text);
        assert!(!out.text.contains("degradation"), "{}", out.text);
        assert_eq!(out.code, 0, "completed runs exit 0");
    }

    #[test]
    fn json_output_is_structured() {
        let out = run_line(&format!(
            "simulate --preset vc16 --rate 0.03 {QUICK} --json"
        ))
        .unwrap();
        assert!(
            out.contains(&format!(
                "\"schema_version\": {}",
                crate::run::JSON_SCHEMA_VERSION
            )),
            "{out}"
        );
        assert!(out.contains("\"outcome\": \"completed\""), "{out}");
        assert!(out.contains("\"latency_p50_cycles\": "), "{out}");
        assert!(out.contains("\"latency_p99_cycles\": "), "{out}");
        assert!(out.contains("\"flits_delivered\": "), "{out}");
        assert!(out.contains("\"diagnostics\": null"), "{out}");
        assert!(out.contains("\"audit\": null"), "{out}");
        assert!(out.contains("\"dropped\": 0"), "{out}");
        assert_eq!(out.matches('{').count(), out.matches('}').count());
    }

    #[test]
    fn audit_passes_cleanly_and_changes_no_numbers() {
        // The auditor is read-only: a pre-saturation run with the
        // tightest cadence must produce byte-identical output to the
        // same run without auditing — and never classify as corrupted.
        for preset in ["wh64", "vc16", "vc64", "vc128"] {
            let base = format!("simulate --preset {preset} --rate 0.03 {QUICK}");
            let plain = run_full(&base).unwrap();
            let audited = run_full(&format!("{base} --audit-every 1")).unwrap();
            assert_eq!(
                plain.text, audited.text,
                "{preset}: audit perturbed the run"
            );
            assert_eq!(audited.code, 0, "{preset}: audit flagged a healthy run");
        }
    }

    #[test]
    fn audit_json_field_is_null_on_clean_runs() {
        let out = run_line(&format!(
            "simulate --preset wh64 --rate 0.03 {QUICK} --audit-every 100 --json"
        ))
        .unwrap();
        assert!(out.contains("\"outcome\": \"completed\""), "{out}");
        assert!(out.contains("\"audit\": null"), "{out}");
    }

    #[test]
    fn deadlock_prone_run_renders_diagnostics() {
        let out = run_full(
            "simulate --preset wh64 --rate 0.5 --warmup 100 --sample 2000 \
             --max-cycles 200000 --watchdog-cycles 400",
        )
        .unwrap();
        // A wormhole torus this deep past saturation either deadlocks
        // (diagnostics rendered) or is caught by backlog divergence.
        let text = &out.text;
        assert!(
            text.contains("deadlock") || text.contains("saturat"),
            "{text}"
        );
        assert!(!text.contains("budget exhausted"), "{text}");
        assert_eq!(out.code, EXIT_DEGRADED, "degraded outcomes exit 3");
    }

    #[test]
    fn fault_flags_degrade_gracefully() {
        let out = run_line(&format!(
            "simulate --preset vc16 --rate 0.03 {QUICK} --fault-links 6 --fault-seed 3"
        ))
        .unwrap();
        assert!(out.contains("fault schedule: "), "{out}");
        assert!(
            out.contains("outcome: faulted") || out.contains("detoured"),
            "{out}"
        );
    }

    #[test]
    fn fault_json_accounts_drops() {
        let out = run_line(&format!(
            "simulate --preset vc16 --rate 0.03 {QUICK} --fault-links 8 --fault-seed 3 --json"
        ))
        .unwrap();
        assert!(
            out.contains("\"outcome\": \"faulted\"") || out.contains("\"outcome\": \"completed\""),
            "{out}"
        );
        assert!(out.contains("\"drop_rate\": "), "{out}");
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let line = format!(
            "simulate --preset vc16 --rate 0.04 {QUICK} --seed 5 --fault-links 2 --fault-seed 7"
        );
        assert_eq!(run_line(&line).unwrap(), run_line(&line).unwrap());
    }

    #[test]
    fn helpful_simulate_errors() {
        assert!(run_line("simulate --preset hypercube").is_err());
        assert!(run_line("simulate --rate eleven").is_err());
        assert!(run_line("simulate --rate 1.5").is_err()); // typed ConfigError surfaced
        assert!(run_line("simulate --fault-rate 2.0").is_err());
        assert!(run_line("simulate --typo 1").is_err());
        assert!(run_line("simulate --rate").is_err()); // value-less option
        assert!(run_line("simulate --audit-every").is_err());
        assert!(run_line("simulate --audit-every many").is_err());
        assert!(run_line(&format!("simulate --rate 0.03 {QUICK} --json")).is_ok());
    }

    #[test]
    fn helpful_observe_and_traffic_errors() {
        // Observability knobs without a destination directory.
        assert!(run_line("simulate --sample-every 10").is_err());
        assert!(run_line("simulate --trace-packets 8").is_err());
        // Workload selection errors are typed, not panics.
        assert!(run_line("simulate --traffic warp").is_err());
        assert!(run_line("simulate --traffic broadcast").is_err()); // no src
        assert!(run_line("simulate --traffic broadcast --traffic-src abc").is_err());
        assert!(run_line("simulate --traffic broadcast --traffic-src 1").is_err());
        assert!(run_line("simulate --traffic broadcast --traffic-src 9,9").is_err());
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("orion-cli-obs-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn checkpoint_flag_combinations_are_validated() {
        // Cadence without a destination, destination without a cadence.
        assert!(run_line("simulate --checkpoint-every 64").is_err());
        assert!(run_line("simulate --checkpoint-file ck.ckpt").is_err());
        // Observer state is not snapshotted: the combination is a typed
        // argument error, not a late runtime failure.
        assert!(run_line(
            "simulate --checkpoint-every 64 --checkpoint-file ck.ckpt --observe-dir obs"
        )
        .is_err());
        assert!(run_line("simulate --resume-from ck.ckpt --observe-dir obs").is_err());
        assert!(run_line("simulate --checkpoint-every").is_err());
    }

    #[test]
    fn checkpointed_run_matches_plain_run_and_gcs_its_file() {
        let dir = temp_dir("ckpt-clean");
        std::fs::create_dir_all(&dir).unwrap();
        let ck = dir.join("run.ckpt");
        let base = format!("simulate --preset vc16 --rate 0.03 {QUICK} --json");
        let plain = run_full(&base).unwrap();
        let ckpted = run_full(&format!(
            "{base} --checkpoint-every 64 --checkpoint-file {}",
            ck.display()
        ))
        .unwrap();
        assert_eq!(plain.text, ckpted.text, "checkpointing perturbed the run");
        assert_eq!(ckpted.code, 0);
        assert!(!ck.exists(), "finished run garbage-collects its snapshot");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_resume_file_degrades_to_cycle_zero_replay() {
        let dir = temp_dir("ckpt-corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let ck = dir.join("torn.ckpt");
        std::fs::write(&ck, b"definitely not a checkpoint").unwrap();
        let base = format!("simulate --preset vc16 --rate 0.03 {QUICK} --json");
        let plain = run_full(&base).unwrap();
        let resumed = run_full(&format!("{base} --resume-from {}", ck.display())).unwrap();
        assert_eq!(resumed.code, 0, "a bad snapshot must never fail the run");
        assert_eq!(
            plain.text, resumed.text,
            "cycle-0 fallback reproduces the uninterrupted output"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn observe_dir_leaves_the_report_unchanged() {
        let dir = temp_dir("ident");
        let base = format!("simulate --preset vc16 --rate 0.03 {QUICK} --json");
        let plain = run_full(&base).unwrap();
        let observed = run_full(&format!(
            "{base} --observe-dir {} --sample-every 20 --trace-packets 16",
            dir.display()
        ))
        .unwrap();
        assert_eq!(plain.text, observed.text, "observers perturbed the run");
        assert_eq!(observed.code, 0);
        for artifact in [
            "metrics.json",
            "probes.jsonl",
            "powermap.jsonl",
            "trace.jsonl",
        ] {
            assert!(dir.join(artifact).exists(), "missing {artifact}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn broadcast_powermap_has_the_fig6b_hotspot() {
        // Acceptance: VC64, broadcast from (1,2) at 0.2 pkt/cycle with
        // --observe-dir emits a per-node energy JSONL whose source node
        // sits strictly above the mean per-node energy (Fig. 6b).
        let dir = temp_dir("fig6b");
        let out = run_full(&format!(
            "simulate --preset vc64 --rate 0.2 --traffic broadcast --traffic-src 1,2 \
             --warmup 200 --sample 300 --max-cycles 100000 --observe-dir {}",
            dir.display()
        ))
        .unwrap();
        assert_eq!(out.code, 0, "{}", out.text);

        let jsonl = std::fs::read_to_string(dir.join("powermap.jsonl")).unwrap();
        let mut energies = Vec::new();
        for line in jsonl.lines() {
            let obj = orion_exp::record::parse_flat_object(line).expect("flat JSON line");
            assert_eq!(
                obj.get("schema_version").and_then(|v| v.as_u64()),
                Some(u64::from(POWERMAP_SCHEMA_VERSION))
            );
            let node = obj.get("node").and_then(|v| v.as_u64()).unwrap() as usize;
            let energy = obj.get("total_energy_j").and_then(|v| v.as_f64()).unwrap();
            energies.push((node, energy));
        }
        assert_eq!(energies.len(), 16, "one line per node of the 4x4 torus");
        let source = orion_core::presets::vc64_onchip().topology.node_at(&[1, 2]);
        let mean: f64 = energies.iter().map(|(_, e)| e).sum::<f64>() / energies.len() as f64;
        let source_energy = energies
            .iter()
            .find(|(n, _)| *n == source.0)
            .expect("source node present")
            .1;
        assert!(
            source_energy > mean,
            "broadcast source {} at {source_energy} J not above mean {mean} J",
            source.0
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn topology_flag_overrides_the_preset_grid() {
        // An 8×8 torus has 64 nodes; the run completes and is
        // deterministic under the override.
        let line = format!("simulate --preset vc16 --topology 8x8 --rate 0.02 {QUICK}");
        let out = run_full(&line).unwrap();
        assert_eq!(out.code, 0, "{}", out.text);
        assert_eq!(run_line(&line).unwrap(), run_line(&line).unwrap());
        // Mesh and 3-D presets parse and run.
        assert!(run_line(&format!(
            "simulate --preset vc16 --topology 4x4-mesh --rate 0.02 {QUICK}"
        ))
        .is_ok());
        assert!(run_line(&format!(
            "simulate --preset vc16 --topology 4x4x4 --rate 0.01 {QUICK}"
        ))
        .is_ok());
    }

    #[test]
    fn topology_validation_errors_are_typed() {
        for bad in [
            "4",        // 1-D: below the 2-dimension floor
            "4x4x4x4",  // 4-D: above the 3-dimension ceiling
            "1x4",      // radix below 2
            "65x65",    // radix above MAX_TOPOLOGY_RADIX
            "axb",      // not a number
            "4x",       // trailing separator
            "",         // empty
            "4x4-ring", // unknown kind suffix
        ] {
            assert!(
                run_line(&format!("simulate --topology {bad} --rate 0.02 {QUICK}")).is_err(),
                "--topology {bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn sharded_runs_render_identical_output() {
        // The tentpole contract at the CLI surface: stdout is a pure
        // function of the simulated physics, so the shard count must
        // never change a byte of it (human and JSON forms alike).
        for form in ["", " --json"] {
            let base = format!("simulate --preset vc16 --rate 0.03 {QUICK}{form}");
            let mono = run_full(&base).unwrap();
            for shards in [2, 8] {
                let sharded = run_full(&format!("{base} --shards {shards}")).unwrap();
                assert_eq!(
                    mono.text, sharded.text,
                    "--shards {shards} changed the output"
                );
                assert_eq!(mono.code, sharded.code);
            }
        }
    }

    #[test]
    fn shard_count_is_validated() {
        assert!(run_line(&format!("simulate --shards 0 --rate 0.03 {QUICK}")).is_err());
        // 17 shards on a 16-node torus: surfaced as a typed error.
        assert!(run_line(&format!("simulate --shards 17 --rate 0.03 {QUICK}")).is_err());
        assert!(run_line("simulate --shards").is_err());
        assert!(run_line("simulate --shards many").is_err());
    }

    #[test]
    fn foreign_shard_snapshot_degrades_to_cycle_zero_replay() {
        use orion_core::{RunCheckpoint, RunControl, RunHook};

        // Persist a mid-run 4-shard checkpoint under the exact owner
        // stamp the resuming `--shards 1` (default) command line will
        // compute: the fingerprint matches, so only the network
        // image's engine frame can reject it — and that rejection
        // must degrade to a clean cycle-0 replay, not an error.
        struct StopAtFirst(Option<RunCheckpoint>);
        impl RunHook for StopAtFirst {
            fn every(&self) -> u64 {
                100
            }
            fn on_checkpoint(&mut self, ck: &RunCheckpoint) -> RunControl {
                self.0 = Some(ck.clone());
                RunControl::Stop
            }
        }
        let mut stopper = StopAtFirst(None);
        orion_core::Experiment::new(orion_core::presets::vc16_onchip())
            .injection_rate(0.03)
            .seed(1)
            .warmup(100)
            .sample_packets(100)
            .max_cycles(20_000)
            .watchdog_cycles(1000)
            .shards(4)
            .run_with_hook(&mut stopper, None)
            .expect("valid");
        let foreign = stopper.0.expect("captured a checkpoint");

        let dir = temp_dir("ckpt-shards");
        std::fs::create_dir_all(&dir).unwrap();
        let ck = dir.join("four-shards.ckpt");
        let canon = "simulate|vc16||1|0.03|1|100|100|20000|1000|0|uniform||0|0|0|1";
        orion_ckpt::save_checkpoint(&ck, orion_ckpt::hash::fnv1a64(canon.as_bytes()), &foreign)
            .unwrap();

        let base = format!("simulate --preset vc16 --rate 0.03 {QUICK} --json");
        let plain = run_full(&base).unwrap();
        let resumed = run_full(&format!("{base} --resume-from {}", ck.display())).unwrap();
        assert_eq!(
            resumed.code, 0,
            "a foreign snapshot must never fail the run"
        );
        assert_eq!(
            plain.text, resumed.text,
            "cycle-0 fallback reproduces the uninterrupted output"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
