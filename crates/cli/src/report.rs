//! Plain-text report formatting for the CLI.

use std::fmt::Write;

/// A two-column quantity report.
#[derive(Debug, Default)]
pub struct Report {
    lines: Vec<(String, String)>,
    title: String,
}

impl Report {
    /// Starts a report with a title line.
    pub fn new(title: impl Into<String>) -> Report {
        Report {
            lines: Vec::new(),
            title: title.into(),
        }
    }

    /// Adds one labelled quantity.
    pub fn push(&mut self, label: impl Into<String>, value: impl Into<String>) -> &mut Report {
        self.lines.push((label.into(), value.into()));
        self
    }

    /// Adds a femtofarad capacitance.
    pub fn cap(&mut self, label: &str, c: orion_tech::Farads) -> &mut Report {
        self.push(label, format!("{:.3} fF", c.as_ff()))
    }

    /// Adds a picojoule energy.
    pub fn energy(&mut self, label: &str, e: orion_tech::Joules) -> &mut Report {
        self.push(label, format!("{:.4} pJ", e.as_pj()))
    }

    /// Adds a power quantity in the most readable scale.
    pub fn power(&mut self, label: &str, p: orion_tech::Watts) -> &mut Report {
        let text = if p.0 >= 0.1 {
            format!("{:.3} W", p.0)
        } else if p.0 >= 1e-4 {
            format!("{:.3} mW", p.as_mw())
        } else {
            format!("{:.3} uW", p.0 * 1e6)
        };
        self.push(label, text)
    }

    /// Renders the report.
    pub fn render(&self) -> String {
        let width = self.lines.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        for (label, value) in &self.lines {
            let _ = writeln!(out, "  {label:<width$}  {value}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_tech::{Farads, Joules, Watts};

    #[test]
    fn renders_aligned_lines() {
        let mut r = Report::new("test");
        r.cap("C_wl", Farads::from_ff(12.5));
        r.energy("E_read (long label)", Joules::from_pj(3.25));
        let text = r.render();
        assert!(text.starts_with("test\n"));
        assert!(text.contains("12.500 fF"));
        assert!(text.contains("3.2500 pJ"));
        // Both values begin at the same column.
        let cols: Vec<usize> = text
            .lines()
            .skip(1)
            .map(|l| l.find("  ").unwrap_or(0))
            .collect();
        assert_eq!(cols.len(), 2);
    }

    #[test]
    fn power_scales_units() {
        let mut r = Report::new("p");
        r.power("big", Watts(2.5));
        r.power("mid", Watts(0.003));
        r.power("tiny", Watts(5.0e-6));
        let text = r.render();
        assert!(text.contains("2.500 W"));
        assert!(text.contains("3.000 mW"));
        assert!(text.contains("5.000 uW"));
    }

    #[test]
    fn empty_report_is_title_only() {
        assert_eq!(Report::new("t").render(), "t\n");
    }
}
