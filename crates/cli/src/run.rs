//! Subcommand dispatch: build the requested power model and report it.

use orion_power::{
    buffer_area, central_buffer_area, crossbar_area, ArbiterKind, ArbiterParams, ArbiterPower,
    BufferParams, BufferPower, CentralBufferParams, CentralBufferPower, CrossbarKind,
    CrossbarParams, CrossbarPower, LinkPower, WriteActivity,
};
use orion_tech::{Microns, ProcessNode, Technology, Volts, Watts};

use crate::args::{ArgError, Args};
use crate::report::Report;

/// Usage text for `orion-power help`.
pub const USAGE: &str = "\
orion-power-cli — Orion's architectural power models as a standalone tool

USAGE:
  orion-power-cli <component> [options]
  orion-power-cli experiment run <spec.toml> [options]

COMPONENTS:
  buffer          --flits N --bits N [--read-ports N] [--write-ports N] [--decoder]
  crossbar        --ports N --bits N [--kind matrix|muxtree]
  arbiter         --requesters N [--kind matrix|roundrobin|queuing]
  link            --length-mm X --bits N          (on-chip)
  link            --chip2chip --watts X --bits N  (constant-power)
  central-buffer  --banks N --rows N --bits N [--read-ports N] [--write-ports N]
  simulate        [--preset wh64|vc16|vc64|vc128|xb|cb] [--rate X] [--seed N]
                  [--warmup N] [--sample N] [--max-cycles N]
                  [--watchdog-cycles N] [--audit-every N] [--fault-links N]
                  [--fault-rate X] [--fault-ports N] [--fault-seed N]
                  [--traffic uniform|broadcast|transpose|tornado|bit-complement]
                  [--traffic-src x,y] [--observe-dir DIR] [--sample-every N]
                  [--trace-packets N] [--checkpoint-every N --checkpoint-file F]
                  [--resume-from F] [--json]    (see docs/OBSERVABILITY.md,
                  docs/ROBUSTNESS.md)
  powermap        --observe-dir DIR | --file powermap.jsonl
                  (renders the per-node power map of an observed run)
  experiment run  <spec.toml> [--threads N] [--cache-dir DIR] [--out-dir DIR]
                  [--retries N] [--cell-timeout-ms N] [--audit-every N]
                  [--checkpoint-every N] [--json] [--quiet]
                  (see docs/ORCHESTRATION.md)
  experiment explore  <spec.toml> [--threads N] [--cache-dir DIR]
                  [--out-dir DIR] [--seed N] [--budget N] [--retries N]
                  [--cell-timeout-ms N] [--checkpoint-every N]
                  [--observe-dir DIR] [--json] [--quiet]
                  (see docs/EXPLORATION.md)
  serve           [--addr HOST:PORT] [--cache-dir DIR] [--workers N]
                  [--queue N] [--queue-patience-ms N] [--client-budget N]
                  [--retries N] [--cell-timeout-ms N] [--drain-timeout-ms N]
                  [--max-body-bytes N] [--checkpoint-every N]
                  (see docs/SERVING.md)

COMMON OPTIONS:
  --node <0.8um|0.35um|0.25um|0.18um|0.13um|0.1um|70nm>   (default 0.1um)
  --vdd <volts>                                           (node default)

EXIT CODES:
  0  success (simulate: run completed; experiment: no failed cells;
     serve: drained cleanly)
  1  runtime I/O failure (cache or artifact files; serve: bind or
     cache conflict)
  2  bad input (unknown options, malformed spec, invalid configuration,
     cache directory locked by another live run)
  3  degraded result (simulate: deadlock/saturation/budget/faults/
     corrupted audit; experiment: failed, crashed, timed-out or
     corrupted cells; serve: drain deadline expired with requests
     still in flight)

EXAMPLES:
  orion-power-cli buffer --flits 64 --bits 256
  orion-power-cli crossbar --ports 5 --bits 256 --node 0.18um
  orion-power-cli link --chip2chip --watts 3 --bits 32
  orion-power-cli simulate --preset wh64 --rate 0.5 --watchdog-cycles 500
  orion-power-cli simulate --preset vc16 --fault-links 4 --fault-seed 7 --json
  orion-power-cli simulate --preset vc64 --rate 0.2 --traffic broadcast \\
      --traffic-src 1,2 --observe-dir obs --sample-every 50
  orion-power-cli powermap --observe-dir obs
  orion-power-cli experiment run examples/specs/fig5.toml --threads 8 \\
      --cache-dir .exp-cache --out-dir experiments
  orion-power-cli experiment explore examples/specs/explore_smoke.toml \\
      --threads 8 --seed 1 --budget 12 --cache-dir .exp-cache
";

/// Version of the CLI's JSON output layouts (`simulate --json` and
/// `experiment run --json`), emitted as `schema_version`. Bump on any
/// field change. Per-cell artifact records carry their own
/// [`orion_exp::SCHEMA_VERSION`].
///
/// History: 2 added supervision fields (`crashed`, `timed_out`,
/// `retried`, `corrupted`, `append_failures` to `experiment run`;
/// `audit` to `simulate`); 3 added the latency/flit summary fields
/// (`latency_p50_cycles`, `latency_p99_cycles`, `flits_delivered` to
/// `simulate`); 4 added the `experiment explore` summary layout
/// (`strategy`, `budget`, `seed`, `evaluations`, `rounds`, `frontier`,
/// `dominated` and the four-file `artifacts` object).
pub const JSON_SCHEMA_VERSION: u32 = 4;

/// Version of the `serve` daemon's wire protocol (the `protocol`
/// field of its framing and error lines), re-exported here so the
/// three version constants the CLI ships — CLI JSON layouts, per-cell
/// records ([`orion_exp::SCHEMA_VERSION`]), serve framing — live side
/// by side. See `docs/SERVING.md` for the wire format.
pub const SERVE_PROTOCOL_VERSION: u32 = orion_serve::SERVE_PROTOCOL_VERSION;

/// Exit code for runtime I/O failures (cache/artifact files).
pub const EXIT_RUNTIME: u8 = 1;
/// Exit code for bad input: unknown options, malformed specs, invalid
/// configurations.
pub const EXIT_BAD_INPUT: u8 = 2;
/// Exit code for degraded results: a simulation that did not complete
/// cleanly, or an experiment with failed cells.
pub const EXIT_DEGRADED: u8 = 3;

/// A command's rendered output plus the process exit code it asks for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CmdOutput {
    /// Text for stdout.
    pub text: String,
    /// Process exit code (0 = clean success).
    pub code: u8,
}

impl CmdOutput {
    /// Output with the success code.
    pub fn ok(text: String) -> CmdOutput {
        CmdOutput { text, code: 0 }
    }
}

const COMMON: [&str; 2] = ["node", "vdd"];

fn technology(args: &Args) -> Result<Technology, ArgError> {
    let node = match args.get("node").unwrap_or("0.1um") {
        "0.8um" => ProcessNode::Um800,
        "0.35um" => ProcessNode::Um350,
        "0.25um" => ProcessNode::Um250,
        "0.18um" => ProcessNode::Um180,
        "0.13um" => ProcessNode::Um130,
        "0.1um" | "100nm" => ProcessNode::Nm100,
        "70nm" | "0.07um" => ProcessNode::Nm70,
        other => return Err(ArgError(format!("unknown process node `{other}`"))),
    };
    let mut builder = Technology::builder(node);
    if let Some(v) = args.get("vdd") {
        let vdd: f64 = v
            .parse()
            .map_err(|_| ArgError(format!("--vdd expects a number, got `{v}`")))?;
        if vdd <= 0.0 {
            return Err(ArgError("--vdd must be positive".into()));
        }
        builder = builder.vdd(Volts(vdd));
    }
    Ok(builder.build())
}

fn model_err(e: orion_power::ModelError) -> ArgError {
    ArgError(e.to_string())
}

fn allowed(extra: &[&str]) -> Vec<&'static str> {
    // Leaks are fine here: tiny, once per process.
    let mut v: Vec<&'static str> = COMMON.to_vec();
    for e in extra {
        v.push(Box::leak(e.to_string().into_boxed_str()));
    }
    v
}

/// Executes a parsed command line, returning the rendered report and
/// the exit code to use (`simulate` signals degraded outcomes via
/// [`EXIT_DEGRADED`]).
///
/// # Errors
///
/// Returns a human-readable [`ArgError`] for unknown components,
/// unknown or malformed options, and invalid model parameters.
pub fn run(args: &Args) -> Result<CmdOutput, ArgError> {
    match args.command.as_str() {
        "buffer" => buffer(args).map(CmdOutput::ok),
        "crossbar" => crossbar(args).map(CmdOutput::ok),
        "arbiter" => arbiter(args).map(CmdOutput::ok),
        "link" => link(args).map(CmdOutput::ok),
        "central-buffer" => central_buffer(args).map(CmdOutput::ok),
        "simulate" => crate::simulate::simulate(args),
        "powermap" => crate::powermap::powermap(args),
        other => Err(ArgError(format!("unknown component `{other}`"))),
    }
}

fn buffer(args: &Args) -> Result<String, ArgError> {
    args.ensure_known(&allowed(&[
        "flits",
        "bits",
        "read-ports",
        "write-ports",
        "decoder",
    ]))?;
    let tech = technology(args)?;
    let flits = args.u32_required("flits")?;
    let bits = args.u32_required("bits")?;
    let mut params = BufferParams::new(flits, bits).with_ports(
        args.u32_or("read-ports", 1)?,
        args.u32_or("write-ports", 1)?,
    );
    if args.flag("decoder") {
        params = params.with_decoder();
    }
    let m = BufferPower::new(&params, tech).map_err(model_err)?;
    let mut r = Report::new(format!(
        "FIFO buffer (Table 2): {flits} flits x {bits} bits, {}R{}W at {} / {} V",
        m.read_ports(),
        m.write_ports(),
        tech.node(),
        tech.vdd().0
    ));
    r.push("L_wl", format!("{:.2} um", m.wordline_length().0));
    r.push("L_bl", format!("{:.2} um", m.bitline_length().0));
    r.cap("C_wl", m.wordline_cap());
    r.cap("C_br", m.read_bitline_cap());
    r.cap("C_bw", m.write_bitline_cap());
    r.cap("C_chg", m.precharge_cap());
    r.cap("C_cell", m.cell_cap());
    r.energy("E_read", m.read_energy());
    r.energy(
        "E_write (uniform data)",
        m.write_energy(&WriteActivity::uniform_random(bits)),
    );
    r.energy("E_write (worst case)", m.write_energy_max());
    if let Some(dec) = m.decoder() {
        r.energy("E_decode (sequential)", dec.access_energy_sequential());
    }
    r.power("leakage", m.leakage_power());
    r.push("area", format!("{:.6} mm^2", buffer_area(&m).as_mm2()));
    Ok(r.render())
}

fn crossbar(args: &Args) -> Result<String, ArgError> {
    args.ensure_known(&allowed(&["ports", "inputs", "outputs", "bits", "kind"]))?;
    let tech = technology(args)?;
    let bits = args.u32_required("bits")?;
    let (inputs, outputs) = match args.get("ports") {
        Some(_) => {
            let p = args.u32_required("ports")?;
            (p, p)
        }
        None => (args.u32_required("inputs")?, args.u32_required("outputs")?),
    };
    let kind = match args.get("kind").unwrap_or("matrix") {
        "matrix" => CrossbarKind::Matrix,
        "muxtree" => CrossbarKind::MuxTree,
        other => return Err(ArgError(format!("unknown crossbar kind `{other}`"))),
    };
    let m = CrossbarPower::new(&CrossbarParams::new(kind, inputs, outputs, bits), tech)
        .map_err(model_err)?;
    let mut r = Report::new(format!(
        "{kind:?} crossbar (Table 3): {inputs}x{outputs}, {bits} bits at {} / {} V",
        tech.node(),
        tech.vdd().0
    ));
    r.push("L_in", format!("{:.2} um", m.input_line_length().0));
    r.push("L_out", format!("{:.2} um", m.output_line_length().0));
    r.cap("C_in (per line)", m.input_line_cap());
    r.cap("C_out (per line)", m.output_line_cap());
    r.cap("C_xb_ctr", m.control_line_cap());
    r.energy("E_xb (uniform data)", m.traversal_energy_uniform());
    r.energy("E_xb (worst case)", m.traversal_energy_max());
    r.energy("E_xb_ctr", m.control_energy());
    r.power("leakage", m.leakage_power());
    r.push("area", format!("{:.6} mm^2", crossbar_area(&m).as_mm2()));
    Ok(r.render())
}

fn arbiter(args: &Args) -> Result<String, ArgError> {
    args.ensure_known(&allowed(&["requesters", "kind"]))?;
    let tech = technology(args)?;
    let requesters = args.u32_required("requesters")?;
    let kind = match args.get("kind").unwrap_or("matrix") {
        "matrix" => ArbiterKind::Matrix,
        "roundrobin" | "round-robin" | "rr" => ArbiterKind::RoundRobin,
        "queuing" | "queueing" => ArbiterKind::Queuing,
        other => return Err(ArgError(format!("unknown arbiter kind `{other}`"))),
    };
    let m = ArbiterPower::new(&ArbiterParams::new(kind, requesters), tech).map_err(model_err)?;
    let mut r = Report::new(format!(
        "{kind:?} arbiter (Table 4): {requesters} requesters at {} / {} V",
        tech.node(),
        tech.vdd().0
    ));
    r.cap("C_req", m.request_cap());
    r.cap("C_pri", m.priority_cap());
    r.cap("C_int", m.internal_cap());
    r.cap("C_gnt", m.grant_cap());
    let all = (1u64 << requesters.min(63)) - 1;
    r.energy("E_arb (steady single grant)", m.arbitration_energy(1, 1, 0));
    r.energy(
        "E_arb (all requests toggle)",
        m.arbitration_energy(all, 0, requesters),
    );
    r.power("leakage", m.leakage_power());
    Ok(r.render())
}

fn link(args: &Args) -> Result<String, ArgError> {
    args.ensure_known(&allowed(&["length-mm", "bits", "chip2chip", "watts"]))?;
    let tech = technology(args)?;
    let bits = args.u32_required("bits")?;
    if args.flag("chip2chip") {
        let watts = args.f64_or("watts", 3.0)?;
        if watts < 0.0 {
            return Err(ArgError("--watts must be non-negative".into()));
        }
        let m = LinkPower::chip_to_chip(Watts(watts), bits);
        let mut r = Report::new(format!(
            "chip-to-chip link: {bits} lanes, constant {watts} W (traffic-insensitive)"
        ));
        r.energy("E_link per traversal", m.traversal_energy(bits as f64));
        r.power("static power", m.static_power());
        return Ok(r.render());
    }
    let mm = args.f64_or("length-mm", 3.0)?;
    if mm <= 0.0 {
        return Err(ArgError("--length-mm must be positive".into()));
    }
    let m = LinkPower::on_chip(Microns::from_mm(mm), bits, tech);
    let mut r = Report::new(format!(
        "on-chip link: {mm} mm x {bits} bits at {} / {} V",
        tech.node(),
        tech.vdd().0
    ));
    r.cap("C_w per line", m.wire_cap());
    r.energy("E_link (uniform data)", m.traversal_energy_uniform());
    r.energy("E_link (worst case)", m.traversal_energy(bits as f64));
    Ok(r.render())
}

fn central_buffer(args: &Args) -> Result<String, ArgError> {
    args.ensure_known(&allowed(&[
        "banks",
        "rows",
        "bits",
        "read-ports",
        "write-ports",
    ]))?;
    let tech = technology(args)?;
    let banks = args.u32_required("banks")?;
    let rows = args.u32_required("rows")?;
    let bits = args.u32_required("bits")?;
    let params = CentralBufferParams::new(banks, rows, bits).with_ports(
        args.u32_or("read-ports", 2)?,
        args.u32_or("write-ports", 2)?,
    );
    let m = CentralBufferPower::new(&params, tech).map_err(model_err)?;
    let mut r = Report::new(format!(
        "central buffer (hierarchical, section 3.2): {banks} banks x {rows} rows x {bits} bits at {} / {} V",
        tech.node(),
        tech.vdd().0
    ));
    r.energy("E_write (uniform data)", m.write_energy_uniform());
    r.energy("E_read (uniform data)", m.read_energy_uniform());
    r.energy("  of which bank read", m.bank_model().read_energy());
    r.energy(
        "  of which read fabric",
        m.read_crossbar().traversal_energy_uniform(),
    );
    r.power("leakage", m.leakage_power());
    r.push(
        "area",
        format!("{:.6} mm^2", central_buffer_area(&m).as_mm2()),
    );
    Ok(r.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_line(line: &str) -> Result<String, ArgError> {
        run(&Args::parse(line.split_whitespace().map(String::from)).unwrap()).map(|o| {
            assert_eq!(o.code, 0, "component reports exit with success");
            o.text
        })
    }

    #[test]
    fn buffer_report_contains_table2_quantities() {
        let out = run_line("buffer --flits 64 --bits 256").unwrap();
        for needle in [
            "C_wl", "C_br", "C_bw", "C_cell", "E_read", "E_write", "area",
        ] {
            assert!(out.contains(needle), "missing {needle} in:\n{out}");
        }
    }

    #[test]
    fn buffer_decoder_flag_adds_line() {
        let plain = run_line("buffer --flits 64 --bits 32").unwrap();
        let decoded = run_line("buffer --flits 64 --bits 32 --decoder").unwrap();
        assert!(!plain.contains("E_decode"));
        assert!(decoded.contains("E_decode"));
    }

    #[test]
    fn crossbar_kinds_and_ports() {
        let m = run_line("crossbar --ports 5 --bits 256").unwrap();
        assert!(m.contains("Matrix crossbar"));
        let t = run_line("crossbar --inputs 4 --outputs 2 --bits 32 --kind muxtree").unwrap();
        assert!(t.contains("MuxTree crossbar"));
        assert!(t.contains("4x2"));
    }

    #[test]
    fn arbiter_kinds() {
        for (kind, name) in [
            ("matrix", "Matrix"),
            ("rr", "RoundRobin"),
            ("queuing", "Queuing"),
        ] {
            let out = run_line(&format!("arbiter --requesters 5 --kind {kind}")).unwrap();
            assert!(out.contains(name), "{kind}: {out}");
        }
    }

    #[test]
    fn link_variants() {
        let on = run_line("link --length-mm 3 --bits 256").unwrap();
        assert!(on.contains("on-chip link"));
        // The paper's anchor: 3mm at 0.1um = 1.08 pF.
        assert!(on.contains("1080.0"), "{on}");
        let c2c = run_line("link --chip2chip --watts 3 --bits 32").unwrap();
        assert!(c2c.contains("3.000 W"));
    }

    #[test]
    fn central_buffer_paper_config() {
        let out = run_line("central-buffer --banks 4 --rows 2560 --bits 32").unwrap();
        assert!(out.contains("4 banks x 2560 rows"));
        assert!(out.contains("E_read"));
    }

    #[test]
    fn node_and_vdd_options() {
        let hot = run_line("buffer --flits 16 --bits 32 --node 0.18um --vdd 2.0").unwrap();
        assert!(hot.contains("0.18um"));
        assert!(hot.contains("/ 2 V"));
    }

    #[test]
    fn helpful_errors() {
        assert!(run_line("bogus --x 1").is_err());
        assert!(run_line("buffer --bits 32").is_err()); // missing --flits
        assert!(run_line("buffer --flits 0 --bits 32").is_err()); // invalid model
        assert!(run_line("buffer --flits 4 --bits 32 --typo 1").is_err());
        assert!(run_line("link --bits 32 --length-mm -1").is_err());
        assert!(run_line("crossbar --ports 5 --bits 32 --kind hexagon").is_err());
        assert!(run_line("buffer --flits 4 --bits 32 --node 45nm").is_err());
    }
}
