//! The `serve` subcommand: run the long-lived experiment-serving
//! daemon (`orion-serve`) from the CLI.
//!
//! ```text
//! orion-power-cli serve --addr 127.0.0.1:7774 --cache-dir .exp-cache \
//!     --workers 4 --queue 8 --client-budget 100000
//! ```
//!
//! Like `experiment`, this subcommand is dispatched on raw tokens
//! before the option-only [`Args`](crate::args::Args) grammar. Exit
//! codes follow the scheme in [`crate::run`]: 2 for bad arguments,
//! 1 for bind/cache I/O failures (including a cache directory locked
//! by another live run — for a daemon that is an operational conflict,
//! not bad input), 3 when shutdown could not drain every in-flight
//! request within `--drain-timeout-ms`, 0 for a clean drain.

use std::path::PathBuf;
use std::time::Duration;

use orion_serve::{signal, ServeConfig, Server};

use crate::args::ArgError;
use crate::run::{CmdOutput, EXIT_BAD_INPUT, EXIT_DEGRADED, EXIT_RUNTIME};

/// Usage fragment shown on `serve` argument errors.
const SERVE_USAGE: &str = "usage: orion-power-cli serve [--addr HOST:PORT] [--cache-dir DIR] \
     [--workers N] [--queue N] [--queue-patience-ms N] [--client-budget N] \
     [--retries N] [--cell-timeout-ms N] [--drain-timeout-ms N] [--max-body-bytes N] \
     [--checkpoint-every CYCLES] [--shards N]";

fn parse_args(tokens: &[String]) -> Result<ServeConfig, ArgError> {
    let mut config = ServeConfig {
        addr: "127.0.0.1:7774".to_string(),
        ..ServeConfig::default()
    };
    let mut it = tokens.iter();
    let value = |it: &mut std::slice::Iter<String>, name: &str| -> Result<String, ArgError> {
        it.next()
            .filter(|v| !v.starts_with("--"))
            .cloned()
            .ok_or_else(|| ArgError(format!("--{name} requires a value")))
    };
    let int = |v: String, name: &str| -> Result<u64, ArgError> {
        v.parse()
            .map_err(|_| ArgError(format!("--{name} expects an integer, got `{v}`")))
    };
    while let Some(tok) = it.next() {
        match tok.as_str() {
            "--addr" => config.addr = value(&mut it, "addr")?,
            "--cache-dir" => {
                config.cache_dir = Some(PathBuf::from(value(&mut it, "cache-dir")?));
            }
            "--workers" => {
                let n = int(value(&mut it, "workers")?, "workers")?;
                if n == 0 {
                    return Err(ArgError("--workers must be positive".into()));
                }
                config.workers = n as usize;
            }
            "--queue" => config.queue_depth = int(value(&mut it, "queue")?, "queue")? as usize,
            "--queue-patience-ms" => {
                config.queue_patience = Duration::from_millis(int(
                    value(&mut it, "queue-patience-ms")?,
                    "queue-patience-ms",
                )?);
            }
            "--client-budget" => {
                config.client_budget = int(value(&mut it, "client-budget")?, "client-budget")?;
            }
            "--retries" => {
                let n = int(value(&mut it, "retries")?, "retries")?;
                config.default_retries =
                    u32::try_from(n).map_err(|_| ArgError("--retries out of range".to_string()))?;
            }
            "--cell-timeout-ms" => {
                let ms = int(value(&mut it, "cell-timeout-ms")?, "cell-timeout-ms")?;
                if ms == 0 {
                    return Err(ArgError("--cell-timeout-ms must be positive".into()));
                }
                config.default_cell_timeout = Some(Duration::from_millis(ms));
            }
            "--drain-timeout-ms" => {
                config.drain_timeout = Duration::from_millis(int(
                    value(&mut it, "drain-timeout-ms")?,
                    "drain-timeout-ms",
                )?);
            }
            "--max-body-bytes" => {
                config.max_body_bytes =
                    int(value(&mut it, "max-body-bytes")?, "max-body-bytes")? as usize;
            }
            "--checkpoint-every" => {
                config.checkpoint_every =
                    int(value(&mut it, "checkpoint-every")?, "checkpoint-every")?;
            }
            "--shards" => {
                let n = int(value(&mut it, "shards")?, "shards")?;
                if n == 0 {
                    return Err(ArgError("--shards must be positive".into()));
                }
                config.shards = n as usize;
            }
            opt => {
                return Err(ArgError(format!(
                    "unknown option `{opt}` for `serve`\n{SERVE_USAGE}"
                )))
            }
        }
    }
    Ok(config)
}

/// Executes `serve <tokens...>`: binds, installs signal handlers,
/// serves until SIGTERM/SIGINT, drains, and maps the outcome onto the
/// structured exit codes (never panics).
pub fn execute(tokens: &[String]) -> CmdOutput {
    let config = match parse_args(tokens) {
        Ok(c) => c,
        Err(e) => {
            return CmdOutput {
                text: format!("error: {e}\n"),
                code: EXIT_BAD_INPUT,
            }
        }
    };
    let server = match Server::bind(config.clone()) {
        Ok(s) => s,
        Err(e) => {
            return CmdOutput {
                text: format!("error: cannot start daemon on `{}`: {e}\n", config.addr),
                code: EXIT_RUNTIME,
            }
        }
    };
    let addr = match server.local_addr() {
        Ok(a) => a.to_string(),
        Err(_) => config.addr.clone(),
    };
    signal::install();
    eprintln!(
        "orion serve: listening on {addr}, protocol {} (SIGTERM/SIGINT to drain)",
        crate::run::SERVE_PROTOCOL_VERSION
    );
    match server.run() {
        Ok(outcome) if outcome.drained => CmdOutput::ok(format!(
            "orion serve: drained cleanly after {} requests\n",
            outcome.requests
        )),
        Ok(outcome) => CmdOutput {
            text: format!(
                "orion serve: drain deadline expired with {} request(s) still in flight \
                 after {} total\n",
                outcome.abandoned, outcome.requests
            ),
            code: EXIT_DEGRADED,
        },
        Err(e) => CmdOutput {
            text: format!("error: daemon failed: {e}\n"),
            code: EXIT_RUNTIME,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tokens(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_full_flag_set() {
        let config = parse_args(&tokens(
            "--addr 0.0.0.0:9000 --cache-dir cache --workers 8 --queue 16 \
             --queue-patience-ms 500 --client-budget 1000 --retries 2 \
             --cell-timeout-ms 30000 --drain-timeout-ms 5000 --max-body-bytes 4096 \
             --checkpoint-every 4096",
        ))
        .unwrap();
        assert_eq!(config.addr, "0.0.0.0:9000");
        assert_eq!(config.cache_dir, Some(PathBuf::from("cache")));
        assert_eq!(config.workers, 8);
        assert_eq!(config.queue_depth, 16);
        assert_eq!(config.queue_patience, Duration::from_millis(500));
        assert_eq!(config.client_budget, 1000);
        assert_eq!(config.default_retries, 2);
        assert_eq!(config.default_cell_timeout, Some(Duration::from_secs(30)));
        assert_eq!(config.drain_timeout, Duration::from_millis(5000));
        assert_eq!(config.max_body_bytes, 4096);
        assert_eq!(config.checkpoint_every, 4096);
    }

    #[test]
    fn defaults_are_sane() {
        let config = parse_args(&[]).unwrap();
        assert_eq!(config.addr, "127.0.0.1:7774");
        assert_eq!(config.cache_dir, None);
        assert_eq!(config.client_budget, u64::MAX);
    }

    #[test]
    fn bad_flags_are_typed_errors() {
        assert!(parse_args(&tokens("--workers 0")).is_err());
        assert!(parse_args(&tokens("--workers many")).is_err());
        assert!(parse_args(&tokens("--cell-timeout-ms 0")).is_err());
        assert!(parse_args(&tokens("--nope")).is_err());
        assert!(parse_args(&tokens("--addr")).is_err());
    }

    #[test]
    fn execute_maps_bad_args_to_exit_2() {
        let out = execute(&tokens("--bogus"));
        assert_eq!(out.code, EXIT_BAD_INPUT);
        assert!(out.text.contains("unknown option"));
    }

    #[test]
    fn execute_maps_bind_failure_to_exit_1() {
        // An address with no port can never bind (and can never start
        // the blocking serve loop by accident).
        let out = execute(&tokens("--addr no-port-here"));
        assert_eq!(out.code, EXIT_RUNTIME);
        assert!(out.text.contains("cannot start daemon"));
    }
}
