//! `orion-power-cli` — standalone power analysis from the command line.
//!
//! The paper (§3.2, "Release of power models"): *"This will allow our
//! power models to be used independently from the simulator, either as
//! a separate power analysis tool, or as a plug-in to other network
//! simulators."* This binary is that tool: it instantiates any component
//! power model from command-line parameters and prints its capacitances,
//! per-operation energies, leakage and area.
//!
//! ```text
//! orion-power-cli buffer --flits 64 --bits 256 --node 0.1um
//! orion-power-cli crossbar --ports 5 --bits 256 --kind matrix
//! orion-power-cli arbiter --requesters 5 --kind matrix
//! orion-power-cli link --length-mm 3 --bits 256
//! orion-power-cli link --chip2chip --watts 3 --bits 32
//! orion-power-cli central-buffer --banks 4 --rows 2560 --bits 32
//! ```
//!
//! The `simulate` subcommand additionally drives whole-network
//! experiments — including fault injection and the deadlock watchdog —
//! and reports the structured run outcome as text or JSON:
//!
//! ```text
//! orion-power-cli simulate --preset wh64 --rate 0.5 --watchdog-cycles 500
//! orion-power-cli simulate --preset vc16 --fault-links 4 --fault-seed 7 --json
//! ```
//!
//! The `experiment` subcommand runs whole declarative grids (TOML
//! specs) through the `orion-exp` engine with parallel workers and a
//! content-addressed result cache (see `docs/ORCHESTRATION.md`):
//!
//! ```text
//! orion-power-cli experiment run examples/specs/fig5.toml --threads 8 \
//!     --cache-dir .exp-cache --out-dir experiments
//! ```
//!
//! Exit codes are structured for scripting: 0 success, 1 runtime I/O
//! failure, 2 bad input, 3 degraded result (non-completed simulation
//! or failed experiment cells).

mod args;
mod experiment;
mod powermap;
mod report;
mod run;
mod serve;
mod simulate;

use std::process::ExitCode;

fn main() -> ExitCode {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    if tokens.is_empty() || tokens[0] == "help" || tokens[0] == "--help" {
        print!("{}", run::USAGE);
        return ExitCode::SUCCESS;
    }
    // `experiment` takes a positional spec path, which the option-only
    // Args grammar would reject — dispatch it on raw tokens.
    if tokens[0] == "experiment" {
        let out = experiment::execute(&tokens[1..]);
        print!("{}", out.text);
        return ExitCode::from(out.code);
    }
    // `serve` blocks until drained and installs signal handlers —
    // dispatch it on raw tokens too.
    if tokens[0] == "serve" {
        let out = serve::execute(&tokens[1..]);
        print!("{}", out.text);
        return ExitCode::from(out.code);
    }
    match args::Args::parse(tokens).and_then(|a| run::run(&a)) {
        Ok(output) => {
            print!("{}", output.text);
            ExitCode::from(output.code)
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `orion-power-cli help` for usage");
            ExitCode::from(run::EXIT_BAD_INPUT)
        }
    }
}
