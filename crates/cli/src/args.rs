//! Minimal command-line argument parsing (no external dependencies).
//!
//! Grammar: `orion-power <component> [--key value | --flag]...`.
//! Every option has a long name only; values follow as the next token.

use std::collections::HashMap;
use std::fmt;

/// A parsed command line: the component name plus its options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// The subcommand (component to model).
    pub command: String,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// Error produced while parsing or interpreting the command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw tokens (program name excluded). Tokens starting with
    /// `--` that are followed by another `--token` or nothing are
    /// flags; otherwise they take the next token as their value.
    ///
    /// # Errors
    ///
    /// Returns an error when no subcommand is present or a bare token
    /// appears where an option was expected.
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Args, ArgError> {
        let mut it = tokens.into_iter().peekable();
        let command = it
            .next()
            .ok_or_else(|| ArgError("missing component; try `orion-power-cli help`".into()))?;
        if command.starts_with("--") {
            return Err(ArgError(format!(
                "expected a component name, found option `{command}`"
            )));
        }
        let mut options = HashMap::new();
        let mut flags = Vec::new();
        while let Some(tok) = it.next() {
            let Some(name) = tok.strip_prefix("--") else {
                return Err(ArgError(format!("unexpected positional argument `{tok}`")));
            };
            // `next_if` consumes the value without the peek-then-next
            // dance, so no panic-capable `expect` sits on this
            // user-input path.
            match it.next_if(|v| !v.starts_with("--")) {
                Some(value) => {
                    options.insert(name.to_string(), value);
                }
                None => flags.push(name.to_string()),
            }
        }
        Ok(Args {
            command,
            options,
            flags,
        })
    }

    /// Whether a boolean flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// An optional string option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// A `u32` option with a default.
    ///
    /// # Errors
    ///
    /// Returns an error if the value is present but not a valid number.
    pub fn u32_or(&self, name: &str, default: u32) -> Result<u32, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{name} expects an integer, got `{v}`"))),
        }
    }

    /// A required `u32` option.
    ///
    /// # Errors
    ///
    /// Returns an error if absent or malformed.
    pub fn u32_required(&self, name: &str) -> Result<u32, ArgError> {
        let v = self
            .get(name)
            .ok_or_else(|| ArgError(format!("missing required option --{name}")))?;
        v.parse()
            .map_err(|_| ArgError(format!("--{name} expects an integer, got `{v}`")))
    }

    /// A `u64` option with a default (cycle counts, seeds).
    ///
    /// # Errors
    ///
    /// Returns an error if the value is present but not a valid number.
    pub fn u64_or(&self, name: &str, default: u64) -> Result<u64, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{name} expects an integer, got `{v}`"))),
        }
    }

    /// An `f64` option with a default.
    ///
    /// # Errors
    ///
    /// Returns an error if the value is present but not a valid number.
    pub fn f64_or(&self, name: &str, default: f64) -> Result<f64, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{name} expects a number, got `{v}`"))),
        }
    }

    /// Reports any option/flag names outside `allowed` (catches typos).
    ///
    /// # Errors
    ///
    /// Returns an error naming the first unknown option.
    pub fn ensure_known(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for name in self.options.keys().chain(self.flags.iter()) {
            if !allowed.contains(&name.as_str()) {
                return Err(ArgError(format!(
                    "unknown option --{name} for `{}`",
                    self.command
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> Result<Args, ArgError> {
        Args::parse(line.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_options_and_flags() {
        let a = parse("buffer --flits 64 --bits 256 --decoder").unwrap();
        assert_eq!(a.command, "buffer");
        assert_eq!(a.get("flits"), Some("64"));
        assert_eq!(a.get("bits"), Some("256"));
        assert!(a.flag("decoder"));
        assert!(!a.flag("bogus"));
    }

    #[test]
    fn numeric_accessors() {
        let a = parse("link --length-mm 3.5 --bits 32").unwrap();
        assert_eq!(a.f64_or("length-mm", 1.0).unwrap(), 3.5);
        assert_eq!(a.u32_or("bits", 64).unwrap(), 32);
        assert_eq!(a.u32_or("absent", 7).unwrap(), 7);
        assert_eq!(a.u64_or("bits", 64).unwrap(), 32);
        assert_eq!(a.u64_or("absent", 9).unwrap(), 9);
        assert!(a.u32_required("missing").is_err());
    }

    #[test]
    fn rejects_bad_numbers() {
        let a = parse("buffer --flits sixty").unwrap();
        assert!(a.u32_or("flits", 1).is_err());
        assert!(a.u32_required("flits").is_err());
    }

    #[test]
    fn rejects_positional_noise_and_empty() {
        assert!(parse("").is_err());
        assert!(parse("--flits 4").is_err());
        assert!(parse("buffer stray").is_err());
    }

    #[test]
    fn unknown_option_detection() {
        let a = parse("buffer --flits 4 --typo 9").unwrap();
        assert!(a.ensure_known(&["flits"]).is_err());
        assert!(a.ensure_known(&["flits", "typo"]).is_ok());
    }

    #[test]
    fn flag_followed_by_option() {
        let a = parse("buffer --decoder --flits 8").unwrap();
        assert!(a.flag("decoder"));
        assert_eq!(a.get("flits"), Some("8"));
    }
}
