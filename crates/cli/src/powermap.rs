//! The `powermap` subcommand: render the per-node power map an
//! observed `simulate --observe-dir` run emits (`powermap.jsonl`) as
//! the paper's Fig. 6 grid, with the hotspot marked.
//!
//! Exit codes follow the scheme in [`crate::run`]: 1 when the file
//! cannot be read, 2 when its contents are malformed or from an
//! unknown schema version.

use std::path::PathBuf;

use orion_exp::record::parse_flat_object;

use crate::args::{ArgError, Args};
use crate::run::{CmdOutput, EXIT_BAD_INPUT, EXIT_RUNTIME};

/// Version of the `powermap.jsonl` line layout written by
/// `simulate --observe-dir` and read back here. Bump on any field
/// change.
pub const POWERMAP_SCHEMA_VERSION: u32 = 1;

/// One parsed `powermap.jsonl` line.
struct NodeCell {
    node: usize,
    x: usize,
    y: usize,
    energy_j: f64,
    power_w: f64,
}

/// Runs `powermap --observe-dir DIR` (or `--file powermap.jsonl`),
/// returning the rendered grid. File-read failures exit 1; malformed
/// or version-skewed content exits 2.
///
/// # Errors
///
/// Returns an [`ArgError`] for unknown options or a missing input
/// location.
pub fn powermap(args: &Args) -> Result<CmdOutput, ArgError> {
    args.ensure_known(&["observe-dir", "file"])?;
    let path = match (args.get("file"), args.get("observe-dir")) {
        (Some(f), None) => PathBuf::from(f),
        (None, Some(d)) => PathBuf::from(d).join("powermap.jsonl"),
        (None, None) => {
            return Err(ArgError(
                "powermap needs --observe-dir DIR (or --file powermap.jsonl)".into(),
            ))
        }
        (Some(_), Some(_)) => {
            return Err(ArgError(
                "--file and --observe-dir are mutually exclusive".into(),
            ))
        }
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            return Ok(CmdOutput {
                text: format!("error: cannot read `{}`: {e}\n", path.display()),
                code: EXIT_RUNTIME,
            })
        }
    };
    match render(&text) {
        Ok(rendered) => Ok(CmdOutput::ok(rendered)),
        Err(e) => Ok(CmdOutput {
            text: format!("error: {}: {e}\n", path.display()),
            code: EXIT_BAD_INPUT,
        }),
    }
}

fn parse_line(line: &str, number: usize) -> Result<NodeCell, String> {
    let obj =
        parse_flat_object(line).ok_or_else(|| format!("line {number}: not a flat JSON object"))?;
    let version = obj
        .get("schema_version")
        .and_then(|v| v.as_u64())
        .ok_or_else(|| format!("line {number}: missing schema_version"))?;
    if version != u64::from(POWERMAP_SCHEMA_VERSION) {
        return Err(format!(
            "line {number}: schema_version {version} (expected {POWERMAP_SCHEMA_VERSION})"
        ));
    }
    let field = |name: &str| -> Result<f64, String> {
        obj.get(name)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("line {number}: missing numeric field `{name}`"))
    };
    Ok(NodeCell {
        node: field("node")? as usize,
        x: field("x")? as usize,
        y: field("y")? as usize,
        energy_j: field("total_energy_j")?,
        power_w: field("power_w")?,
    })
}

/// Renders `powermap.jsonl` content as a coordinate grid of per-node
/// power with hotspot and mean annotations.
fn render(text: &str) -> Result<String, String> {
    let mut cells = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        cells.push(parse_line(line, idx + 1)?);
    }
    if cells.is_empty() {
        return Err("no power map records".to_string());
    }
    let width = cells.iter().map(|c| c.x).max().unwrap_or(0) + 1;
    let height = cells.iter().map(|c| c.y).max().unwrap_or(0) + 1;
    let mut grid: Vec<Option<&NodeCell>> = vec![None; width * height];
    for cell in &cells {
        let slot = &mut grid[cell.y * width + cell.x];
        if slot.is_some() {
            return Err(format!("duplicate node at ({}, {})", cell.x, cell.y));
        }
        *slot = Some(cell);
    }
    if grid.iter().any(Option::is_none) {
        return Err(format!(
            "incomplete grid: {} record(s) for {width}x{height} nodes",
            cells.len()
        ));
    }

    let Some(hottest) = cells.iter().max_by(|a, b| a.power_w.total_cmp(&b.power_w)) else {
        return Err("no power map records".to_string());
    };
    let mean_power = cells.iter().map(|c| c.power_w).sum::<f64>() / cells.len() as f64;
    let mean_energy = cells.iter().map(|c| c.energy_j).sum::<f64>() / cells.len() as f64;

    let mut out = format!("per-node power map ({width}x{height}), watts; * = hotspot\n");
    // Row y at the top matches the paper's grid orientation with
    // (0, 0) in the top-left corner.
    for y in 0..height {
        for x in 0..width {
            // Completeness was verified above; an impossible hole
            // degrades to a typed error rather than a panic.
            let Some(cell) = grid[y * width + x] else {
                return Err(format!("internal: missing node at ({x}, {y})"));
            };
            let mark = if cell.node == hottest.node { '*' } else { ' ' };
            out.push_str(&format!("  {:>10.6}{mark}", cell.power_w));
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "hotspot: node {} at ({}, {}): {:.6} W, {:.4e} J ({:.2}x mean power)\n",
        hottest.node,
        hottest.x,
        hottest.y,
        hottest.power_w,
        hottest.energy_j,
        hottest.power_w / mean_power,
    ));
    out.push_str(&format!(
        "mean per node: {mean_power:.6} W, {mean_energy:.4e} J\n"
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_jsonl() -> String {
        let mut s = String::new();
        for node in 0..4usize {
            let (x, y) = (node % 2, node / 2);
            let power = 0.1 + 0.1 * node as f64;
            s.push_str(&format!(
                "{{\"schema_version\":1,\"node\":{node},\"x\":{x},\"y\":{y},\
                 \"total_energy_j\":{},\"power_w\":{power}}}\n",
                1e-9 * (node + 1) as f64,
            ));
        }
        s
    }

    #[test]
    fn renders_grid_with_hotspot() {
        let out = render(&sample_jsonl()).unwrap();
        assert!(out.contains("per-node power map (2x2)"), "{out}");
        assert!(out.contains("hotspot: node 3 at (1, 1)"), "{out}");
        assert!(out.contains('*'), "{out}");
        assert!(out.contains("mean per node: 0.250000 W"), "{out}");
    }

    #[test]
    fn malformed_content_is_rejected_with_line_numbers() {
        assert!(render("").unwrap_err().contains("no power map records"));
        assert!(render("not json\n").unwrap_err().contains("line 1"));
        let skewed = sample_jsonl().replace("\"schema_version\":1", "\"schema_version\":9");
        assert!(render(&skewed).unwrap_err().contains("schema_version 9"));
        let short: String = sample_jsonl()
            .lines()
            .take(3)
            .collect::<Vec<_>>()
            .join("\n");
        assert!(render(&short).unwrap_err().contains("incomplete grid"));
        let dupe = format!(
            "{}{}",
            sample_jsonl(),
            sample_jsonl().lines().next().unwrap()
        );
        assert!(render(&dupe).unwrap_err().contains("duplicate node"));
    }

    fn run_powermap(line: &str) -> Result<CmdOutput, ArgError> {
        powermap(&Args::parse(line.split_whitespace().map(String::from)).unwrap())
    }

    #[test]
    fn missing_file_exits_1_and_bad_args_exit_2() {
        let out = run_powermap("powermap --observe-dir /nonexistent-orion-obs").unwrap();
        assert_eq!(out.code, EXIT_RUNTIME, "{}", out.text);
        assert!(out.text.starts_with("error:"), "{}", out.text);

        assert!(run_powermap("powermap").is_err());
        assert!(run_powermap("powermap --file a --observe-dir b").is_err());
        assert!(run_powermap("powermap --typo 1").is_err());
    }

    #[test]
    fn reads_a_file_end_to_end() {
        let dir = std::env::temp_dir().join(format!("orion-powermap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("powermap.jsonl"), sample_jsonl()).unwrap();

        let out = run_powermap(&format!("powermap --observe-dir {}", dir.display())).unwrap();
        assert_eq!(out.code, 0, "{}", out.text);
        assert!(out.text.contains("hotspot: node 3"), "{}", out.text);

        std::fs::write(dir.join("powermap.jsonl"), "garbage\n").unwrap();
        let out = run_powermap(&format!("powermap --observe-dir {}", dir.display())).unwrap();
        assert_eq!(out.code, EXIT_BAD_INPUT, "{}", out.text);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
