//! The `experiment` subcommand: run a declarative TOML experiment spec
//! through the orchestration engine (`orion-exp`), or explore a design
//! space through the search engine (`orion-explore`).
//!
//! ```text
//! orion-power-cli experiment run examples/specs/fig5.toml \
//!     --threads 8 --cache-dir .exp-cache --out-dir experiments
//! orion-power-cli experiment explore examples/specs/explore_smoke.toml \
//!     --threads 8 --cache-dir .exp-cache --out-dir experiments
//! ```
//!
//! Unlike the component subcommands, `experiment run`/`explore` take a
//! positional spec path, so they are dispatched before the option-only
//! [`Args`](crate::args::Args) grammar. Exit codes follow the scheme
//! in [`crate::run`]: 2 for bad input (spec errors, a cache directory
//! locked by another live run), 1 for I/O failures, 3 when the run
//! degraded (failed, crashed, timed-out or corrupted cells),
//! 0 otherwise.
//!
//! Supervision knobs: `--retries` grants panicking cells reseeded
//! extra attempts, `--cell-timeout-ms` sets a per-cell wall-clock
//! budget, and `--audit-every` overrides the spec's invariant-audit
//! cadence. The `ORION_EXP_PANIC_CELL` environment variable feeds the
//! engine's poison hook (testing/CI only).
//!
//! `experiment explore` adds `--seed` / `--budget` overrides (the
//! determinism contract keys on both — see `docs/EXPLORATION.md`) and
//! `--observe-dir` to dump the `explore_*` metrics snapshot.

use std::path::PathBuf;
use std::time::Duration;

use orion_exp::{run_spec, write_artifacts, EngineOptions, ExperimentSpec};
use orion_explore::{run_explore, write_explore_artifacts, ExploreOptions, ExploreSpec};
use orion_serve::http::json_escape;

use crate::args::ArgError;
use crate::run::{CmdOutput, EXIT_BAD_INPUT, EXIT_DEGRADED, EXIT_RUNTIME, JSON_SCHEMA_VERSION};

/// An artifact path rendered for embedding in a JSON string literal:
/// quotes and backslashes (e.g. Windows separators) escaped, so an
/// `--out-dir` containing either still yields valid JSON.
fn json_path(p: &std::path::Path) -> String {
    json_escape(&p.display().to_string())
}

/// Usage fragment shown on `experiment` argument errors.
const EXPERIMENT_USAGE: &str = "usage: orion-power-cli experiment run <spec.toml> [--threads N] \
     [--cache-dir DIR] [--out-dir DIR] [--retries N] [--cell-timeout-ms N] \
     [--audit-every N] [--checkpoint-every CYCLES] [--shards N] [--json] [--quiet]\n       \
     orion-power-cli experiment explore <spec.toml> [--threads N] \
     [--cache-dir DIR] [--out-dir DIR] [--seed N] [--budget N] [--retries N] \
     [--cell-timeout-ms N] [--checkpoint-every CYCLES] [--shards N] \
     [--observe-dir DIR] [--json] [--quiet]";

struct ExperimentArgs {
    spec_path: PathBuf,
    threads: usize,
    cache_dir: Option<PathBuf>,
    out_dir: PathBuf,
    retries: u32,
    cell_timeout: Option<Duration>,
    audit_every: Option<u64>,
    checkpoint_every: u64,
    shards: usize,
    json: bool,
    quiet: bool,
}

fn parse_args(tokens: &[String]) -> Result<ExperimentArgs, ArgError> {
    let mut it = tokens.iter();
    match it.next().map(String::as_str) {
        Some("run") => {}
        Some(other) => {
            return Err(ArgError(format!(
                "unknown experiment subcommand `{other}`\n{EXPERIMENT_USAGE}"
            )))
        }
        None => return Err(ArgError(format!("missing subcommand\n{EXPERIMENT_USAGE}"))),
    }

    let mut spec_path: Option<PathBuf> = None;
    let mut threads = 1usize;
    let mut cache_dir = None;
    let mut out_dir = PathBuf::from("experiments");
    let mut retries = 0u32;
    let mut cell_timeout = None;
    let mut audit_every = None;
    let mut checkpoint_every = 0u64;
    let mut shards = 1usize;
    let mut json = false;
    let mut quiet = false;

    let value = |it: &mut std::slice::Iter<String>, name: &str| -> Result<String, ArgError> {
        it.next()
            .filter(|v| !v.starts_with("--"))
            .cloned()
            .ok_or_else(|| ArgError(format!("--{name} requires a value")))
    };

    while let Some(tok) = it.next() {
        match tok.as_str() {
            "--threads" => {
                let v = value(&mut it, "threads")?;
                threads = v
                    .parse()
                    .map_err(|_| ArgError(format!("--threads expects an integer, got `{v}`")))?;
            }
            "--cache-dir" => cache_dir = Some(PathBuf::from(value(&mut it, "cache-dir")?)),
            "--out-dir" => out_dir = PathBuf::from(value(&mut it, "out-dir")?),
            "--retries" => {
                let v = value(&mut it, "retries")?;
                retries = v
                    .parse()
                    .map_err(|_| ArgError(format!("--retries expects an integer, got `{v}`")))?;
            }
            "--cell-timeout-ms" => {
                let v = value(&mut it, "cell-timeout-ms")?;
                let ms: u64 = v.parse().map_err(|_| {
                    ArgError(format!("--cell-timeout-ms expects an integer, got `{v}`"))
                })?;
                if ms == 0 {
                    return Err(ArgError("--cell-timeout-ms must be positive".into()));
                }
                cell_timeout = Some(Duration::from_millis(ms));
            }
            "--audit-every" => {
                let v = value(&mut it, "audit-every")?;
                audit_every = Some(v.parse().map_err(|_| {
                    ArgError(format!("--audit-every expects an integer, got `{v}`"))
                })?);
            }
            "--checkpoint-every" => {
                let v = value(&mut it, "checkpoint-every")?;
                checkpoint_every = v.parse().map_err(|_| {
                    ArgError(format!("--checkpoint-every expects an integer, got `{v}`"))
                })?;
            }
            "--shards" => {
                let v = value(&mut it, "shards")?;
                shards = v
                    .parse()
                    .map_err(|_| ArgError(format!("--shards expects an integer, got `{v}`")))?;
                if shards == 0 {
                    return Err(ArgError("--shards must be positive".into()));
                }
            }
            "--json" => json = true,
            "--quiet" => quiet = true,
            opt if opt.starts_with("--") => {
                return Err(ArgError(format!(
                    "unknown option `{opt}` for `experiment run`\n{EXPERIMENT_USAGE}"
                )))
            }
            path if spec_path.is_none() => spec_path = Some(PathBuf::from(path)),
            extra => {
                return Err(ArgError(format!(
                    "unexpected positional argument `{extra}`\n{EXPERIMENT_USAGE}"
                )))
            }
        }
    }

    Ok(ExperimentArgs {
        spec_path: spec_path
            .ok_or_else(|| ArgError(format!("missing spec path\n{EXPERIMENT_USAGE}")))?,
        threads,
        cache_dir,
        out_dir,
        retries,
        cell_timeout,
        audit_every,
        checkpoint_every,
        shards,
        json,
        quiet,
    })
}

struct ExploreArgs {
    spec_path: PathBuf,
    threads: usize,
    cache_dir: Option<PathBuf>,
    out_dir: PathBuf,
    seed: Option<u64>,
    budget: Option<usize>,
    retries: u32,
    cell_timeout: Option<Duration>,
    checkpoint_every: u64,
    shards: usize,
    observe_dir: Option<PathBuf>,
    json: bool,
    quiet: bool,
}

fn parse_explore_args(tokens: &[String]) -> Result<ExploreArgs, ArgError> {
    let mut it = tokens.iter();
    let mut spec_path: Option<PathBuf> = None;
    let mut threads = 1usize;
    let mut cache_dir = None;
    let mut out_dir = PathBuf::from("experiments");
    let mut seed = None;
    let mut budget = None;
    let mut retries = 0u32;
    let mut cell_timeout = None;
    let mut checkpoint_every = 0u64;
    let mut shards = 1usize;
    let mut observe_dir = None;
    let mut json = false;
    let mut quiet = false;

    let value = |it: &mut std::slice::Iter<String>, name: &str| -> Result<String, ArgError> {
        it.next()
            .filter(|v| !v.starts_with("--"))
            .cloned()
            .ok_or_else(|| ArgError(format!("--{name} requires a value")))
    };

    while let Some(tok) = it.next() {
        match tok.as_str() {
            "--threads" => {
                let v = value(&mut it, "threads")?;
                threads = v
                    .parse()
                    .map_err(|_| ArgError(format!("--threads expects an integer, got `{v}`")))?;
            }
            "--cache-dir" => cache_dir = Some(PathBuf::from(value(&mut it, "cache-dir")?)),
            "--out-dir" => out_dir = PathBuf::from(value(&mut it, "out-dir")?),
            "--observe-dir" => observe_dir = Some(PathBuf::from(value(&mut it, "observe-dir")?)),
            "--seed" => {
                let v = value(&mut it, "seed")?;
                seed = Some(
                    v.parse()
                        .map_err(|_| ArgError(format!("--seed expects an integer, got `{v}`")))?,
                );
            }
            "--budget" => {
                let v = value(&mut it, "budget")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| ArgError(format!("--budget expects an integer, got `{v}`")))?;
                if n == 0 {
                    return Err(ArgError("--budget must be positive".into()));
                }
                budget = Some(n);
            }
            "--retries" => {
                let v = value(&mut it, "retries")?;
                retries = v
                    .parse()
                    .map_err(|_| ArgError(format!("--retries expects an integer, got `{v}`")))?;
            }
            "--cell-timeout-ms" => {
                let v = value(&mut it, "cell-timeout-ms")?;
                let ms: u64 = v.parse().map_err(|_| {
                    ArgError(format!("--cell-timeout-ms expects an integer, got `{v}`"))
                })?;
                if ms == 0 {
                    return Err(ArgError("--cell-timeout-ms must be positive".into()));
                }
                cell_timeout = Some(Duration::from_millis(ms));
            }
            "--checkpoint-every" => {
                let v = value(&mut it, "checkpoint-every")?;
                checkpoint_every = v.parse().map_err(|_| {
                    ArgError(format!("--checkpoint-every expects an integer, got `{v}`"))
                })?;
            }
            "--shards" => {
                let v = value(&mut it, "shards")?;
                shards = v
                    .parse()
                    .map_err(|_| ArgError(format!("--shards expects an integer, got `{v}`")))?;
                if shards == 0 {
                    return Err(ArgError("--shards must be positive".into()));
                }
            }
            "--json" => json = true,
            "--quiet" => quiet = true,
            opt if opt.starts_with("--") => {
                return Err(ArgError(format!(
                    "unknown option `{opt}` for `experiment explore`\n{EXPERIMENT_USAGE}"
                )))
            }
            path if spec_path.is_none() => spec_path = Some(PathBuf::from(path)),
            extra => {
                return Err(ArgError(format!(
                    "unexpected positional argument `{extra}`\n{EXPERIMENT_USAGE}"
                )))
            }
        }
    }

    Ok(ExploreArgs {
        spec_path: spec_path
            .ok_or_else(|| ArgError(format!("missing spec path\n{EXPERIMENT_USAGE}")))?,
        threads,
        cache_dir,
        out_dir,
        seed,
        budget,
        retries,
        cell_timeout,
        checkpoint_every,
        shards,
        observe_dir,
        json,
        quiet,
    })
}

fn execute_explore(tokens: &[String]) -> CmdOutput {
    let args = match parse_explore_args(tokens) {
        Ok(a) => a,
        Err(e) => {
            return CmdOutput {
                text: format!("error: {e}\n"),
                code: EXIT_BAD_INPUT,
            }
        }
    };

    let text = match std::fs::read_to_string(&args.spec_path) {
        Ok(t) => t,
        Err(e) => {
            return CmdOutput {
                text: format!("error: cannot read `{}`: {e}\n", args.spec_path.display()),
                code: EXIT_BAD_INPUT,
            }
        }
    };
    let spec = match ExploreSpec::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            return CmdOutput {
                text: format!("error: {}: {e}\n", args.spec_path.display()),
                code: EXIT_BAD_INPUT,
            }
        }
    };

    let opts = ExploreOptions {
        threads: args.threads,
        cache_dir: args.cache_dir.clone(),
        progress: !args.quiet && !args.json,
        max_retries: args.retries,
        cell_timeout: args.cell_timeout,
        seed: args.seed,
        budget: args.budget,
        checkpoint_every: args.checkpoint_every,
        shards: args.shards,
    };
    let report = match run_explore(&spec, &opts) {
        Ok(r) => r,
        Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
            return CmdOutput {
                text: format!("error: {e}\n"),
                code: EXIT_BAD_INPUT,
            }
        }
        Err(e) => {
            return CmdOutput {
                text: format!("error: explore I/O failure: {e}\n"),
                code: EXIT_RUNTIME,
            }
        }
    };
    let artifacts = match write_explore_artifacts(&args.out_dir, &spec.name, &report.points) {
        Ok(a) => a,
        Err(e) => {
            return CmdOutput {
                text: format!(
                    "error: cannot write artifacts under `{}`: {e}\n",
                    args.out_dir.display()
                ),
                code: EXIT_RUNTIME,
            }
        }
    };
    if let Some(dir) = &args.observe_dir {
        if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| {
            std::fs::write(dir.join("metrics.json"), report.metrics.to_json())?;
            std::fs::write(dir.join("metrics.csv"), report.metrics.to_csv())
        }) {
            return CmdOutput {
                text: format!(
                    "error: cannot write metrics under `{}`: {e}\n",
                    dir.display()
                ),
                code: EXIT_RUNTIME,
            };
        }
    }

    let summary = &report.summary;
    let elapsed = summary.elapsed.as_secs_f64();
    let text = if args.json {
        format!(
            concat!(
                "{{\n",
                "  \"schema_version\": {},\n",
                "  \"experiment\": \"{}\",\n",
                "  \"strategy\": \"{}\",\n",
                "  \"budget\": {},\n",
                "  \"seed\": {},\n",
                "  \"evaluations\": {},\n",
                "  \"cells\": {},\n",
                "  \"rounds\": {},\n",
                "  \"frontier\": {},\n",
                "  \"dominated\": {},\n",
                "  \"cache_hits\": {},\n",
                "  \"executed\": {},\n",
                "  \"crashed\": {},\n",
                "  \"timed_out\": {},\n",
                "  \"retried\": {},\n",
                "  \"failed\": {},\n",
                "  \"append_failures\": {},\n",
                "  \"elapsed_s\": {:.3},\n",
                "  \"artifacts\": {{\"frontier_jsonl\": \"{}\", \"frontier_csv\": \"{}\", ",
                "\"dominated_jsonl\": \"{}\", \"dominated_csv\": \"{}\"}}\n",
                "}}\n"
            ),
            JSON_SCHEMA_VERSION,
            spec.name,
            summary.strategy,
            summary.budget,
            summary.seed,
            summary.evaluations,
            summary.cells,
            summary.rounds,
            summary.frontier_total(),
            summary.dominated,
            summary.stats.cache_hits,
            summary.stats.executed,
            summary.stats.crashed,
            summary.stats.timed_out,
            summary.stats.retried,
            summary.stats.failed,
            summary.stats.append_failures,
            elapsed,
            json_path(&artifacts.frontier_jsonl),
            json_path(&artifacts.frontier_csv),
            json_path(&artifacts.dominated_jsonl),
            json_path(&artifacts.dominated_csv),
        )
    } else {
        let mut out = format!(
            "explore {}: {} {} evaluations ({} budget, seed {}), {} rounds in {:.1}s\n",
            spec.name,
            summary.strategy,
            summary.evaluations,
            summary.budget,
            summary.seed,
            summary.rounds,
            elapsed,
        );
        for (traffic, n) in &summary.frontier_sizes {
            out.push_str(&format!("frontier[{traffic}]: {n} points\n"));
        }
        out.push_str(&format!(
            "cells: {} cached, {} simulated, {} dominated points\n",
            summary.stats.cache_hits, summary.stats.executed, summary.dominated,
        ));
        if summary.stats.crashed > 0 || summary.stats.timed_out > 0 || summary.stats.retried > 0 {
            out.push_str(&format!(
                "supervision: {} crashed, {} timed out, {} recovered by retry\n",
                summary.stats.crashed, summary.stats.timed_out, summary.stats.retried
            ));
        }
        if let Some(e) = &summary.append_error {
            out.push_str(&format!(
                "warning: cache append broke mid-run ({} record(s) not cached): {e}\n",
                summary.stats.append_failures
            ));
        }
        out.push_str(&format!(
            "artifacts: {}, {}\n",
            artifacts.frontier_jsonl.display(),
            artifacts.dominated_jsonl.display(),
        ));
        out
    };

    let code = if summary.is_degraded() {
        EXIT_DEGRADED
    } else {
        0
    };
    CmdOutput { text, code }
}

/// Executes `experiment <tokens...>`, returning rendered output and
/// the exit code (never panics; every failure maps to a coded result).
pub fn execute(tokens: &[String]) -> CmdOutput {
    if tokens.first().map(String::as_str) == Some("explore") {
        return execute_explore(&tokens[1..]);
    }
    let args = match parse_args(tokens) {
        Ok(a) => a,
        Err(e) => {
            return CmdOutput {
                text: format!("error: {e}\n"),
                code: EXIT_BAD_INPUT,
            }
        }
    };

    let text = match std::fs::read_to_string(&args.spec_path) {
        Ok(t) => t,
        Err(e) => {
            return CmdOutput {
                text: format!("error: cannot read `{}`: {e}\n", args.spec_path.display()),
                code: EXIT_BAD_INPUT,
            }
        }
    };
    let mut spec = match ExperimentSpec::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            return CmdOutput {
                text: format!("error: {}: {e}\n", args.spec_path.display()),
                code: EXIT_BAD_INPUT,
            }
        }
    };
    if let Some(n) = args.audit_every {
        spec.measure.audit_every = n;
    }

    let opts = EngineOptions {
        threads: args.threads,
        cache_dir: args.cache_dir.clone(),
        progress: !args.quiet && !args.json,
        max_retries: args.retries,
        cell_timeout: args.cell_timeout,
        poison: std::env::var("ORION_EXP_PANIC_CELL").ok(),
        checkpoint_every: args.checkpoint_every,
        shards: args.shards,
    };
    let (records, summary) = match run_spec(&spec, &opts) {
        Ok(r) => r,
        Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
            return CmdOutput {
                text: format!("error: {e}\n"),
                code: EXIT_BAD_INPUT,
            }
        }
        Err(e) => {
            return CmdOutput {
                text: format!("error: engine I/O failure: {e}\n"),
                code: EXIT_RUNTIME,
            }
        }
    };
    let artifacts = match write_artifacts(&args.out_dir, &spec.name, &records) {
        Ok(a) => a,
        Err(e) => {
            return CmdOutput {
                text: format!(
                    "error: cannot write artifacts under `{}`: {e}\n",
                    args.out_dir.display()
                ),
                code: EXIT_RUNTIME,
            }
        }
    };

    let elapsed = summary.elapsed.as_secs_f64();
    let text = if args.json {
        format!(
            concat!(
                "{{\n",
                "  \"schema_version\": {},\n",
                "  \"experiment\": \"{}\",\n",
                "  \"cells\": {},\n",
                "  \"simulated\": {},\n",
                "  \"cache_hits\": {},\n",
                "  \"failed\": {},\n",
                "  \"crashed\": {},\n",
                "  \"timed_out\": {},\n",
                "  \"retried\": {},\n",
                "  \"corrupted\": {},\n",
                "  \"corrupt_cache_lines\": {},\n",
                "  \"append_failures\": {},\n",
                "  \"elapsed_s\": {:.3},\n",
                "  \"artifacts\": {{\"jsonl\": \"{}\", \"csv\": \"{}\"}}\n",
                "}}\n"
            ),
            JSON_SCHEMA_VERSION,
            spec.name,
            summary.total,
            summary.simulated,
            summary.cache_hits,
            summary.failed,
            summary.crashed,
            summary.timed_out,
            summary.retried,
            summary.corrupted,
            summary.corrupt_cache_lines,
            summary.append_failures,
            elapsed,
            json_path(&artifacts.jsonl),
            json_path(&artifacts.csv),
        )
    } else {
        let mut out = format!(
            "experiment {}: {} cells, {} simulated, {} cached, {} failed in {:.1}s\n",
            spec.name,
            summary.total,
            summary.simulated,
            summary.cache_hits,
            summary.failed,
            elapsed,
        );
        if summary.crashed > 0 || summary.timed_out > 0 || summary.retried > 0 {
            out.push_str(&format!(
                "supervision: {} crashed, {} timed out, {} recovered by retry\n",
                summary.crashed, summary.timed_out, summary.retried
            ));
        }
        if summary.corrupted > 0 {
            out.push_str(&format!(
                "warning: {} cell(s) failed the runtime invariant audit (outcome `corrupted`)\n",
                summary.corrupted
            ));
        }
        if summary.corrupt_cache_lines > 0 {
            out.push_str(&format!(
                "warning: skipped {} corrupt cache line(s); affected cells re-simulated\n",
                summary.corrupt_cache_lines
            ));
        }
        if let Some(e) = &summary.append_error {
            out.push_str(&format!(
                "warning: cache append broke mid-run ({} record(s) not cached): {e}\n",
                summary.append_failures
            ));
        }
        out.push_str(&format!(
            "artifacts: {}, {}\n",
            artifacts.jsonl.display(),
            artifacts.csv.display()
        ));
        out
    };

    let code = if summary.is_degraded() {
        EXIT_DEGRADED
    } else {
        0
    };
    CmdOutput { text, code }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::Path;

    fn toks(line: &str) -> Vec<String> {
        line.split_whitespace().map(String::from).collect()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("orion-cli-exp-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_spec(dir: &Path) -> PathBuf {
        let path = dir.join("spec.toml");
        fs::write(
            &path,
            r#"
[experiment]
name = "cli-smoke"

[measure]
warmup = 100
sample_packets = 100
max_cycles = 20000

[grid]
presets = ["vc16"]
rates = [0.02, 0.04]
"#,
        )
        .unwrap();
        path
    }

    #[test]
    fn bad_input_exits_2() {
        for line in [
            "",                                // missing subcommand
            "walk spec.toml",                  // unknown subcommand
            "run",                             // missing spec path
            "run a.toml b.toml",               // extra positional
            "run a.toml --threads",            // value-less option
            "run a.toml --bogus 1",            // unknown option
            "run /nonexistent.toml",           // unreadable file
            "run a.toml --retries x",          // non-integer retries
            "run a.toml --cell-timeout-ms 0",  // zero budget
            "run a.toml --audit-every",        // value-less option
            "run a.toml --checkpoint-every x", // non-integer cadence
        ] {
            let out = execute(&toks(line));
            assert_eq!(out.code, EXIT_BAD_INPUT, "{line:?} -> {}", out.text);
            assert!(out.text.starts_with("error:"), "{line:?} -> {}", out.text);
        }
    }

    #[test]
    fn malformed_spec_exits_2_with_diagnostic() {
        let dir = temp_dir("badspec");
        let path = dir.join("bad.toml");
        fs::write(
            &path,
            "[experiment]\nname = \"x\"\n[grid]\npresets = [\"warp9\"]\nrates = [0.1]\n",
        )
        .unwrap();
        let out = execute(&toks(&format!("run {}", path.display())));
        assert_eq!(out.code, EXIT_BAD_INPUT);
        assert!(out.text.contains("warp9"), "{}", out.text);
        assert!(out.text.contains("line 4"), "{}", out.text);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_writes_artifacts_then_hits_cache() {
        let dir = temp_dir("run");
        let spec = write_spec(&dir);
        let line = format!(
            "run {} --threads 2 --cache-dir {} --out-dir {} --json --quiet",
            spec.display(),
            dir.join("cache").display(),
            dir.join("out").display(),
        );

        let first = execute(&toks(&line));
        assert_eq!(first.code, 0, "{}", first.text);
        assert!(
            first
                .text
                .contains(&format!("\"schema_version\": {JSON_SCHEMA_VERSION}")),
            "{}",
            first.text
        );
        assert!(first.text.contains("\"crashed\": 0"), "{}", first.text);
        assert!(first.text.contains("\"cache_hits\": 0"), "{}", first.text);
        assert!(first.text.contains("\"simulated\": 2"), "{}", first.text);
        assert!(dir.join("out/cli-smoke.jsonl").exists());
        assert!(dir.join("out/cli-smoke.csv").exists());

        let second = execute(&toks(&line));
        assert_eq!(second.code, 0);
        assert!(second.text.contains("\"simulated\": 0"), "{}", second.text);
        assert!(second.text.contains("\"cache_hits\": 2"), "{}", second.text);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn locked_cache_dir_exits_2_with_holder_diagnostic() {
        let dir = temp_dir("locked");
        let spec = write_spec(&dir);
        let cache = dir.join("cache");
        let _lock = orion_exp::CacheLock::acquire(&cache).unwrap();
        let out = execute(&toks(&format!(
            "run {} --cache-dir {} --out-dir {} --quiet",
            spec.display(),
            cache.display(),
            dir.join("out").display(),
        )));
        assert_eq!(out.code, EXIT_BAD_INPUT, "{}", out.text);
        assert!(out.text.contains("lock"), "{}", out.text);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn poisoned_cell_exits_3_but_grid_completes() {
        let dir = temp_dir("poison");
        let path = dir.join("spec.toml");
        // Rate 0.055 is unique to this test: the poison env var is
        // process-global, so the pattern must not match any cell that
        // a concurrently running test simulates.
        fs::write(
            &path,
            r#"
[experiment]
name = "cli-poison"

[measure]
warmup = 100
sample_packets = 100
max_cycles = 20000

[grid]
presets = ["vc16"]
rates = [0.02, 0.055]
"#,
        )
        .unwrap();
        std::env::set_var("ORION_EXP_PANIC_CELL", "r0.055000");
        let out = execute(&toks(&format!(
            "run {} --out-dir {} --json --quiet",
            path.display(),
            dir.join("out").display(),
        )));
        std::env::remove_var("ORION_EXP_PANIC_CELL");
        assert_eq!(out.code, EXIT_DEGRADED, "{}", out.text);
        assert!(out.text.contains("\"crashed\": 1"), "{}", out.text);

        // The grid still produced a full artifact: the healthy cell's
        // record plus exactly one quarantined record.
        let jsonl = fs::read_to_string(dir.join("out/cli-poison.jsonl")).unwrap();
        assert_eq!(jsonl.lines().count(), 2);
        assert_eq!(
            jsonl
                .lines()
                .filter(|l| l.contains("\"cell_outcome\":\"crashed\""))
                .count(),
            1
        );
        let _ = fs::remove_dir_all(&dir);
    }

    fn write_explore_spec(dir: &Path) -> PathBuf {
        let path = dir.join("explore.toml");
        fs::write(
            &path,
            r#"
[experiment]
name = "cli-explore"

[measure]
warmup = 100
sample_packets = 100
max_cycles = 20000

[explore]
strategy = "grid-refine"
budget = 4
rate = 0.02

[space]
families = ["vc"]
vcs = [2, 4]
depths = [4, 8]
"#,
        )
        .unwrap();
        path
    }

    #[test]
    fn explore_bad_input_exits_2() {
        for line in [
            "explore",                             // missing spec path
            "explore a.toml b.toml",               // extra positional
            "explore a.toml --budget 0",           // zero budget
            "explore a.toml --budget x",           // non-integer budget
            "explore a.toml --seed",               // value-less option
            "explore a.toml --bogus 1",            // unknown option
            "explore /nonexistent.toml",           // unreadable file
            "explore a.toml --cell-timeout-ms 0",  // zero budget
            "explore a.toml --checkpoint-every x", // non-integer cadence
        ] {
            let out = execute(&toks(line));
            assert_eq!(out.code, EXIT_BAD_INPUT, "{line:?} -> {}", out.text);
            assert!(out.text.starts_with("error:"), "{line:?} -> {}", out.text);
        }
    }

    #[test]
    fn explore_malformed_spec_exits_2_with_diagnostic() {
        let dir = temp_dir("badexplore");
        let path = dir.join("bad.toml");
        fs::write(
            &path,
            "[experiment]\nname = \"x\"\n[explore]\nbudget = 4\nstrategy = \"warp\"\n[space]\nfamilies = [\"vc\"]\n",
        )
        .unwrap();
        let out = execute(&toks(&format!("explore {}", path.display())));
        assert_eq!(out.code, EXIT_BAD_INPUT, "{}", out.text);
        assert!(out.text.contains("warp"), "{}", out.text);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn explore_writes_frontier_artifacts_then_hits_cache() {
        let dir = temp_dir("explore");
        let spec = write_explore_spec(&dir);
        let line = format!(
            "explore {} --threads 2 --cache-dir {} --out-dir {} --observe-dir {} --json --quiet",
            spec.display(),
            dir.join("cache").display(),
            dir.join("out").display(),
            dir.join("obs").display(),
        );

        let first = execute(&toks(&line));
        assert_eq!(first.code, 0, "{}", first.text);
        assert!(
            first
                .text
                .contains(&format!("\"schema_version\": {JSON_SCHEMA_VERSION}")),
            "{}",
            first.text
        );
        assert!(first.text.contains("\"evaluations\": 4"), "{}", first.text);
        assert!(first.text.contains("\"executed\": 4"), "{}", first.text);
        assert!(first.text.contains("\"cache_hits\": 0"), "{}", first.text);
        for artifact in [
            "out/cli-explore.frontier.jsonl",
            "out/cli-explore.frontier.csv",
            "out/cli-explore.dominated.jsonl",
            "out/cli-explore.dominated.csv",
        ] {
            assert!(dir.join(artifact).exists(), "missing {artifact}");
        }
        let metrics = fs::read_to_string(dir.join("obs/metrics.json")).unwrap();
        assert!(metrics.contains("explore_evaluations"), "{metrics}");
        assert!(dir.join("obs/metrics.csv").exists());

        // Second run: every cell is a cache hit, frontier unchanged.
        let second = execute(&toks(&line));
        assert_eq!(second.code, 0, "{}", second.text);
        assert!(second.text.contains("\"executed\": 0"), "{}", second.text);
        assert!(second.text.contains("\"cache_hits\": 4"), "{}", second.text);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn explore_human_summary_mentions_frontier() {
        let dir = temp_dir("explore-human");
        let spec = write_explore_spec(&dir);
        let out = execute(&toks(&format!(
            "explore {} --out-dir {} --quiet",
            spec.display(),
            dir.join("out").display(),
        )));
        assert_eq!(out.code, 0, "{}", out.text);
        assert!(out.text.contains("explore cli-explore"), "{}", out.text);
        assert!(out.text.contains("frontier[uniform]"), "{}", out.text);
        assert!(
            out.text.contains("cli-explore.frontier.jsonl"),
            "{}",
            out.text
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_summary_escapes_artifact_paths() {
        let dir = temp_dir("json-escape");
        let spec = write_spec(&dir);
        // An out-dir whose name contains a quote and a backslash must
        // still produce valid JSON (escaped, not interpolated raw).
        let out_dir = dir.join("ou\"t\\dir");
        let out = execute(&toks(&format!(
            "run {} --out-dir {} --json --quiet",
            spec.display(),
            out_dir.display(),
        )));
        assert_eq!(out.code, 0, "{}", out.text);
        assert!(
            out.text.contains(r#"ou\"t\\dir"#),
            "artifact paths must be JSON-escaped: {}",
            out.text
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn human_summary_mentions_artifacts() {
        let dir = temp_dir("human");
        let spec = write_spec(&dir);
        let out = execute(&toks(&format!(
            "run {} --out-dir {} --quiet",
            spec.display(),
            dir.join("out").display(),
        )));
        assert_eq!(out.code, 0, "{}", out.text);
        assert!(
            out.text.contains("experiment cli-smoke: 2 cells"),
            "{}",
            out.text
        );
        assert!(out.text.contains("cli-smoke.csv"), "{}", out.text);
        let _ = fs::remove_dir_all(&dir);
    }
}
