//! Crash-and-resume chaos tests, driven through the real binary.
//!
//! Each scenario runs `orion-power-cli experiment run` as a
//! subprocess, kills it at a seeded failpoint (`ORION_FAILPOINTS`,
//! simulated SIGKILL via `process::abort`), then reruns the same
//! command and asserts the final artifacts are **byte-identical** to
//! an uninterrupted baseline. This is the end-to-end proof behind the
//! checkpoint layer's contract: a crash can cost restart time, never
//! results — and a corrupted snapshot degrades to a cycle-0 replay,
//! never a failure.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_orion-power-cli");

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("orion-chaos-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// A two-cell grid, small enough to finish in well under a second but
/// long enough (in cycles) to cross several 64-cycle checkpoints.
fn write_spec(dir: &Path, name: &str) -> PathBuf {
    let path = dir.join("spec.toml");
    fs::write(
        &path,
        format!(
            r#"
[experiment]
name = "{name}"

[measure]
warmup = 100
sample_packets = 100
max_cycles = 20000

[grid]
presets = ["vc16"]
rates = [0.02, 0.04]
"#
        ),
    )
    .unwrap();
    path
}

fn run_experiment(
    spec: &Path,
    cache: &Path,
    out: &Path,
    failpoints: Option<&str>,
) -> std::process::Output {
    let mut cmd = Command::new(BIN);
    cmd.args([
        "experiment",
        "run",
        spec.to_str().unwrap(),
        "--cache-dir",
        cache.to_str().unwrap(),
        "--out-dir",
        out.to_str().unwrap(),
        "--checkpoint-every",
        "64",
        "--quiet",
    ]);
    cmd.env_remove("ORION_FAILPOINTS");
    if let Some(fp) = failpoints {
        cmd.env("ORION_FAILPOINTS", fp);
    }
    cmd.output().expect("spawn orion-power-cli")
}

fn artifacts(out: &Path, name: &str) -> (String, String) {
    (
        fs::read_to_string(out.join(format!("{name}.jsonl"))).expect("jsonl artifact"),
        fs::read_to_string(out.join(format!("{name}.csv"))).expect("csv artifact"),
    )
}

/// Whether any cached record carries mid-cell resume provenance
/// (`"resumed_from_cycle":<number>` rather than `null`).
fn has_resume_provenance(cache_lines: &str) -> bool {
    cache_lines.lines().any(|l| {
        l.split("\"resumed_from_cycle\":")
            .nth(1)
            .is_some_and(|rest| rest.starts_with(|c: char| c.is_ascii_digit()))
    })
}

/// The newest checkpoint file under `<cache>/ckpt`, if any.
fn newest_checkpoint(cache: &Path) -> Option<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(cache.join("ckpt"))
        .ok()?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "ckpt"))
        .collect();
    files.sort_by_key(|p| fs::metadata(p).and_then(|m| m.modified()).ok());
    files.pop()
}

#[test]
fn kill_at_checkpoint_boundary_resumes_to_byte_identical_artifacts() {
    let dir = temp_dir("kill-resume");
    let spec = write_spec(&dir, "chaos-kill");

    // Uninterrupted baseline.
    let base = run_experiment(&spec, &dir.join("cache-a"), &dir.join("out-a"), None);
    assert!(base.status.success(), "baseline failed: {base:?}");
    let (base_jsonl, base_csv) = artifacts(&dir.join("out-a"), "chaos-kill");

    // Chaos run: simulated SIGKILL on the second checkpoint write —
    // the first snapshot is already durable, the process dies mid-cell.
    let cache = dir.join("cache-b");
    let out = dir.join("out-b");
    let killed = run_experiment(&spec, &cache, &out, Some("ckpt.write=kill@2"));
    assert!(
        !killed.status.success(),
        "the armed kill failpoint must abort the run"
    );
    assert!(
        newest_checkpoint(&cache).is_some(),
        "the killed run left a durable checkpoint behind"
    );
    assert!(
        !out.join("chaos-kill.jsonl").exists(),
        "a killed run must not leave artifacts"
    );

    // Rerun without failpoints: resumes the interrupted cell from its
    // snapshot and must agree with the baseline byte for byte.
    let resumed = run_experiment(&spec, &cache, &out, None);
    assert!(resumed.status.success(), "resume failed: {resumed:?}");
    let (jsonl, csv) = artifacts(&out, "chaos-kill");
    assert_eq!(jsonl, base_jsonl, "resumed JSONL differs from baseline");
    assert_eq!(csv, base_csv, "resumed CSV differs from baseline");

    // The cache proves a real mid-cell resume happened (the cache
    // line keeps provenance; artifacts deliberately strip it).
    let cache_lines = fs::read_to_string(cache.join("orion-exp-cache.jsonl")).unwrap();
    assert!(
        has_resume_provenance(&cache_lines),
        "no cached record carries resume provenance:\n{cache_lines}"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_checkpoint_degrades_to_clean_cycle_zero_replay() {
    let dir = temp_dir("corrupt-fallback");
    let spec = write_spec(&dir, "chaos-corrupt");

    let base = run_experiment(&spec, &dir.join("cache-a"), &dir.join("out-a"), None);
    assert!(base.status.success(), "baseline failed: {base:?}");
    let (base_jsonl, base_csv) = artifacts(&dir.join("out-a"), "chaos-corrupt");

    // Kill mid-cell, then corrupt the snapshot the next run would use.
    let cache = dir.join("cache-b");
    let out = dir.join("out-b");
    let killed = run_experiment(&spec, &cache, &out, Some("ckpt.write=kill@2"));
    assert!(!killed.status.success());
    let ckpt = newest_checkpoint(&cache).expect("killed run left a checkpoint");
    fs::write(&ckpt, b"torn garbage where a checkpoint once was").unwrap();

    // The rerun must not fail, must not resume, and must reproduce the
    // baseline exactly from cycle 0. Exit code 0: graceful fallback.
    let rerun = run_experiment(&spec, &cache, &out, None);
    assert!(
        rerun.status.success(),
        "corrupt checkpoint must degrade, not fail: {rerun:?}"
    );
    let (jsonl, csv) = artifacts(&out, "chaos-corrupt");
    assert_eq!(jsonl, base_jsonl, "fallback JSONL differs from baseline");
    assert_eq!(csv, base_csv, "fallback CSV differs from baseline");
    let cache_lines = fs::read_to_string(cache.join("orion-exp-cache.jsonl")).unwrap();
    assert!(
        !has_resume_provenance(&cache_lines),
        "corrupt snapshot must not be resumed:\n{cache_lines}"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn injected_restore_error_degrades_to_clean_cycle_zero_replay() {
    // Same fallback contract, but the defect is injected at the
    // *restore* boundary instead of baked into the file — exercising
    // the load-time failpoint path end to end.
    let dir = temp_dir("restore-fault");
    let spec = write_spec(&dir, "chaos-restore");

    let base = run_experiment(&spec, &dir.join("cache-a"), &dir.join("out-a"), None);
    assert!(base.status.success());
    let (base_jsonl, base_csv) = artifacts(&dir.join("out-a"), "chaos-restore");

    let cache = dir.join("cache-b");
    let out = dir.join("out-b");
    let killed = run_experiment(&spec, &cache, &out, Some("ckpt.write=kill@2"));
    assert!(!killed.status.success());
    assert!(newest_checkpoint(&cache).is_some());

    let rerun = run_experiment(&spec, &cache, &out, Some("ckpt.restore=error@1"));
    assert!(
        rerun.status.success(),
        "injected restore failure must degrade, not fail: {rerun:?}"
    );
    let (jsonl, csv) = artifacts(&out, "chaos-restore");
    assert_eq!(jsonl, base_jsonl);
    assert_eq!(csv, base_csv);
    let _ = fs::remove_dir_all(&dir);
}
