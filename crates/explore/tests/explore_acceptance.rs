//! Acceptance tests for the exploration engine, run against the
//! shipped `examples/specs/explore_smoke.toml`:
//!
//! 1. the search converges to a *pinned* Pareto frontier (exact
//!    dominating set — any model or strategy change that moves it must
//!    update this file deliberately);
//! 2. `--threads N` produces byte-identical frontier artifacts to
//!    `--threads 1` for the fixed seed/budget;
//! 3. a search killed mid-budget and restarted over the same cache
//!    replays its prefix as cache hits and converges to the same
//!    frontier;
//! 4. explore-evaluated cells dedup against grid-run cells — a grid
//!    covering overlapping cells makes the explorer report cache hits
//!    instead of re-simulating.

use std::path::PathBuf;

use orion_exp::{run_spec, EngineOptions, ExperimentSpec};
use orion_explore::{run_explore, write_explore_artifacts, ExploreOptions, ExploreSpec};

fn smoke_spec() -> ExploreSpec {
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/specs/explore_smoke.toml");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    ExploreSpec::parse(&text).expect("shipped example spec must parse")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("orion-explore-acc-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The smoke search's known frontier on (avg latency, total power)
/// under uniform traffic at rate 0.02, in frontier order (ascending
/// latency): wormhole routers dominate the VC family outright at this
/// light load (no VC arbitration power for the same storage), and
/// within WH the frontier trades latency against buffer power from
/// 128 down to 8 flits of storage.
const PINNED_FRONTIER: [&str; 3] = ["wh128", "wh16", "wh8"];

#[test]
fn smoke_search_converges_to_the_pinned_frontier() {
    let spec = smoke_spec();
    let dir = temp_dir("pinned");
    let report = run_explore(
        &spec,
        &ExploreOptions {
            cache_dir: Some(dir.join("cache")),
            ..ExploreOptions::default()
        },
    )
    .unwrap();

    assert!(!report.summary.is_degraded(), "{:?}", report.summary.stats);
    assert_eq!(report.summary.evaluations, 14, "grid-refine corner sweep");
    let front = &report.frontiers["uniform"];
    let labels: Vec<&str> = front.members().iter().map(|m| m.label.as_str()).collect();
    assert_eq!(
        labels, PINNED_FRONTIER,
        "the dominating set moved — model or strategy change? \
         Update PINNED_FRONTIER only if that was deliberate."
    );
    // Every frontier point is flagged in the artifact rows, and the
    // flagged set is exactly the frontier.
    let flagged: Vec<&str> = report
        .points
        .iter()
        .filter(|p| p.on_frontier)
        .map(|p| p.candidate.as_str())
        .collect();
    assert_eq!(flagged, PINNED_FRONTIER);
    assert_eq!(
        report.summary.dominated,
        report.points.len() - PINNED_FRONTIER.len()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn thread_count_does_not_change_the_artifact_bytes() {
    let spec = smoke_spec();
    let dir = temp_dir("threads");

    let mut artifact_sets = Vec::new();
    for threads in [1usize, 4] {
        let out = dir.join(format!("out-{threads}"));
        let report = run_explore(
            &spec,
            &ExploreOptions {
                threads,
                cache_dir: Some(dir.join(format!("cache-{threads}"))),
                ..ExploreOptions::default()
            },
        )
        .unwrap();
        let artifacts = write_explore_artifacts(&out, &spec.name, &report.points).unwrap();
        artifact_sets.push(
            [
                artifacts.frontier_jsonl,
                artifacts.frontier_csv,
                artifacts.dominated_jsonl,
                artifacts.dominated_csv,
            ]
            .map(|p| std::fs::read(p).unwrap()),
        );
    }
    for (a, b) in artifact_sets[0].iter().zip(&artifact_sets[1]) {
        assert_eq!(a, b, "threads=1 and threads=4 artifacts diverge");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interrupted_search_resumes_from_cache_to_the_same_frontier() {
    let spec = smoke_spec();
    let dir = temp_dir("resume");
    let cache = dir.join("cache");

    // "Kill" the search early by capping the budget below the full
    // trajectory, leaving a partial cache behind.
    let partial = run_explore(
        &spec,
        &ExploreOptions {
            cache_dir: Some(cache.clone()),
            budget: Some(6),
            ..ExploreOptions::default()
        },
    )
    .unwrap();
    assert_eq!(partial.summary.evaluations, 6);
    assert_eq!(partial.summary.stats.executed, 6);

    // Restart with the full budget over the same cache: the prefix is
    // replayed as cache hits, only the remainder simulates.
    let resumed = run_explore(
        &spec,
        &ExploreOptions {
            cache_dir: Some(cache),
            ..ExploreOptions::default()
        },
    )
    .unwrap();
    assert_eq!(resumed.summary.evaluations, 14);
    assert_eq!(resumed.summary.stats.cache_hits, 6, "prefix replayed");
    assert_eq!(resumed.summary.stats.executed, 8, "only the tail simulated");

    // And it lands on the exact same frontier as a cold one-shot run.
    let cold = run_explore(
        &spec,
        &ExploreOptions {
            cache_dir: Some(dir.join("cache-cold")),
            ..ExploreOptions::default()
        },
    )
    .unwrap();
    assert_eq!(resumed.frontiers, cold.frontiers);
    assert_eq!(resumed.points.len(), cold.points.len());
    for (a, b) in resumed.points.iter().zip(&cold.points) {
        assert_eq!(a.to_json_line(), b.to_json_line());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn explore_cells_dedup_against_grid_run_cells() {
    let spec = smoke_spec();
    let dir = temp_dir("dedup");
    let cache = dir.join("cache");

    // A conventional grid run covering two of the explorer's candidate
    // cells (same measure window, rate, workload seed).
    let grid = ExperimentSpec::parse(
        "[experiment]\n\
         name = \"overlap\"\n\
         [measure]\n\
         warmup = 100\n\
         sample_packets = 150\n\
         max_cycles = 20000\n\
         [grid]\n\
         presets = [\"vc16\", \"wh16\"]\n\
         rates = [0.02]\n\
         seeds = [1]\n",
    )
    .unwrap();
    let (_, grid_summary) = run_spec(
        &grid,
        &EngineOptions {
            threads: 1,
            cache_dir: Some(cache.clone()),
            progress: false,
            max_retries: 0,
            cell_timeout: None,
            poison: None,
            checkpoint_every: 0,
            shards: 1,
        },
    )
    .unwrap();
    assert_eq!(grid_summary.simulated, 2);

    // The explorer reuses those cells from the shared cache: exactly
    // the two overlapping cells are hits, nothing is simulated twice.
    let report = run_explore(
        &spec,
        &ExploreOptions {
            cache_dir: Some(cache),
            ..ExploreOptions::default()
        },
    )
    .unwrap();
    assert_eq!(report.summary.evaluations, 14);
    assert_eq!(report.summary.stats.cache_hits, 2, "vc16 and wh16 reused");
    assert_eq!(report.summary.stats.executed, 12);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_candidate_in_a_maximal_space_lowers_to_a_config() {
    // Regression for the engine panic at `candidate_cell`: wh/cb
    // canonical names encode vcs*depth totals that exceed the
    // individual depth bound (vcs=8, depth=16384 -> "wh131072"), and
    // the name codec must accept every product reachable from
    // validated axes. Exercise the extreme corners of every axis and
    // assert the exact lookup the engine relies on never comes back
    // empty.
    let spec = ExploreSpec::parse(
        "[experiment]\n\
         name = \"maximal\"\n\
         [explore]\n\
         budget = 1\n\
         [space]\n\
         families = [\"wh\", \"vc\", \"xb\", \"cb\"]\n\
         vcs = [1, 8, 1024]\n\
         depths = [1, 16384, 65536]\n\
         radix = [2, 64]\n\
         topology = [\"torus\", \"mesh\"]\n\
         nodes = [\"0.8um\", \"70nm\"]\n",
    )
    .unwrap();
    let space = &spec.space;

    let mut checked = 0usize;
    for f in 0..space.families.len() {
        for v in 0..space.vcs.len() {
            for d in 0..space.depths.len() {
                for r in 0..space.radices.len() {
                    for t in 0..space.topologies.len() {
                        for n in 0..space.nodes.len() {
                            let c = orion_explore::Candidate {
                                ix: [f, v, d, r, t, n],
                            };
                            let name = c.name(space);
                            assert!(
                                orion_exp::spec::preset_config(&name).is_some(),
                                "candidate {name} must lower to a config"
                            );
                            checked += 1;
                        }
                    }
                }
            }
        }
    }
    assert_eq!(checked, space.size());
}
