//! Malformed-input tests for the `[explore]`/`[space]` spec reader:
//! bad budgets, unknown strategies, empty or nonsensical dimension
//! ranges must all come back as typed [`SpecError`]s — never a panic.
//!
//! Mirrors `crates/exp/tests/malformed_toml.rs`: the final property
//! tests feed arbitrary byte soup and mutated valid specs through the
//! full `ExploreSpec::parse_bytes` path to pin the never-panic
//! guarantee.

use orion_exp::SpecError;
use orion_explore::ExploreSpec;
use proptest::prelude::*;

/// A spec that parses cleanly, used as the base for mutations.
const VALID: &str = "\
[experiment]
name = \"probe\"

[explore]
strategy = \"evolutionary\"
budget = 32
seed = 7
rate = 0.05

[space]
families = [\"wh\", \"vc\", \"xb\", \"cb\"]
vcs = [2, 4, 8]
depths = [4, 8]
radix = [4, 8]
topology = [\"torus\", \"mesh\"]
nodes = [\"0.1um\", \"70nm\"]
";

#[test]
fn valid_base_spec_parses() {
    let spec = ExploreSpec::parse(VALID).expect("base spec must be valid");
    assert_eq!(spec.budget, 32);
    assert_eq!(spec.space.size(), 4 * 3 * 2 * 2 * 2 * 2);
}

fn parse(doc: &str) -> Result<ExploreSpec, SpecError> {
    ExploreSpec::parse(doc)
}

#[test]
fn budget_must_be_a_positive_integer() {
    for (value, rendered) in [("0", "0"), ("-12", "-12")] {
        let doc = format!(
            "[experiment]\nname = \"x\"\n[explore]\nbudget = {value}\n[space]\nfamilies = [\"vc\"]\n"
        );
        match parse(&doc) {
            Err(SpecError::InvalidBudget { value, line }) => {
                assert_eq!(value.to_string(), rendered);
                assert_eq!(line, 4, "error points at the budget line");
            }
            other => panic!("budget {value}: expected InvalidBudget, got {other:?}"),
        }
    }
    // Wrong type entirely (float, string, array).
    for value in ["2.5", "\"many\"", "[1, 2]"] {
        let doc = format!(
            "[experiment]\nname = \"x\"\n[explore]\nbudget = {value}\n[space]\nfamilies = [\"vc\"]\n"
        );
        assert!(
            matches!(parse(&doc), Err(SpecError::WrongType { .. })),
            "budget {value} must be a type error"
        );
    }
    // Missing budget is a typed MissingKey, not a default.
    let doc = "[experiment]\nname = \"x\"\n[explore]\n[space]\nfamilies = [\"vc\"]\n";
    assert!(matches!(
        parse(doc),
        Err(SpecError::MissingKey { key, .. }) if key == "budget"
    ));
}

#[test]
fn unknown_strategy_is_a_typed_error_with_line() {
    let doc = "[experiment]\nname = \"x\"\n[explore]\nbudget = 4\nstrategy = \"hillclimb\"\n\
               [space]\nfamilies = [\"vc\"]\n";
    match parse(doc) {
        Err(SpecError::UnknownStrategy { name, line }) => {
            assert_eq!(name, "hillclimb");
            assert_eq!(line, 5);
        }
        other => panic!("expected UnknownStrategy, got {other:?}"),
    }
    let rendered = parse(doc).unwrap_err().to_string();
    assert!(rendered.contains("grid-refine"), "{rendered}");
    assert!(rendered.contains("evolutionary"), "{rendered}");
}

#[test]
fn empty_dimension_ranges_are_rejected() {
    for (key, axis) in [
        ("families", "families = []"),
        ("vcs", "vcs = []"),
        ("depths", "depths = []"),
        ("radix", "radix = []"),
        ("topology", "topology = []"),
        ("nodes", "nodes = []"),
    ] {
        let families = if key == "families" {
            String::new()
        } else {
            "families = [\"vc\"]\n".to_string()
        };
        let doc = format!(
            "[experiment]\nname = \"x\"\n[explore]\nbudget = 4\n[space]\n{families}{axis}\n"
        );
        match parse(&doc) {
            Err(SpecError::EmptyAxis { key: got }) => assert_eq!(got, key),
            other => panic!("{key}: expected EmptyAxis, got {other:?}"),
        }
    }
}

#[test]
fn nonsense_dimension_values_are_typed_bad_dimensions() {
    for axis in [
        "families = [\"vc\", \"warp\"]",
        "vcs = [0]",
        "vcs = [-2]",
        "depths = [0]",
        "radix = [1]",  // torus/mesh need radix >= 2
        "radix = [99]", // above the codec's MAX_RADIX
        "topology = [\"ring\"]",
        "nodes = [\"45nm\"]",
    ] {
        let families = if axis.starts_with("families") {
            String::new()
        } else {
            "families = [\"vc\"]\n".to_string()
        };
        let doc = format!(
            "[experiment]\nname = \"x\"\n[explore]\nbudget = 4\n[space]\n{families}{axis}\n"
        );
        assert!(
            matches!(parse(&doc), Err(SpecError::BadDimension { .. })),
            "{axis}: expected BadDimension, got {:?}",
            parse(&doc)
        );
    }
}

#[test]
fn unknown_sections_and_keys_are_rejected() {
    let doc = "[experiment]\nname = \"x\"\n[explore]\nbudget = 4\n[space]\n\
               families = [\"vc\"]\n[grid]\npresets = [\"vc16\"]\n";
    assert!(
        matches!(parse(doc), Err(SpecError::UnknownSection { ref section, .. }) if section == "grid"),
        "an explore spec must not silently accept grid sections"
    );
    let doc = "[experiment]\nname = \"x\"\n[explore]\nbudget = 4\nbuget = 5\n[space]\nfamilies = [\"vc\"]\n";
    assert!(matches!(
        parse(doc),
        Err(SpecError::UnknownKey { ref key, .. }) if key == "buget"
    ));
}

#[test]
fn syntax_errors_surface_with_line_numbers() {
    let truncated = "[experiment]\nname = \"x\"\n[explore\n";
    match parse(truncated) {
        Err(SpecError::Syntax(e)) => assert_eq!(e.line, 3),
        other => panic!("expected Syntax, got {other:?}"),
    }
    let mut bytes = b"[experiment]\nname = \"x\"\n".to_vec();
    bytes.extend_from_slice(&[0xFF, 0xFE, b'\n']);
    assert!(matches!(
        ExploreSpec::parse_bytes(&bytes),
        Err(SpecError::Syntax(_))
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte soup never panics the full explore-spec parse
    /// path: every outcome is `Ok` or a typed `SpecError`.
    #[test]
    fn arbitrary_bytes_never_panic(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = ExploreSpec::parse_bytes(&bytes);
    }

    /// Mutating a valid spec (truncation + one byte stomped) never
    /// panics either — the "almost valid" space where parsers tend to
    /// index out of bounds.
    #[test]
    fn mutated_valid_spec_never_panics(
        cut in 0usize..96,
        pos in any::<usize>(),
        byte in any::<u8>(),
    ) {
        let mut bytes = VALID.as_bytes().to_vec();
        bytes.truncate(bytes.len().saturating_sub(cut));
        if !bytes.is_empty() {
            let at = pos % bytes.len();
            bytes[at] = byte;
        }
        let _ = ExploreSpec::parse_bytes(&bytes);
    }
}
