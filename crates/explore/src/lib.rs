//! Automated design-space exploration for the Orion reproduction:
//! budgeted, seedable search over router microarchitectures with
//! deterministic Pareto frontiers on the latency/power plane.
//!
//! The paper's whole purpose is architectural exploration — §4.2 and
//! §4.4 compare router families and buffer sizings on the
//! power-performance plane by hand. This crate closes the loop the way
//! PAPERS.md's Pareto-optimisation framework (Kao & Fink) does: a
//! search engine proposes candidate design points — router family
//! (WH/VC/CB/XB), VC count, buffer depth, topology radix, process node
//! — evaluates them through the cached, supervised `orion-exp`
//! [`CellRunner`](orion_exp::CellRunner), and maintains one Pareto
//! frontier per traffic pattern on *(average latency, total power)*.
//!
//! Three properties, all pinned by tests and CI:
//!
//! 1. **Determinism under parallelism** — strategies are pure
//!    functions of `(spec, results so far)`, batches evaluate through
//!    the order-preserving `par_map`, and frontier updates are
//!    sequential, so `--threads N` produces byte-identical frontier
//!    artifacts to `--threads 1` for a fixed `--seed`/`--budget`.
//! 2. **Resumability** — candidates lower to ordinary experiment
//!    cells with content-addressed fingerprints; a killed search
//!    re-runs its trajectory from the cache and converges to the same
//!    frontier, and cells already evaluated by a grid run are cache
//!    hits, never re-simulated.
//! 3. **Versioned artifacts** — frontier and dominated points land as
//!    JSONL + CSV with an explicit `explore` schema version, atomic
//!    writes and a total row order.
//!
//! # Example
//!
//! ```no_run
//! use orion_explore::{run_explore, ExploreOptions, ExploreSpec};
//!
//! let spec = ExploreSpec::parse(r#"
//! [experiment]
//! name = "pareto"
//!
//! [explore]
//! strategy = "grid-refine"
//! budget = 32
//! rate = 0.05
//!
//! [space]
//! families = ["wh", "vc"]
//! vcs = [2, 4, 8]
//! depths = [4, 8, 16]
//! "#)?;
//! let report = run_explore(&spec, &ExploreOptions {
//!     threads: 4,
//!     cache_dir: Some("cache".into()),
//!     ..ExploreOptions::default()
//! })?;
//! for (traffic, front) in &report.frontiers {
//!     println!("{traffic}: {} frontier points", front.len());
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Strategy semantics, the determinism contract and resume behaviour
//! are documented in `docs/EXPLORATION.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod engine;
pub mod spec;
pub mod strategy;

pub use artifact::{
    write_explore_artifacts, ExploreArtifacts, PointRecord, EXPLORE_SCHEMA_VERSION,
};
pub use engine::{run_explore, ExploreOptions, ExploreReport, ExploreSummary};
pub use spec::{Candidate, ExploreSpec, Space, Strategy};
pub use strategy::{Evaluated, Evolutionary, GridRefine, SearchStrategy, SearchView};
