//! Versioned exploration artifacts: frontier and dominated-point files
//! as JSONL and CSV.
//!
//! Four files per run — `<name>.frontier.jsonl`, `<name>.frontier.csv`,
//! `<name>.dominated.jsonl`, `<name>.dominated.csv` — written
//! atomically (temp + fsync + rename, via
//! [`orion_exp::artifact::write_atomic`]) with a fixed field order,
//! fixed row order and shortest-roundtrip float formatting, so a run's
//! artifact bytes are a pure function of its results: the property the
//! CI thread-identity and resume checks `cmp` against.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

use orion_exp::design::DesignPoint;
use orion_exp::fingerprint;
use orion_exp::spec::TrafficKind;
use orion_exp::write_atomic;
use orion_exp::CellRecord;

use crate::spec::ExploreSpec;

/// Version of the exploration row layout (JSONL fields and CSV
/// columns). Bump on any field addition, removal or reordering.
///
/// Version history: 1 = initial layout.
pub const EXPLORE_SCHEMA_VERSION: u32 = 1;

/// One (candidate, traffic) evaluation, flattened for artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct PointRecord {
    /// Row-layout version ([`EXPLORE_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Experiment name.
    pub experiment: String,
    /// Traffic pattern name.
    pub traffic: String,
    /// Canonical candidate (design-point) name.
    pub candidate: String,
    /// The evaluated cell's key (joins against grid artifacts/cache).
    pub cell: String,
    /// The cell's cache fingerprint.
    pub fingerprint: u64,
    /// Router family token (`wh|vc|xb|cb`).
    pub family: String,
    /// Virtual channels per port.
    pub vcs: u32,
    /// Flit depth per VC.
    pub depth: u32,
    /// Total flits of buffering per input port.
    pub buffering: u32,
    /// Per-dimension radix.
    pub radix: u32,
    /// `torus` or `mesh`.
    pub topology: String,
    /// Process node label (`0.1um`, `70nm`, …).
    pub node: String,
    /// Injection rate in packets/cycle/node.
    pub rate: f64,
    /// Average packet latency in cycles (objective 1; NaN serialises
    /// as `null`).
    pub avg_latency: f64,
    /// Total network power in watts (objective 2).
    pub total_power_w: f64,
    /// Delivered flits per cycle.
    pub throughput: f64,
    /// Run outcome label (`completed`, `saturated`, `crashed`, …).
    pub outcome: String,
    /// Supervision verdict (`ok`, `retried`, `crashed`, `timed-out`).
    pub cell_outcome: String,
    /// Whether the point is on its traffic pattern's final frontier.
    pub on_frontier: bool,
    /// 1-based search round that evaluated it.
    pub round: usize,
}

impl PointRecord {
    /// Builds the row for one evaluated (candidate, traffic) pair.
    pub fn new(
        spec: &ExploreSpec,
        candidate: &str,
        design: &DesignPoint,
        traffic: TrafficKind,
        record: &CellRecord,
        on_frontier: bool,
        round: usize,
    ) -> PointRecord {
        PointRecord {
            schema_version: EXPLORE_SCHEMA_VERSION,
            experiment: spec.name.clone(),
            traffic: traffic.as_str().to_string(),
            candidate: candidate.to_string(),
            cell: record.cell.clone(),
            fingerprint: record.fingerprint,
            family: design.family.as_str().to_string(),
            vcs: design.vcs,
            depth: design.depth,
            buffering: design.buffering_per_port(),
            radix: design.radix,
            topology: if design.mesh { "mesh" } else { "torus" }.to_string(),
            node: design.node.to_string(),
            rate: record.rate,
            avg_latency: record.avg_latency,
            total_power_w: record.total_power_w,
            throughput: record.throughput,
            outcome: record.outcome.clone(),
            cell_outcome: record.cell_outcome.clone(),
            on_frontier,
            round,
        }
    }

    /// Canonical artifact row order: traffic, then the latency/power
    /// plane left-to-right (non-finite latencies last), then name.
    /// Total float comparison keeps the order well-defined for NaN.
    pub fn sort_for_artifacts(points: &mut [PointRecord]) {
        points.sort_by(|a, b| {
            a.traffic
                .cmp(&b.traffic)
                .then(
                    a.avg_latency
                        .is_finite()
                        .cmp(&b.avg_latency.is_finite())
                        .reverse(),
                )
                .then(a.avg_latency.total_cmp(&b.avg_latency))
                .then(a.total_power_w.total_cmp(&b.total_power_w))
                .then(a.candidate.cmp(&b.candidate))
        });
    }

    /// Serialises to one JSON line (no trailing newline), fixed field
    /// order, non-finite floats as `null`.
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(384);
        s.push('{');
        push_num(&mut s, "schema_version", self.schema_version);
        push_str(&mut s, "experiment", &self.experiment);
        push_str(&mut s, "traffic", &self.traffic);
        push_str(&mut s, "candidate", &self.candidate);
        push_str(&mut s, "cell", &self.cell);
        push_str(
            &mut s,
            "fingerprint",
            &fingerprint::to_hex(self.fingerprint),
        );
        push_str(&mut s, "family", &self.family);
        push_num(&mut s, "vcs", self.vcs);
        push_num(&mut s, "depth", self.depth);
        push_num(&mut s, "buffering", self.buffering);
        push_num(&mut s, "radix", self.radix);
        push_str(&mut s, "topology", &self.topology);
        push_str(&mut s, "node", &self.node);
        push_f64(&mut s, "rate", self.rate);
        push_f64(&mut s, "avg_latency", self.avg_latency);
        push_f64(&mut s, "total_power_w", self.total_power_w);
        push_f64(&mut s, "throughput", self.throughput);
        push_str(&mut s, "outcome", &self.outcome);
        push_str(&mut s, "cell_outcome", &self.cell_outcome);
        push_bool(&mut s, "on_frontier", self.on_frontier);
        push_num(&mut s, "round", self.round);
        s.pop(); // trailing comma
        s.push('}');
        s
    }

    /// The CSV header row matching [`PointRecord::to_csv_row`].
    pub fn csv_header() -> &'static str {
        "schema_version,experiment,traffic,candidate,cell,fingerprint,family,vcs,depth,\
         buffering,radix,topology,node,rate,avg_latency,total_power_w,throughput,outcome,\
         cell_outcome,on_frontier,round"
    }

    /// Serialises to one CSV row (no trailing newline); non-finite
    /// floats render as empty fields.
    pub fn to_csv_row(&self) -> String {
        let f = |v: f64| {
            if v.is_finite() {
                format!("{v}")
            } else {
                String::new()
            }
        };
        let mut s = String::with_capacity(256);
        let _ = write!(
            s,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.schema_version,
            self.experiment,
            self.traffic,
            self.candidate,
            self.cell,
            fingerprint::to_hex(self.fingerprint),
            self.family,
            self.vcs,
            self.depth,
            self.buffering,
            self.radix,
            self.topology,
            self.node,
            f(self.rate),
            f(self.avg_latency),
            f(self.total_power_w),
            f(self.throughput),
            self.outcome,
            self.cell_outcome,
            self.on_frontier,
            self.round,
        );
        s
    }
}

fn push_key(s: &mut String, key: &str) {
    s.push('"');
    s.push_str(key);
    s.push_str("\":");
}

fn push_num<N: std::fmt::Display>(s: &mut String, key: &str, v: N) {
    push_key(s, key);
    let _ = write!(s, "{v},");
}

fn push_f64(s: &mut String, key: &str, v: f64) {
    push_key(s, key);
    if v.is_finite() {
        let _ = write!(s, "{v},");
    } else {
        s.push_str("null,");
    }
}

fn push_bool(s: &mut String, key: &str, v: bool) {
    push_key(s, key);
    s.push_str(if v { "true," } else { "false," });
}

fn push_str(s: &mut String, key: &str, v: &str) {
    push_key(s, key);
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\t' => s.push_str("\\t"),
            '\r' => s.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push_str("\",");
}

/// Paths of the four files one run writes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreArtifacts {
    /// Frontier rows, JSONL.
    pub frontier_jsonl: PathBuf,
    /// Frontier rows, CSV.
    pub frontier_csv: PathBuf,
    /// Dominated rows, JSONL.
    pub dominated_jsonl: PathBuf,
    /// Dominated rows, CSV.
    pub dominated_csv: PathBuf,
}

fn to_jsonl<'a>(points: impl Iterator<Item = &'a PointRecord>) -> Vec<u8> {
    let mut out = String::new();
    for p in points {
        out.push_str(&p.to_json_line());
        out.push('\n');
    }
    out.into_bytes()
}

fn to_csv<'a>(points: impl Iterator<Item = &'a PointRecord>) -> Vec<u8> {
    let mut out = String::from(PointRecord::csv_header());
    out.push('\n');
    for p in points {
        out.push_str(&p.to_csv_row());
        out.push('\n');
    }
    out.into_bytes()
}

/// Writes the four artifact files for `points` (already sorted by
/// [`PointRecord::sort_for_artifacts`]) under `dir`, creating it if
/// needed. Each file is written atomically.
///
/// # Errors
///
/// Propagates directory-creation and file-write errors.
pub fn write_explore_artifacts(
    dir: &Path,
    name: &str,
    points: &[PointRecord],
) -> io::Result<ExploreArtifacts> {
    std::fs::create_dir_all(dir)?;
    let frontier: Vec<&PointRecord> = points.iter().filter(|p| p.on_frontier).collect();
    let dominated: Vec<&PointRecord> = points.iter().filter(|p| !p.on_frontier).collect();
    let paths = ExploreArtifacts {
        frontier_jsonl: dir.join(format!("{name}.frontier.jsonl")),
        frontier_csv: dir.join(format!("{name}.frontier.csv")),
        dominated_jsonl: dir.join(format!("{name}.dominated.jsonl")),
        dominated_csv: dir.join(format!("{name}.dominated.csv")),
    };
    write_atomic(&paths.frontier_jsonl, &to_jsonl(frontier.iter().copied()))?;
    write_atomic(&paths.frontier_csv, &to_csv(frontier.iter().copied()))?;
    write_atomic(&paths.dominated_jsonl, &to_jsonl(dominated.iter().copied()))?;
    write_atomic(&paths.dominated_csv, &to_csv(dominated.iter().copied()))?;
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(on_frontier: bool, latency: f64) -> PointRecord {
        PointRecord {
            schema_version: EXPLORE_SCHEMA_VERSION,
            experiment: "t".into(),
            traffic: "uniform".into(),
            candidate: "vc64".into(),
            cell: "vc64/uniform/r0.050000/s0000000001/fc-flit-level/vd-unrestricted/pl005".into(),
            fingerprint: 0xdead_beef,
            family: "vc".into(),
            vcs: 8,
            depth: 8,
            buffering: 64,
            radix: 4,
            topology: "torus".into(),
            node: "0.1um".into(),
            rate: 0.05,
            avg_latency: latency,
            total_power_w: 1.25,
            throughput: 0.4,
            outcome: "completed".into(),
            cell_outcome: "ok".into(),
            on_frontier,
            round: 1,
        }
    }

    #[test]
    fn json_line_shape() {
        let line = sample(true, 12.5).to_json_line();
        assert!(line.starts_with("{\"schema_version\":1,"));
        assert!(line.contains("\"candidate\":\"vc64\""));
        assert!(line.contains("\"fingerprint\":\"00000000deadbeef\""));
        assert!(line.contains("\"on_frontier\":true"));
        assert!(line.ends_with('}'));
        // NaN latency -> null.
        let crashed = sample(false, f64::NAN).to_json_line();
        assert!(crashed.contains("\"avg_latency\":null"), "{crashed}");
    }

    #[test]
    fn csv_columns_match_header() {
        let header_cols = PointRecord::csv_header().split(',').count();
        let row_cols = sample(true, 12.5).to_csv_row().split(',').count();
        assert_eq!(header_cols, row_cols);
        assert_eq!(header_cols, 21);
    }

    #[test]
    fn sort_is_total_with_nans_last() {
        let mut points = vec![
            sample(false, f64::NAN),
            sample(true, 20.0),
            sample(true, 10.0),
        ];
        PointRecord::sort_for_artifacts(&mut points);
        assert_eq!(points[0].avg_latency, 10.0);
        assert_eq!(points[1].avg_latency, 20.0);
        assert!(points[2].avg_latency.is_nan());
    }

    #[test]
    fn artifacts_round_trip_to_disk() {
        let dir = std::env::temp_dir().join(format!("orion-explore-art-{}", std::process::id()));
        let points = vec![sample(true, 10.0), sample(false, 20.0)];
        let paths = write_explore_artifacts(&dir, "t", &points).unwrap();
        let frontier = std::fs::read_to_string(&paths.frontier_jsonl).unwrap();
        assert_eq!(frontier.lines().count(), 1);
        let dominated = std::fs::read_to_string(&paths.dominated_csv).unwrap();
        assert_eq!(dominated.lines().count(), 2, "header + one row");
        std::fs::remove_dir_all(&dir).ok();
    }
}
