//! The exploration engine: a budgeted loop of
//! `strategy → lower → evaluate → frontier update`, deterministic
//! under parallelism and resumable through the orion-exp result cache.
//!
//! Every candidate lowers to one [`Cell`] per traffic pattern and runs
//! through a shared [`CellRunner`], so memory caching, on-disk
//! content-addressed caching, in-flight dedup and supervised retry all
//! apply unchanged — an explore-evaluated cell is indistinguishable
//! from (and deduplicates against) a grid-run cell. Batches evaluate
//! via [`orion_core::exec::par_map`], which returns results in input
//! order, and frontier updates walk that order sequentially, so N
//! worker threads produce bit-identical frontiers to one.

use std::collections::BTreeMap;
use std::io;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use orion_core::exec::par_map;
use orion_exp::frontier::{Objectives, ParetoFront};
use orion_exp::runner::{CellRunner, RunnerStats, Supervision};
use orion_exp::spec::{preset_config, Cell, TrafficKind};
use orion_exp::CellRecord;
use orion_obs::{MetricsRegistry, MetricsSnapshot};

use crate::artifact::PointRecord;
use crate::spec::{Candidate, ExploreSpec, Strategy};
use crate::strategy::{Evaluated, Evolutionary, GridRefine, SearchStrategy, SearchView};

/// Knobs of one exploration run.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Worker threads for batch evaluation (0 or 1 = inline).
    pub threads: usize,
    /// Cache directory; `None` disables on-disk caching (the in-memory
    /// layer still dedups within the run).
    pub cache_dir: Option<PathBuf>,
    /// Emit a live progress line to stderr.
    pub progress: bool,
    /// Extra attempts granted to a panicking cell.
    pub max_retries: u32,
    /// Wall-clock budget per cell attempt.
    pub cell_timeout: Option<Duration>,
    /// Overrides the spec's search seed when set (`--seed`).
    pub seed: Option<u64>,
    /// Overrides the spec's evaluation budget when set (`--budget`).
    pub budget: Option<usize>,
    /// Persist a mid-run checkpoint of each evaluating cell every this
    /// many cycles (0 = off; requires a cache directory). Long
    /// candidate evaluations then survive a kill mid-cell: the next
    /// search over the same cache resumes from the last interval.
    pub checkpoint_every: u64,
    /// Shards per cell engine (`orion-shard`; 0 or 1 = monolithic).
    /// Bit-identical results at every count — outside every
    /// fingerprint, so caches are shard-agnostic.
    pub shards: usize,
}

impl Default for ExploreOptions {
    fn default() -> ExploreOptions {
        ExploreOptions {
            threads: 1,
            cache_dir: None,
            progress: false,
            max_retries: 0,
            cell_timeout: None,
            seed: None,
            budget: None,
            checkpoint_every: 0,
            shards: 0,
        }
    }
}

/// Accounting for one exploration run.
#[derive(Debug, Clone)]
pub struct ExploreSummary {
    /// Strategy that drove the search.
    pub strategy: &'static str,
    /// Effective evaluation budget.
    pub budget: usize,
    /// Effective search seed.
    pub seed: u64,
    /// Distinct candidates evaluated (≤ budget).
    pub evaluations: usize,
    /// Cells requested (evaluations × traffic patterns).
    pub cells: usize,
    /// Search rounds (generations) completed.
    pub rounds: usize,
    /// Frontier size per traffic pattern, in spec traffic order.
    pub frontier_sizes: Vec<(&'static str, usize)>,
    /// Evaluated points currently dominated (all traffic combined).
    pub dominated: usize,
    /// Runner accounting: cache hits, executions, dedup, quarantine.
    pub stats: RunnerStats,
    /// First cache-append error, if the sink broke mid-run.
    pub append_error: Option<String>,
    /// Wall-clock time of the whole search.
    pub elapsed: Duration,
}

impl ExploreSummary {
    /// Whether any cell was quarantined or the cache sink broke —
    /// results are usable but incomplete/unreplayable.
    pub fn is_degraded(&self) -> bool {
        self.stats.crashed > 0
            || self.stats.timed_out > 0
            || self.stats.failed > 0
            || self.stats.append_failures > 0
    }

    /// Total frontier members across traffic patterns.
    pub fn frontier_total(&self) -> usize {
        self.frontier_sizes.iter().map(|(_, n)| n).sum()
    }
}

/// Everything an exploration run produces.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// One row per (candidate, traffic), frontier-flagged and sorted
    /// for deterministic serialisation.
    pub points: Vec<PointRecord>,
    /// Final Pareto frontier per traffic pattern.
    pub frontiers: BTreeMap<&'static str, ParetoFront>,
    /// Accounting.
    pub summary: ExploreSummary,
    /// Search-progress metrics (`explore_*`), snapshot at completion.
    pub metrics: MetricsSnapshot,
}

fn candidate_cell(spec: &ExploreSpec, name: &str, traffic: TrafficKind) -> Cell {
    let base = preset_config(name).expect("candidate names come from the design codec");
    Cell {
        preset: name.to_string(),
        traffic,
        rate: spec.rate,
        seed: spec.workload_seed,
        flow_control: base.flow_control,
        vc_discipline: base.vc_discipline,
        packet_len: base.packet_len,
        measure: spec.measure,
    }
}

fn objectives(record: &CellRecord) -> Objectives {
    Objectives {
        latency: record.avg_latency,
        power: record.total_power_w,
    }
}

/// Per-traffic frontier-size gauge keys (static, for the registry).
fn frontier_gauge_key(traffic: TrafficKind) -> &'static str {
    match traffic {
        TrafficKind::Uniform => "explore_frontier_size_uniform",
        TrafficKind::Transpose => "explore_frontier_size_transpose",
        TrafficKind::BitComplement => "explore_frontier_size_bit_complement",
        TrafficKind::Tornado => "explore_frontier_size_tornado",
        TrafficKind::Shuffle => "explore_frontier_size_shuffle",
        TrafficKind::BitReversal => "explore_frontier_size_bit_reversal",
        // TrafficKind is non_exhaustive; new kinds need a key here
        // before the explorer can gauge them.
        _ => "explore_frontier_size_other",
    }
}

/// Runs a budgeted search to completion.
///
/// # Errors
///
/// Propagates cache I/O errors: a cache directory that cannot be
/// opened/locked, or a flush failure at the end. Evaluation failures
/// (panics, timeouts, rejected configurations) never error — they are
/// quarantined records with non-finite objectives, excluded from
/// frontiers.
pub fn run_explore(spec: &ExploreSpec, opts: &ExploreOptions) -> io::Result<ExploreReport> {
    let start = Instant::now();
    let budget = opts.budget.unwrap_or(spec.budget);
    let seed = opts.seed.unwrap_or(spec.seed);
    let mut strategy: Box<dyn SearchStrategy> = match spec.strategy {
        Strategy::GridRefine => Box::new(GridRefine),
        Strategy::Evolutionary => {
            Box::new(Evolutionary::new(spec.population, spec.offspring, seed))
        }
    };

    let runner = CellRunner::open(opts.cache_dir.as_deref())?;
    let supervision = Supervision {
        max_retries: opts.max_retries,
        cell_timeout: opts.cell_timeout,
        poison: None,
        checkpoint_every: opts.checkpoint_every,
        shards: opts.shards,
    };

    let mut metrics = MetricsRegistry::new();
    let mut evaluated: BTreeMap<String, Evaluated> = BTreeMap::new();
    let mut frontiers: BTreeMap<&'static str, ParetoFront> = spec
        .traffic
        .iter()
        .map(|&t| (t.as_str(), ParetoFront::new()))
        .collect();
    // name -> (candidate, round, per-traffic records), insertion kept
    // in a BTreeMap so artifact rows come out name-sorted.
    type CandidateResult = (Candidate, usize, Vec<(TrafficKind, CellRecord)>);
    let mut results: BTreeMap<String, CandidateResult> = BTreeMap::new();
    let mut rounds = 0usize;

    while evaluated.len() < budget {
        let batch = {
            let view = SearchView {
                space: &spec.space,
                evaluated: &evaluated,
                frontiers: &frontiers,
                round: rounds,
            };
            strategy.next_batch(&view)
        };
        // Dedup against everything evaluated, preserve proposal order,
        // truncate to the remaining budget.
        let mut fresh: Vec<(String, Candidate)> = Vec::new();
        for c in batch {
            let name = c.name(&spec.space);
            if !evaluated.contains_key(&name) && !fresh.iter().any(|(n, _)| *n == name) {
                fresh.push((name, c));
            }
        }
        fresh.truncate(budget - evaluated.len());
        if fresh.is_empty() {
            break; // strategy exhausted the reachable space
        }
        rounds += 1;

        // Lower to cells — one per (candidate, traffic) — and evaluate
        // the whole batch through the shared runner. `par_map` returns
        // results in input order, so everything downstream is
        // deterministic regardless of thread count.
        let cells: Vec<Cell> = fresh
            .iter()
            .flat_map(|(name, _)| spec.traffic.iter().map(|&t| candidate_cell(spec, name, t)))
            .collect();
        let n_cells = cells.len();
        if opts.progress {
            eprintln!(
                "explore round {rounds}: {} candidates, {n_cells} cells ({} evaluated / {budget} budget)",
                fresh.len(),
                evaluated.len(),
            );
        }
        let records: Vec<CellRecord> =
            par_map(opts.threads, cells, |cell| runner.run(&cell, &supervision));

        metrics.inc("explore_generations");
        metrics.add("explore_evaluations", fresh.len() as u64);
        metrics.add("explore_cells", n_cells as u64);

        // Sequential, input-ordered frontier update.
        let per_candidate = spec.traffic.len();
        for ((name, candidate), chunk) in fresh.iter().zip(records.chunks(per_candidate)) {
            let objs: Vec<(&'static str, Objectives)> = spec
                .traffic
                .iter()
                .zip(chunk)
                .map(|(&t, r)| (t.as_str(), objectives(r)))
                .collect();
            for (t, o) in &objs {
                if let Some(front) = frontiers.get_mut(t) {
                    front.insert(name, *o);
                }
            }
            evaluated.insert(
                name.clone(),
                Evaluated {
                    candidate: *candidate,
                    round: rounds,
                    objectives: objs,
                },
            );
            results.insert(
                name.clone(),
                (
                    *candidate,
                    rounds,
                    spec.traffic.iter().copied().zip(chunk.to_vec()).collect(),
                ),
            );
        }
    }

    runner.flush()?;
    let stats = runner.stats();

    // Flatten to artifact rows, flagging final frontier membership.
    let mut points = Vec::with_capacity(results.len() * spec.traffic.len());
    for (name, (candidate, round, records)) in &results {
        let design = candidate.design(&spec.space);
        for (traffic, record) in records {
            let on_frontier = frontiers
                .get(traffic.as_str())
                .is_some_and(|f| f.contains(name));
            points.push(PointRecord::new(
                spec,
                name,
                &design,
                *traffic,
                record,
                on_frontier,
                *round,
            ));
        }
    }
    PointRecord::sort_for_artifacts(&mut points);

    let frontier_sizes: Vec<(&'static str, usize)> = spec
        .traffic
        .iter()
        .map(|&t| (t.as_str(), frontiers[t.as_str()].len()))
        .collect();
    let dominated = points.iter().filter(|p| !p.on_frontier).count();

    metrics.add("explore_cache_hits", stats.cache_hits);
    metrics.add("explore_executed", stats.executed);
    metrics.add("explore_deduped", stats.deduped);
    metrics.add("explore_crashed", stats.crashed);
    metrics.add("explore_timed_out", stats.timed_out);
    metrics.add("explore_failed", stats.failed);
    metrics.add("explore_retried", stats.retried);
    metrics.set_gauge("explore_budget", budget as f64);
    metrics.set_gauge("explore_frontier_size", {
        let total: usize = frontier_sizes.iter().map(|(_, n)| n).sum();
        total as f64
    });
    metrics.set_gauge("explore_dominated", dominated as f64);
    for &t in &spec.traffic {
        metrics.set_gauge(frontier_gauge_key(t), frontiers[t.as_str()].len() as f64);
    }

    let summary = ExploreSummary {
        strategy: strategy.name(),
        budget,
        seed,
        evaluations: evaluated.len(),
        cells: evaluated.len() * spec.traffic.len(),
        rounds,
        frontier_sizes,
        dominated,
        stats,
        append_error: runner.append_error(),
        elapsed: start.elapsed(),
    };

    Ok(ExploreReport {
        points,
        frontiers,
        summary,
        metrics: metrics.snapshot(),
    })
}
