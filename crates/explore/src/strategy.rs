//! Deterministic search strategies over the design [`Space`].
//!
//! Both strategies are pure functions of `(spec, previous results)`:
//! no wall clock, no thread identity, no global RNG. The engine feeds
//! them a [`SearchView`] of everything evaluated so far and they
//! propose the next batch of candidates; proposals already evaluated
//! are filtered (and not charged against the budget), so a resumed or
//! re-run search replays exactly the same trajectory from the cache.

use std::collections::BTreeMap;

use orion_exp::fingerprint::splitmix64;
use orion_exp::frontier::{Objectives, ParetoFront};

use crate::spec::{Candidate, Space, DIMS};

/// Everything a strategy may condition on.
pub struct SearchView<'a> {
    /// The design space searched.
    pub space: &'a Space,
    /// Results so far, keyed by canonical candidate name (sorted, so
    /// iteration order is deterministic).
    pub evaluated: &'a BTreeMap<String, Evaluated>,
    /// Current Pareto frontier per traffic pattern name.
    pub frontiers: &'a BTreeMap<&'static str, ParetoFront>,
    /// Completed search rounds (generations).
    pub round: usize,
}

/// One evaluated candidate as the strategies see it.
#[derive(Debug, Clone)]
pub struct Evaluated {
    /// The index vector that produced it (first one seen, if several
    /// collapse to the same canonical name).
    pub candidate: Candidate,
    /// 1-based round in which it was evaluated.
    pub round: usize,
    /// Per-traffic objectives, in spec traffic order. Non-finite
    /// entries mark failed/crashed cells.
    pub objectives: Vec<(&'static str, Objectives)>,
}

impl Evaluated {
    /// Whether every traffic pattern produced finite objectives.
    pub fn is_comparable(&self) -> bool {
        self.objectives.iter().all(|(_, o)| o.is_finite())
    }

    /// Multi-traffic Pareto dominance: at least as good on every
    /// objective of every traffic pattern, strictly better somewhere.
    pub fn dominates(&self, other: &Evaluated) -> bool {
        if !self.is_comparable() || !other.is_comparable() {
            return false;
        }
        let mut strictly = false;
        for ((_, a), (_, b)) in self.objectives.iter().zip(&other.objectives) {
            if a.latency > b.latency || a.power > b.power {
                return false;
            }
            if a.latency < b.latency || a.power < b.power {
                strictly = true;
            }
        }
        strictly
    }
}

/// A deterministic candidate-proposal policy.
pub trait SearchStrategy {
    /// The strategy's stable name (matches the spec token).
    fn name(&self) -> &'static str;

    /// Proposes the next batch of candidates. May repeat evaluated or
    /// in-batch names — the engine deduplicates — but must eventually
    /// return a batch with nothing new to signal exhaustion.
    fn next_batch(&mut self, view: &SearchView<'_>) -> Vec<Candidate>;
}

/// Pushes `c` if its canonical name is new to `batch`.
fn push_unique(batch: &mut Vec<Candidate>, seen: &mut Vec<String>, space: &Space, c: Candidate) {
    let name = c.name(space);
    if !seen.contains(&name) {
        seen.push(name);
        batch.push(c);
    }
}

/// Exhaustive adaptive grid refinement.
///
/// Round 0 seeds the corners and midpoint of every axis (a coarse
/// cartesian sweep). Every later round looks at each frontier member
/// and, for each numeric dimension, proposes its immediate index
/// neighbours plus the index-interval midpoints towards both axis ends
/// — bisecting the space around the current knees until no proposal is
/// new or the budget runs out.
#[derive(Debug, Default)]
pub struct GridRefine;

/// The numeric (ordered) dimensions refinement subdivides: vcs, depth,
/// radix, node. Family and topology are categorical and fully
/// enumerated in round 0.
const NUMERIC_DIMS: [usize; 4] = [1, 2, 3, 5];

impl SearchStrategy for GridRefine {
    fn name(&self) -> &'static str {
        "grid-refine"
    }

    fn next_batch(&mut self, view: &SearchView<'_>) -> Vec<Candidate> {
        let space = view.space;
        let mut batch = Vec::new();
        let mut seen = Vec::new();
        if view.evaluated.is_empty() {
            // Coarse seed: all categorical combinations × per-axis
            // {first, middle, last} corners.
            let corners = |len: usize| -> Vec<usize> {
                let mut c = vec![0, len / 2, len.saturating_sub(1)];
                c.dedup();
                c.sort_unstable();
                c.dedup();
                c
            };
            for f in 0..space.families.len() {
                for t in 0..space.topologies.len() {
                    for &v in &corners(space.vcs.len()) {
                        for &d in &corners(space.depths.len()) {
                            for &r in &corners(space.radices.len()) {
                                for &n in &corners(space.nodes.len()) {
                                    push_unique(
                                        &mut batch,
                                        &mut seen,
                                        space,
                                        Candidate {
                                            ix: [f, v, d, r, t, n],
                                        },
                                    );
                                }
                            }
                        }
                    }
                }
            }
            return batch;
        }
        // Refinement: subdivide around every frontier member.
        for front in view.frontiers.values() {
            for member in front.members() {
                let Some(eval) = view.evaluated.get(&member.label) else {
                    continue;
                };
                let base = eval.candidate;
                for &d in &NUMERIC_DIMS {
                    let len = space.axis_len(d);
                    if len < 2 {
                        continue;
                    }
                    let i = base.ix[d];
                    let proposals = [
                        i.saturating_sub(1),
                        (i + 1).min(len - 1),
                        i / 2,
                        (i + len - 1) / 2,
                    ];
                    for p in proposals {
                        if p == i {
                            continue;
                        }
                        let mut c = base;
                        c.ix[d] = p;
                        push_unique(&mut batch, &mut seen, space, c);
                    }
                }
            }
        }
        batch
    }
}

/// A sequential splitmix64 stream: `next()` advances an internal word
/// by the golden-ratio increment and finalises it. Deterministic and
/// platform-independent.
#[derive(Debug, Clone)]
pub struct SplitMixStream {
    state: u64,
}

impl SplitMixStream {
    /// A stream whose whole output sequence is a function of `seed`.
    pub fn new(seed: u64) -> SplitMixStream {
        SplitMixStream { state: seed }
    }

    /// The next 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix64(self.state)
    }

    /// A uniform index in `[0, n)`; `n` must be non-zero.
    pub fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Seedable (μ+λ) evolutionary search.
///
/// Each generation derives its own RNG stream from
/// `splitmix64(seed ^ generation)`, so the trajectory is a pure
/// function of `(seed, results)` — independent of thread count, wall
/// clock and resume boundaries. Selection ranks all evaluated
/// candidates by multi-traffic domination count (μ best survive as
/// parents, ties broken by name); each of the λ offspring mutates a
/// uniformly chosen parent along one dimension — a ±1 step or a
/// uniform resample — retrying a bounded number of times to land on an
/// unevaluated canonical name.
#[derive(Debug)]
pub struct Evolutionary {
    /// μ: parents kept per generation.
    pub population: usize,
    /// λ: offspring proposed per generation.
    pub offspring: usize,
    /// Search seed.
    pub seed: u64,
    generation: u64,
}

impl Evolutionary {
    /// A fresh loop at generation 0.
    pub fn new(population: usize, offspring: usize, seed: u64) -> Evolutionary {
        Evolutionary {
            population: population.max(1),
            offspring: offspring.max(1),
            seed,
            generation: 0,
        }
    }

    fn random_candidate(space: &Space, rng: &mut SplitMixStream) -> Candidate {
        let mut ix = [0usize; DIMS];
        for (d, slot) in ix.iter_mut().enumerate() {
            *slot = rng.index(space.axis_len(d).max(1));
        }
        Candidate { ix }
    }

    fn mutate(space: &Space, parent: Candidate, rng: &mut SplitMixStream) -> Candidate {
        let mutable: Vec<usize> = (0..DIMS).filter(|&d| space.axis_len(d) > 1).collect();
        if mutable.is_empty() {
            return parent;
        }
        let d = mutable[rng.index(mutable.len())];
        let len = space.axis_len(d);
        let mut c = parent;
        if rng.next_u64() & 1 == 0 {
            // Local step.
            let up = rng.next_u64() & 1 == 0;
            c.ix[d] = if up {
                (c.ix[d] + 1).min(len - 1)
            } else {
                c.ix[d].saturating_sub(1)
            };
        } else {
            // Uniform resample.
            c.ix[d] = rng.index(len);
        }
        c
    }
}

impl SearchStrategy for Evolutionary {
    fn name(&self) -> &'static str {
        "evolutionary"
    }

    fn next_batch(&mut self, view: &SearchView<'_>) -> Vec<Candidate> {
        let space = view.space;
        self.generation += 1;
        let mut rng = SplitMixStream::new(splitmix64(self.seed ^ self.generation));
        let mut batch = Vec::new();
        let mut seen = Vec::new();

        if view.evaluated.is_empty() {
            // Generation 1: a random initial population of λ.
            let mut attempts = 0;
            while batch.len() < self.offspring && attempts < self.offspring * 16 {
                attempts += 1;
                let c = Self::random_candidate(space, &mut rng);
                push_unique(&mut batch, &mut seen, space, c);
            }
            return batch;
        }

        // Selection: μ least-dominated comparable candidates (by
        // (domination count, name) — both deterministic).
        let mut ranked: Vec<(usize, &String, &Evaluated)> = view
            .evaluated
            .iter()
            .map(|(name, e)| {
                let rank = if e.is_comparable() {
                    view.evaluated
                        .values()
                        .filter(|other| other.dominates(e))
                        .count()
                } else {
                    usize::MAX
                };
                (rank, name, e)
            })
            .collect();
        ranked.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(b.1)));
        let parents: Vec<Candidate> = ranked
            .iter()
            .take(self.population)
            .map(|(_, _, e)| e.candidate)
            .collect();

        for _ in 0..self.offspring {
            // Bounded retries to find an unevaluated name; give up and
            // move on if the neighbourhood is exhausted.
            for _attempt in 0..16 {
                let parent = parents[rng.index(parents.len())];
                let child = Self::mutate(space, parent, &mut rng);
                let name = child.name(space);
                if !view.evaluated.contains_key(&name) && !seen.contains(&name) {
                    seen.push(name);
                    batch.push(child);
                    break;
                }
            }
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ExploreSpec;

    fn space() -> Space {
        ExploreSpec::parse(
            "[experiment]\nname = \"t\"\n[explore]\nbudget = 64\n\
             [space]\nfamilies = [\"wh\", \"vc\"]\nvcs = [2, 4, 8]\ndepths = [4, 8, 16]\n",
        )
        .unwrap()
        .space
    }

    fn view<'a>(
        space: &'a Space,
        evaluated: &'a BTreeMap<String, Evaluated>,
        frontiers: &'a BTreeMap<&'static str, ParetoFront>,
        round: usize,
    ) -> SearchView<'a> {
        SearchView {
            space,
            evaluated,
            frontiers,
            round,
        }
    }

    #[test]
    fn grid_refine_seeds_corners_once() {
        let space = space();
        let evaluated = BTreeMap::new();
        let frontiers = BTreeMap::new();
        let mut s = GridRefine;
        let batch = s.next_batch(&view(&space, &evaluated, &frontiers, 0));
        assert!(!batch.is_empty());
        // Batch is name-unique by construction.
        let mut names: Vec<String> = batch.iter().map(|c| c.name(&space)).collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
        // Identical view -> identical batch (pure function).
        let again = GridRefine.next_batch(&view(&space, &evaluated, &frontiers, 0));
        assert_eq!(batch, again);
    }

    #[test]
    fn grid_refine_subdivides_around_frontier() {
        let space = space();
        let mut evaluated = BTreeMap::new();
        let mut frontiers = BTreeMap::new();
        let member = Candidate {
            ix: [1, 2, 2, 0, 0, 0],
        }; // vc8x16 = vc128
        let name = member.name(&space);
        assert_eq!(name, "vc128");
        evaluated.insert(
            name.clone(),
            Evaluated {
                candidate: member,
                round: 1,
                objectives: vec![(
                    "uniform",
                    Objectives {
                        latency: 10.0,
                        power: 1.0,
                    },
                )],
            },
        );
        let mut front = ParetoFront::new();
        front.insert(
            &name,
            Objectives {
                latency: 10.0,
                power: 1.0,
            },
        );
        frontiers.insert("uniform", front);
        let batch = GridRefine.next_batch(&view(&space, &evaluated, &frontiers, 1));
        // Neighbours of (vcs=8, depth=16) along both numeric axes.
        let names: Vec<String> = batch.iter().map(|c| c.name(&space)).collect();
        assert!(names.contains(&"vc4x16".to_string()), "{names:?}");
        assert!(
            names.contains(&"vc64".to_string()),
            "vc8x8 canonicalises: {names:?}"
        );
    }

    #[test]
    fn evolutionary_is_seed_deterministic_and_seed_sensitive() {
        let space = space();
        let evaluated = BTreeMap::new();
        let frontiers = BTreeMap::new();
        let b1 = Evolutionary::new(2, 6, 42).next_batch(&view(&space, &evaluated, &frontiers, 0));
        let b2 = Evolutionary::new(2, 6, 42).next_batch(&view(&space, &evaluated, &frontiers, 0));
        assert_eq!(b1, b2, "same seed, same generation 1");
        let b3 = Evolutionary::new(2, 6, 43).next_batch(&view(&space, &evaluated, &frontiers, 0));
        assert_ne!(b1, b3, "different seed explores differently");
    }

    #[test]
    fn evolutionary_avoids_reproposing_evaluated_names() {
        let space = space();
        let mut s = Evolutionary::new(2, 4, 7);
        let empty_eval = BTreeMap::new();
        let empty_front = BTreeMap::new();
        let first = s.next_batch(&view(&space, &empty_eval, &empty_front, 0));
        let mut evaluated = BTreeMap::new();
        for (i, c) in first.iter().enumerate() {
            evaluated.insert(
                c.name(&space),
                Evaluated {
                    candidate: *c,
                    round: 1,
                    objectives: vec![(
                        "uniform",
                        Objectives {
                            latency: 10.0 + i as f64,
                            power: 1.0,
                        },
                    )],
                },
            );
        }
        let second = s.next_batch(&view(&space, &evaluated, &empty_front, 1));
        for c in &second {
            assert!(
                !evaluated.contains_key(&c.name(&space)),
                "offspring must be new: {}",
                c.name(&space)
            );
        }
    }

    #[test]
    fn domination_ranking_is_multi_traffic() {
        let c = Candidate { ix: [0; DIMS] };
        let a = Evaluated {
            candidate: c,
            round: 1,
            objectives: vec![
                (
                    "uniform",
                    Objectives {
                        latency: 1.0,
                        power: 1.0,
                    },
                ),
                (
                    "tornado",
                    Objectives {
                        latency: 5.0,
                        power: 1.0,
                    },
                ),
            ],
        };
        let b = Evaluated {
            candidate: c,
            round: 1,
            objectives: vec![
                (
                    "uniform",
                    Objectives {
                        latency: 2.0,
                        power: 2.0,
                    },
                ),
                (
                    "tornado",
                    Objectives {
                        latency: 4.0,
                        power: 2.0,
                    },
                ),
            ],
        };
        assert!(!a.dominates(&b), "b is better on tornado latency");
        assert!(!b.dominates(&a));
        let worse = Evaluated {
            candidate: c,
            round: 1,
            objectives: vec![
                (
                    "uniform",
                    Objectives {
                        latency: 2.0,
                        power: 1.0,
                    },
                ),
                (
                    "tornado",
                    Objectives {
                        latency: 5.0,
                        power: 1.0,
                    },
                ),
            ],
        };
        assert!(a.dominates(&worse));
        let nan = Evaluated {
            candidate: c,
            round: 1,
            objectives: vec![
                (
                    "uniform",
                    Objectives {
                        latency: f64::NAN,
                        power: 1.0,
                    },
                ),
                (
                    "tornado",
                    Objectives {
                        latency: 1.0,
                        power: 1.0,
                    },
                ),
            ],
        };
        assert!(!nan.dominates(&a) && !a.dominates(&nan) || a.dominates(&nan));
        assert!(!nan.is_comparable());
    }

    #[test]
    fn grid_refine_exhausts_small_space() {
        // With a single-point space the refiner proposes the one
        // candidate and then nothing new.
        let spec = ExploreSpec::parse(
            "[experiment]\nname = \"t\"\n[explore]\nbudget = 8\n\
             [space]\nfamilies = [\"cb\"]\nvcs = [1]\ndepths = [64]\n",
        )
        .unwrap();
        let mut s = GridRefine;
        let empty_eval = BTreeMap::new();
        let empty_front = BTreeMap::new();
        let batch = s.next_batch(&view(&spec.space, &empty_eval, &empty_front, 0));
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].name(&spec.space), "cb");
    }
}
