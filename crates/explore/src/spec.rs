//! Exploration specs: the `[explore]` and `[space]` TOML sections that
//! describe a budgeted search over the design space.
//!
//! ```toml
//! [experiment]
//! name = "pareto-sweep"
//!
//! [measure]
//! warmup = 1000
//! sample_packets = 10000
//!
//! [explore]
//! strategy = "grid-refine"       # or "evolutionary"
//! budget = 48                    # max distinct candidates evaluated
//! seed = 1                       # search seed (strategy RNG)
//! rate = 0.05                    # operating injection rate
//! traffic = ["uniform"]
//!
//! [space]
//! families = ["wh", "vc"]        # wh|vc|xb|cb
//! vcs = [2, 4, 8]
//! depths = [4, 8, 16]
//! radix = [4]
//! topology = ["torus"]           # torus|mesh
//! nodes = ["0.1um"]              # 0.8um|0.35um|0.25um|0.18um|0.13um|0.1um|70nm
//! ```
//!
//! Validation reuses the typed [`SpecError`] diagnostics of
//! `orion-exp`; everything is line-numbered and nothing panics on
//! malformed input (including non-UTF-8 bytes).

use std::collections::BTreeSet;

use orion_exp::design::{DesignPoint, RouterFamily};
use orion_exp::spec::{MeasureSpec, SpecError, TrafficKind};
use orion_exp::toml::{self, Document, Value};
use orion_net::TopologyKind;
use orion_tech::ProcessNode;

/// The search strategies the explorer implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Exhaustive adaptive grid refinement: start from the corners and
    /// midpoints of every axis, then subdivide index intervals around
    /// the current frontier members until the budget is spent or the
    /// neighbourhood is exhausted.
    GridRefine,
    /// Seedable (μ+λ) evolutionary search with a splitmix64-derived
    /// RNG stream per generation.
    Evolutionary,
}

impl Strategy {
    /// Stable spec name of the strategy.
    pub fn as_str(self) -> &'static str {
        match self {
            Strategy::GridRefine => "grid-refine",
            Strategy::Evolutionary => "evolutionary",
        }
    }

    /// Parses a strategy name; `None` for unknown names.
    pub fn parse(name: &str) -> Option<Strategy> {
        match name {
            "grid-refine" => Some(Strategy::GridRefine),
            "evolutionary" => Some(Strategy::Evolutionary),
            _ => None,
        }
    }
}

/// The design space: one sorted, deduplicated value list per dimension.
///
/// Numeric axes are ascending so that "subdivide the index interval"
/// has its geometric meaning; process nodes are ordered oldest (largest
/// feature) first.
#[derive(Debug, Clone, PartialEq)]
pub struct Space {
    /// Router families (declaration order, deduplicated).
    pub families: Vec<RouterFamily>,
    /// Virtual channels per port.
    pub vcs: Vec<u32>,
    /// Flit depth per VC.
    pub depths: Vec<u32>,
    /// Per-dimension radix of the k×k network.
    pub radices: Vec<u32>,
    /// Topology kinds (declaration order, deduplicated).
    pub topologies: Vec<TopologyKind>,
    /// Process nodes.
    pub nodes: Vec<ProcessNode>,
}

/// The number of searchable dimensions of a [`Space`].
pub const DIMS: usize = 6;

impl Space {
    /// Length of dimension `d` (0 = family, 1 = vcs, 2 = depth,
    /// 3 = radix, 4 = topology, 5 = node).
    pub fn axis_len(&self, d: usize) -> usize {
        match d {
            0 => self.families.len(),
            1 => self.vcs.len(),
            2 => self.depths.len(),
            3 => self.radices.len(),
            4 => self.topologies.len(),
            5 => self.nodes.len(),
            _ => 0,
        }
    }

    /// Upper bound on distinct candidates (before canonical-name
    /// collapse of equivalent `wh`/`cb` buffer factorisations).
    pub fn size(&self) -> usize {
        (0..DIMS).map(|d| self.axis_len(d).max(1)).product()
    }
}

/// One candidate: an index into each dimension of the [`Space`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Candidate {
    /// Per-dimension indices (see [`Space::axis_len`] for the order).
    pub ix: [usize; DIMS],
}

impl Candidate {
    /// Lowers the candidate to a concrete design point.
    pub fn design(&self, space: &Space) -> DesignPoint {
        DesignPoint {
            family: space.families[self.ix[0]],
            vcs: space.vcs[self.ix[1]],
            depth: space.depths[self.ix[2]],
            radix: space.radices[self.ix[3]],
            mesh: space.topologies[self.ix[4]] == TopologyKind::Mesh,
            node: space.nodes[self.ix[5]],
        }
    }

    /// The candidate's canonical design-point name: its identity for
    /// deduplication, frontier membership and artifacts. Distinct index
    /// vectors can share a name (`wh` at 2 VCs × 8 flits and 4 VCs × 4
    /// flits are both `wh16`), and then count as one evaluation.
    pub fn name(&self, space: &Space) -> String {
        self.design(space).name()
    }
}

/// A validated exploration spec.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreSpec {
    /// Experiment name: the artifact file stem.
    pub name: String,
    /// Free-form description.
    pub description: String,
    /// Measurement discipline applied to every evaluated cell.
    pub measure: MeasureSpec,
    /// Search strategy.
    pub strategy: Strategy,
    /// Maximum number of distinct candidates to evaluate.
    pub budget: usize,
    /// Search seed: drives strategy RNG, not cell workloads.
    pub seed: u64,
    /// Workload seed given to every evaluated cell (the grid `seeds`
    /// axis value), so explore cells dedup against grid cells.
    pub workload_seed: u64,
    /// Operating injection rate in packets/cycle/node.
    pub rate: f64,
    /// Traffic patterns: one Pareto frontier is kept per entry.
    pub traffic: Vec<TrafficKind>,
    /// μ: parents kept per evolutionary generation.
    pub population: usize,
    /// λ: offspring proposed per evolutionary generation.
    pub offspring: usize,
    /// The design space searched.
    pub space: Space,
}

const SECTIONS: [&str; 5] = ["", "experiment", "measure", "explore", "space"];
const EXPERIMENT_KEYS: [&str; 2] = ["name", "description"];
const MEASURE_KEYS: [&str; 5] = [
    "warmup",
    "sample_packets",
    "max_cycles",
    "watchdog_cycles",
    "audit_every",
];
const EXPLORE_KEYS: [&str; 8] = [
    "strategy",
    "budget",
    "seed",
    "workload_seed",
    "rate",
    "traffic",
    "population",
    "offspring",
];
const SPACE_KEYS: [&str; 6] = ["families", "vcs", "depths", "radix", "topology", "nodes"];

fn wrong_type(
    section: &str,
    key: &str,
    expected: &'static str,
    value: &Value,
    line: usize,
) -> SpecError {
    SpecError::WrongType {
        section: section.to_string(),
        key: key.to_string(),
        expected,
        found: value.kind(),
        line,
    }
}

fn get_str(doc: &Document, section: &str, key: &str) -> Result<Option<(String, usize)>, SpecError> {
    match doc.get(section, key) {
        None => Ok(None),
        Some(e) => match &e.value {
            Value::Str(s) => Ok(Some((s.clone(), e.line))),
            v => Err(wrong_type(section, key, "a string", v, e.line)),
        },
    }
}

fn get_u64(doc: &Document, section: &str, key: &str, default: u64) -> Result<u64, SpecError> {
    match doc.get(section, key) {
        None => Ok(default),
        Some(e) => match &e.value {
            Value::Int(i) if *i >= 0 => Ok(*i as u64),
            v => Err(wrong_type(
                section,
                key,
                "a non-negative integer",
                v,
                e.line,
            )),
        },
    }
}

fn get_pos_usize(
    doc: &Document,
    section: &str,
    key: &str,
    default: usize,
) -> Result<usize, SpecError> {
    match doc.get(section, key) {
        None => Ok(default),
        Some(e) => match &e.value {
            Value::Int(i) if *i > 0 => Ok(*i as usize),
            v => Err(wrong_type(section, key, "a positive integer", v, e.line)),
        },
    }
}

fn get_str_array(
    doc: &Document,
    section: &str,
    key: &'static str,
) -> Result<Option<(Vec<String>, usize)>, SpecError> {
    match doc.get(section, key) {
        None => Ok(None),
        Some(e) => match &e.value {
            Value::Array(items) => {
                let mut out = Vec::new();
                for item in items {
                    match item {
                        Value::Str(s) => out.push(s.clone()),
                        v => {
                            return Err(wrong_type(section, key, "an array of strings", v, e.line))
                        }
                    }
                }
                Ok(Some((out, e.line)))
            }
            v => Err(wrong_type(section, key, "an array of strings", v, e.line)),
        },
    }
}

fn get_int_array(
    doc: &Document,
    section: &str,
    key: &'static str,
) -> Result<Option<(Vec<i64>, usize)>, SpecError> {
    match doc.get(section, key) {
        None => Ok(None),
        Some(e) => match &e.value {
            Value::Array(items) => {
                let mut out = Vec::new();
                for item in items {
                    match item {
                        Value::Int(i) => out.push(*i),
                        v => {
                            return Err(wrong_type(section, key, "an array of integers", v, e.line))
                        }
                    }
                }
                Ok(Some((out, e.line)))
            }
            v => Err(wrong_type(section, key, "an array of integers", v, e.line)),
        },
    }
}

/// A sorted, deduplicated positive-integer axis with a range check.
fn sized_axis(
    doc: &Document,
    key: &'static str,
    default: &[u32],
    max: u32,
    expected: &'static str,
) -> Result<Vec<u32>, SpecError> {
    let (raw, line) = match get_int_array(doc, "space", key)? {
        None => return Ok(default.to_vec()),
        Some(v) => v,
    };
    if raw.is_empty() {
        return Err(SpecError::EmptyAxis { key });
    }
    let mut out = BTreeSet::new();
    for v in raw {
        if v < 1 || v > max as i64 {
            return Err(SpecError::BadDimension {
                key: key.to_string(),
                value: v.to_string(),
                expected,
                line,
            });
        }
        out.insert(v as u32);
    }
    Ok(out.into_iter().collect())
}

fn parse_node(name: &str) -> Option<ProcessNode> {
    match name {
        "0.8um" => Some(ProcessNode::Um800),
        "0.35um" => Some(ProcessNode::Um350),
        "0.25um" => Some(ProcessNode::Um250),
        "0.18um" => Some(ProcessNode::Um180),
        "0.13um" => Some(ProcessNode::Um130),
        "0.1um" | "100nm" => Some(ProcessNode::Nm100),
        "70nm" => Some(ProcessNode::Nm70),
        _ => None,
    }
}

impl ExploreSpec {
    /// Parses and validates a spec from TOML text.
    ///
    /// # Errors
    ///
    /// Returns the first [`SpecError`]: syntax errors with line
    /// numbers, schema violations (unknown sections/keys, wrong types)
    /// and semantic rejections (unknown strategies, non-positive
    /// budgets, out-of-domain dimension values, empty axes).
    pub fn parse(text: &str) -> Result<ExploreSpec, SpecError> {
        let doc = toml::parse(text)?;
        Self::from_document(doc)
    }

    /// Parses and validates a spec from raw bytes; invalid UTF-8 is a
    /// line-numbered [`SpecError::Syntax`], never a panic.
    ///
    /// # Errors
    ///
    /// Everything [`ExploreSpec::parse`] returns, plus a syntax error
    /// for non-UTF-8 input.
    pub fn parse_bytes(bytes: &[u8]) -> Result<ExploreSpec, SpecError> {
        let doc = toml::parse_bytes(bytes)?;
        Self::from_document(doc)
    }

    fn from_document(doc: Document) -> Result<ExploreSpec, SpecError> {
        for (section, entries) in &doc.sections {
            if !SECTIONS.contains(&section.as_str()) {
                return Err(SpecError::UnknownSection {
                    section: section.clone(),
                    line: doc.section_line(section),
                });
            }
            let allowed: &[&str] = match section.as_str() {
                "experiment" => &EXPERIMENT_KEYS,
                "measure" => &MEASURE_KEYS,
                "explore" => &EXPLORE_KEYS,
                "space" => &SPACE_KEYS,
                _ => &[],
            };
            for (key, entry) in entries {
                if !allowed.contains(&key.as_str()) {
                    return Err(SpecError::UnknownKey {
                        section: section.clone(),
                        key: key.clone(),
                        line: entry.line,
                    });
                }
            }
        }

        let (name, _) = get_str(&doc, "experiment", "name")?.ok_or(SpecError::MissingKey {
            section: "experiment".into(),
            key: "name".into(),
        })?;
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(SpecError::BadName { name });
        }
        let description = get_str(&doc, "experiment", "description")?
            .map(|(s, _)| s)
            .unwrap_or_default();

        let defaults = MeasureSpec::default();
        let measure = MeasureSpec {
            warmup: get_u64(&doc, "measure", "warmup", defaults.warmup)?,
            sample_packets: get_u64(&doc, "measure", "sample_packets", defaults.sample_packets)?,
            max_cycles: get_u64(&doc, "measure", "max_cycles", defaults.max_cycles)?,
            watchdog_cycles: get_u64(&doc, "measure", "watchdog_cycles", defaults.watchdog_cycles)?,
            audit_every: get_u64(&doc, "measure", "audit_every", defaults.audit_every)?,
        };

        let strategy = match get_str(&doc, "explore", "strategy")? {
            None => Strategy::GridRefine,
            Some((s, line)) => {
                Strategy::parse(&s).ok_or(SpecError::UnknownStrategy { name: s, line })?
            }
        };

        let budget = match doc.get("explore", "budget") {
            None => {
                return Err(SpecError::MissingKey {
                    section: "explore".into(),
                    key: "budget".into(),
                })
            }
            Some(e) => match &e.value {
                Value::Int(i) if *i > 0 => *i as usize,
                Value::Int(i) => {
                    return Err(SpecError::InvalidBudget {
                        value: *i,
                        line: e.line,
                    })
                }
                v => return Err(wrong_type("explore", "budget", "an integer", v, e.line)),
            },
        };

        let seed = get_u64(&doc, "explore", "seed", 1)?;
        let workload_seed = get_u64(&doc, "explore", "workload_seed", 1)?;

        let rate = match doc.get("explore", "rate") {
            None => 0.05,
            Some(e) => {
                let r = match &e.value {
                    Value::Int(i) => *i as f64,
                    Value::Float(f) => *f,
                    v => return Err(wrong_type("explore", "rate", "a number", v, e.line)),
                };
                if !(0.0..=1.0).contains(&r) {
                    return Err(SpecError::InvalidRate {
                        rate: r,
                        line: e.line,
                    });
                }
                r
            }
        };

        let traffic = match get_str_array(&doc, "explore", "traffic")? {
            None => vec![TrafficKind::Uniform],
            Some((names, line)) => {
                if names.is_empty() {
                    return Err(SpecError::EmptyAxis { key: "traffic" });
                }
                let mut out = Vec::new();
                for n in &names {
                    let kind = TrafficKind::parse(n).ok_or_else(|| SpecError::UnknownTraffic {
                        name: n.clone(),
                        line,
                    })?;
                    if !out.contains(&kind) {
                        out.push(kind);
                    }
                }
                out
            }
        };

        let population = get_pos_usize(&doc, "explore", "population", 4)?;
        let offspring = get_pos_usize(&doc, "explore", "offspring", 8)?;

        let families = {
            let (names, line) =
                get_str_array(&doc, "space", "families")?.ok_or(SpecError::MissingKey {
                    section: "space".into(),
                    key: "families".into(),
                })?;
            if names.is_empty() {
                return Err(SpecError::EmptyAxis { key: "families" });
            }
            let mut out = Vec::new();
            for n in &names {
                let fam = RouterFamily::parse(n).ok_or_else(|| SpecError::BadDimension {
                    key: "families".to_string(),
                    value: n.clone(),
                    expected: "wh|vc|xb|cb",
                    line,
                })?;
                if !out.contains(&fam) {
                    out.push(fam);
                }
            }
            out
        };

        let vcs = sized_axis(&doc, "vcs", &[2, 4, 8], 1024, "an integer in [1, 1024]")?;
        let depths = sized_axis(
            &doc,
            "depths",
            &[4, 8, 16],
            65_536,
            "an integer in [1, 65536]",
        )?;
        let radices = {
            let r = sized_axis(&doc, "radix", &[4], 64, "an integer in [2, 64]")?;
            if let Some(&bad) = r.iter().find(|&&k| k < 2) {
                let line = doc.get("space", "radix").map_or(0, |e| e.line);
                return Err(SpecError::BadDimension {
                    key: "radix".to_string(),
                    value: bad.to_string(),
                    expected: "an integer in [2, 64]",
                    line,
                });
            }
            r
        };

        let topologies = match get_str_array(&doc, "space", "topology")? {
            None => vec![TopologyKind::Torus],
            Some((names, line)) => {
                if names.is_empty() {
                    return Err(SpecError::EmptyAxis { key: "topology" });
                }
                let mut out = Vec::new();
                for n in &names {
                    let kind = match n.as_str() {
                        "torus" => TopologyKind::Torus,
                        "mesh" => TopologyKind::Mesh,
                        other => {
                            return Err(SpecError::BadDimension {
                                key: "topology".to_string(),
                                value: other.to_string(),
                                expected: "torus|mesh",
                                line,
                            })
                        }
                    };
                    if !out.contains(&kind) {
                        out.push(kind);
                    }
                }
                out
            }
        };

        let nodes = match get_str_array(&doc, "space", "nodes")? {
            None => vec![ProcessNode::Nm100],
            Some((names, line)) => {
                if names.is_empty() {
                    return Err(SpecError::EmptyAxis { key: "nodes" });
                }
                let mut out: Vec<ProcessNode> = Vec::new();
                for n in &names {
                    let node = parse_node(n).ok_or_else(|| SpecError::BadDimension {
                        key: "nodes".to_string(),
                        value: n.clone(),
                        expected: "0.8um|0.35um|0.25um|0.18um|0.13um|0.1um|70nm",
                        line,
                    })?;
                    if !out.contains(&node) {
                        out.push(node);
                    }
                }
                // Oldest technology first: ascending index = shrinking
                // feature size, so index midpoints interpolate nodes.
                out.sort_by(|a, b| b.feature_size().0.total_cmp(&a.feature_size().0));
                out
            }
        };

        Ok(ExploreSpec {
            name,
            description,
            measure,
            strategy,
            budget,
            seed,
            workload_seed,
            rate,
            traffic,
            population,
            offspring,
            space: Space {
                families,
                vcs,
                depths,
                radices,
                topologies,
                nodes,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"
[experiment]
name = "t"

[explore]
budget = 8

[space]
families = ["vc"]
"#;

    #[test]
    fn minimal_spec_defaults() {
        let spec = ExploreSpec::parse(MINIMAL).unwrap();
        assert_eq!(spec.strategy, Strategy::GridRefine);
        assert_eq!(spec.budget, 8);
        assert_eq!(spec.seed, 1);
        assert_eq!(spec.workload_seed, 1);
        assert_eq!(spec.rate, 0.05);
        assert_eq!(spec.traffic, vec![TrafficKind::Uniform]);
        assert_eq!(spec.space.vcs, vec![2, 4, 8]);
        assert_eq!(spec.space.depths, vec![4, 8, 16]);
        assert_eq!(spec.space.radices, vec![4]);
        assert_eq!(spec.space.topologies, vec![TopologyKind::Torus]);
        assert_eq!(spec.space.nodes, vec![ProcessNode::Nm100]);
        assert_eq!(spec.space.size(), 9);
    }

    #[test]
    fn axes_sort_and_dedup() {
        let spec = ExploreSpec::parse(
            r#"
[experiment]
name = "t"
[explore]
budget = 4
[space]
families = ["vc", "wh", "vc"]
vcs = [8, 2, 8, 4]
nodes = ["70nm", "0.8um", "0.1um"]
"#,
        )
        .unwrap();
        assert_eq!(
            spec.space.families,
            vec![RouterFamily::VirtualChannel, RouterFamily::Wormhole]
        );
        assert_eq!(spec.space.vcs, vec![2, 4, 8]);
        assert_eq!(
            spec.space.nodes,
            vec![ProcessNode::Um800, ProcessNode::Nm100, ProcessNode::Nm70]
        );
    }

    #[test]
    fn candidate_lowers_to_design_point() {
        let spec = ExploreSpec::parse(MINIMAL).unwrap();
        let c = Candidate {
            ix: [0, 2, 1, 0, 0, 0],
        };
        assert_eq!(
            c.name(&spec.space),
            "vc64",
            "8 VCs x 8 flits is the paper's VC64"
        );
    }

    #[test]
    fn typed_diagnostics() {
        let no_budget = "[experiment]\nname = \"x\"\n[space]\nfamilies = [\"vc\"]\n";
        assert!(matches!(
            ExploreSpec::parse(no_budget),
            Err(SpecError::MissingKey { ref key, .. }) if key == "budget"
        ));

        let zero =
            "[experiment]\nname = \"x\"\n[explore]\nbudget = 0\n[space]\nfamilies = [\"vc\"]\n";
        assert!(matches!(
            ExploreSpec::parse(zero),
            Err(SpecError::InvalidBudget { value: 0, line: 4 })
        ));

        let neg =
            "[experiment]\nname = \"x\"\n[explore]\nbudget = -3\n[space]\nfamilies = [\"vc\"]\n";
        assert!(matches!(
            ExploreSpec::parse(neg),
            Err(SpecError::InvalidBudget { value: -3, .. })
        ));

        let strat = "[experiment]\nname = \"x\"\n[explore]\nbudget = 1\nstrategy = \"annealing\"\n[space]\nfamilies = [\"vc\"]\n";
        assert!(matches!(
            ExploreSpec::parse(strat),
            Err(SpecError::UnknownStrategy { ref name, line: 5 }) if name == "annealing"
        ));

        let fam = "[experiment]\nname = \"x\"\n[explore]\nbudget = 1\n[space]\nfamilies = [\"optical\"]\n";
        assert!(matches!(
            ExploreSpec::parse(fam),
            Err(SpecError::BadDimension { ref key, ref value, .. })
                if key == "families" && value == "optical"
        ));

        let empty = "[experiment]\nname = \"x\"\n[explore]\nbudget = 1\n[space]\nfamilies = [\"vc\"]\nvcs = []\n";
        assert!(matches!(
            ExploreSpec::parse(empty),
            Err(SpecError::EmptyAxis { key: "vcs" })
        ));

        let radix = "[experiment]\nname = \"x\"\n[explore]\nbudget = 1\n[space]\nfamilies = [\"vc\"]\nradix = [1]\n";
        assert!(matches!(
            ExploreSpec::parse(radix),
            Err(SpecError::BadDimension { ref key, .. }) if key == "radix"
        ));

        let node = "[experiment]\nname = \"x\"\n[explore]\nbudget = 1\n[space]\nfamilies = [\"vc\"]\nnodes = [\"45nm\"]\n";
        assert!(matches!(
            ExploreSpec::parse(node),
            Err(SpecError::BadDimension { ref key, ref value, .. })
                if key == "nodes" && value == "45nm"
        ));

        let section = "[experiment]\nname = \"x\"\n[explode]\nbudget = 1\n";
        assert!(matches!(
            ExploreSpec::parse(section),
            Err(SpecError::UnknownSection { ref section, .. }) if section == "explode"
        ));

        let key = "[experiment]\nname = \"x\"\n[explore]\nbudget = 1\nbuget = 2\n[space]\nfamilies = [\"vc\"]\n";
        assert!(matches!(
            ExploreSpec::parse(key),
            Err(SpecError::UnknownKey { ref key, .. }) if key == "buget"
        ));
    }

    #[test]
    fn errors_render() {
        let e = ExploreSpec::parse(
            "[experiment]\nname = \"x\"\n[explore]\nbudget = 0\n[space]\nfamilies = [\"vc\"]\n",
        )
        .unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("line 4") && msg.contains("budget"), "{msg}");
        let e = ExploreSpec::parse(
            "[experiment]\nname = \"x\"\n[explore]\nbudget = 1\nstrategy = \"zen\"\n[space]\nfamilies = [\"vc\"]\n",
        )
        .unwrap_err();
        assert!(e.to_string().contains("grid-refine|evolutionary"));
    }
}
