//! Generational flit arena: pooled flit storage for the hot cycle loop.
//!
//! The steady-state simulation loop moves every flit through a source
//! queue, an event-wheel slot per link hop, and back — with owned
//! [`Flit`] values that means repeated moves of a ~100-byte struct
//! through growable containers. The arena replaces those owned values
//! with copyable [`FlitRef`] handles: flits live in a slab of reusable
//! slots and only 8-byte references travel through the scheduler.
//! After warm-up the slab reaches its high-water mark and allocation
//! stops entirely — freed slots are recycled through a free list.
//!
//! Handles are *generational*: each slot carries a generation counter
//! bumped on every free, and a [`FlitRef`] is only valid for the
//! generation it was issued against. A stale handle (use-after-free or
//! double-free) panics immediately instead of silently aliasing a
//! recycled flit — the property suite in `tests/properties.rs` leans on
//! this to prove allocate/release conservation under random schedules.

use crate::flit::Flit;
use crate::snapshot::{ByteReader, ByteWriter, SnapshotError};

/// A copyable handle to a flit stored in a [`FlitArena`].
///
/// Only meaningful for the arena that issued it; using it after the
/// flit was [taken](FlitArena::take) panics (generation mismatch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlitRef {
    index: u32,
    generation: u32,
}

impl FlitRef {
    /// The raw `(index, generation)` pair, for snapshot encoding.
    pub(crate) fn raw(self) -> (u32, u32) {
        (self.index, self.generation)
    }

    /// Rebuilds a handle from a snapshot's raw pair. Validity against
    /// the arena is checked by [`FlitArena::decode_with`]'s consistency
    /// rules plus the usual generation check on first use.
    pub(crate) fn from_raw(index: u32, generation: u32) -> FlitRef {
        FlitRef { index, generation }
    }
}

#[derive(Debug, Clone)]
struct Slot {
    generation: u32,
    flit: Option<Flit>,
}

/// A generational slab of flits with a free list (see module docs).
///
/// ```
/// use orion_sim::arena::FlitArena;
/// let mut arena = FlitArena::new();
/// assert_eq!(arena.live(), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlitArena {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
}

impl FlitArena {
    /// Creates an empty arena.
    pub fn new() -> FlitArena {
        FlitArena::default()
    }

    /// Creates an arena with `capacity` slots pre-allocated.
    pub fn with_capacity(capacity: usize) -> FlitArena {
        FlitArena {
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            live: 0,
        }
    }

    /// Stores `flit` and returns its handle. Reuses a freed slot when
    /// one exists; only grows the slab at the high-water mark.
    pub fn alloc(&mut self, flit: Flit) -> FlitRef {
        self.live += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            debug_assert!(slot.flit.is_none(), "free-list slot must be empty");
            slot.flit = Some(flit);
            return FlitRef {
                index,
                generation: slot.generation,
            };
        }
        let index = u32::try_from(self.slots.len()).expect("arena outgrew u32 indices");
        self.slots.push(Slot {
            generation: 0,
            flit: Some(flit),
        });
        FlitRef {
            index,
            generation: 0,
        }
    }

    /// Removes and returns the flit behind `handle`, recycling its slot.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale — the slot was already freed
    /// (double free) and possibly reissued (use-after-free).
    pub fn take(&mut self, handle: FlitRef) -> Flit {
        let slot = &mut self.slots[handle.index as usize];
        assert_eq!(
            slot.generation, handle.generation,
            "stale FlitRef: slot {} was freed since this handle was issued \
             (double free or use-after-free)",
            handle.index
        );
        let flit = slot
            .flit
            .take()
            .expect("generation-matched slot holds a flit");
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(handle.index);
        self.live -= 1;
        flit
    }

    /// Borrows the flit behind `handle`.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale (see [`FlitArena::take`]).
    pub fn get(&self, handle: FlitRef) -> &Flit {
        let slot = &self.slots[handle.index as usize];
        assert_eq!(
            slot.generation, handle.generation,
            "stale FlitRef: slot {} was freed since this handle was issued",
            handle.index
        );
        slot.flit
            .as_ref()
            .expect("generation-matched slot holds a flit")
    }

    /// Mutably borrows the flit behind `handle`.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale (see [`FlitArena::take`]).
    pub fn get_mut(&mut self, handle: FlitRef) -> &mut Flit {
        let slot = &mut self.slots[handle.index as usize];
        assert_eq!(
            slot.generation, handle.generation,
            "stale FlitRef: slot {} was freed since this handle was issued",
            handle.index
        );
        slot.flit
            .as_mut()
            .expect("generation-matched slot holds a flit")
    }

    /// Flits currently stored.
    pub fn live(&self) -> usize {
        self.live
    }

    /// `true` when no flits are stored.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Slab high-water mark: slots ever allocated (live + recycled).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Iterates over the live flits in slot-index order (a stable,
    /// deterministic order for snapshot encoding).
    pub(crate) fn iter_live(&self) -> impl Iterator<Item = &Flit> {
        self.slots.iter().filter_map(|s| s.flit.as_ref())
    }

    /// `true` when `handle` refers to a live flit of the current
    /// generation. Snapshot decoding uses this to reject corrupted
    /// handles with a typed error instead of a later panic.
    pub(crate) fn is_live(&self, handle: FlitRef) -> bool {
        self.slots
            .get(handle.index as usize)
            .is_some_and(|s| s.generation == handle.generation && s.flit.is_some())
    }

    /// Encodes the full arena (slot generations, occupancy, free list)
    /// with `encode_flit` serialising each live flit.
    pub(crate) fn encode_with(
        &self,
        w: &mut ByteWriter,
        encode_flit: &mut dyn FnMut(&Flit, &mut ByteWriter),
    ) {
        w.usize(self.slots.len());
        for slot in &self.slots {
            w.u32(slot.generation);
            match &slot.flit {
                Some(f) => {
                    w.bool(true);
                    encode_flit(f, w);
                }
                None => w.bool(false),
            }
        }
        w.usize(self.free.len());
        for &i in &self.free {
            w.u32(i);
        }
        w.usize(self.live);
    }

    /// Decodes an arena encoded by [`FlitArena::encode_with`],
    /// validating internal consistency (free list covers exactly the
    /// empty slots, live count matches occupancy).
    pub(crate) fn decode_with(
        r: &mut ByteReader<'_>,
        decode_flit: &mut dyn FnMut(&mut ByteReader<'_>) -> Result<Flit, SnapshotError>,
    ) -> Result<FlitArena, SnapshotError> {
        let slot_count = r.count(5)?;
        let mut slots = Vec::with_capacity(slot_count);
        let mut occupied = 0usize;
        for _ in 0..slot_count {
            let generation = r.u32()?;
            let flit = if r.bool()? {
                occupied += 1;
                Some(decode_flit(r)?)
            } else {
                None
            };
            slots.push(Slot { generation, flit });
        }
        let free_count = r.count(4)?;
        if free_count != slot_count - occupied {
            return Err(SnapshotError::Invalid("arena free-list size"));
        }
        let mut free = Vec::with_capacity(free_count);
        let mut seen = vec![false; slot_count];
        for _ in 0..free_count {
            let i = r.u32()?;
            let idx = i as usize;
            if idx >= slot_count || slots[idx].flit.is_some() || seen[idx] {
                return Err(SnapshotError::Invalid("arena free-list entry"));
            }
            seen[idx] = true;
            free.push(i);
        }
        let live = r.usize()?;
        if live != occupied {
            return Err(SnapshotError::Invalid("arena live count"));
        }
        Ok(FlitArena { slots, free, live })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{make_packet, PacketId};
    use orion_net::{dor_route, DimensionOrder, NodeId, Topology};
    use std::sync::Arc;

    fn flits(n: u32) -> Vec<Flit> {
        let t = Topology::torus(&[4, 4]).unwrap();
        let r = Arc::new(dor_route(&t, NodeId(0), NodeId(5), DimensionOrder::YFirst));
        make_packet(PacketId(7), NodeId(0), NodeId(5), r, n, 0, false)
    }

    #[test]
    fn alloc_take_roundtrip() {
        let mut arena = FlitArena::new();
        let fs = flits(3);
        let handles: Vec<FlitRef> = fs.iter().cloned().map(|f| arena.alloc(f)).collect();
        assert_eq!(arena.live(), 3);
        for (handle, original) in handles.iter().zip(&fs) {
            assert_eq!(arena.get(*handle).seq, original.seq);
        }
        for (handle, original) in handles.into_iter().zip(&fs) {
            let f = arena.take(handle);
            assert_eq!(f.seq, original.seq);
            assert_eq!(f.payload, original.payload);
        }
        assert!(arena.is_empty());
    }

    #[test]
    fn slots_recycle_without_growth() {
        let mut arena = FlitArena::new();
        let f = flits(1).remove(0);
        for _ in 0..100 {
            let h = arena.alloc(f.clone());
            arena.take(h);
        }
        assert_eq!(arena.capacity(), 1, "one slot recycled 100 times");
    }

    #[test]
    #[should_panic(expected = "stale FlitRef")]
    fn double_free_panics() {
        let mut arena = FlitArena::new();
        let h = arena.alloc(flits(1).remove(0));
        arena.take(h);
        arena.take(h);
    }

    #[test]
    #[should_panic(expected = "stale FlitRef")]
    fn use_after_free_panics() {
        let mut arena = FlitArena::new();
        let h = arena.alloc(flits(1).remove(0));
        arena.take(h);
        // The slot is reissued to a new flit; the old handle must die.
        let _h2 = arena.alloc(flits(1).remove(0));
        arena.get(h);
    }

    #[test]
    fn get_mut_edits_in_place() {
        let mut arena = FlitArena::new();
        let h = arena.alloc(flits(1).remove(0));
        arena.get_mut(h).hop = 3;
        assert_eq!(arena.get(h).hop, 3);
        assert_eq!(arena.take(h).hop, 3);
    }
}
