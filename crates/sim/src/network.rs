//! The whole-network simulation engine.
//!
//! [`Network`] assembles routers on a [`Topology`], wires their ports
//! with single-cycle data and credit channels (§4.1: "propagation delay
//! across data and credit channels is assumed to take a single cycle"),
//! applies credit-based flow control, injects packets through per-node
//! source queues and ejects them at sinks, while the [`EnergyLedger`]
//! accumulates per-event energy.
//!
//! The engine is synchronous and two-phase: all deliveries scheduled for
//! cycle `t` land before any router computes at `t`, and everything a
//! router emits at `t` is scheduled for `t+1` (credits, ejection) or
//! `t+2` (crossbar traversal + link), so module evaluation order within
//! a cycle cannot change results.

use std::collections::HashMap;
use std::sync::Arc;

use orion_net::{
    dor_route, fault_aware_dor_route, DimensionOrder, FaultSchedule, NodeId, Port, RouteOutcome,
    Topology, TopologyKind,
};
use orion_obs::{NodeState, ObsSink};

use crate::arena::{FlitArena, FlitRef};
use crate::audit::AuditViolation;
use crate::boundary::{CreditMsg, FlitMsg, NullIo, ShardIo};
use crate::energy::{EnergyLedger, PowerModels};
use crate::flit::{make_packet_each, Flit, PacketId};
use crate::router::central::{CentralRouter, CentralRouterSpec};
use crate::router::vc::{VcRouter, VcRouterSpec};
use crate::router::StepOutput;
use crate::snapshot::{ByteReader, ByteWriter, SnapshotError, SNAPSHOT_VERSION};
use crate::stats::SimStats;
use crate::watchdog::{StallDiagnostics, StallKind, StalledVc};

/// Which router microarchitecture populates the network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouterKind {
    /// Input-buffered crossbar router (wormhole or virtual-channel).
    Vc(VcRouterSpec),
    /// Central-buffered router (§4.4).
    Central(CentralRouterSpec),
}

impl RouterKind {
    /// Pipeline stages a head flit spends in the router before the
    /// crossbar (1 = wormhole SA; 2 = VC router VA+SA; CB routers take
    /// 2: write allocation + read allocation).
    pub fn head_stages(&self) -> u32 {
        match self {
            RouterKind::Vc(s) if s.has_va_stage => 2,
            RouterKind::Vc(_) => 1,
            RouterKind::Central(_) => 2,
        }
    }
}

/// Full specification of a simulated network.
#[derive(Debug, Clone)]
pub struct NetworkSpec {
    /// The topology (the paper's case studies use a 4×4 torus).
    pub topology: Topology,
    /// Router microarchitecture.
    pub router: RouterKind,
    /// Flits per packet (the paper uses 5: a head flit leading 4 data
    /// flits).
    pub packet_len: u32,
    /// Dimension order for source routing (the paper routes y first).
    pub dim_order: DimensionOrder,
}

enum AnyRouter {
    Vc(VcRouter),
    Central(CentralRouter),
}

impl AnyRouter {
    #[allow(clippy::too_many_arguments)]
    fn accept(
        &mut self,
        flit: FlitRef,
        port: usize,
        vc: usize,
        cycle: u64,
        ledger: &mut EnergyLedger,
        arena: &mut FlitArena,
    ) {
        match self {
            AnyRouter::Vc(r) => r.accept(flit, port, vc, cycle, ledger, arena),
            AnyRouter::Central(r) => r.accept(flit, port, vc, cycle, ledger, arena),
        }
    }

    fn credit(&mut self, port: usize, vc: usize) {
        match self {
            AnyRouter::Vc(r) => r.credit(port, vc),
            AnyRouter::Central(r) => r.credit(port, vc),
        }
    }

    fn step_into(
        &mut self,
        cycle: u64,
        ledger: &mut EnergyLedger,
        obs: Option<&mut ObsSink>,
        out: &mut StepOutput,
        arena: &mut FlitArena,
    ) {
        match self {
            AnyRouter::Vc(r) => r.step_into(cycle, ledger, obs, out, arena),
            AnyRouter::Central(r) => r.step_into(cycle, ledger, obs, out, arena),
        }
    }

    fn buffered_flits(&self) -> usize {
        match self {
            AnyRouter::Vc(r) => r.buffered_flits(),
            AnyRouter::Central(r) => r.buffered_flits(),
        }
    }

    /// Downstream flow-control credits summed over all output ports
    /// (and VCs), as sampled by the probe scheduler.
    fn free_credits(&self) -> usize {
        match self {
            AnyRouter::Vc(r) => {
                let spec = r.spec();
                (0..spec.ports)
                    .flat_map(|p| (0..spec.vcs).map(move |v| (p, v)))
                    .map(|(p, v)| r.output_credits(p, v) as usize)
                    .sum()
            }
            AnyRouter::Central(r) => (0..r.spec().ports)
                .map(|p| r.output_credits(p) as usize)
                .sum(),
        }
    }

    fn input_free(&self, port: usize, vc: usize) -> usize {
        match self {
            AnyRouter::Vc(r) => r.input_free(port, vc),
            AnyRouter::Central(r) => r.input_free(port),
        }
    }

    fn vcs(&self) -> usize {
        match self {
            AnyRouter::Vc(r) => r.spec().vcs,
            AnyRouter::Central(_) => 1,
        }
    }
}

/// A flit in flight on a link (or to the local sink). Carries an arena
/// handle, not the flit itself — only 8 bytes of payload move through
/// the scheduler.
#[derive(Debug, Clone, Copy)]
struct FlitArrival {
    dest: usize,
    in_port: usize,
    /// Dimension of the link just crossed (None for ejection).
    crossed_dim: Option<u8>,
    wraparound: bool,
    to_sink: bool,
    flit: FlitRef,
}

/// A credit in flight back to an upstream router.
#[derive(Debug, Clone, Copy)]
struct CreditArrival {
    dest: usize,
    out_port: usize,
    vc: usize,
}

/// How the engine visits per-node state each cycle.
///
/// Both modes are bit-identical by construction: a router whose
/// buffers are empty is a provable no-op in every router family (its
/// `step_into` returns before touching the ledger, the arbiters or the
/// observer), so visiting or skipping it cannot change any observable.
/// The differential harness in `tests/sparse_differential.rs` enforces
/// this across families, topologies, faults and checkpoint-resume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Activity-driven stepping: only routers holding buffered flits
    /// and sources with queued packets are visited, steered by the
    /// [`Activity`] bitsets; a fully idle engine detects itself in
    /// O(nodes/64) and can jump the clock over dead cycles (see
    /// [`Network::skip_idle_cycles`]). The default.
    #[default]
    Sparse,
    /// The pre-sparse stepper: every router and source is visited
    /// every cycle. Kept as the reference engine the differential
    /// tests and the CI `sparse-identity` job compare against.
    DenseReference,
}

impl EngineMode {
    /// Engine mode from the `ORION_ENGINE` environment variable:
    /// `dense` selects [`EngineMode::DenseReference`], anything else
    /// (including unset) the default sparse engine. This is how the CI
    /// identity jobs drive whole CLI runs under the reference engine
    /// without a flag on every subcommand.
    pub fn from_env() -> EngineMode {
        match std::env::var("ORION_ENGINE").ok().as_deref() {
            Some("dense") | Some("dense-reference") => EngineMode::DenseReference,
            _ => EngineMode::Sparse,
        }
    }
}

/// An event was scheduled outside its wheel's fixed horizon — either
/// past the last covered slot or before the wheel's base cycle. The
/// wheels cover 4 cycles because the engine only ever schedules at
/// `cycle + 1` (credits, ejections) and `cycle + 2` (link
/// traversals); this error escaping [`Network::try_step`] means the
/// engine state is corrupt and the step did not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WheelHorizonError {
    /// The cycle the event was scheduled for.
    pub cycle: u64,
    /// The wheel's base (current) cycle.
    pub base: u64,
    /// How many cycles from `base` the wheel covers.
    pub horizon: usize,
}

impl std::fmt::Display for WheelHorizonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "event at cycle {} outside wheel horizon [{}, {})",
            self.cycle,
            self.base,
            self.base + self.horizon as u64
        )
    }
}

impl std::error::Error for WheelHorizonError {}

/// A fixed-horizon event wheel.
#[derive(Debug)]
struct Wheel<T> {
    slots: Vec<Vec<T>>,
    base: u64,
}

impl<T> Wheel<T> {
    fn new(horizon: usize) -> Wheel<T> {
        Wheel {
            slots: (0..horizon).map(|_| Vec::new()).collect(),
            base: 0,
        }
    }

    fn schedule(&mut self, cycle: u64, item: T) -> Result<(), WheelHorizonError> {
        let len = self.slots.len();
        if cycle < self.base || (cycle - self.base) as usize >= len {
            return Err(WheelHorizonError {
                cycle,
                base: self.base,
                horizon: len,
            });
        }
        self.slots[(cycle as usize) % len].push(item);
        Ok(())
    }

    /// The earliest cycle ≥ `base` holding a scheduled event, if any.
    fn next_occupied(&self) -> Option<u64> {
        let len = self.slots.len();
        (self.base..self.base + len as u64).find(|&c| !self.slots[(c as usize) % len].is_empty())
    }

    /// Jumps the wheel base to `cycle` without draining. Callers must
    /// have proven the skipped slots empty (`next_occupied` ≥ `cycle`).
    fn advance_to(&mut self, cycle: u64) {
        debug_assert!(cycle >= self.base, "wheel cannot rewind");
        debug_assert!(
            self.next_occupied().is_none_or(|c| c >= cycle),
            "cannot skip over scheduled events"
        );
        self.base = cycle;
    }

    /// Moves all events due at `cycle` into `out` (cleared first) and
    /// advances the wheel base. The slot and `out` swap backing
    /// buffers, so draining every cycle with the same scratch vector
    /// ping-pongs two allocations forever instead of allocating fresh
    /// ones (the old `mem::take` scheduler's per-cycle cost).
    fn drain_into(&mut self, cycle: u64, out: &mut Vec<T>) {
        debug_assert_eq!(cycle, self.base, "wheel must be drained in order");
        self.base = cycle + 1;
        let len = self.slots.len();
        out.clear();
        std::mem::swap(&mut self.slots[(cycle as usize) % len], out);
    }

    fn len(&self) -> usize {
        self.slots.iter().map(Vec::len).sum()
    }

    /// Encodes the wheel (base + every slot in physical index order)
    /// with `encode_item` serialising each scheduled event.
    fn encode_with(&self, w: &mut ByteWriter, encode_item: &mut dyn FnMut(&T, &mut ByteWriter)) {
        w.u64(self.base);
        w.usize(self.slots.len());
        for slot in &self.slots {
            w.usize(slot.len());
            for item in slot {
                encode_item(item, w);
            }
        }
    }

    /// Decodes a wheel encoded by [`Wheel::encode_with`] into `self`,
    /// which must have the same horizon.
    fn decode_into_with(
        &mut self,
        r: &mut ByteReader<'_>,
        decode_item: &mut dyn FnMut(&mut ByteReader<'_>) -> Result<T, SnapshotError>,
    ) -> Result<(), SnapshotError> {
        let base = r.u64()?;
        let horizon = r.usize()?;
        if horizon != self.slots.len() {
            return Err(SnapshotError::Mismatch("wheel horizon"));
        }
        for slot in self.slots.iter_mut() {
            slot.clear();
            let n = r.count(8)?;
            for _ in 0..n {
                slot.push(decode_item(r)?);
            }
        }
        self.base = base;
        Ok(())
    }
}

/// Structure-of-arrays activity state for the sparse stepper: one bit
/// per owned router (set iff it holds buffered flits) and one bit per
/// source (set iff its packet queue is non-empty), packed into `u64`
/// words. The hot loop reads these dense words instead of chasing
/// per-router structs, visits only set bits, and detects a fully idle
/// engine in O(nodes/64).
///
/// The sets are maintained in *both* engine modes from the same four
/// sites — wake on flit acceptance and packet enqueue, sleep when a
/// router steps itself empty or a source queue drains — so the dense
/// reference engine audits the exact bookkeeping the sparse engine
/// steers by, and switching modes never needs a rebuild. They are
/// deliberately **not** serialised: a checkpoint image fully
/// determines them, so [`Network::restore`] recomputes both sets and
/// sparse/dense snapshots stay byte-identical (the CI identity jobs
/// `cmp` checkpoint files across engines).
#[derive(Debug, Clone)]
struct Activity {
    /// Bit `li` set iff router `lo + li` holds buffered flits.
    routers: Vec<u64>,
    /// Bit `li` set iff source `lo + li` has queued packets.
    sources: Vec<u64>,
}

impl Activity {
    fn new(n: usize) -> Activity {
        let words = n.div_ceil(64);
        Activity {
            routers: vec![0; words],
            sources: vec![0; words],
        }
    }

    #[inline]
    fn wake_router(&mut self, li: usize) {
        self.routers[li >> 6] |= 1 << (li & 63);
    }

    #[inline]
    fn sleep_router(&mut self, li: usize) {
        self.routers[li >> 6] &= !(1 << (li & 63));
    }

    #[inline]
    fn router_active(&self, li: usize) -> bool {
        self.routers[li >> 6] & (1 << (li & 63)) != 0
    }

    #[inline]
    fn wake_source(&mut self, li: usize) {
        self.sources[li >> 6] |= 1 << (li & 63);
    }

    #[inline]
    fn sleep_source(&mut self, li: usize) {
        self.sources[li >> 6] &= !(1 << (li & 63));
    }

    #[inline]
    fn source_active(&self, li: usize) -> bool {
        self.sources[li >> 6] & (1 << (li & 63)) != 0
    }

    /// True when no router and no source has work — the per-cycle
    /// step is a no-op apart from scheduled wheel events.
    fn all_idle(&self) -> bool {
        self.routers.iter().chain(&self.sources).all(|&w| w == 0)
    }

    /// Rebuilds both sets from the ground truth, as after a restore.
    fn recompute(&mut self, routers: &[AnyRouter], sources: &[Source]) {
        self.routers.iter_mut().for_each(|w| *w = 0);
        self.sources.iter_mut().for_each(|w| *w = 0);
        for (li, r) in routers.iter().enumerate() {
            if r.buffered_flits() > 0 {
                self.wake_router(li);
            }
        }
        for (li, s) in sources.iter().enumerate() {
            if !s.queue.is_empty() {
                self.wake_source(li);
            }
        }
    }
}

/// Per-node source state: an unbounded packet queue (of arena handles)
/// feeding the injection port.
#[derive(Debug, Default)]
struct Source {
    queue: std::collections::VecDeque<FlitRef>,
    /// The input VC the current packet streams into.
    current_vc: usize,
    /// Flits of the current packet still to transfer.
    remaining: u32,
}

/// Reassembly progress of a packet at its destination sink.
#[derive(Debug, Clone, Copy)]
struct Progress {
    received: u32,
    len: u32,
    created: u64,
    tagged: bool,
}

/// Wiring of one router output port.
#[derive(Debug, Clone, Copy)]
struct Wire {
    dest: usize,
    dest_in_port: usize,
    dim: u8,
    wraparound: bool,
}

/// A complete simulated network — or, in a sharded run, the engine for
/// one contiguous node range of it: routers, links, sources, sinks,
/// energy ledger and statistics.
///
/// The whole-network form ([`Network::new`]) owns every node. The
/// shard form ([`Network::new_shard`]) owns `[lo, hi)`: its router and
/// source arrays cover only that range, flits whose next link leaves
/// the range are handed to a [`ShardIo`] instead of the local event
/// wheel, and inbound boundary messages are interleaved into the
/// delivery order at their source shard's position so the combined
/// execution is bit-identical to the whole-network engine.
pub struct Network {
    spec: NetworkSpec,
    /// Routers for the owned range only, indexed `node - lo`.
    routers: Vec<AnyRouter>,
    /// First owned node.
    lo: usize,
    /// One past the last owned node.
    hi: usize,
    /// This engine's shard index within `shard_bounds`.
    shard_id: usize,
    /// Partition bounds over all shards: `shard_bounds[s]..shard_bounds
    /// [s + 1]` is shard `s`'s range. `[0, n]` for a whole network.
    shard_bounds: Vec<usize>,
    /// Delivery cycles parallel to the tagged-latency sample, recorded
    /// only in sharded runs so the coordinator can merge per-shard
    /// latency vectors back into the whole-network order.
    delivery_log: Vec<u64>,
    ledger: EnergyLedger,
    /// Backing store for every flit in a source queue or on the wire
    /// (routers hold their buffered flits in fixed-capacity ring
    /// FIFOs). Slots recycle through a free list, so after warm-up the
    /// steady-state loop allocates nothing.
    arena: FlitArena,
    flit_wheel: Wheel<FlitArrival>,
    credit_wheel: Wheel<CreditArrival>,
    /// Persistent drain buffers for the wheels and a reusable router
    /// output — the scratch half of the allocation-free hot loop.
    flit_scratch: Vec<FlitArrival>,
    credit_scratch: Vec<CreditArrival>,
    step_out: StepOutput,
    /// Last payload per (node, out_port) for link switching activity.
    link_last: Vec<u64>,
    /// Flits carried per (node, out_port) since the last measurement
    /// reset — the per-channel load behind hot-spot analysis.
    link_flits: Vec<u64>,
    sources: Vec<Source>,
    sinks: HashMap<PacketId, Progress>,
    route_cache: HashMap<(usize, usize), Arc<orion_net::Route>>,
    stats: SimStats,
    cycle: u64,
    next_packet: u64,
    /// Last cycle at which any flit moved (departed a router or was
    /// injected/ejected) — used for deadlock detection.
    last_progress: u64,
    /// Last cycle at which a packet completed delivery — used to tell
    /// livelock (movement without completion) from deadlock.
    last_delivery: u64,
    /// Last cycle at which a credit returned upstream.
    last_credit: u64,
    /// Injected faults consulted at routing time; None = all healthy.
    fault_schedule: Option<FaultSchedule>,
    /// wires[node * ports + out_port]; None for the local port.
    wires: Vec<Option<Wire>>,
    /// Monotone audit counters, never reset (unlike [`SimStats`], which
    /// rewinds at the warm-up boundary): flits ever handed to a source
    /// queue, ever ejected at a sink, ever dropped at injection. Flit
    /// conservation demands `enqueued == ejected + dropped + in_flight`
    /// at every cycle of a run's lifetime.
    audit_enqueued: u64,
    audit_ejected: u64,
    audit_dropped: u64,
    /// Optional observer. `None` (the default) keeps every event site a
    /// single branch; the unobserved path is pinned bit-identical by
    /// `orion-core`'s `sweep_identity` test.
    obs: Option<Box<ObsSink>>,
    /// Which stepper visits routers and sources (see [`EngineMode`]).
    engine: EngineMode,
    /// The activity bitsets steering the sparse stepper; maintained in
    /// both modes, recomputed (never serialised) on restore.
    activity: Activity,
}

impl Network {
    /// Builds a network of identical routers over `spec.topology`,
    /// accounting energy with `models`.
    ///
    /// # Panics
    ///
    /// Panics if the router spec's port count disagrees with the
    /// topology's `ports_per_router`.
    pub fn new(spec: NetworkSpec, models: PowerModels) -> Network {
        let n = spec.topology.num_nodes();
        Network::new_shard(spec, models, 0, &[0, n])
    }

    /// Builds the engine for one shard of a partitioned network: it
    /// owns nodes `bounds[shard_id]..bounds[shard_id + 1]` and routes
    /// boundary traffic through the [`ShardIo`] passed to
    /// [`Network::step_with_io`]. `bounds` must start at 0, end at the
    /// node count and be strictly increasing. `Network::new` is the
    /// single-shard special case `bounds == [0, n]`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid partition or a router spec whose port
    /// count disagrees with the topology.
    pub fn new_shard(
        spec: NetworkSpec,
        models: PowerModels,
        shard_id: usize,
        bounds: &[usize],
    ) -> Network {
        let ports = spec.topology.ports_per_router();
        let n = spec.topology.num_nodes();
        assert!(
            bounds.len() >= 2 && bounds[0] == 0 && *bounds.last().expect("nonempty") == n,
            "shard bounds must cover 0..{n}"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "shard bounds must be strictly increasing"
        );
        assert!(shard_id + 1 < bounds.len(), "shard id outside partition");
        let (lo, hi) = (bounds[shard_id], bounds[shard_id + 1]);
        let routers: Vec<AnyRouter> = (lo..hi)
            .map(|node| match &spec.router {
                RouterKind::Vc(s) => {
                    assert_eq!(s.ports, ports, "router ports must match topology");
                    let needed = match s.flow_control {
                        crate::router::vc::FlowControl::FlitLevel => 1,
                        crate::router::vc::FlowControl::CutThrough => spec.packet_len as usize,
                        crate::router::vc::FlowControl::Bubble => 2 * spec.packet_len as usize,
                    };
                    assert!(
                        s.depth >= needed,
                        "buffer depth {} too small for {:?} flow control with {}-flit packets",
                        s.depth,
                        s.flow_control,
                        spec.packet_len
                    );
                    AnyRouter::Vc(VcRouter::new(node, s.clone()))
                }
                RouterKind::Central(s) => {
                    assert_eq!(s.ports, ports, "router ports must match topology");
                    AnyRouter::Central(CentralRouter::new(node, s.clone(), s.input_depth))
                }
            })
            .collect();
        let mut wires = vec![None; n * ports];
        for node in spec.topology.nodes() {
            for idx in 1..ports {
                let port = Port::from_index(idx, spec.topology.dims() as u8);
                let Port::Dir { dim, dir } = port else {
                    unreachable!("non-zero port indices are directional")
                };
                if let Some(nb) = spec.topology.neighbor(node, dim as usize, dir) {
                    let dest_in_port = Port::Dir {
                        dim,
                        dir: dir.opposite(),
                    }
                    .index();
                    let k = spec.topology.radix(dim as usize);
                    let c = spec.topology.coords(node)[dim as usize];
                    let wraparound = spec.topology.kind() == TopologyKind::Torus
                        && ((dir == orion_net::Direction::Plus && c == k - 1)
                            || (dir == orion_net::Direction::Minus && c == 0));
                    wires[node.0 * ports + idx] = Some(Wire {
                        dest: nb.0,
                        dest_in_port,
                        dim,
                        wraparound,
                    });
                }
            }
        }
        Network {
            // The ledger and link tables stay whole-network sized and
            // globally indexed (a shard only ever charges its own
            // nodes, so remote rows stay zero); the per-node memory is
            // a few machine words, and keeping global indices means
            // the energy event sites are identical in both forms.
            ledger: EnergyLedger::new(models, n),
            routers,
            lo,
            hi,
            shard_id,
            shard_bounds: bounds.to_vec(),
            delivery_log: Vec::new(),
            arena: FlitArena::new(),
            flit_wheel: Wheel::new(4),
            credit_wheel: Wheel::new(4),
            flit_scratch: Vec::new(),
            credit_scratch: Vec::new(),
            step_out: StepOutput::new(),
            link_last: vec![0; n * ports],
            link_flits: vec![0; n * ports],
            sources: (lo..hi).map(|_| Source::default()).collect(),
            sinks: HashMap::new(),
            route_cache: HashMap::new(),
            stats: SimStats::new(),
            cycle: 0,
            next_packet: 0,
            last_progress: 0,
            last_delivery: 0,
            last_credit: 0,
            fault_schedule: None,
            wires,
            audit_enqueued: 0,
            audit_ejected: 0,
            audit_dropped: 0,
            obs: None,
            engine: EngineMode::from_env(),
            activity: Activity::new(hi - lo),
            spec,
        }
    }

    /// Selects the stepper (sparse by default; the dense reference for
    /// differential testing). Both are bit-identical — see
    /// [`EngineMode`] — so this may be switched at any cycle boundary.
    pub fn set_engine_mode(&mut self, mode: EngineMode) {
        self.engine = mode;
    }

    /// The active stepper.
    pub fn engine_mode(&self) -> EngineMode {
        self.engine
    }

    /// Attaches an observer. Events (injections, VA/SA grants, link
    /// traversals, ejections, credits) flow into it from the next
    /// [`Network::step`] on.
    pub fn set_obs(&mut self, obs: ObsSink) {
        self.obs = Some(Box::new(obs));
    }

    /// The attached observer, if any.
    pub fn obs(&self) -> Option<&ObsSink> {
        self.obs.as_deref()
    }

    /// Mutable access to the attached observer (e.g. to set gauges).
    pub fn obs_mut(&mut self) -> Option<&mut ObsSink> {
        self.obs.as_deref_mut()
    }

    /// Detaches and returns the observer.
    pub fn take_obs(&mut self) -> Option<ObsSink> {
        self.obs.take().map(|b| *b)
    }

    /// Samples every node's probe-visible state: buffered flits, free
    /// flow-control credits, cumulative link flits out of the node, and
    /// cumulative per-component energy in `Component::ALL` order
    /// (which a test pins against [`orion_obs::COMPONENTS`]).
    pub fn node_states(&self) -> Vec<NodeState> {
        let ports = self.spec.topology.ports_per_router();
        self.routers
            .iter()
            .enumerate()
            .map(|(li, router)| {
                let node = self.lo + li;
                let mut energy = [0.0; 5];
                for (i, c) in crate::energy::Component::ALL.iter().enumerate() {
                    energy[i] = self.ledger.energy(node, *c).0;
                }
                NodeState {
                    buffered_flits: router.buffered_flits(),
                    free_credits: router.free_credits(),
                    link_flits: (0..ports).map(|p| self.link_flits[node * ports + p]).sum(),
                    energy_j: energy,
                }
            })
            .collect()
    }

    /// The network specification.
    pub fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    /// Current simulation cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Performance statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The energy ledger.
    pub fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }

    /// Clears accumulated energy (the paper's warm-up exclusion, §4.1).
    pub fn reset_energy(&mut self) {
        self.ledger.reset();
    }

    /// Clears accumulated energy *and* performance counters at the
    /// warm-up boundary, so throughput and delivery counts cover only
    /// the measurement window. Packets in flight stay in flight; their
    /// later deliveries count toward the new window.
    pub fn reset_measurement(&mut self) {
        self.ledger.reset();
        self.stats = SimStats::new();
        self.delivery_log.clear();
        self.link_flits.fill(0);
    }

    /// The contiguous node range this engine owns: the whole topology
    /// for [`Network::new`], one shard's slice for
    /// [`Network::new_shard`].
    pub fn owned_range(&self) -> (usize, usize) {
        (self.lo, self.hi)
    }

    /// Delivery cycles parallel to [`SimStats::latencies`], recorded
    /// only by shard engines so a coordinator can merge per-shard
    /// latency samples back into whole-network order.
    pub fn delivery_log(&self) -> &[u64] {
        &self.delivery_log
    }

    /// The cycle at which a credit last returned upstream.
    pub fn last_credit_cycle(&self) -> u64 {
        self.last_credit
    }

    /// The monotone audit counters `(enqueued, ejected, dropped)` —
    /// flit conservation across a whole partitioned network is checked
    /// by summing these over every shard (plus boundary flits still in
    /// transit between shards).
    pub fn audit_counters(&self) -> (u64, u64, u64) {
        (self.audit_enqueued, self.audit_ejected, self.audit_dropped)
    }

    /// Overrides the next packet id to allocate. A shard coordinator
    /// threads one global id sequence through per-shard engines by
    /// setting this before each enqueue and reading
    /// [`Network::next_packet_id`] back after.
    pub fn set_next_packet(&mut self, id: u64) {
        self.next_packet = id;
    }

    /// The next packet id this engine would allocate.
    pub fn next_packet_id(&self) -> u64 {
        self.next_packet
    }

    /// Flits carried by the directional channel leaving `node` through
    /// `out_port` since the last measurement reset.
    ///
    /// # Panics
    ///
    /// Panics if `node` or `out_port` is out of range.
    pub fn link_flits(&self, node: usize, out_port: usize) -> u64 {
        let ports = self.spec.topology.ports_per_router();
        assert!(out_port < ports, "port out of range");
        self.link_flits[node * ports + out_port]
    }

    /// The cycle at which a flit last moved.
    pub fn last_progress_cycle(&self) -> u64 {
        self.last_progress
    }

    /// The cycle at which a packet last completed delivery.
    pub fn last_delivery_cycle(&self) -> u64 {
        self.last_delivery
    }

    /// Installs a fault schedule. From now on, every enqueued packet's
    /// route is computed by [`fault_aware_dor_route`] as of the
    /// injection cycle: detours are counted in
    /// [`SimStats::packets_detoured`], unroutable packets are dropped
    /// at the source with [`SimStats::packets_dropped`] accounting.
    /// Because routes become time-dependent, the route cache is
    /// bypassed (and cleared here) while a schedule is installed.
    pub fn set_fault_schedule(&mut self, schedule: FaultSchedule) {
        self.route_cache.clear();
        self.fault_schedule = Some(schedule);
    }

    /// The installed fault schedule, if any.
    pub fn fault_schedule(&self) -> Option<&FaultSchedule> {
        self.fault_schedule.as_ref()
    }

    /// Queues a `packet_len`-flit packet at `src`'s source queue,
    /// returning its id. `tagged` marks it as part of the measured
    /// sample.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is outside the topology.
    pub fn enqueue_packet(&mut self, src: NodeId, dst: NodeId, tagged: bool) -> PacketId {
        self.enqueue_packet_len(src, dst, self.spec.packet_len, tagged)
    }

    /// Queues a packet of an explicit length (e.g. short control vs
    /// long data packets in a bimodal SoC workload).
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is outside the topology, `len` is zero,
    /// or the routers' flow control could never forward a packet this
    /// long (cut-through needs `len` buffer slots; bubble needs
    /// `2·len` for dimension entries).
    pub fn enqueue_packet_len(
        &mut self,
        src: NodeId,
        dst: NodeId,
        len: u32,
        tagged: bool,
    ) -> PacketId {
        if let RouterKind::Vc(s) = &self.spec.router {
            let needed = match s.flow_control {
                crate::router::vc::FlowControl::FlitLevel => 1,
                crate::router::vc::FlowControl::CutThrough => len as usize,
                crate::router::vc::FlowControl::Bubble => 2 * len as usize,
            };
            assert!(
                s.depth >= needed,
                "a {len}-flit packet can never advance under {:?} flow control \
                 with {}-flit buffers",
                s.flow_control,
                s.depth
            );
        }
        let id = PacketId(self.next_packet);
        self.next_packet += 1;
        self.stats.packets_injected += 1;
        if tagged {
            self.stats.tagged_injected += 1;
        }
        if let Some(obs) = self.obs.as_deref_mut() {
            obs.packet_injected(id.0, src.0, dst.0, len as usize, self.cycle);
        }
        let route = if let Some(schedule) = &self.fault_schedule {
            // Routes are time-dependent under faults: skip the cache.
            match fault_aware_dor_route(
                &self.spec.topology,
                src,
                dst,
                self.spec.dim_order.clone(),
                schedule,
                self.cycle,
            ) {
                RouteOutcome::Direct(r) => Arc::new(r),
                RouteOutcome::Detour(r) => {
                    self.stats.packets_detoured += 1;
                    Arc::new(r)
                }
                RouteOutcome::Unroutable => {
                    self.stats.packets_dropped += 1;
                    self.stats.flits_dropped += len as u64;
                    // A source-dropped packet is injected-then-dropped:
                    // both sides of the conservation equation see it.
                    self.audit_enqueued += len as u64;
                    self.audit_dropped += len as u64;
                    if tagged {
                        self.stats.tagged_dropped += 1;
                    }
                    if let Some(obs) = self.obs.as_deref_mut() {
                        obs.packet_dropped(id.0);
                    }
                    return id;
                }
            }
        } else {
            self.route_cache
                .entry((src.0, dst.0))
                .or_insert_with(|| {
                    Arc::new(dor_route(
                        &self.spec.topology,
                        src,
                        dst,
                        self.spec.dim_order.clone(),
                    ))
                })
                .clone()
        };
        assert!(
            src.0 >= self.lo && src.0 < self.hi,
            "packet source n{} outside owned range {}..{}",
            src.0,
            self.lo,
            self.hi
        );
        let arena = &mut self.arena;
        let queue = &mut self.sources[src.0 - self.lo].queue;
        make_packet_each(id, src, dst, &route, len, self.cycle, tagged, |flit| {
            queue.push_back(arena.alloc(flit));
        });
        self.activity.wake_source(src.0 - self.lo);
        self.audit_enqueued += len as u64;
        id
    }

    /// Flits currently anywhere in the system (source queues, routers,
    /// links).
    pub fn flits_in_flight(&self) -> usize {
        self.sources.iter().map(|s| s.queue.len()).sum::<usize>()
            + self
                .routers
                .iter()
                .map(AnyRouter::buffered_flits)
                .sum::<usize>()
            + self.flit_wheel.len()
    }

    /// `true` when no flits remain anywhere.
    pub fn is_drained(&self) -> bool {
        self.flits_in_flight() == 0
    }

    /// Cycles since any flit last moved. A large value while flits are
    /// in flight indicates a deadlock — possible on a torus under
    /// dimension-ordered routing without dateline VC classes, deep past
    /// saturation (see [`VcRouterSpec::virtual_channel`]).
    pub fn cycles_since_progress(&self) -> u64 {
        self.cycle - self.last_progress
    }

    /// `true` when flits are in flight but none has moved for
    /// `threshold` cycles.
    pub fn is_deadlocked(&self, threshold: u64) -> bool {
        !self.is_drained() && self.cycles_since_progress() >= threshold
    }

    /// Flits still waiting in per-node source queues.
    pub fn source_backlog(&self) -> usize {
        self.sources.iter().map(|s| s.queue.len()).sum()
    }

    /// Watchdog check: whether the network has gone a full `window` of
    /// cycles without progress, and if so which failure it looks like.
    ///
    /// * [`StallKind::Deadlock`] — flits in flight, none moved for
    ///   `window` cycles (a resource cycle; §4.1's wormhole-torus
    ///   warning).
    /// * [`StallKind::Livelock`] — flits still move, but no packet has
    ///   completed delivery for `window` cycles.
    ///
    /// [`StallKind::Saturation`] is never returned here: saturation is
    /// a *divergence* (deliveries continue while source backlog grows
    /// without bound), which the experiment runner detects by watching
    /// [`Network::source_backlog`] across windows.
    pub fn check_stall(&self, window: u64) -> Option<StallKind> {
        if window == 0 || self.is_drained() {
            return None;
        }
        if self.cycles_since_progress() >= window {
            return Some(StallKind::Deadlock);
        }
        let undelivered =
            self.stats.packets_injected > self.stats.packets_delivered + self.stats.packets_dropped;
        if undelivered && self.cycle - self.last_delivery >= window {
            return Some(StallKind::Livelock);
        }
        None
    }

    /// Captures a [`StallDiagnostics`] snapshot: the progress clocks
    /// plus every occupied input VC with its blocked head packet. Call
    /// when [`Network::check_stall`] fires (or at saturation early-exit
    /// with [`StallKind::Saturation`]).
    pub fn stall_diagnostics(&self, kind: StallKind, window: u64) -> StallDiagnostics {
        let mut stalled_vcs = Vec::new();
        for (li, router) in self.routers.iter().enumerate() {
            let node = self.lo + li;
            match router {
                AnyRouter::Vc(r) => {
                    for (port, vc, occupancy, head, waiting) in r.occupied_vcs(&self.arena) {
                        stalled_vcs.push(StalledVc {
                            node,
                            port,
                            vc,
                            occupancy,
                            packet: head.packet,
                            src: head.src,
                            dst: head.dst,
                            hop: head.hop,
                            head_blocked: head.is_head() && waiting,
                        });
                    }
                }
                AnyRouter::Central(r) => {
                    for (port, occupancy, head) in r.occupied_inputs(&self.arena) {
                        stalled_vcs.push(StalledVc {
                            node,
                            port,
                            vc: 0,
                            occupancy,
                            packet: head.packet,
                            src: head.src,
                            dst: head.dst,
                            hop: head.hop,
                            head_blocked: head.is_head(),
                        });
                    }
                }
            }
        }
        let source_backlog = self.source_backlog();
        StallDiagnostics {
            kind,
            cycle: self.cycle,
            window,
            cycles_since_flit_movement: self.cycles_since_progress(),
            cycles_since_delivery: self.cycle - self.last_delivery,
            cycles_since_credit: self.cycle - self.last_credit,
            flits_in_network: self.flits_in_flight() - source_backlog,
            source_backlog,
            packets_delivered: self.stats.packets_delivered,
            packets_dropped: self.stats.packets_dropped,
            stalled_vcs,
        }
    }

    /// Runs every *stateless* invariant check against the current
    /// state, returning all violations found (see [`crate::audit`]).
    /// Healthy networks return an empty vector at every cycle; the
    /// check is read-only, so auditing never perturbs a run.
    ///
    /// Energy monotonicity needs memory across audits — use
    /// [`crate::audit::InvariantAuditor`] for the full set.
    pub fn audit(&self) -> Vec<AuditViolation> {
        let mut violations = Vec::new();

        // Flit conservation over the run's whole lifetime: the audit
        // counters are never reset, so a flit leaked at any point —
        // even before a measurement reset — stays visible forever.
        let in_flight = self.flits_in_flight() as u64;
        if self.audit_enqueued != self.audit_ejected + self.audit_dropped + in_flight {
            violations.push(AuditViolation::FlitConservation {
                enqueued: self.audit_enqueued,
                ejected: self.audit_ejected,
                dropped: self.audit_dropped,
                in_flight,
            });
        }

        self.audit_local_into(&mut violations);
        violations
    }

    /// The subset of [`Network::audit`] that is valid for one shard in
    /// isolation: arena accounting, credit/occupancy bounds and
    /// energy-ledger sanity. Whole-network flit conservation is *not*
    /// checked — a flit injected in one shard and delivered in another
    /// splits its enqueued/ejected accounting across engines, so the
    /// shard coordinator re-checks it globally by summing
    /// [`Network::audit_counters`] over every shard plus boundary
    /// flits still in transit.
    pub fn audit_local(&self) -> Vec<AuditViolation> {
        let mut violations = Vec::new();
        self.audit_local_into(&mut violations);
        violations
    }

    fn audit_local_into(&self, violations: &mut Vec<AuditViolation>) {
        // Arena accounting: the arena backs every flit in the system —
        // source queues, router buffers (which store arena handles, not
        // flits), and the flit wheel. A mismatch means a slot leaked or
        // was recycled twice without tripping a generation check. The
        // equation holds per shard: a boundary flit leaves the arena
        // when it is shipped and re-homes on arrival.
        let expected = self.flits_in_flight() as u64;
        if self.arena.live() as u64 != expected {
            violations.push(AuditViolation::ArenaAccounting {
                live: self.arena.live() as u64,
                expected,
            });
        }

        for (li, router) in self.routers.iter().enumerate() {
            let node = self.lo + li;
            match router {
                AnyRouter::Vc(r) => {
                    let spec = r.spec();
                    for port in 0..spec.ports {
                        for vc in 0..spec.vcs {
                            let credits = r.output_credits(port, vc);
                            if credits as usize > spec.depth {
                                violations.push(AuditViolation::CreditOverflow {
                                    node,
                                    port,
                                    vc,
                                    credits,
                                    depth: spec.depth,
                                });
                            }
                        }
                    }
                    for (port, vc, occupancy, _, _) in r.occupied_vcs(&self.arena) {
                        if occupancy > spec.depth {
                            violations.push(AuditViolation::OccupancyOverflow {
                                node,
                                port,
                                vc,
                                occupancy,
                                depth: spec.depth,
                            });
                        }
                    }
                }
                AnyRouter::Central(r) => {
                    let depth = r.spec().input_depth;
                    for (port, occupancy, _) in r.occupied_inputs(&self.arena) {
                        if occupancy > depth {
                            violations.push(AuditViolation::OccupancyOverflow {
                                node,
                                port,
                                vc: 0,
                                occupancy,
                                depth,
                            });
                        }
                    }
                }
            }
        }

        // Activity bookkeeping: at every cycle boundary the active
        // sets must agree exactly with the routers and sources that
        // hold work. A stale active bit only wastes a visit, but a
        // lost wakeup (work without a bit) makes the sparse engine
        // silently freeze a router — so both directions are audited,
        // in both engine modes.
        for (li, router) in self.routers.iter().enumerate() {
            let node = self.lo + li;
            let buffered = router.buffered_flits();
            let active = self.activity.router_active(li);
            if active != (buffered > 0) {
                violations.push(AuditViolation::ActiveSetMismatch {
                    node,
                    active,
                    buffered,
                });
            }
            let queued = self.sources[li].queue.len();
            let pending = self.activity.source_active(li);
            if pending != (queued > 0) {
                violations.push(AuditViolation::SourceSetMismatch {
                    node,
                    active: pending,
                    queued,
                });
            }
        }

        let total = self.ledger.total_energy().0;
        if !total.is_finite() {
            violations.push(AuditViolation::EnergyNotFinite { energy: total });
        }
    }

    /// Test hook: fabricate a phantom flit in the conservation books
    /// (as if one was enqueued but never entered a queue). Exists so
    /// auditor tests can prove a leak is detected; never called by the
    /// engine.
    #[doc(hidden)]
    pub fn debug_leak_flit(&mut self) {
        self.audit_enqueued += 1;
    }

    /// Test hook: return a spurious credit to an output VC, as a
    /// corrupted flow-control channel would. On an idle network this
    /// pushes the credit count past the downstream depth, which the
    /// auditor must flag. Never called by the engine.
    #[doc(hidden)]
    pub fn debug_spurious_credit(&mut self, node: usize, port: usize, vc: usize) {
        self.routers[node - self.lo].credit(port, vc);
    }

    /// Test hook: flip `node`'s router activity bit, fabricating a
    /// stale active (if idle) or a lost wakeup (if busy). Exists so
    /// auditor tests can prove both directions of the active-set
    /// invariant are detected. Never called by the engine.
    #[doc(hidden)]
    pub fn debug_corrupt_router_activity(&mut self, node: usize) {
        let li = node - self.lo;
        if self.activity.router_active(li) {
            self.activity.sleep_router(li);
        } else {
            self.activity.wake_router(li);
        }
    }

    /// Test hook: flip `node`'s source activity bit (see
    /// [`Network::debug_corrupt_router_activity`]).
    #[doc(hidden)]
    pub fn debug_corrupt_source_activity(&mut self, node: usize) {
        let li = node - self.lo;
        if self.activity.source_active(li) {
            self.activity.sleep_source(li);
        } else {
            self.activity.wake_source(li);
        }
    }

    /// Advances the network by one cycle.
    ///
    /// # Panics
    ///
    /// Panics (in the [`NullIo`]) if this engine is a shard of a
    /// partitioned network — shards must step through
    /// [`Network::step_with_io`] so boundary traffic has somewhere to
    /// go — or on a [`WheelHorizonError`] (see [`Network::try_step`]).
    pub fn step(&mut self) {
        self.step_with_io(&mut NullIo, &mut [], &mut []);
    }

    /// [`Network::step`] with the wheel-horizon failure as a typed
    /// error instead of a panic. The horizon can only be exceeded by a
    /// corrupted engine (every schedule site uses `cycle + 1` or
    /// `cycle + 2` against 4-slot wheels), so on `Err` the step did
    /// not complete and the network must be discarded or restored
    /// from a snapshot.
    pub fn try_step(&mut self) -> Result<(), WheelHorizonError> {
        self.try_step_with_io(&mut NullIo, &mut [], &mut [])
    }

    /// Advances the engine by one cycle, exchanging boundary traffic
    /// through `io`. `inbound_flits[s]` / `inbound_credits[s]` hold the
    /// messages shard `s` shipped here for delivery this cycle (both
    /// drained; the slot at this shard's own index is ignored — local
    /// traffic arrives on the event wheel). A whole-network engine may
    /// pass empty slices.
    ///
    /// All shards of a partition must step in lockstep: every boundary
    /// message lands at least one cycle after it was sent, so a single
    /// barrier between cycles is the only synchronisation required.
    ///
    /// # Panics
    ///
    /// Panics on a [`WheelHorizonError`] (see [`Network::try_step`]).
    pub fn step_with_io(
        &mut self,
        io: &mut dyn ShardIo,
        inbound_flits: &mut [Vec<FlitMsg>],
        inbound_credits: &mut [Vec<CreditMsg>],
    ) {
        if let Err(e) = self.try_step_with_io(io, inbound_flits, inbound_credits) {
            panic!("{e}");
        }
    }

    /// [`Network::step_with_io`] with the wheel-horizon failure as a
    /// typed error (see [`Network::try_step`]).
    pub fn try_step_with_io(
        &mut self,
        io: &mut dyn ShardIo,
        inbound_flits: &mut [Vec<FlitMsg>],
        inbound_credits: &mut [Vec<CreditMsg>],
    ) -> Result<(), WheelHorizonError> {
        let cycle = self.cycle;
        self.deliver_flits(cycle, inbound_flits);
        self.deliver_credits(cycle, inbound_credits);
        self.inject(cycle);
        self.run_routers(cycle, io)?;
        self.cycle += 1;
        Ok(())
    }

    /// True when no router holds flits and no source has queued
    /// packets: the only work left, if any, sits on the event wheels.
    /// O(nodes/64) — this is the guard the run loop checks before
    /// attempting [`Network::skip_idle_cycles`].
    pub fn is_idle(&self) -> bool {
        self.activity.all_idle()
    }

    /// The earliest future cycle with a scheduled wheel event (flit
    /// arrival, ejection or credit return), if any.
    pub fn next_event_cycle(&self) -> Option<u64> {
        match (
            self.flit_wheel.next_occupied(),
            self.credit_wheel.next_occupied(),
        ) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Jumps the clock toward `target` over cycles that are provably
    /// dead: while the engine [is idle](Network::is_idle), every cycle
    /// before the next scheduled wheel event delivers nothing, injects
    /// nothing and steps no router, so skipping it is bit-identical to
    /// stepping through it. The clock stops at `min(target, next
    /// wheel event)`; if the engine is not idle or `target` is not in
    /// the future, nothing happens. Returns the new current cycle.
    ///
    /// The caller owns every clock the engine cannot see: injection
    /// processes must have nothing due before `target` (synthetic
    /// traffic draws its RNG *every* cycle, so only replay-style
    /// workloads with an inspectable next-injection cycle can skip),
    /// and observation/audit/checkpoint strides must clamp `target`
    /// to their next boundary. See `docs/PERFORMANCE.md`.
    pub fn skip_idle_cycles(&mut self, target: u64) -> u64 {
        if target <= self.cycle || !self.is_idle() {
            return self.cycle;
        }
        let stop = match self.next_event_cycle() {
            Some(event) => target.min(event),
            None => target,
        };
        if stop > self.cycle {
            self.flit_wheel.advance_to(stop);
            self.credit_wheel.advance_to(stop);
            self.cycle = stop;
        }
        self.cycle
    }

    fn deliver_flits(&mut self, cycle: u64, inbound: &mut [Vec<FlitMsg>]) {
        let mut arrivals = std::mem::take(&mut self.flit_scratch);
        self.flit_wheel.drain_into(cycle, &mut arrivals);
        // The local slot is [link arrivals pushed at cycle-2, ascending
        // source node] then [ejections pushed at cycle-1, ascending
        // node]: ejections always form a suffix. The whole-network
        // engine pushes in ascending global node order, so the sharded
        // delivery order — each shard's link arrivals at its position
        // in ascending shard order (ranges are contiguous and
        // ascending), local ejections last — reproduces it exactly.
        let split = arrivals
            .iter()
            .position(|a| a.to_sink)
            .unwrap_or(arrivals.len());
        let shards = self.shard_bounds.len() - 1;
        for s in 0..shards {
            if s == self.shard_id {
                for &arrival in &arrivals[..split] {
                    self.handle_arrival(arrival, cycle);
                }
            } else if let Some(msgs) = inbound.get_mut(s) {
                for msg in msgs.drain(..) {
                    let flit = self.arena.alloc(msg.flit);
                    self.handle_arrival(
                        FlitArrival {
                            dest: msg.dest,
                            in_port: msg.in_port,
                            crossed_dim: Some(msg.crossed_dim),
                            wraparound: msg.wraparound,
                            to_sink: false,
                            flit,
                        },
                        cycle,
                    );
                }
            }
        }
        for &arrival in &arrivals[split..] {
            self.handle_arrival(arrival, cycle);
        }
        arrivals.clear();
        self.flit_scratch = arrivals;
    }

    fn handle_arrival(&mut self, arrival: FlitArrival, cycle: u64) {
        if arrival.to_sink {
            self.eject(arrival.flit, cycle);
            return;
        }
        let flit = self.arena.get_mut(arrival.flit);
        flit.hop += 1;
        // Dateline class update for torus deadlock avoidance.
        if let Some(crossed) = arrival.crossed_dim {
            match flit.out_port() {
                Port::Local => flit.vc_class = 0,
                Port::Dir { dim, .. } => {
                    if dim != crossed {
                        flit.vc_class = 0;
                    } else if arrival.wraparound {
                        flit.vc_class = 1;
                    }
                }
            }
        }
        let vc = flit.target_vc as usize;
        self.routers[arrival.dest - self.lo].accept(
            arrival.flit,
            arrival.in_port,
            vc,
            cycle,
            &mut self.ledger,
            &mut self.arena,
        );
        // Wake the receiving router. This site also covers sharded
        // runs: boundary flits drained from the mailbox grid arrive
        // here through `step_with_io`'s inbound slices.
        self.activity.wake_router(arrival.dest - self.lo);
    }

    fn deliver_credits(&mut self, cycle: u64, inbound: &mut [Vec<CreditMsg>]) {
        let mut credits = std::mem::take(&mut self.credit_scratch);
        self.credit_wheel.drain_into(cycle, &mut credits);
        let shards = self.shard_bounds.len() - 1;
        for s in 0..shards {
            if s == self.shard_id {
                for c in credits.drain(..) {
                    self.last_credit = cycle;
                    self.routers[c.dest - self.lo].credit(c.out_port, c.vc);
                }
            } else if let Some(msgs) = inbound.get_mut(s) {
                for m in msgs.drain(..) {
                    self.last_credit = cycle;
                    self.routers[m.dest - self.lo].credit(m.out_port, m.vc);
                }
            }
        }
        self.credit_scratch = credits;
    }

    fn eject(&mut self, flit: FlitRef, cycle: u64) {
        let flit = self.arena.take(flit);
        self.stats.flits_delivered += 1;
        self.audit_ejected += 1;
        if let Some(obs) = self.obs.as_deref_mut() {
            obs.flit_ejected();
        }
        let progress = self.sinks.entry(flit.packet).or_insert(Progress {
            received: 0,
            len: flit.packet_len,
            created: flit.created,
            tagged: flit.tagged,
        });
        progress.received += 1;
        if progress.received == progress.len {
            let latency = cycle - progress.created;
            let tagged = progress.tagged;
            self.sinks.remove(&flit.packet);
            self.stats.record_delivery(latency, tagged);
            // Sharded runs keep the delivery cycle alongside each
            // latency sample so the coordinator can restore the
            // whole-network sample order by a (cycle, shard) merge.
            if tagged && self.shard_bounds.len() > 2 {
                self.delivery_log.push(cycle);
            }
            self.last_delivery = cycle;
            if let Some(obs) = self.obs.as_deref_mut() {
                obs.packet_delivered(flit.packet.0, cycle, latency);
            }
        }
    }

    /// Moves flits from each node's source queue into the injection
    /// input buffer while space remains — the source is local to the
    /// node, so the transfer is limited only by buffer capacity; the
    /// router's switch fabric is what meters entry into the network
    /// proper.
    ///
    /// A source with an empty queue is a no-op, so the sparse engine
    /// visits only the set bits of the source activity word — in the
    /// same ascending-node order the dense loop produces.
    fn inject(&mut self, cycle: u64) {
        match self.engine {
            EngineMode::DenseReference => {
                for li in 0..self.routers.len() {
                    self.inject_node(li, cycle);
                }
            }
            EngineMode::Sparse => {
                // Per-word copies are safe: injection never wakes
                // another source, so no bit is set mid-iteration.
                for wi in 0..self.activity.sources.len() {
                    let mut word = self.activity.sources[wi];
                    while word != 0 {
                        let li = (wi << 6) | word.trailing_zeros() as usize;
                        word &= word - 1;
                        self.inject_node(li, cycle);
                    }
                }
            }
        }
    }

    #[allow(clippy::while_let_loop)] // the loop body has several exits
    fn inject_node(&mut self, li: usize, cycle: u64) {
        let vcs = self.routers[li].vcs();
        let mut moved = false;
        loop {
            let Some(&front) = self.sources[li].queue.front() else {
                break;
            };
            if self.sources[li].remaining == 0 {
                // Start of a new packet: pick the injection VC with
                // the most free space.
                let head = self.arena.get(front);
                debug_assert!(head.is_head(), "source queue starts at a head flit");
                let len = head.packet_len;
                let best = (0..vcs)
                    .max_by_key(|&v| self.routers[li].input_free(0, v))
                    .unwrap_or(0);
                if self.routers[li].input_free(0, best) == 0 {
                    break;
                }
                self.sources[li].current_vc = best;
                self.sources[li].remaining = len;
            } else if self.routers[li].input_free(0, self.sources[li].current_vc) == 0 {
                break;
            }
            let handle = self.sources[li].queue.pop_front().expect("checked front");
            let vc = self.sources[li].current_vc;
            self.sources[li].remaining -= 1;
            self.last_progress = cycle;
            self.routers[li].accept(handle, 0, vc, cycle, &mut self.ledger, &mut self.arena);
            moved = true;
        }
        if moved {
            self.activity.wake_router(li);
        }
        if self.sources[li].queue.is_empty() {
            self.activity.sleep_source(li);
        }
    }

    /// Steps every router with work. An empty router's `step_into` is
    /// a pure no-op in every family (it returns before touching the
    /// ledger, arbiters or observer), so the sparse engine visits only
    /// the set bits of the router activity word — in the dense loop's
    /// ascending-node order, which the wheel push order (and therefore
    /// the sharded delivery interleave) depends on.
    fn run_routers(&mut self, cycle: u64, io: &mut dyn ShardIo) -> Result<(), WheelHorizonError> {
        // One StepOutput is reused across every router and cycle (the
        // take/put-back dance frees `self` for the loop body).
        let mut out = std::mem::take(&mut self.step_out);
        let result = match self.engine {
            EngineMode::DenseReference => (0..self.routers.len())
                .try_for_each(|li| self.run_router_at(li, cycle, io, &mut out)),
            EngineMode::Sparse => (0..self.activity.routers.len()).try_for_each(|wi| {
                // Stepping never wakes another router (departures land
                // on future wheel slots), so a per-word copy sees
                // every bit that can matter this cycle.
                let mut word = self.activity.routers[wi];
                while word != 0 {
                    let li = (wi << 6) | word.trailing_zeros() as usize;
                    word &= word - 1;
                    self.run_router_at(li, cycle, io, &mut out)?;
                }
                Ok(())
            }),
        };
        self.step_out = out;
        result
    }

    fn run_router_at(
        &mut self,
        li: usize,
        cycle: u64,
        io: &mut dyn ShardIo,
        out: &mut StepOutput,
    ) -> Result<(), WheelHorizonError> {
        let ports = self.spec.topology.ports_per_router();
        {
            let node = self.lo + li;
            self.routers[li].step_into(
                cycle,
                &mut self.ledger,
                self.obs.as_deref_mut(),
                out,
                &mut self.arena,
            );
            if !out.departures.is_empty() {
                self.last_progress = cycle;
            }
            for dep in out.departures.drain(..) {
                if dep.out_port == 0 {
                    // Ejection: one crossbar-traversal cycle, then the
                    // sink ("immediate ejection"). The departing flit
                    // keeps its arena slot until the sink consumes it.
                    self.flit_wheel.schedule(
                        cycle + 1,
                        FlitArrival {
                            dest: node,
                            in_port: 0,
                            crossed_dim: None,
                            wraparound: false,
                            to_sink: true,
                            flit: dep.flit,
                        },
                    )?;
                    continue;
                }
                let wire = self.wires[node * ports + dep.out_port]
                    .expect("departures only on wired ports");
                let key = node * ports + dep.out_port;
                let f = self.arena.get(dep.flit);
                let payload = f.payload;
                let packet = f.packet;
                self.ledger
                    .link_traversal(node, self.link_last[key], payload);
                self.link_last[key] = payload;
                self.link_flits[key] += 1;
                if let Some(obs) = self.obs.as_deref_mut() {
                    obs.link_traversal(node, packet.0, cycle);
                }
                if wire.dest < self.lo || wire.dest >= self.hi {
                    // Boundary link: link energy and switching state
                    // were charged at this (owning) node above; the
                    // flit itself leaves our arena and re-homes in the
                    // destination shard on delivery.
                    let flit = self.arena.take(dep.flit);
                    io.send_flit(
                        self.shard_of(wire.dest),
                        cycle + 2,
                        FlitMsg {
                            dest: wire.dest,
                            in_port: wire.dest_in_port,
                            crossed_dim: wire.dim,
                            wraparound: wire.wraparound,
                            flit,
                        },
                    );
                    continue;
                }
                self.flit_wheel.schedule(
                    cycle + 2,
                    FlitArrival {
                        dest: wire.dest,
                        in_port: wire.dest_in_port,
                        crossed_dim: Some(wire.dim),
                        wraparound: wire.wraparound,
                        to_sink: false,
                        flit: dep.flit,
                    },
                )?;
            }
            for credit in out.credits.drain(..) {
                if credit.in_port == 0 {
                    // The local source observes buffer occupancy
                    // directly; no credit channel exists.
                    continue;
                }
                if let Some(obs) = self.obs.as_deref_mut() {
                    obs.credit_returned();
                }
                // The upstream router sits in the direction of this
                // input port; its output port is the opposite one.
                let port = Port::from_index(credit.in_port, self.spec.topology.dims() as u8);
                let Port::Dir { dim, dir } = port else {
                    unreachable!("non-zero input ports are directional")
                };
                let upstream = self
                    .spec
                    .topology
                    .neighbor(NodeId(node), dim as usize, dir)
                    .expect("torus/mesh wiring exists for used ports");
                let out_port = Port::Dir {
                    dim,
                    dir: dir.opposite(),
                }
                .index();
                if upstream.0 < self.lo || upstream.0 >= self.hi {
                    io.send_credit(
                        self.shard_of(upstream.0),
                        cycle + 1,
                        CreditMsg {
                            dest: upstream.0,
                            out_port,
                            vc: credit.vc,
                        },
                    );
                    continue;
                }
                self.credit_wheel.schedule(
                    cycle + 1,
                    CreditArrival {
                        dest: upstream.0,
                        out_port,
                        vc: credit.vc,
                    },
                )?;
            }
        }
        // Buffer counts only decrease here (departures) and increase
        // in `accept` (which wakes), so this is the single sleep site:
        // a router that stepped itself empty goes inactive until the
        // next arrival or injection.
        if self.routers[li].buffered_flits() == 0 {
            self.activity.sleep_router(li);
        }
        Ok(())
    }

    /// The shard owning `node` under this engine's partition bounds.
    fn shard_of(&self, node: usize) -> usize {
        self.shard_bounds.partition_point(|&b| b <= node) - 1
    }

    /// Serialises the complete deterministic state of the network —
    /// flit arena, event wheels, per-router buffers and arbiters,
    /// sources, sinks, energy ledger, statistics and cycle counter —
    /// into a versioned byte image.
    ///
    /// A network built from the same [`NetworkSpec`] and
    /// [`PowerModels`] and then [restored](Network::restore) from this
    /// image continues the simulation **bit-identically** to the
    /// original: every subsequent [`Network::step`] produces the same
    /// latencies, energies and statistics. Configuration (topology,
    /// router specs, power models, fault schedule, observers) is *not*
    /// stored — it must be rebuilt from the spec before restoring.
    ///
    /// Snapshots must be taken at a cycle boundary (between `step`
    /// calls), which is the only time the engine's state is observable
    /// anyway.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u32(SNAPSHOT_VERSION);
        let n = self.routers.len();
        let ports = self.spec.topology.ports_per_router();
        w.usize(n);
        w.usize(ports);
        w.usize(self.lo);
        w.usize(self.hi);
        w.u64(self.cycle);
        w.u64(self.next_packet);
        w.u64(self.last_progress);
        w.u64(self.last_delivery);
        w.u64(self.last_credit);
        w.u64(self.audit_enqueued);
        w.u64(self.audit_ejected);
        w.u64(self.audit_dropped);
        w.usize(self.delivery_log.len());
        for &c in &self.delivery_log {
            w.u64(c);
        }
        w.usize(self.link_last.len());
        for &v in &self.link_last {
            w.u64(v);
        }
        w.usize(self.link_flits.len());
        for &v in &self.link_flits {
            w.u64(v);
        }
        self.stats.encode(&mut w);
        self.ledger.encode(&mut w);

        // Route table: every distinct Arc<Route> reachable from a live
        // flit, in first-seen slot order (deterministic).
        let mut table: Vec<Arc<orion_net::Route>> = Vec::new();
        let mut route_index: HashMap<*const orion_net::Route, u32> = HashMap::new();
        for flit in self.arena.iter_live() {
            route_index
                .entry(Arc::as_ptr(&flit.route))
                .or_insert_with(|| {
                    table.push(Arc::clone(&flit.route));
                    (table.len() - 1) as u32
                });
        }
        w.usize(table.len());
        for route in &table {
            w.usize(route.hops().len());
            for hop in route.hops() {
                w.u8(hop.index() as u8);
            }
        }

        self.arena.encode_with(&mut w, &mut |f, w| {
            w.u64(f.packet.0);
            w.u32(f.seq);
            w.u32(f.packet_len);
            w.usize(f.src.0);
            w.usize(f.dst.0);
            w.u32(route_index[&Arc::as_ptr(&f.route)]);
            w.u16(f.hop);
            w.u64(f.payload);
            w.u64(f.created);
            w.u64(f.ready);
            w.u8(f.vc_class);
            w.u8(f.target_vc);
            w.bool(f.tagged);
        });

        let mut enc_ref = |h: &FlitRef, w: &mut ByteWriter| {
            let (index, generation) = h.raw();
            w.u32(index);
            w.u32(generation);
        };
        self.flit_wheel.encode_with(&mut w, &mut |a, w| {
            w.usize(a.dest);
            w.usize(a.in_port);
            match a.crossed_dim {
                Some(d) => {
                    w.bool(true);
                    w.u8(d);
                }
                None => w.bool(false),
            }
            w.bool(a.wraparound);
            w.bool(a.to_sink);
            enc_ref(&a.flit, w);
        });
        self.credit_wheel.encode_with(&mut w, &mut |c, w| {
            w.usize(c.dest);
            w.usize(c.out_port);
            w.usize(c.vc);
        });

        w.usize(self.sources.len());
        for s in &self.sources {
            w.usize(s.queue.len());
            for h in &s.queue {
                enc_ref(h, &mut w);
            }
            w.usize(s.current_vc);
            w.u32(s.remaining);
        }

        // Sinks in PacketId order: HashMap iteration order must not
        // leak into the byte image.
        let mut sinks: Vec<(&PacketId, &Progress)> = self.sinks.iter().collect();
        sinks.sort_by_key(|(id, _)| id.0);
        w.usize(sinks.len());
        for (id, p) in sinks {
            w.u64(id.0);
            w.u32(p.received);
            w.u32(p.len);
            w.u64(p.created);
            w.bool(p.tagged);
        }

        w.usize(self.routers.len());
        for router in &self.routers {
            match router {
                AnyRouter::Vc(r) => {
                    w.u8(0);
                    r.encode(&mut w, &mut enc_ref);
                }
                AnyRouter::Central(r) => {
                    w.u8(1);
                    r.encode(&mut w, &mut enc_ref);
                }
            }
        }
        w.into_vec()
    }

    /// Restores state captured by [`Network::snapshot`] into this
    /// network, which must have been freshly built from the same
    /// [`NetworkSpec`] and [`PowerModels`].
    ///
    /// Corrupted, truncated or mismatched images return a typed
    /// [`SnapshotError`]; this method never panics on bad bytes. On
    /// error the network is left in an unspecified (but memory-safe)
    /// state and must be discarded — rebuild from the spec before
    /// retrying.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = ByteReader::new(bytes);
        let version = r.u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::WrongVersion(version));
        }
        let n = self.routers.len();
        let n_total = self.spec.topology.num_nodes();
        let ports = self.spec.topology.ports_per_router();
        if r.usize()? != n {
            return Err(SnapshotError::Mismatch("router count"));
        }
        if r.usize()? != ports {
            return Err(SnapshotError::Mismatch("ports per router"));
        }
        if r.usize()? != self.lo || r.usize()? != self.hi {
            return Err(SnapshotError::Mismatch("owned node range"));
        }
        let cycle = r.u64()?;
        let next_packet = r.u64()?;
        let last_progress = r.u64()?;
        let last_delivery = r.u64()?;
        let last_credit = r.u64()?;
        let audit_enqueued = r.u64()?;
        let audit_ejected = r.u64()?;
        let audit_dropped = r.u64()?;
        let log_count = r.count(8)?;
        let mut delivery_log = Vec::with_capacity(log_count);
        for _ in 0..log_count {
            delivery_log.push(r.u64()?);
        }
        let mut link_last = vec![0u64; n_total * ports];
        if r.count(8)? != link_last.len() {
            return Err(SnapshotError::Mismatch("link table length"));
        }
        for v in link_last.iter_mut() {
            *v = r.u64()?;
        }
        let mut link_flits = vec![0u64; n_total * ports];
        if r.count(8)? != link_flits.len() {
            return Err(SnapshotError::Mismatch("link table length"));
        }
        for v in link_flits.iter_mut() {
            *v = r.u64()?;
        }
        let stats = SimStats::decode(&mut r)?;
        self.ledger.decode_into(&mut r)?;

        let dims = self.spec.topology.dims();
        let route_count = r.count(9)?;
        let mut routes: Vec<Arc<orion_net::Route>> = Vec::with_capacity(route_count);
        for _ in 0..route_count {
            let hop_count = r.count(1)?;
            if hop_count == 0 {
                return Err(SnapshotError::Invalid("empty route"));
            }
            let mut hops = Vec::with_capacity(hop_count);
            for _ in 0..hop_count {
                let idx = r.u8()? as usize;
                if idx != 0 && (idx - 1) / 2 >= dims {
                    return Err(SnapshotError::Invalid("route port index"));
                }
                hops.push(Port::from_index(idx, dims as u8));
            }
            if *hops.last().expect("nonempty") != Port::Local {
                return Err(SnapshotError::Invalid("route does not end locally"));
            }
            routes.push(Arc::new(orion_net::Route::new(hops)));
        }

        let arena = FlitArena::decode_with(&mut r, &mut |r| {
            let packet = PacketId(r.u64()?);
            let seq = r.u32()?;
            let packet_len = r.u32()?;
            if seq >= packet_len {
                return Err(SnapshotError::Invalid("flit sequence"));
            }
            let src = r.usize()?;
            let dst = r.usize()?;
            if src >= n_total || dst >= n_total {
                return Err(SnapshotError::Invalid("flit endpoint"));
            }
            let route = routes
                .get(r.u32()? as usize)
                .ok_or(SnapshotError::Invalid("flit route index"))?;
            let hop = r.u16()?;
            if hop as usize >= route.hops().len() {
                return Err(SnapshotError::Invalid("flit hop index"));
            }
            Ok(Flit {
                packet,
                seq,
                packet_len,
                src: NodeId(src),
                dst: NodeId(dst),
                route: Arc::clone(route),
                hop,
                payload: r.u64()?,
                created: r.u64()?,
                ready: r.u64()?,
                vc_class: r.u8()?,
                target_vc: r.u8()?,
                tagged: r.bool()?,
            })
        })?;

        // Every live flit is referenced by exactly one owner (a source
        // queue, a wheel slot, or a router buffer). Decoded handles
        // must be live and unique, or a later `take` would panic.
        let mut claimed = vec![false; arena.capacity()];
        let mut claims = 0usize;
        let mut dec_ref = |r: &mut ByteReader<'_>| -> Result<FlitRef, SnapshotError> {
            let index = r.u32()?;
            let generation = r.u32()?;
            let h = FlitRef::from_raw(index, generation);
            if !arena.is_live(h) || claimed[index as usize] {
                return Err(SnapshotError::Invalid("flit handle"));
            }
            claimed[index as usize] = true;
            claims += 1;
            Ok(h)
        };

        let mut flit_wheel: Wheel<FlitArrival> = Wheel::new(self.flit_wheel.slots.len());
        flit_wheel.decode_into_with(&mut r, &mut |r| {
            let dest = r.usize()?;
            let in_port = r.usize()?;
            if dest < self.lo || dest >= self.hi || in_port >= ports {
                return Err(SnapshotError::Invalid("flit arrival port"));
            }
            let crossed_dim = if r.bool()? {
                let d = r.u8()?;
                if (d as usize) >= dims {
                    return Err(SnapshotError::Invalid("flit arrival dimension"));
                }
                Some(d)
            } else {
                None
            };
            Ok(FlitArrival {
                dest,
                in_port,
                crossed_dim,
                wraparound: r.bool()?,
                to_sink: r.bool()?,
                flit: dec_ref(r)?,
            })
        })?;
        if flit_wheel.base != cycle {
            return Err(SnapshotError::Invalid("flit wheel base"));
        }
        let mut credit_wheel: Wheel<CreditArrival> = Wheel::new(self.credit_wheel.slots.len());
        credit_wheel.decode_into_with(&mut r, &mut |r| {
            let dest = r.usize()?;
            let out_port = r.usize()?;
            let vc = r.usize()?;
            if dest < self.lo || dest >= self.hi || out_port >= ports {
                return Err(SnapshotError::Invalid("credit arrival port"));
            }
            Ok(CreditArrival { dest, out_port, vc })
        })?;
        if credit_wheel.base != cycle {
            return Err(SnapshotError::Invalid("credit wheel base"));
        }

        if r.count(8)? != n {
            return Err(SnapshotError::Mismatch("source count"));
        }
        let mut sources = Vec::with_capacity(n);
        for node in 0..n {
            let queued = r.count(8)?;
            let mut queue = std::collections::VecDeque::with_capacity(queued);
            for _ in 0..queued {
                queue.push_back(dec_ref(&mut r)?);
            }
            let current_vc = r.usize()?;
            if current_vc >= self.routers[node].vcs() {
                return Err(SnapshotError::Invalid("source virtual channel"));
            }
            let remaining = r.u32()?;
            sources.push(Source {
                queue,
                current_vc,
                remaining,
            });
        }

        let sink_count = r.count(25)?;
        let mut sinks = HashMap::with_capacity(sink_count);
        for _ in 0..sink_count {
            let id = PacketId(r.u64()?);
            let received = r.u32()?;
            let len = r.u32()?;
            if received >= len {
                return Err(SnapshotError::Invalid("sink progress"));
            }
            let progress = Progress {
                received,
                len,
                created: r.u64()?,
                tagged: r.bool()?,
            };
            if sinks.insert(id, progress).is_some() {
                return Err(SnapshotError::Invalid("duplicate sink"));
            }
        }

        if r.count(1)? != n {
            return Err(SnapshotError::Mismatch("router count"));
        }
        for router in self.routers.iter_mut() {
            let tag = r.u8()?;
            match (tag, router) {
                (0, AnyRouter::Vc(router)) => router.decode_into(&mut r, &mut dec_ref)?,
                (1, AnyRouter::Central(router)) => router.decode_into(&mut r, &mut dec_ref)?,
                (0 | 1, _) => return Err(SnapshotError::Mismatch("router kind")),
                _ => return Err(SnapshotError::Invalid("router tag")),
            }
        }

        if claims != arena.live() {
            return Err(SnapshotError::Invalid("unreferenced flit"));
        }
        if !r.is_empty() {
            return Err(SnapshotError::Invalid("trailing bytes"));
        }

        self.arena = arena;
        self.flit_wheel = flit_wheel;
        self.credit_wheel = credit_wheel;
        self.flit_scratch.clear();
        self.credit_scratch.clear();
        self.sources = sources;
        self.sinks = sinks;
        self.route_cache.clear();
        self.stats = stats;
        self.delivery_log = delivery_log;
        self.link_last = link_last;
        self.link_flits = link_flits;
        self.cycle = cycle;
        self.next_packet = next_packet;
        self.last_progress = last_progress;
        self.last_delivery = last_delivery;
        self.last_credit = last_credit;
        self.audit_enqueued = audit_enqueued;
        self.audit_ejected = audit_ejected;
        self.audit_dropped = audit_dropped;
        // The activity sets are not serialised (so sparse and dense
        // engines write byte-identical images); the restored routers
        // and sources fully determine them.
        self.activity.recompute(&self.routers, &self.sources);
        Ok(())
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("topology", &self.spec.topology)
            .field("cycle", &self.cycle)
            .field("flits_in_flight", &self.flits_in_flight())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::Component;
    use orion_power::{
        ArbiterKind, ArbiterParams, ArbiterPower, BufferParams, BufferPower, CrossbarKind,
        CrossbarParams, CrossbarPower, LinkPower,
    };
    use orion_tech::{Microns, ProcessNode, Technology};

    fn models(flit_bits: u32) -> PowerModels {
        let tech = Technology::new(ProcessNode::Nm100);
        let crossbar = CrossbarPower::new(
            &CrossbarParams::new(CrossbarKind::Matrix, 5, 5, flit_bits),
            tech,
        )
        .unwrap();
        let arbiter = ArbiterPower::new(&ArbiterParams::new(ArbiterKind::Matrix, 5), tech)
            .unwrap()
            .with_control_energy(crossbar.control_energy());
        PowerModels {
            flit_bits,
            buffer: BufferPower::new(&BufferParams::new(16, flit_bits), tech).unwrap(),
            crossbar,
            arbiter,
            link: LinkPower::on_chip(Microns::from_mm(3.0), flit_bits, tech),
            central: None,
        }
    }

    fn wormhole_net() -> Network {
        let topology = Topology::torus(&[4, 4]).unwrap();
        Network::new(
            NetworkSpec {
                topology,
                router: RouterKind::Vc(VcRouterSpec::wormhole(5, 16, 64)),
                packet_len: 5,
                dim_order: DimensionOrder::YFirst,
            },
            models(64),
        )
    }

    fn vc_net(vcs: usize, depth: usize) -> Network {
        let topology = Topology::torus(&[4, 4]).unwrap();
        Network::new(
            NetworkSpec {
                topology,
                router: RouterKind::Vc(VcRouterSpec::virtual_channel(5, vcs, depth, 64)),
                packet_len: 5,
                dim_order: DimensionOrder::YFirst,
            },
            models(64),
        )
    }

    fn run_until_drained(net: &mut Network, max_cycles: u64) {
        while !net.is_drained() && net.cycle() < max_cycles {
            net.step();
        }
        assert!(
            net.is_drained(),
            "network failed to drain in {max_cycles} cycles"
        );
    }

    #[test]
    fn single_packet_delivered_wormhole() {
        let mut net = wormhole_net();
        net.enqueue_packet(NodeId(0), NodeId(5), true);
        run_until_drained(&mut net, 200);
        assert_eq!(net.stats().packets_delivered, 1);
        assert_eq!(net.stats().flits_delivered, 5);
        assert_eq!(net.stats().sample_count(), 1);
    }

    #[test]
    fn wormhole_zero_load_latency_matches_model() {
        // 0 -> 5 is 2 hops. Wormhole: h·3 + 2 + (len−1).
        let mut net = wormhole_net();
        net.enqueue_packet(NodeId(0), NodeId(5), true);
        run_until_drained(&mut net, 200);
        let expect = crate::stats::zero_load_latency(2.0, 1, 5);
        assert_eq!(net.stats().avg_latency(), expect);
    }

    #[test]
    fn vc_zero_load_latency_matches_model() {
        // VC router adds a VA stage per hop router.
        let mut net = vc_net(2, 8);
        net.enqueue_packet(NodeId(0), NodeId(5), true);
        run_until_drained(&mut net, 200);
        let expect = crate::stats::zero_load_latency(2.0, 2, 5);
        assert_eq!(net.stats().avg_latency(), expect);
    }

    #[test]
    fn self_addressed_packet_ejects_locally() {
        let mut net = wormhole_net();
        net.enqueue_packet(NodeId(7), NodeId(7), true);
        run_until_drained(&mut net, 100);
        assert_eq!(net.stats().packets_delivered, 1);
        // No link traversals at all.
        assert_eq!(net.ledger().total_ops(Component::Link), 0);
    }

    #[test]
    fn all_pairs_delivered() {
        let mut net = vc_net(2, 8);
        for src in 0..16 {
            for dst in 0..16 {
                if src != dst {
                    net.enqueue_packet(NodeId(src), NodeId(dst), true);
                }
            }
        }
        run_until_drained(&mut net, 5000);
        assert_eq!(net.stats().packets_delivered, 240);
        assert_eq!(net.stats().flits_delivered, 240 * 5);
    }

    #[test]
    fn energy_events_fire_along_the_path() {
        let mut net = wormhole_net();
        net.enqueue_packet(NodeId(0), NodeId(5), false);
        run_until_drained(&mut net, 200);
        let led = net.ledger();
        // 2-hop route, single packet at zero load: the head flit
        // bypasses every empty queue; trailing flits queue behind it
        // while it arbitrates, so some buffer accesses are charged —
        // but far fewer than the 30 a bypass-free model would count
        // (the paper's §4.4 fabric-vs-buffer access ratio).
        let buffer_ops = led.total_ops(Component::Buffer);
        assert!(
            buffer_ops < 30,
            "bypass must elide accesses, got {buffer_ops}"
        );
        // Crossbar traversals: 3 per flit (one per router).
        assert_eq!(led.total_ops(Component::Crossbar), 15);
        // Link traversals: 2 per flit.
        assert_eq!(led.total_ops(Component::Link), 10);
        assert!(led.total_ops(Component::Arbiter) > 0);
        assert!(led.total_energy().0 > 0.0);
    }

    #[test]
    fn reset_energy_models_warmup_exclusion() {
        let mut net = wormhole_net();
        net.enqueue_packet(NodeId(0), NodeId(5), false);
        run_until_drained(&mut net, 200);
        assert!(net.ledger().total_energy().0 > 0.0);
        net.reset_energy();
        assert_eq!(net.ledger().total_energy().0, 0.0);
    }

    #[test]
    fn heavy_uniform_load_drains_vc() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut net = vc_net(2, 8);
        let topo = Topology::torus(&[4, 4]).unwrap();
        let mut pattern = orion_net::TrafficPattern::uniform(&topo, 0.10).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..500 {
            for node in topo.nodes() {
                if pattern.should_inject(node, &mut rng) {
                    let dst = pattern.destination(node, &mut rng).unwrap();
                    net.enqueue_packet(node, dst, true);
                }
            }
            net.step();
        }
        run_until_drained(&mut net, 20_000);
        let s = net.stats();
        assert_eq!(s.packets_delivered, s.packets_injected);
        assert!(s.avg_latency() > 10.0);
    }

    #[test]
    fn central_router_network_delivers() {
        let topology = Topology::torus(&[4, 4]).unwrap();
        let tech = Technology::new(ProcessNode::Nm100);
        let mut m = models(32);
        m.central = Some(
            orion_power::CentralBufferPower::new(
                &orion_power::CentralBufferParams::new(4, 256, 32),
                tech,
            )
            .unwrap(),
        );
        let mut net = Network::new(
            NetworkSpec {
                topology,
                router: RouterKind::Central(CentralRouterSpec {
                    ports: 5,
                    input_depth: 16,
                    capacity: 256,
                    write_ports: 2,
                    read_ports: 2,
                    flit_bits: 32,
                }),
                packet_len: 5,
                dim_order: DimensionOrder::YFirst,
            },
            m,
        );
        for src in 0..16 {
            net.enqueue_packet(NodeId(src), NodeId((src + 5) % 16), true);
        }
        while !net.is_drained() && net.cycle() < 5000 {
            net.step();
        }
        assert!(net.is_drained());
        assert_eq!(net.stats().packets_delivered, 16);
        assert!(net.ledger().total_ops(Component::CentralBuffer) >= 16 * 5 * 2);
    }

    #[test]
    #[should_panic(expected = "can never advance")]
    fn oversized_packet_rejected_under_cut_through() {
        let topology = Topology::torus(&[4, 4]).unwrap();
        let mut net = Network::new(
            NetworkSpec {
                topology,
                router: RouterKind::Vc(
                    VcRouterSpec::wormhole(5, 8, 64)
                        .with_flow_control(crate::router::vc::FlowControl::CutThrough),
                ),
                packet_len: 5,
                dim_order: DimensionOrder::YFirst,
            },
            models(64),
        );
        // 9 flits can never fit an 8-deep buffer whole.
        net.enqueue_packet_len(NodeId(0), NodeId(5), 9, false);
    }

    #[test]
    fn bimodal_packet_lengths_deliver() {
        // Short control packets (1 flit) interleaved with long data
        // packets (8 flits) — the classic SoC bimodal mix.
        let mut net = vc_net(2, 8);
        for src in 0..16usize {
            let len = if src % 2 == 0 { 1 } else { 8 };
            net.enqueue_packet_len(NodeId(src), NodeId((src + 7) % 16), len, true);
        }
        while !net.is_drained() && net.cycle() < 5000 {
            net.step();
        }
        assert!(net.is_drained());
        assert_eq!(net.stats().packets_delivered, 16);
        // 8 single-flit + 8 eight-flit packets.
        assert_eq!(net.stats().flits_delivered, 8 + 64);
    }

    /// Drives `net` under deterministic uniform load for `cycles`.
    fn drive_uniform(net: &mut Network, cycles: u64, seed: u64) {
        use rand::{rngs::StdRng, SeedableRng};
        let topo = Topology::torus(&[4, 4]).unwrap();
        let mut pattern = orion_net::TrafficPattern::uniform(&topo, 0.15).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..cycles {
            for node in topo.nodes() {
                if pattern.should_inject(node, &mut rng) {
                    let dst = pattern.destination(node, &mut rng).unwrap();
                    net.enqueue_packet(node, dst, true);
                }
            }
            net.step();
        }
    }

    fn finish(net: &mut Network) -> (f64, f64, u64, u64) {
        run_until_drained(net, 50_000);
        (
            net.stats().avg_latency(),
            net.ledger().total_energy().0,
            net.stats().packets_delivered,
            net.cycle(),
        )
    }

    #[test]
    fn snapshot_restore_is_bit_identical_mid_flight() {
        // Run a loaded VC network to a mid-flight cycle (flits in
        // buffers, on wheels, in source queues, partial packets at
        // sinks), snapshot, restore into a fresh network, and demand
        // the continuation is bit-identical to the uninterrupted run.
        let mut original = vc_net(2, 8);
        drive_uniform(&mut original, 60, 42);
        assert!(original.flits_in_flight() > 0, "test needs a busy network");
        let image = original.snapshot();

        let mut restored = vc_net(2, 8);
        restored.restore(&image).expect("snapshot restores");
        // Re-snapshotting the restored network reproduces the image.
        assert_eq!(restored.snapshot(), image, "snapshot∘restore is identity");

        assert_eq!(finish(&mut original), finish(&mut restored));
    }

    #[test]
    fn wheel_schedule_outside_horizon_is_typed_error() {
        let mut w: Wheel<u32> = Wheel::new(4);
        assert!(w.schedule(3, 7).is_ok());
        let err = w.schedule(4, 9).unwrap_err();
        assert_eq!(
            err,
            WheelHorizonError {
                cycle: 4,
                base: 0,
                horizon: 4
            }
        );
        assert!(err.to_string().contains("wheel horizon"));
        // Scheduling before the base is typed too (the old release
        // assert would have wrapped the offset and landed the event in
        // a stale slot).
        let mut w: Wheel<u32> = Wheel::new(4);
        w.advance_to(2);
        assert!(w.schedule(1, 0).is_err());
    }

    #[test]
    fn sparse_and_dense_steppers_are_bit_identical() {
        let mut sparse = vc_net(2, 8);
        sparse.set_engine_mode(EngineMode::Sparse);
        let mut dense = vc_net(2, 8);
        dense.set_engine_mode(EngineMode::DenseReference);
        drive_uniform(&mut sparse, 80, 42);
        drive_uniform(&mut dense, 80, 42);
        // Mid-flight state (buffers, wheels, ledger, stats) must match
        // byte for byte, not merely summary statistics.
        assert_eq!(sparse.snapshot(), dense.snapshot());
        assert_eq!(finish(&mut sparse), finish(&mut dense));
        assert_eq!(sparse.snapshot(), dense.snapshot());
    }

    #[test]
    fn skip_idle_cycles_is_bit_identical_to_stepping() {
        let mut stepped = vc_net(2, 8);
        let mut skipped = vc_net(2, 8);
        drive_uniform(&mut stepped, 40, 7);
        drive_uniform(&mut skipped, 40, 7);
        run_until_drained(&mut stepped, 50_000);
        run_until_drained(&mut skipped, 50_000);
        // A busy engine refuses to skip.
        let mut busy = vc_net(2, 8);
        busy.enqueue_packet(NodeId(0), NodeId(5), false);
        assert_eq!(busy.skip_idle_cycles(busy.cycle() + 100), busy.cycle());

        // Drained: one engine steps 100 dead cycles, the other jumps.
        let target = stepped.cycle() + 100;
        while stepped.cycle() < target {
            stepped.step();
        }
        assert_eq!(skipped.skip_idle_cycles(target), target);
        assert_eq!(skipped.snapshot(), stepped.snapshot());

        // Identical traffic after the gap stays identical.
        stepped.enqueue_packet(NodeId(1), NodeId(14), true);
        skipped.enqueue_packet(NodeId(1), NodeId(14), true);
        assert_eq!(finish(&mut stepped), finish(&mut skipped));
        assert_eq!(skipped.snapshot(), stepped.snapshot());
    }

    #[test]
    fn skip_clamps_to_pending_wheel_events() {
        // Catch an engine in the staged-ejection window: routers and
        // sources empty (idle) but a to-sink flit still on the wheel.
        let mut net = wormhole_net();
        let mut reference = wormhole_net();
        net.enqueue_packet(NodeId(0), NodeId(1), true);
        reference.enqueue_packet(NodeId(0), NodeId(1), true);
        while (!net.is_idle() || net.is_drained()) && net.cycle() < 100 {
            net.step();
            reference.step();
        }
        assert!(net.is_idle() && !net.is_drained(), "no staged window hit");
        let event = net.next_event_cycle().expect("flit still on the wheel");
        assert_eq!(net.skip_idle_cycles(net.cycle() + 1000), event);
        while reference.cycle() < event {
            reference.step();
        }
        assert_eq!(net.snapshot(), reference.snapshot());
        assert_eq!(finish(&mut net), finish(&mut reference));
    }

    #[test]
    fn activity_corruption_is_detected_in_both_directions() {
        let mut net = vc_net(2, 8);
        assert!(net.audit().is_empty());
        // Stale active: an idle router marked active.
        net.debug_corrupt_router_activity(3);
        let v = net.audit_local();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind(), "active-set-mismatch");
        assert!(v[0].to_string().contains("stale active"));
        net.debug_corrupt_router_activity(3);
        assert!(net.audit().is_empty());

        // Lost wakeup: a queued source with its bit cleared.
        net.enqueue_packet(NodeId(5), NodeId(9), false);
        assert!(net.audit().is_empty());
        net.debug_corrupt_source_activity(5);
        let v = net.audit_local();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind(), "source-set-mismatch");
        assert!(v[0].to_string().contains("lost wakeup"));
    }

    #[test]
    fn restore_recomputes_activity_and_cross_engine_images_match() {
        // Snapshot a busy sparse run; restore into a dense-mode net.
        // The images carry no activity bits, the restore rebuilds
        // them, and the continuation is identical either way.
        let mut original = vc_net(2, 8);
        drive_uniform(&mut original, 60, 42);
        let image = original.snapshot();

        let mut dense = vc_net(2, 8);
        dense.set_engine_mode(EngineMode::DenseReference);
        dense.restore(&image).expect("snapshot restores");
        assert!(dense.audit_local().is_empty(), "activity sets rebuilt");
        assert_eq!(dense.snapshot(), image, "images are engine-agnostic");

        let mut sparse = vc_net(2, 8);
        sparse.restore(&image).expect("snapshot restores");
        assert_eq!(finish(&mut sparse), finish(&mut dense));
        assert_eq!(sparse.snapshot(), dense.snapshot());
    }

    #[test]
    fn snapshot_restore_round_trips_central_router() {
        let build = || {
            let topology = Topology::torus(&[4, 4]).unwrap();
            let tech = Technology::new(ProcessNode::Nm100);
            let mut m = models(32);
            m.central = Some(
                orion_power::CentralBufferPower::new(
                    &orion_power::CentralBufferParams::new(4, 256, 32),
                    tech,
                )
                .unwrap(),
            );
            Network::new(
                NetworkSpec {
                    topology,
                    router: RouterKind::Central(CentralRouterSpec {
                        ports: 5,
                        input_depth: 16,
                        capacity: 256,
                        write_ports: 2,
                        read_ports: 2,
                        flit_bits: 32,
                    }),
                    packet_len: 5,
                    dim_order: DimensionOrder::YFirst,
                },
                m,
            )
        };
        let mut original = build();
        drive_uniform(&mut original, 40, 9);
        assert!(original.flits_in_flight() > 0);
        let image = original.snapshot();
        let mut restored = build();
        restored.restore(&image).expect("snapshot restores");
        assert_eq!(restored.snapshot(), image);
        assert_eq!(finish(&mut original), finish(&mut restored));
    }

    #[test]
    fn snapshot_of_fresh_network_restores() {
        let net = vc_net(2, 8);
        let image = net.snapshot();
        let mut restored = vc_net(2, 8);
        restored.restore(&image).expect("empty state restores");
        assert_eq!(restored.snapshot(), image);
    }

    #[test]
    fn restore_rejects_wrong_version() {
        let net = vc_net(2, 8);
        let mut image = net.snapshot();
        image[0] ^= 0xFF; // version field is first
        let err = vc_net(2, 8).restore(&image).unwrap_err();
        assert!(matches!(
            err,
            crate::snapshot::SnapshotError::WrongVersion(_)
        ));
    }

    #[test]
    fn restore_rejects_every_truncation_without_panicking() {
        let mut net = vc_net(2, 8);
        drive_uniform(&mut net, 30, 7);
        let image = net.snapshot();
        // Every proper prefix must fail with a typed error. Stride to
        // keep the test fast; boundaries near the end are covered.
        for cut in (0..image.len())
            .step_by(97)
            .chain(image.len() - 5..image.len())
        {
            let err = vc_net(2, 8).restore(&image[..cut]);
            assert!(err.is_err(), "prefix of {cut} bytes must be rejected");
        }
    }

    #[test]
    fn restore_rejects_spec_mismatch() {
        let mut net = vc_net(2, 8);
        drive_uniform(&mut net, 30, 7);
        let image = net.snapshot();
        // Different VC count / depth: same topology shape, different
        // router internals.
        let err = vc_net(4, 8).restore(&image).unwrap_err();
        assert!(matches!(err, crate::snapshot::SnapshotError::Mismatch(_)));
        let err = vc_net(2, 4).restore(&image).unwrap_err();
        assert!(matches!(err, crate::snapshot::SnapshotError::Mismatch(_)));
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut net = vc_net(2, 8);
            for src in 0..16 {
                net.enqueue_packet(NodeId(src), NodeId(15 - src), true);
            }
            while !net.is_drained() && net.cycle() < 2000 {
                net.step();
            }
            (
                net.stats().avg_latency(),
                net.ledger().total_energy().0,
                net.cycle(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn ejection_port_caps_at_one_flit_per_cycle() {
        // Four neighbours all send to node 5: its ejection port can
        // deliver at most 1 flit/cycle, so 4 packets of 5 flits need at
        // least 20 cycles of ejection.
        let mut net = vc_net(2, 8);
        for src in [1usize, 4, 6, 9] {
            net.enqueue_packet(NodeId(src), NodeId(5), true);
        }
        let start = net.cycle();
        run_until_drained(&mut net, 2000);
        let elapsed = net.cycle() - start;
        assert!(
            elapsed >= 20 + 3,
            "{elapsed} cycles is too fast for 20 flits"
        );
        assert_eq!(net.stats().flits_delivered, 20);
    }

    #[test]
    fn link_flit_counters_track_traffic() {
        let mut net = wormhole_net();
        // 0 -> 5 routes d1+ (port 3) then d0+ (port 1): 5 flits each.
        net.enqueue_packet(NodeId(0), NodeId(5), false);
        run_until_drained(&mut net, 200);
        assert_eq!(net.link_flits(0, 3), 5, "first hop");
        assert_eq!(net.link_flits(4, 1), 5, "second hop from (0,1)");
        assert_eq!(net.link_flits(0, 1), 0, "unused channel");
        net.reset_measurement();
        assert_eq!(net.link_flits(0, 3), 0, "counters reset with measurement");
    }

    #[test]
    fn credits_conserved_after_drain() {
        // After draining, every output VC must have its full credit
        // complement back.
        let mut net = vc_net(2, 4);
        for src in 0..16 {
            net.enqueue_packet(NodeId(src), NodeId((src + 3) % 16), false);
        }
        run_until_drained(&mut net, 5000);
        // Step a few more cycles so in-flight credits land.
        for _ in 0..4 {
            net.step();
        }
        for r in &net.routers {
            if let AnyRouter::Vc(router) = r {
                for port in 1..5 {
                    for vc in 0..2 {
                        assert_eq!(
                            router.output_credits(port, vc),
                            4,
                            "credits must return to full"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn watchdog_classifies_wormhole_torus_deadlock() {
        use crate::watchdog::StallKind;
        use rand::{rngs::StdRng, SeedableRng};
        // A wormhole torus without VC deadlock avoidance, flooded far
        // past saturation — §4.1 warns exactly this "may even deadlock".
        let mut net = wormhole_net();
        let topo = Topology::torus(&[4, 4]).unwrap();
        let mut pattern = orion_net::TrafficPattern::uniform(&topo, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        const WINDOW: u64 = 500;
        const BUDGET: u64 = 100_000;
        let mut fired = None;
        while net.cycle() < BUDGET {
            if net.cycle() < 2000 {
                for node in topo.nodes() {
                    if pattern.should_inject(node, &mut rng) {
                        if let Some(dst) = pattern.destination(node, &mut rng) {
                            net.enqueue_packet(node, dst, false);
                        }
                    }
                }
            }
            net.step();
            if let Some(kind) = net.check_stall(WINDOW) {
                fired = Some((kind, net.cycle()));
                break;
            }
        }
        let (kind, cycle) = fired.expect("watchdog must fire on a deadlocked torus");
        assert_eq!(kind, StallKind::Deadlock);
        assert!(
            cycle < BUDGET / 2,
            "fired at {cycle}, not well under budget"
        );
        let diag = net.stall_diagnostics(kind, WINDOW);
        assert!(!diag.is_empty(), "deadlock must pin occupied VCs");
        assert!(diag.flits_in_network > 0);
        assert!(diag.cycles_since_flit_movement >= WINDOW);
        assert!(diag.blocked_head_flits() > 0, "some head must be stuck");
    }

    #[test]
    fn healthy_run_never_trips_watchdog() {
        let mut net = vc_net(2, 8);
        for src in 0..16 {
            net.enqueue_packet(NodeId(src), NodeId(15 - src), true);
        }
        while !net.is_drained() && net.cycle() < 2000 {
            net.step();
            assert_eq!(net.check_stall(500), None);
        }
        assert!(net.is_drained());
        assert_eq!(net.check_stall(500), None, "drained network never stalls");
    }

    #[test]
    fn faulted_link_detours_and_still_delivers() {
        use orion_net::{Direction, FaultKind, FaultSchedule, LinkId};
        let mut net = vc_net(2, 8);
        // 0 -> 1 normally takes d0+ out of n0 (one hop); break it.
        net.set_fault_schedule(FaultSchedule::empty().with_link_fault(
            LinkId {
                node: NodeId(0),
                dim: 0,
                dir: Direction::Plus,
            },
            FaultKind::Permanent { start: 0 },
        ));
        net.enqueue_packet(NodeId(0), NodeId(1), true);
        run_until_drained(&mut net, 500);
        let s = net.stats();
        assert_eq!(s.packets_delivered, 1);
        assert_eq!(s.packets_detoured, 1);
        assert_eq!(s.packets_dropped, 0);
    }

    #[test]
    fn unroutable_packet_dropped_with_accounting() {
        use orion_net::{FaultKind, FaultSchedule};
        let mut net = vc_net(2, 8);
        // Kill the destination's ejection port: nothing can be
        // delivered to n5 and fault-aware routing drops at the source.
        net.set_fault_schedule(FaultSchedule::empty().with_port_fault(
            NodeId(5),
            Port::Local,
            FaultKind::Permanent { start: 0 },
        ));
        net.enqueue_packet(NodeId(0), NodeId(5), true);
        net.enqueue_packet(NodeId(0), NodeId(2), true);
        run_until_drained(&mut net, 500);
        let s = net.stats();
        assert_eq!(s.packets_injected, 2);
        assert_eq!(s.packets_delivered, 1);
        assert_eq!(s.packets_dropped, 1);
        assert_eq!(s.flits_dropped, 5);
        assert_eq!(s.tagged_dropped, 1);
        assert_eq!(s.tagged_outstanding(), 0, "drops are not outstanding");
        assert!((s.drop_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn audit_is_clean_every_cycle_of_a_healthy_run() {
        let mut auditor = crate::audit::InvariantAuditor::new();
        let mut net = vc_net(2, 8);
        for src in 0..16 {
            net.enqueue_packet(NodeId(src), NodeId(15 - src), true);
        }
        while !net.is_drained() && net.cycle() < 2000 {
            net.step();
            let violations = auditor.check(&net);
            assert!(
                violations.is_empty(),
                "cycle {}: {violations:?}",
                net.cycle()
            );
        }
        assert!(net.is_drained());
    }

    #[test]
    fn audit_survives_measurement_reset_and_drops() {
        use orion_net::{FaultKind, FaultSchedule};
        // Drops and a mid-run stats reset must not fake a conservation
        // violation: the audit counters are independent of SimStats.
        let mut net = vc_net(2, 8);
        net.set_fault_schedule(FaultSchedule::empty().with_port_fault(
            NodeId(5),
            Port::Local,
            FaultKind::Permanent { start: 0 },
        ));
        net.enqueue_packet(NodeId(0), NodeId(5), true); // dropped at source
        net.enqueue_packet(NodeId(0), NodeId(2), true);
        for _ in 0..10 {
            net.step();
        }
        net.reset_measurement();
        run_until_drained(&mut net, 500);
        assert!(net.audit().is_empty(), "{:?}", net.audit());
    }

    #[test]
    fn audit_detects_leaked_flit() {
        let mut net = vc_net(2, 8);
        net.enqueue_packet(NodeId(0), NodeId(5), true);
        run_until_drained(&mut net, 200);
        net.debug_leak_flit();
        let violations = net.audit();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].kind(), "flit-conservation");
        assert!(
            matches!(
                violations[0],
                crate::audit::AuditViolation::FlitConservation {
                    enqueued: 6,
                    ejected: 5,
                    dropped: 0,
                    in_flight: 0,
                }
            ),
            "{:?}",
            violations[0]
        );
    }

    #[test]
    fn audit_detects_spurious_credit() {
        let mut net = vc_net(2, 8);
        run_until_drained(&mut net, 10);
        // All credits are at full complement on an idle network; one
        // more overflows the downstream depth.
        net.debug_spurious_credit(3, 1, 0);
        let violations = net.audit();
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].kind(), "credit-overflow");
        assert!(
            matches!(
                violations[0],
                crate::audit::AuditViolation::CreditOverflow {
                    node: 3,
                    port: 1,
                    vc: 0,
                    credits: 9,
                    depth: 8,
                }
            ),
            "{:?}",
            violations[0]
        );
    }

    #[test]
    fn transient_fault_heals_and_direct_routes_resume() {
        use orion_net::{Direction, FaultKind, FaultSchedule, LinkId};
        let mut net = vc_net(2, 8);
        net.set_fault_schedule(FaultSchedule::empty().with_link_fault(
            LinkId {
                node: NodeId(0),
                dim: 0,
                dir: Direction::Plus,
            },
            FaultKind::Transient { start: 0, end: 50 },
        ));
        net.enqueue_packet(NodeId(0), NodeId(1), false); // during outage
        while net.cycle() < 60 {
            net.step();
        }
        net.enqueue_packet(NodeId(0), NodeId(1), false); // after healing
        run_until_drained(&mut net, 500);
        let s = net.stats();
        assert_eq!(s.packets_delivered, 2);
        assert_eq!(s.packets_detoured, 1, "only the in-outage packet detours");
    }

    #[test]
    fn component_order_matches_obs_labels() {
        // Probe rows label energy columns with orion_obs::COMPONENTS;
        // the ledger indexes them with Component::ALL. The two must
        // agree position by position forever.
        let labels: Vec<&str> = Component::ALL
            .iter()
            .map(|c| match c {
                Component::Buffer => "buffer",
                Component::CentralBuffer => "central_buffer",
                Component::Crossbar => "crossbar",
                Component::Arbiter => "arbiter",
                Component::Link => "link",
            })
            .collect();
        assert_eq!(labels, orion_obs::COMPONENTS);
    }

    #[test]
    fn observed_run_matches_unobserved_and_counts_events() {
        let run = |observe: bool| {
            let mut net = vc_net(2, 8);
            if observe {
                net.set_obs(orion_obs::ObsSink::new());
            }
            for src in 0..16 {
                net.enqueue_packet(NodeId(src), NodeId(15 - src), true);
            }
            run_until_drained(&mut net, 2000);
            net
        };
        let mut observed = run(true);
        let unobserved = run(false);
        assert_eq!(
            observed.stats().avg_latency(),
            unobserved.stats().avg_latency(),
            "observation must not perturb the simulation"
        );
        assert_eq!(
            observed.ledger().total_energy().0,
            unobserved.ledger().total_energy().0
        );
        let stats_delivered = observed.stats().packets_delivered;
        let stats_flits = observed.stats().flits_delivered;
        let link_total: u64 = (0..16)
            .flat_map(|n| (0..5).map(move |p| (n, p)))
            .map(|(n, p)| observed.link_flits(n, p))
            .sum();
        let obs = observed.take_obs().expect("observer attached");
        use orion_obs::keys;
        assert_eq!(obs.metrics.counter(keys::PACKETS_INJECTED), 16);
        assert_eq!(
            obs.metrics.counter(keys::PACKETS_DELIVERED),
            stats_delivered
        );
        assert_eq!(obs.metrics.counter(keys::FLITS_EJECTED), stats_flits);
        assert_eq!(obs.metrics.counter(keys::LINK_FLITS), link_total);
        assert!(obs.metrics.counter(keys::VA_GRANTS) > 0, "VC router has VA");
        assert!(obs.metrics.counter(keys::SA_GRANTS) >= stats_flits);
        assert!(obs.metrics.counter(keys::CREDITS_RETURNED) > 0);
        let lat = obs
            .metrics
            .histogram(keys::PACKET_LATENCY)
            .expect("latency");
        assert_eq!(lat.count(), stats_delivered);
    }

    #[test]
    fn tracer_records_packet_lifecycle() {
        let mut net = wormhole_net();
        net.set_obs(orion_obs::ObsSink::new().with_tracer(8));
        net.enqueue_packet(NodeId(0), NodeId(5), false);
        run_until_drained(&mut net, 200);
        let obs = net.take_obs().expect("observer attached");
        let observations = obs.into_observations(1);
        assert_eq!(observations.spans.len(), 1);
        let span = &observations.spans[0];
        assert_eq!((span.src, span.dst, span.len), (0, 5, 5));
        assert!(span.ejected_at.is_some());
        use orion_obs::HopStage;
        assert!(
            span.hops
                .iter()
                .any(|h| h.node == 0 && h.stage == HopStage::SaGrant),
            "source SA grant recorded: {:?}",
            span.hops
        );
        assert!(
            span.hops
                .iter()
                .any(|h| h.node == 4 && h.stage == HopStage::LinkTraversal),
            "second-hop link traversal recorded: {:?}",
            span.hops
        );
        assert!(span.queuing_cycles().unwrap() < span.latency().unwrap());
    }

    #[test]
    fn node_states_expose_probe_fields() {
        let mut net = wormhole_net();
        net.enqueue_packet(NodeId(0), NodeId(5), false);
        run_until_drained(&mut net, 200);
        let states = net.node_states();
        assert_eq!(states.len(), 16);
        assert_eq!(states[0].link_flits, 5, "node 0 sent 5 flits on d1+");
        assert_eq!(states[4].link_flits, 5, "node 4 forwarded 5 flits");
        assert_eq!(states[1].link_flits, 0);
        let total: f64 = states.iter().map(|s| s.energy_j.iter().sum::<f64>()).sum();
        assert!(
            (total - net.ledger().total_energy().0).abs() <= 1e-15 * total.abs(),
            "per-node probe energy sums to the ledger total"
        );
        assert!(states.iter().all(|s| s.buffered_flits == 0), "drained");
    }
}
