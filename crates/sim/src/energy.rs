//! Per-event energy accounting — the simulator side of the paper's LSE
//! event subsystem.
//!
//! §2.1: *"Users define events associated with each module. Power models
//! … are hooked to these events so when an event occurs during the
//! execution, it triggers the specific power model, which calculates and
//! accumulates the energy consumed."* The [`EnergyLedger`] is that hook:
//! routers emit typed events (buffer read/write, arbitration, crossbar
//! traversal, link traversal, central-buffer read/write) and the ledger
//! dispatches them to the [`orion_power`] models, accumulating energy per
//! node and per component.
//!
//! §4.1: *"The simulator records energy consumption of each component
//! (input buffer, crossbar, arbiter, link) of a node over the entire
//! simulation excluding the first 1000 cycles"* — the exclusion is
//! implemented by [`EnergyLedger::reset`] at the warm-up boundary.

use orion_power::arbiter::ArbiterActivity;
use orion_power::{
    ArbiterPower, BufferPower, CentralBufferPower, CrossbarPower, LinkPower, WriteActivity,
};
use orion_tech::Joules;

/// Switching count between consecutive 64-bit payload samples on a
/// `width`-bit resource.
///
/// For widths ≤ 64 the sample is masked and the Hamming distance is
/// exact; wider datapaths scale the 64-bit distance by `width / 64`
/// (each sample bit stands for `width/64` independent lines).
///
/// ```
/// use orion_sim::energy::scaled_hamming;
/// assert_eq!(scaled_hamming(0b1010, 0b0110, 64), 2.0);
/// assert_eq!(scaled_hamming(0b1010, 0b0110, 256), 8.0);
/// assert_eq!(scaled_hamming(0xFF, 0x0F, 4), 0.0); // high bits masked off
/// ```
pub fn scaled_hamming(a: u64, b: u64, width: u32) -> f64 {
    if width >= 64 {
        (a ^ b).count_ones() as f64 * width as f64 / 64.0
    } else {
        let mask = (1u64 << width) - 1;
        ((a ^ b) & mask).count_ones() as f64
    }
}

/// The energy-bearing components of a network node (paper §4.1 records
/// "input buffer, crossbar, arbiter, link"; §4.4 adds the central
/// buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// Input FIFO buffers.
    Buffer,
    /// Shared central buffer (CB routers only).
    CentralBuffer,
    /// Switch fabric.
    Crossbar,
    /// All arbiters (VC allocation + switch allocation).
    Arbiter,
    /// Outgoing links.
    Link,
}

impl Component {
    /// All components, for iteration.
    pub const ALL: [Component; 5] = [
        Component::Buffer,
        Component::CentralBuffer,
        Component::Crossbar,
        Component::Arbiter,
        Component::Link,
    ];

    fn idx(self) -> usize {
        match self {
            Component::Buffer => 0,
            Component::CentralBuffer => 1,
            Component::Crossbar => 2,
            Component::Arbiter => 3,
            Component::Link => 4,
        }
    }
}

impl std::fmt::Display for Component {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Component::Buffer => "buffer",
            Component::CentralBuffer => "central-buffer",
            Component::Crossbar => "crossbar",
            Component::Arbiter => "arbiter",
            Component::Link => "link",
        };
        f.write_str(s)
    }
}

/// The set of power models shared by all (homogeneous) routers of a
/// network.
#[derive(Debug, Clone)]
pub struct PowerModels {
    /// Flit width in bits (for activity scaling).
    pub flit_bits: u32,
    /// Input-buffer model (one SRAM per input port; Table 2).
    pub buffer: BufferPower,
    /// Switch-fabric model (Table 3).
    pub crossbar: CrossbarPower,
    /// Arbiter model with the crossbar control energy attached
    /// (Table 4 + Appendix).
    pub arbiter: ArbiterPower,
    /// Outgoing link model.
    pub link: LinkPower,
    /// Central-buffer model, for CB routers.
    pub central: Option<CentralBufferPower>,
}

/// Accumulates energy per node and component by dispatching simulator
/// events to the power models.
#[derive(Debug, Clone)]
pub struct EnergyLedger {
    models: PowerModels,
    /// energy[node][component]
    energy: Vec<[Joules; 5]>,
    /// counts[node][component] — number of charged operations.
    counts: Vec<[u64; 5]>,
}

impl EnergyLedger {
    /// Creates a ledger for `num_nodes` nodes sharing `models`.
    pub fn new(models: PowerModels, num_nodes: usize) -> EnergyLedger {
        EnergyLedger {
            models,
            energy: vec![[Joules::ZERO; 5]; num_nodes],
            counts: vec![[0; 5]; num_nodes],
        }
    }

    /// The power models (also exposes link static power for reports).
    pub fn models(&self) -> &PowerModels {
        &self.models
    }

    /// Number of nodes tracked.
    pub fn num_nodes(&self) -> usize {
        self.energy.len()
    }

    /// Zeroes all accumulators (the paper's warm-up exclusion).
    pub fn reset(&mut self) {
        for node in &mut self.energy {
            *node = [Joules::ZERO; 5];
        }
        for node in &mut self.counts {
            *node = [0; 5];
        }
    }

    fn charge(&mut self, node: usize, component: Component, e: Joules) {
        self.energy[node][component.idx()] += e;
        self.counts[node][component.idx()] += 1;
    }

    /// *Buffer write* event (Figure 2 walkthrough: `E_wrt`).
    pub fn buffer_write(&mut self, node: usize, activity: &WriteActivity) {
        let e = self.models.buffer.write_energy(activity);
        self.charge(node, Component::Buffer, e);
    }

    /// *Buffer read* event (`E_read`).
    pub fn buffer_read(&mut self, node: usize) {
        let e = self.models.buffer.read_energy();
        self.charge(node, Component::Buffer, e);
    }

    /// *Arbitration* event (`E_arb`, including `E_xb_ctr` if attached).
    pub fn arbitration(&mut self, node: usize, activity: &ArbiterActivity) {
        let e = self.models.arbiter.arbitration_energy_with(activity);
        self.charge(node, Component::Arbiter, e);
    }

    /// *Crossbar traversal* event (`E_xb`) with per-line-direction
    /// payload history: `(prev_in, new)` on the input line and
    /// `(prev_out, new)` on the output line.
    pub fn crossbar_traversal(&mut self, node: usize, prev_in: u64, prev_out: u64, new: u64) {
        let w = self.models.flit_bits;
        let e = self.models.crossbar.traversal_energy_split(
            scaled_hamming(prev_in, new, w),
            scaled_hamming(prev_out, new, w),
        );
        self.charge(node, Component::Crossbar, e);
    }

    /// *Link traversal* event (`E_link`); `prev` is the last payload on
    /// this link. Chip-to-chip links charge nothing here (their power is
    /// static).
    pub fn link_traversal(&mut self, node: usize, prev: u64, new: u64) {
        let w = self.models.flit_bits;
        let e = self
            .models
            .link
            .traversal_energy(scaled_hamming(prev, new, w));
        self.charge(node, Component::Link, e);
    }

    /// *Central-buffer write* event.
    ///
    /// # Panics
    ///
    /// Panics if the ledger was built without a central-buffer model.
    pub fn central_write(&mut self, node: usize, activity: &WriteActivity) {
        let e = self
            .models
            .central
            .as_ref()
            .expect("central buffer model not configured")
            .write_energy(activity);
        self.charge(node, Component::CentralBuffer, e);
    }

    /// *Central-buffer read* event; `prev`/`new` drive the read-side
    /// fabric activity.
    ///
    /// # Panics
    ///
    /// Panics if the ledger was built without a central-buffer model.
    pub fn central_read(&mut self, node: usize, prev: u64, new: u64) {
        let w = self.models.flit_bits;
        let e = self
            .models
            .central
            .as_ref()
            .expect("central buffer model not configured")
            .read_energy(scaled_hamming(prev, new, w));
        self.charge(node, Component::CentralBuffer, e);
    }

    /// Accumulated energy of `component` at `node`.
    pub fn energy(&self, node: usize, component: Component) -> Joules {
        self.energy[node][component.idx()]
    }

    /// Total energy of `node` across all components.
    pub fn node_energy(&self, node: usize) -> Joules {
        self.energy[node].iter().copied().sum()
    }

    /// Network-wide energy of `component`.
    pub fn component_energy(&self, component: Component) -> Joules {
        self.energy.iter().map(|n| n[component.idx()]).sum()
    }

    /// Network-wide total energy.
    pub fn total_energy(&self) -> Joules {
        Component::ALL
            .iter()
            .map(|&c| self.component_energy(c))
            .sum()
    }

    /// Number of operations charged to `component` at `node`.
    pub fn op_count(&self, node: usize, component: Component) -> u64 {
        self.counts[node][component.idx()]
    }

    /// Network-wide operation count for `component`.
    pub fn total_ops(&self, component: Component) -> u64 {
        self.counts.iter().map(|n| n[component.idx()]).sum()
    }

    /// Encodes the accumulators (not the models — those are rebuilt
    /// from configuration) for a snapshot.
    pub(crate) fn encode(&self, w: &mut crate::snapshot::ByteWriter) {
        w.usize(self.energy.len());
        for node in &self.energy {
            for j in node {
                w.f64(j.0);
            }
        }
        for node in &self.counts {
            for &c in node {
                w.u64(c);
            }
        }
    }

    /// Restores accumulators encoded by [`EnergyLedger::encode`] into
    /// this ledger, which must track the same number of nodes.
    pub(crate) fn decode_into(
        &mut self,
        r: &mut crate::snapshot::ByteReader<'_>,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        if r.usize()? != self.energy.len() {
            return Err(crate::snapshot::SnapshotError::Mismatch(
                "ledger node count",
            ));
        }
        for node in self.energy.iter_mut() {
            for j in node.iter_mut() {
                *j = Joules(r.f64()?);
            }
        }
        for node in self.counts.iter_mut() {
            for c in node.iter_mut() {
                *c = r.u64()?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_power::{ArbiterKind, ArbiterParams, BufferParams, CrossbarKind, CrossbarParams};
    use orion_tech::{Microns, ProcessNode, Technology};

    fn models() -> PowerModels {
        let tech = Technology::new(ProcessNode::Nm100);
        let crossbar =
            CrossbarPower::new(&CrossbarParams::new(CrossbarKind::Matrix, 5, 5, 64), tech).unwrap();
        let arbiter = ArbiterPower::new(&ArbiterParams::new(ArbiterKind::Matrix, 5), tech)
            .unwrap()
            .with_control_energy(crossbar.control_energy());
        PowerModels {
            flit_bits: 64,
            buffer: BufferPower::new(&BufferParams::new(16, 64), tech).unwrap(),
            crossbar,
            arbiter,
            link: LinkPower::on_chip(Microns::from_mm(3.0), 64, tech),
            central: None,
        }
    }

    #[test]
    fn scaled_hamming_cases() {
        assert_eq!(scaled_hamming(0, 0, 64), 0.0);
        assert_eq!(scaled_hamming(u64::MAX, 0, 64), 64.0);
        assert_eq!(scaled_hamming(u64::MAX, 0, 256), 256.0);
        assert_eq!(scaled_hamming(0b111, 0, 2), 2.0);
        assert_eq!(scaled_hamming(0b100, 0, 2), 0.0);
    }

    #[test]
    fn events_accumulate_per_node_and_component() {
        let mut ledger = EnergyLedger::new(models(), 4);
        ledger.buffer_read(1);
        ledger.buffer_read(1);
        ledger.link_traversal(2, 0, u64::MAX);
        assert_eq!(ledger.op_count(1, Component::Buffer), 2);
        assert_eq!(ledger.op_count(2, Component::Link), 1);
        assert_eq!(ledger.op_count(0, Component::Buffer), 0);
        assert!(ledger.energy(1, Component::Buffer).0 > 0.0);
        assert!(ledger.energy(2, Component::Link).0 > 0.0);
        assert_eq!(ledger.energy(3, Component::Link).0, 0.0);
    }

    #[test]
    fn totals_are_sums() {
        let mut ledger = EnergyLedger::new(models(), 3);
        ledger.buffer_read(0);
        ledger.buffer_read(1);
        ledger.crossbar_traversal(2, 0, 0, u64::MAX);
        let total: f64 = (0..3).map(|n| ledger.node_energy(n).0).sum();
        assert!((ledger.total_energy().0 - total).abs() < 1e-27);
        let by_component: f64 = Component::ALL
            .iter()
            .map(|&c| ledger.component_energy(c).0)
            .sum();
        assert!((ledger.total_energy().0 - by_component).abs() < 1e-27);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut ledger = EnergyLedger::new(models(), 2);
        ledger.buffer_read(0);
        ledger.arbitration(
            1,
            &orion_power::arbiter::ArbiterActivity {
                request_toggles: 2,
                priority_flips: 1,
                new_requests: 1,
            },
        );
        ledger.reset();
        assert_eq!(ledger.total_energy().0, 0.0);
        assert_eq!(ledger.total_ops(Component::Buffer), 0);
        assert_eq!(ledger.total_ops(Component::Arbiter), 0);
    }

    #[test]
    fn identical_payloads_on_link_cost_nothing() {
        let mut ledger = EnergyLedger::new(models(), 1);
        ledger.link_traversal(0, 0xABCD, 0xABCD);
        assert_eq!(ledger.energy(0, Component::Link).0, 0.0);
        // But the op is still counted.
        assert_eq!(ledger.op_count(0, Component::Link), 1);
    }

    #[test]
    fn crossbar_split_matches_model_arithmetic() {
        let m = models();
        let mut ledger = EnergyLedger::new(m.clone(), 1);
        // Input line toggles 64 bits (0 -> MAX), output line 32 bits.
        let prev_out = 0xFFFF_FFFF_0000_0000u64;
        ledger.crossbar_traversal(0, 0, prev_out, u64::MAX);
        let expect = m.crossbar.traversal_energy_split(64.0, 32.0);
        assert!((ledger.energy(0, Component::Crossbar).0 - expect.0).abs() < 1e-27);
    }

    #[test]
    fn buffer_events_match_model_energies() {
        let m = models();
        let mut ledger = EnergyLedger::new(m.clone(), 2);
        let act = orion_power::WriteActivity::uniform_random(64);
        ledger.buffer_write(1, &act);
        ledger.buffer_read(1);
        let expect = m.buffer.write_energy(&act) + m.buffer.read_energy();
        assert!((ledger.node_energy(1).0 - expect.0).abs() < 1e-27);
        assert_eq!(ledger.node_energy(0).0, 0.0);
    }

    #[test]
    #[should_panic(expected = "central buffer model not configured")]
    fn central_events_require_model() {
        let mut ledger = EnergyLedger::new(models(), 1);
        ledger.central_read(0, 0, 1);
    }
}
