//! The boundary-link interface between network shards.
//!
//! A sharded run partitions the topology's nodes into contiguous
//! ranges, each owned by one [`Network`](crate::network::Network)
//! instance. Links whose endpoints live in different shards cannot be
//! scheduled on the owner's local event wheel — the flit (or credit)
//! must physically move to the destination shard's state. This module
//! defines the messages that cross that boundary and the [`ShardIo`]
//! trait the engine emits them through.
//!
//! The determinism contract (see `docs/SCALING.md`) rests on two
//! properties of these messages:
//!
//! * **Fixed latency.** A boundary flit is delivered at `cycle + 2`
//!   and a boundary credit at `cycle + 1` — exactly the latencies of
//!   the local event wheel — so no shard can observe an effect of the
//!   current cycle's computation elsewhere. One barrier per cycle is
//!   enough.
//! * **Fixed total order.** The destination shard drains inbound
//!   messages per source shard, in ascending source-shard order,
//!   interleaving its own local wheel slot at its own position. With
//!   contiguous ascending node ranges this reproduces the single-shard
//!   engine's ascending-source-node slot order bit for bit.

use orion_net::Port;

use crate::flit::Flit;

/// A flit crossing a shard boundary: the owned [`Flit`] (removed from
/// the source shard's arena) plus the link-arrival metadata the
/// destination needs to finish the traversal.
#[derive(Debug, Clone)]
pub struct FlitMsg {
    /// Destination node (owned by the receiving shard).
    pub dest: usize,
    /// Input port at the destination router.
    pub in_port: usize,
    /// Dimension of the link being crossed.
    pub crossed_dim: u8,
    /// Whether the link wraps around a torus edge (dateline).
    pub wraparound: bool,
    /// The flit itself, removed from the sender's arena; the receiver
    /// re-homes it in its own.
    pub flit: Flit,
}

/// A credit crossing a shard boundary back to an upstream router.
#[derive(Debug, Clone, Copy)]
pub struct CreditMsg {
    /// Upstream node (owned by the receiving shard).
    pub dest: usize,
    /// Output port whose credit count increments.
    pub out_port: usize,
    /// Virtual channel within the port.
    pub vc: usize,
}

/// Outbound half of the boundary interface. The engine calls this from
/// `run_routers` when a departure's wire (or a credit's upstream
/// router) lies outside the owned node range.
pub trait ShardIo {
    /// Ships `msg` to `dst_shard`, to be delivered at `deliver_cycle`.
    fn send_flit(&mut self, dst_shard: usize, deliver_cycle: u64, msg: FlitMsg);
    /// Ships `msg` to `dst_shard`, to be delivered at `deliver_cycle`.
    fn send_credit(&mut self, dst_shard: usize, deliver_cycle: u64, msg: CreditMsg);
}

/// The single-shard [`ShardIo`]: a whole-network engine owns every
/// node, so nothing ever crosses a boundary.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullIo;

impl ShardIo for NullIo {
    fn send_flit(&mut self, _dst_shard: usize, _deliver_cycle: u64, _msg: FlitMsg) {
        unreachable!("a whole-network engine never crosses a shard boundary");
    }

    fn send_credit(&mut self, _dst_shard: usize, _deliver_cycle: u64, _msg: CreditMsg) {
        unreachable!("a whole-network engine never crosses a shard boundary");
    }
}

use crate::snapshot::{ByteReader, ByteWriter, SnapshotError};

impl FlitMsg {
    /// Serialises the message (route inline) for mailbox snapshots.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.usize(self.dest);
        w.usize(self.in_port);
        w.u8(self.crossed_dim);
        w.bool(self.wraparound);
        let f = &self.flit;
        w.u64(f.packet.0);
        w.u32(f.seq);
        w.u32(f.packet_len);
        w.usize(f.src.0);
        w.usize(f.dst.0);
        w.usize(f.route.hops().len());
        for hop in f.route.hops() {
            w.u8(hop.index() as u8);
        }
        w.u16(f.hop);
        w.u64(f.payload);
        w.u64(f.created);
        w.u64(f.ready);
        w.u8(f.vc_class);
        w.u8(f.target_vc);
        w.bool(f.tagged);
    }

    /// Decodes a message encoded by [`FlitMsg::encode`], validating
    /// every index against `topology`.
    pub fn decode(
        r: &mut ByteReader<'_>,
        topology: &orion_net::Topology,
    ) -> Result<FlitMsg, SnapshotError> {
        let n = topology.num_nodes();
        let dims = topology.dims();
        let ports = topology.ports_per_router();
        let dest = r.usize()?;
        let in_port = r.usize()?;
        if dest >= n || in_port == 0 || in_port >= ports {
            return Err(SnapshotError::Invalid("boundary flit port"));
        }
        let crossed_dim = r.u8()?;
        if (crossed_dim as usize) >= dims {
            return Err(SnapshotError::Invalid("boundary flit dimension"));
        }
        let wraparound = r.bool()?;
        let packet = crate::flit::PacketId(r.u64()?);
        let seq = r.u32()?;
        let packet_len = r.u32()?;
        if seq >= packet_len {
            return Err(SnapshotError::Invalid("boundary flit sequence"));
        }
        let src = r.usize()?;
        let dst = r.usize()?;
        if src >= n || dst >= n {
            return Err(SnapshotError::Invalid("boundary flit endpoint"));
        }
        let hop_count = r.count(1)?;
        if hop_count == 0 {
            return Err(SnapshotError::Invalid("boundary flit route"));
        }
        let mut hops = Vec::with_capacity(hop_count);
        for _ in 0..hop_count {
            let idx = r.u8()? as usize;
            if idx != 0 && (idx - 1) / 2 >= dims {
                return Err(SnapshotError::Invalid("boundary flit route port"));
            }
            hops.push(Port::from_index(idx, dims as u8));
        }
        if *hops.last().expect("nonempty") != Port::Local {
            return Err(SnapshotError::Invalid("boundary flit route end"));
        }
        let route = std::sync::Arc::new(orion_net::Route::new(hops));
        let hop = r.u16()?;
        if hop as usize >= route.hops().len() {
            return Err(SnapshotError::Invalid("boundary flit hop"));
        }
        Ok(FlitMsg {
            dest,
            in_port,
            crossed_dim,
            wraparound,
            flit: Flit {
                packet,
                seq,
                packet_len,
                src: orion_net::NodeId(src),
                dst: orion_net::NodeId(dst),
                route,
                hop,
                payload: r.u64()?,
                created: r.u64()?,
                ready: r.u64()?,
                vc_class: r.u8()?,
                target_vc: r.u8()?,
                tagged: r.bool()?,
            },
        })
    }
}

impl CreditMsg {
    /// Serialises the message for mailbox snapshots.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.usize(self.dest);
        w.usize(self.out_port);
        w.usize(self.vc);
    }

    /// Decodes a message encoded by [`CreditMsg::encode`].
    pub fn decode(
        r: &mut ByteReader<'_>,
        topology: &orion_net::Topology,
    ) -> Result<CreditMsg, SnapshotError> {
        let dest = r.usize()?;
        let out_port = r.usize()?;
        let vc = r.usize()?;
        if dest >= topology.num_nodes() || out_port == 0 || out_port >= topology.ports_per_router()
        {
            return Err(SnapshotError::Invalid("boundary credit port"));
        }
        Ok(CreditMsg { dest, out_port, vc })
    }
}
