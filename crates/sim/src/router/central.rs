//! Central-buffered router (§4.4 of the paper).
//!
//! "Central buffered routers (CB), where a shared central buffer
//! forwards flits between input and output ports of a router, have been
//! deployed in IBM SP/2 and InfiniBand routers … they do not experience
//! the head-of-line blocking inherent in [input-buffered crossbar]
//! routers."
//!
//! Microarchitecture modelled here:
//!
//! * one small input FIFO per port (the paper's CB configuration has a
//!   64-flit input buffer at each port);
//! * a shared central buffer organised as *logical queues per output
//!   port* (this is what removes head-of-line blocking), with a global
//!   flit capacity and a limited number of memory **write ports** and
//!   **read ports** (the paper's configuration has 2 + 2 — the source of
//!   CB's lower peak throughput under uniform traffic, Fig. 7a);
//! * per-cycle allocation of write ports among input FIFOs and of read
//!   ports among output queues, by multi-grant round-robin arbiters.
//!
//! Timing: a flit written into an input FIFO at `t` may bid for a
//! central-buffer write port from `t+1`; once written at `u` it may bid
//! for a read port from `u+1`; a read at `v` puts it on the output link,
//! reaching the neighbour at `v+2` (or the sink at `v+1`).

use crate::arb::RoundRobinArbiter;
use crate::arena::{FlitArena, FlitRef};
use crate::energy::{scaled_hamming, EnergyLedger};
use crate::fifo::FlitFifo;
use crate::flit::Flit;
use crate::router::{CreditReturn, Departure, StepOutput};
use crate::snapshot::{ByteReader, ByteWriter, SnapshotError};
use orion_obs::ObsSink;
use orion_power::WriteActivity;
use std::collections::VecDeque;

/// Configuration of a [`CentralRouter`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CentralRouterSpec {
    /// Ports including the local port (index 0).
    pub ports: usize,
    /// Depth of each per-port input FIFO, in flits.
    pub input_depth: usize,
    /// Total central-buffer capacity in flits (banks × rows × flits per
    /// row in the power model's geometry).
    pub capacity: usize,
    /// Memory write ports (flits that can enter the CB per cycle).
    pub write_ports: usize,
    /// Memory read ports (flits that can leave the CB per cycle).
    pub read_ports: usize,
    /// Flit width in bits.
    pub flit_bits: u32,
}

impl CentralRouterSpec {
    /// The paper's CB configuration for a 5-port chip-to-chip router:
    /// 64-flit input buffers, a 4-bank × 2560-row × 1-flit-wide central
    /// buffer (10 240 flits), 2 read + 2 write ports.
    pub fn paper(flit_bits: u32) -> CentralRouterSpec {
        CentralRouterSpec {
            ports: 5,
            input_depth: 64,
            capacity: 4 * 2560,
            write_ports: 2,
            read_ports: 2,
            flit_bits,
        }
    }

    fn validate(&self) {
        assert!(self.ports >= 2, "need at least 2 ports");
        assert!(self.input_depth >= 1, "input FIFOs need at least 1 slot");
        assert!(self.capacity >= 1, "central buffer needs capacity");
        assert!(self.write_ports >= 1, "need at least 1 write port");
        assert!(self.read_ports >= 1, "need at least 1 read port");
        assert!(self.flit_bits >= 1, "flit width must be positive");
        assert!(self.ports <= 128, "at most 128 ports");
    }
}

/// A flit staged in the central buffer, readable from `ready`.
#[derive(Debug, Clone, Copy)]
struct Staged {
    ready: u64,
    flit: FlitRef,
    /// Payload sample, cached at write time so read-side activity does
    /// not need an arena lookup.
    payload: u64,
}

/// The central-buffered router.
#[derive(Debug, Clone)]
pub struct CentralRouter {
    node: usize,
    spec: CentralRouterSpec,
    inputs: Vec<FlitFifo<FlitRef>>,
    /// Logical per-output queues inside the shared memory.
    out_queues: Vec<VecDeque<Staged>>,
    occupancy: usize,
    write_arb: RoundRobinArbiter,
    read_arb: RoundRobinArbiter,
    /// Downstream credits per output port (input-FIFO slots of the next
    /// router).
    out_credits: Vec<u32>,
    /// Payload history on the CB write and read fabrics.
    write_bus_last: u64,
    read_bus_last: u64,
}

impl CentralRouter {
    /// Builds a router for node index `node`. `downstream_depth` is the
    /// input-FIFO depth of neighbouring routers (initial credit count).
    ///
    /// # Panics
    ///
    /// Panics if the spec is inconsistent.
    pub fn new(node: usize, spec: CentralRouterSpec, downstream_depth: usize) -> CentralRouter {
        spec.validate();
        CentralRouter {
            node,
            inputs: (0..spec.ports)
                .map(|_| FlitFifo::new(spec.input_depth, spec.flit_bits))
                .collect(),
            out_queues: (0..spec.ports).map(|_| VecDeque::new()).collect(),
            occupancy: 0,
            write_arb: RoundRobinArbiter::new(spec.ports.max(2)),
            read_arb: RoundRobinArbiter::new(spec.ports.max(2)),
            out_credits: vec![downstream_depth as u32; spec.ports],
            write_bus_last: 0,
            read_bus_last: 0,
            spec,
        }
    }

    /// The router's node index.
    pub fn node(&self) -> usize {
        self.node
    }

    /// The configuration.
    pub fn spec(&self) -> &CentralRouterSpec {
        &self.spec
    }

    /// Free slots in the input FIFO of `port` (the local source reads
    /// its own router's occupancy directly).
    pub fn input_free(&self, port: usize) -> usize {
        self.inputs[port].free()
    }

    /// Flits queued in the input FIFO of `port`.
    pub fn inputs_len(&self, port: usize) -> usize {
        self.inputs[port].len()
    }

    /// Flits currently inside the router (input FIFOs + central buffer).
    pub fn buffered_flits(&self) -> usize {
        self.inputs.iter().map(|f| f.len()).sum::<usize>() + self.occupancy
    }

    /// Central-buffer occupancy in flits.
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// Snapshot of every occupied input FIFO, for stall diagnostics:
    /// `(port, occupancy, head flit)`.
    pub fn occupied_inputs<'a>(
        &'a self,
        arena: &'a FlitArena,
    ) -> impl Iterator<Item = (usize, usize, &'a Flit)> + 'a {
        self.inputs
            .iter()
            .enumerate()
            .filter_map(move |(port, fifo)| {
                fifo.head().map(|&head| (port, fifo.len(), arena.get(head)))
            })
    }

    /// Accepts a flit into input `port` at `cycle`, charging the
    /// buffer-write event.
    ///
    /// # Panics
    ///
    /// Panics if the input FIFO is full (flow-control violation).
    pub fn accept(
        &mut self,
        flit: FlitRef,
        port: usize,
        _vc: usize,
        cycle: u64,
        ledger: &mut EnergyLedger,
        arena: &mut FlitArena,
    ) {
        let f = arena.get_mut(flit);
        f.ready = cycle + 1;
        let payload = f.payload;
        if let Some(activity) = self.inputs[port].push(flit, payload) {
            ledger.buffer_write(self.node, &activity);
        }
    }

    /// Adds one downstream credit to output `port`.
    pub fn credit(&mut self, port: usize, _vc: usize) {
        self.out_credits[port] += 1;
    }

    /// Downstream credits currently available at output `port`.
    pub fn output_credits(&self, port: usize) -> u32 {
        self.out_credits[port]
    }

    /// Write-port allocation: move up to `write_ports` flits from input
    /// FIFOs into the central buffer. The ports are a *memory* bandwidth
    /// limit, not a per-input one — a single hot input FIFO may use
    /// every write port in one cycle (pipelined shared memory; this is
    /// what lets CB routers outrun crossbar routers under broadcast
    /// traffic, Fig. 7d).
    fn write_stage(
        &mut self,
        cycle: u64,
        ledger: &mut EnergyLedger,
        out: &mut StepOutput,
        arena: &FlitArena,
    ) {
        for _ in 0..self.spec.write_ports {
            if self.occupancy >= self.spec.capacity {
                return;
            }
            let mut mask = 0u128;
            for (port, fifo) in self.inputs.iter().enumerate() {
                if let Some(&head) = fifo.head() {
                    if cycle >= arena.get(head).ready {
                        mask |= 1 << port;
                    }
                }
            }
            if mask == 0 {
                return;
            }
            let grant = self.write_arb.arbitrate(mask);
            ledger.arbitration(self.node, &grant.activity);
            let Some(in_port) = grant.winner else { return };
            let (flit, stored) = self.inputs[in_port].pop().expect("granted FIFO has a flit");
            if stored {
                ledger.buffer_read(self.node);
            }
            let f = arena.get(flit);
            let payload = f.payload;
            let out_port = f.out_port().index();
            // Central-buffer write: bitline activity against the write
            // bus; cell activity approximated by the same distance (the
            // overwritten slot in so large a memory is uncorrelated).
            let h = scaled_hamming(payload, self.write_bus_last, self.spec.flit_bits);
            ledger.central_write(
                self.node,
                &WriteActivity {
                    switching_bitlines: h,
                    switching_cells: h,
                },
            );
            self.write_bus_last = payload;
            self.out_queues[out_port].push_back(Staged {
                ready: cycle + 1,
                flit,
                payload,
            });
            self.occupancy += 1;
            out.credits.push(CreditReturn { in_port, vc: 0 });
        }
    }

    /// Read-port allocation: move up to `read_ports` flits from the
    /// central buffer onto output links.
    fn read_stage(
        &mut self,
        cycle: u64,
        ledger: &mut EnergyLedger,
        out: &mut StepOutput,
        mut obs: Option<&mut ObsSink>,
        arena: &mut FlitArena,
    ) {
        let mut mask = 0u128;
        for (port, q) in self.out_queues.iter().enumerate() {
            if let Some(staged) = q.front() {
                if cycle >= staged.ready && (port == 0 || self.out_credits[port] > 0) {
                    mask |= 1 << port;
                }
            }
        }
        if mask == 0 {
            return;
        }
        let (winners, grant) = self.read_arb.arbitrate_multi(mask, self.spec.read_ports);
        ledger.arbitration(self.node, &grant.activity);
        for out_port in winners {
            let staged = self.out_queues[out_port]
                .pop_front()
                .expect("granted queue has a flit");
            ledger.central_read(self.node, self.read_bus_last, staged.payload);
            self.read_bus_last = staged.payload;
            self.occupancy -= 1;
            if out_port != 0 {
                debug_assert!(self.out_credits[out_port] > 0);
                self.out_credits[out_port] -= 1;
            }
            let f = arena.get_mut(staged.flit);
            f.target_vc = 0;
            let packet = f.packet;
            if let Some(o) = obs.as_deref_mut() {
                o.sa_grant(self.node, packet.0, cycle);
            }
            out.departures.push(Departure {
                out_port,
                flit: staged.flit,
            });
        }
    }

    /// Advances the router one cycle.
    pub fn step(
        &mut self,
        cycle: u64,
        ledger: &mut EnergyLedger,
        arena: &mut FlitArena,
    ) -> StepOutput {
        self.step_observed(cycle, ledger, None, arena)
    }

    /// [`CentralRouter::step`] with an optional observer receiving a
    /// switch-traversal event per read-port grant (the CB analogue of a
    /// crossbar router's SA grant).
    pub fn step_observed(
        &mut self,
        cycle: u64,
        ledger: &mut EnergyLedger,
        obs: Option<&mut ObsSink>,
        arena: &mut FlitArena,
    ) -> StepOutput {
        let mut out = StepOutput::new();
        self.step_into(cycle, ledger, obs, &mut out, arena);
        out
    }

    /// Allocation-free variant of [`CentralRouter::step_observed`]:
    /// clears and fills a caller-owned [`StepOutput`]. The logical
    /// per-output queues stay `VecDeque`s — they are ring buffers
    /// internally, so once grown to their steady-state occupancy they
    /// never reallocate. Flits are addressed through the shared
    /// [`FlitArena`] — the router moves 8-byte handles, never whole
    /// `Flit` values.
    pub fn step_into(
        &mut self,
        cycle: u64,
        ledger: &mut EnergyLedger,
        obs: Option<&mut ObsSink>,
        out: &mut StepOutput,
        arena: &mut FlitArena,
    ) {
        out.clear();
        self.write_stage(cycle, ledger, out, arena);
        self.read_stage(cycle, ledger, out, obs, arena);
    }

    /// Encodes the full router state (input FIFOs, staged central-buffer
    /// queues, arbiters, credits, bus history) for a snapshot.
    pub(crate) fn encode(
        &self,
        w: &mut ByteWriter,
        encode_ref: &mut dyn FnMut(&FlitRef, &mut ByteWriter),
    ) {
        for fifo in &self.inputs {
            fifo.encode_with(w, encode_ref);
        }
        for q in &self.out_queues {
            w.usize(q.len());
            for s in q {
                w.u64(s.ready);
                encode_ref(&s.flit, w);
                w.u64(s.payload);
            }
        }
        w.usize(self.occupancy);
        self.write_arb.encode(w);
        self.read_arb.encode(w);
        for &c in &self.out_credits {
            w.u32(c);
        }
        w.u64(self.write_bus_last);
        w.u64(self.read_bus_last);
    }

    /// Restores state encoded by [`CentralRouter::encode`] into this
    /// router, which must have the same spec.
    pub(crate) fn decode_into(
        &mut self,
        r: &mut ByteReader<'_>,
        decode_ref: &mut dyn FnMut(&mut ByteReader<'_>) -> Result<FlitRef, SnapshotError>,
    ) -> Result<(), SnapshotError> {
        for fifo in self.inputs.iter_mut() {
            fifo.decode_into_with(r, decode_ref)?;
        }
        let mut staged_total = 0usize;
        for q in self.out_queues.iter_mut() {
            let n = r.count(17)?;
            q.clear();
            for _ in 0..n {
                let ready = r.u64()?;
                let flit = decode_ref(r)?;
                let payload = r.u64()?;
                q.push_back(Staged {
                    ready,
                    flit,
                    payload,
                });
            }
            staged_total += n;
        }
        let occupancy = r.usize()?;
        if occupancy != staged_total || occupancy > self.spec.capacity {
            return Err(SnapshotError::Invalid("central-buffer occupancy"));
        }
        self.occupancy = occupancy;
        self.write_arb.decode_into(r)?;
        self.read_arb.decode_into(r)?;
        for c in self.out_credits.iter_mut() {
            *c = r.u32()?;
        }
        self.write_bus_last = r.u64()?;
        self.read_bus_last = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::{Component, PowerModels};
    use crate::flit::{make_packet, PacketId};

    /// Accept an owned flit by allocating it into the test arena first
    /// (the pre-arena API shape, used throughout these tests).
    fn accept(
        r: &mut CentralRouter,
        arena: &mut FlitArena,
        flit: Flit,
        port: usize,
        cycle: u64,
        ledger: &mut EnergyLedger,
    ) {
        let handle = arena.alloc(flit);
        r.accept(handle, port, 0, cycle, ledger, arena);
    }
    use orion_net::{dor_route, DimensionOrder, NodeId, Topology};
    use orion_power::{
        ArbiterKind, ArbiterParams, ArbiterPower, BufferParams, BufferPower, CentralBufferParams,
        CentralBufferPower, CrossbarKind, CrossbarParams, CrossbarPower, LinkPower,
    };
    use orion_tech::{ProcessNode, Technology, Watts};
    use std::sync::Arc;

    fn ledger(nodes: usize) -> EnergyLedger {
        let tech = Technology::new(ProcessNode::Nm100);
        let crossbar =
            CrossbarPower::new(&CrossbarParams::new(CrossbarKind::Matrix, 5, 5, 32), tech).unwrap();
        let arbiter =
            ArbiterPower::new(&ArbiterParams::new(ArbiterKind::RoundRobin, 5), tech).unwrap();
        EnergyLedger::new(
            PowerModels {
                flit_bits: 32,
                buffer: BufferPower::new(&BufferParams::new(64, 32), tech).unwrap(),
                crossbar,
                arbiter,
                link: LinkPower::chip_to_chip(Watts(3.0), 32),
                central: Some(
                    CentralBufferPower::new(&CentralBufferParams::new(4, 256, 32), tech).unwrap(),
                ),
            },
            nodes,
        )
    }

    fn spec() -> CentralRouterSpec {
        CentralRouterSpec {
            ports: 5,
            input_depth: 4,
            capacity: 64,
            write_ports: 2,
            read_ports: 2,
            flit_bits: 32,
        }
    }

    fn packet(id: u64, len: u32) -> Vec<Flit> {
        let t = Topology::torus(&[4, 4]).unwrap();
        let r = Arc::new(dor_route(&t, NodeId(0), NodeId(5), DimensionOrder::YFirst));
        make_packet(PacketId(id), NodeId(0), NodeId(5), r, len, 0, false)
    }

    #[test]
    fn flit_takes_write_then_read_path() {
        let mut r = CentralRouter::new(0, spec(), 4);
        let mut led = ledger(1);
        let mut arena = FlitArena::new();
        let f = packet(1, 1);
        accept(&mut r, &mut arena, f[0].clone(), 1, 10, &mut led);
        assert!(r.step(10, &mut led, &mut arena).departures.is_empty()); // pipeline
        let out = r.step(11, &mut led, &mut arena); // CB write
        assert!(out.departures.is_empty());
        assert_eq!(out.credits, vec![CreditReturn { in_port: 1, vc: 0 }]);
        assert_eq!(r.occupancy(), 1);
        let out = r.step(12, &mut led, &mut arena); // CB read -> departure
        assert_eq!(out.departures.len(), 1);
        assert_eq!(out.departures[0].out_port, 3); // d1+
        assert_eq!(r.occupancy(), 0);
        assert_eq!(led.op_count(0, Component::CentralBuffer), 2); // write+read
                                                                  // The input FIFO was empty: the flit bypassed it (no SRAM ops),
                                                                  // but the central buffer is the switching medium and is always
                                                                  // charged.
        assert_eq!(led.op_count(0, Component::Buffer), 0);
    }

    #[test]
    fn write_ports_limit_throughput() {
        let mut r = CentralRouter::new(0, spec(), 64);
        let mut led = ledger(1);
        let mut arena = FlitArena::new();
        // Five inputs each offer a flit in the same cycle.
        for port in 0..5 {
            let f = packet(port as u64, 1);
            accept(&mut r, &mut arena, f[0].clone(), port, 0, &mut led);
        }
        let out = r.step(1, &mut led, &mut arena);
        assert_eq!(out.credits.len(), 2, "only 2 write ports");
        let out = r.step(2, &mut led, &mut arena);
        assert_eq!(out.credits.len(), 2);
        let out = r.step(3, &mut led, &mut arena);
        assert_eq!(out.credits.len(), 1);
    }

    #[test]
    fn read_ports_limit_departures() {
        let mut r = CentralRouter::new(0, spec(), 64);
        let mut led = ledger(1);
        let mut arena = FlitArena::new();
        // Build routes to three different output ports by using
        // different destinations.
        let t = Topology::torus(&[4, 4]).unwrap();
        for (i, dst) in [1usize, 4, 3].iter().enumerate() {
            let route = Arc::new(dor_route(
                &t,
                NodeId(0),
                NodeId(*dst),
                DimensionOrder::YFirst,
            ));
            let f = make_packet(
                PacketId(i as u64),
                NodeId(0),
                NodeId(*dst),
                route,
                1,
                0,
                false,
            );
            accept(&mut r, &mut arena, f[0].clone(), i, 0, &mut led);
        }
        // Cycle 1-2: writes (2 ports). Cycle 2+: reads capped at 2.
        r.step(1, &mut led, &mut arena);
        let out = r.step(2, &mut led, &mut arena);
        assert!(out.departures.len() <= 2, "read ports cap departures");
    }

    #[test]
    fn no_head_of_line_blocking_across_outputs() {
        // A blocked output (no credits) must not stop traffic to other
        // outputs that entered later through the same input FIFO.
        let t = Topology::torus(&[4, 4]).unwrap();
        let mut r = CentralRouter::new(0, spec(), 0); // zero downstream credits
        let mut led = ledger(1);
        let mut arena = FlitArena::new();
        // First packet: to a network port (credits 0 -> stuck in CB).
        let stuck_route = Arc::new(dor_route(&t, NodeId(0), NodeId(5), DimensionOrder::YFirst));
        let stuck = make_packet(PacketId(1), NodeId(0), NodeId(5), stuck_route, 1, 0, false);
        accept(&mut r, &mut arena, stuck[0].clone(), 1, 0, &mut led);
        // Second packet (same input FIFO): ejects locally (port 0, no
        // credit needed).
        let eject_route = Arc::new(dor_route(&t, NodeId(0), NodeId(0), DimensionOrder::YFirst));
        let eject = make_packet(PacketId(2), NodeId(0), NodeId(0), eject_route, 1, 1, false);
        accept(&mut r, &mut arena, eject[0].clone(), 1, 1, &mut led);
        let mut ejected = false;
        for cycle in 1..8 {
            for d in r.step(cycle, &mut led, &mut arena).departures {
                assert_eq!(
                    arena.get(d.flit).packet,
                    PacketId(2),
                    "stuck packet must not depart"
                );
                assert_eq!(d.out_port, 0);
                ejected = true;
            }
        }
        assert!(ejected, "the later packet bypassed the blocked one");
        assert_eq!(r.occupancy(), 1, "blocked flit still in the CB");
    }

    #[test]
    fn capacity_gates_writes() {
        let mut small = CentralRouterSpec {
            capacity: 1,
            ..spec()
        };
        small.input_depth = 8;
        let mut r = CentralRouter::new(0, small, 0);
        let mut led = ledger(1);
        let mut arena = FlitArena::new();
        for f in packet(1, 3) {
            accept(&mut r, &mut arena, f, 1, 0, &mut led);
        }
        r.step(1, &mut led, &mut arena);
        assert_eq!(r.occupancy(), 1);
        // Full: no more writes.
        let out = r.step(2, &mut led, &mut arena);
        assert!(out.credits.is_empty());
        assert_eq!(r.occupancy(), 1);
    }

    #[test]
    fn write_arbiter_is_fair_across_inputs_over_time() {
        // Five inputs continuously loaded: over 10 cycles the 2 write
        // ports must grant every input 4 times (20 grants / 5 inputs).
        let mut r = CentralRouter::new(0, spec(), 64);
        let mut led = ledger(1);
        let mut arena = FlitArena::new();
        let mut granted = [0u32; 5];
        let mut next_id = 0u64;
        for cycle in 0..11u64 {
            for port in 0..5 {
                while r.input_free(port) > 0 && r.inputs_len(port) < 2 {
                    let f = packet(next_id, 1);
                    next_id += 1;
                    accept(&mut r, &mut arena, f[0].clone(), port, cycle, &mut led);
                }
            }
            if cycle == 0 {
                continue; // flits become ready at cycle 1
            }
            for c in r.step(cycle, &mut led, &mut arena).credits {
                granted[c.in_port] += 1;
            }
        }
        let total: u32 = granted.iter().sum();
        assert_eq!(total, 20, "2 write ports x 10 cycles");
        for (port, &g) in granted.iter().enumerate() {
            assert_eq!(g, 4, "input {port} got {granted:?}");
        }
    }

    #[test]
    fn occupancy_consistent_after_mixed_operations() {
        let mut r = CentralRouter::new(0, spec(), 64);
        let mut led = ledger(1);
        let mut arena = FlitArena::new();
        for f in packet(1, 3) {
            accept(&mut r, &mut arena, f, 1, 0, &mut led);
        }
        let mut entered = 0usize;
        let mut left = 0usize;
        for cycle in 1..10 {
            let out = r.step(cycle, &mut led, &mut arena);
            entered += out.credits.len();
            left += out.departures.len();
            assert_eq!(r.occupancy(), entered - left, "cycle {cycle}");
        }
        assert_eq!(left, 3, "all flits eventually depart");
    }

    #[test]
    fn credits_gate_reads() {
        let mut r = CentralRouter::new(0, spec(), 1); // one credit per output
        let mut led = ledger(1);
        let mut arena = FlitArena::new();
        for f in packet(1, 2) {
            accept(&mut r, &mut arena, f, 1, 0, &mut led);
        }
        let mut departed = 0;
        for cycle in 1..8 {
            departed += r.step(cycle, &mut led, &mut arena).departures.len();
        }
        assert_eq!(departed, 1, "single downstream credit");
        r.credit(3, 0);
        departed += r.step(9, &mut led, &mut arena).departures.len();
        assert_eq!(departed, 2);
    }
}
