//! Input-buffered crossbar router with virtual channels.
//!
//! One implementation covers the paper's two flow-control disciplines —
//! "wormhole and virtual-channel networks share exactly the same modules
//! but with differently configured functional and timing behavior"
//! (§2.2):
//!
//! * **Virtual-channel router** ([`VcRouterSpec::virtual_channel`]): the
//!   3-stage pipeline of §4.2 — virtual-channel allocation (VA), switch
//!   allocation (SA), crossbar traversal (ST). Head flits spend a cycle
//!   in VA; every flit spends a cycle in the buffer before SA and a
//!   cycle in ST.
//! * **Wormhole router** ([`VcRouterSpec::wormhole`]): the 2-stage
//!   pipeline — switch arbitration, crossbar traversal. There is a
//!   single queue per input port and the output port is held by a packet
//!   from head grant to tail traversal.
//!
//! Timing convention (shared with [`Network`](crate::network::Network)):
//! a flit written into an input buffer at cycle `t` may compete for SA
//! (wormhole) or VA (virtual-channel) from `t+1`; a VA grant at `u`
//! allows SA from `u+1`; an SA grant at `v` reads the buffer and the
//! flit reaches the neighbouring router at `v+2` (one cycle of crossbar
//! traversal + one cycle of link propagation, §4.1) or the local sink at
//! `v+1` ("immediate ejection").
//!
//! Torus deadlock freedom is governed by [`VcDiscipline`]: unrestricted
//! allocation (the paper's behaviour), Dally's dateline classes, or
//! Duato-style escape VCs.

use orion_power::ArbiterKind;

/// When a head flit may claim downstream buffer space.
///
/// The paper's routers use flit-level (wormhole / virtual-channel) flow
/// control; the alternatives model store-bigger units:
///
/// * **Cut-through**: a head advances only when the downstream buffer
///   can hold the *whole packet* (IBM SP2-class switches).
/// * **Bubble**: cut-through plus the bubble condition of Puente/Carrión
///   (as in the BlueGene/L torus): entering a new dimension (or
///   injecting) additionally requires one spare packet-sized bubble in
///   the target channel, which makes dimension-ordered routing on a
///   torus deadlock-free *without* dateline VC classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FlowControl {
    /// Flit-level credits (the paper's wormhole / VC routers).
    #[default]
    FlitLevel,
    /// Whole-packet buffer reservation at the head.
    CutThrough,
    /// Cut-through + bubble condition on dimension entry
    /// (deadlock-free on tori).
    Bubble,
}

/// How output virtual channels may be allocated on a torus.
///
/// Dimension-ordered routing on a torus has cyclic channel dependencies
/// (Dally & Seitz), so unrestricted VC allocation admits deadlock deep
/// past saturation. The paper's experiments behave as if allocation were
/// unrestricted; the alternatives below trade a little throughput for
/// provable deadlock freedom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VcDiscipline {
    /// Any free VC may be allocated (the paper's behaviour). Deadlock
    /// is possible deep past saturation; the experiment runner detects
    /// and reports it.
    #[default]
    Unrestricted,
    /// Dally's dateline scheme: VCs split into two classes; packets
    /// move to class 1 after crossing the wrap-around link of the
    /// dimension they are traversing. Provably deadlock-free; halves
    /// the VCs available to any one packet.
    Dateline,
    /// Duato-style escape VCs: VC 0 and VC 1 form a dateline-restricted
    /// escape pair; all remaining VCs are freely allocatable. Provably
    /// deadlock-free with nearly full VC utilisation when `vcs > 2`
    /// (needs `vcs >= 2`).
    Escape,
}

use orion_obs::ObsSink;

use crate::arb::{FunctionalArbiter, RoundRobinArbiter};
use crate::arena::{FlitArena, FlitRef};
use crate::energy::EnergyLedger;
use crate::fifo::FlitFifo;
use crate::flit::Flit;
use crate::router::{CreditReturn, Departure, StepOutput};
use crate::snapshot::{ByteReader, ByteWriter, SnapshotError};

/// Configuration of a [`VcRouter`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VcRouterSpec {
    /// Ports including the local injection/ejection port (index 0).
    pub ports: usize,
    /// Virtual channels per port.
    pub vcs: usize,
    /// Buffer depth per VC, in flits.
    pub depth: usize,
    /// Flit width in bits.
    pub flit_bits: u32,
    /// Whether the pipeline has a VC-allocation stage (3-stage VC router
    /// vs. 2-stage wormhole router).
    pub has_va_stage: bool,
    /// VC allocation discipline (torus deadlock avoidance).
    pub discipline: VcDiscipline,
    /// Arbiter discipline for switch allocation (the paper's routers use
    /// matrix arbiters).
    pub arbiter_kind: ArbiterKind,
    /// Switch-allocation matching iterations per cycle (iSLIP-style);
    /// extra iterations only help routers with multiple VCs.
    pub sa_iterations: usize,
    /// Buffer-claim granularity for head flits.
    pub flow_control: FlowControl,
}

impl VcRouterSpec {
    /// The paper's wormhole router: one queue of `depth` flits per port,
    /// 2-stage pipeline.
    pub fn wormhole(ports: usize, depth: usize, flit_bits: u32) -> VcRouterSpec {
        VcRouterSpec {
            ports,
            vcs: 1,
            depth,
            flit_bits,
            has_va_stage: false,
            discipline: VcDiscipline::Unrestricted,
            arbiter_kind: ArbiterKind::Matrix,
            sa_iterations: 1,
            flow_control: FlowControl::FlitLevel,
        }
    }

    /// The paper's virtual-channel router: `vcs` VCs of `depth` flits
    /// per port, 3-stage pipeline.
    ///
    /// All VCs are freely allocatable, as in the paper's experiments —
    /// on a torus this admits (rare, deep-past-saturation) deadlock,
    /// which the experiment runner detects and reports. Use
    /// [`with_discipline`](VcRouterSpec::with_discipline) for the
    /// provably deadlock-free alternatives at some throughput cost.
    pub fn virtual_channel(ports: usize, vcs: usize, depth: usize, flit_bits: u32) -> VcRouterSpec {
        VcRouterSpec {
            ports,
            vcs,
            depth,
            flit_bits,
            has_va_stage: true,
            discipline: VcDiscipline::Unrestricted,
            arbiter_kind: ArbiterKind::Matrix,
            sa_iterations: 3,
            flow_control: FlowControl::FlitLevel,
        }
    }

    /// Selects the buffer-claim granularity for head flits.
    pub fn with_flow_control(mut self, flow_control: FlowControl) -> VcRouterSpec {
        self.flow_control = flow_control;
        self
    }

    /// Selects the VC allocation discipline (torus deadlock avoidance).
    ///
    /// # Panics
    ///
    /// The resulting spec fails validation if the discipline needs more
    /// VCs than configured (`vcs >= 2` for dateline/escape).
    pub fn with_discipline(mut self, discipline: VcDiscipline) -> VcRouterSpec {
        self.discipline = discipline;
        self
    }

    /// Total buffering per input port in flits.
    pub fn buffering_per_port(&self) -> usize {
        self.vcs * self.depth
    }

    fn validate(&self) {
        assert!(self.ports >= 2, "need at least 2 ports");
        assert!(self.vcs >= 1, "need at least 1 VC");
        assert!(self.depth >= 1, "need at least 1 flit of buffering");
        assert!(self.flit_bits >= 1, "flit width must be positive");
        assert!(
            self.discipline == VcDiscipline::Unrestricted || self.vcs >= 2,
            "dateline/escape deadlock avoidance needs >= 2 VCs"
        );
        assert!(
            self.has_va_stage || self.vcs == 1,
            "a wormhole (no-VA) router has a single VC"
        );
        assert!(
            self.ports * self.vcs <= 128,
            "at most 128 input VCs per router"
        );
        assert!(self.sa_iterations >= 1, "need at least one SA iteration");
    }
}

/// Per-input-VC packet state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VcState {
    /// No packet at the head of this VC.
    Idle,
    /// Head flit waiting for an output VC (VA) or, for wormhole, a free
    /// output port.
    Routing,
    /// Packet holds output `(port, vc)` until its tail passes.
    Active { out_port: usize, out_vc: usize },
}

#[derive(Debug, Clone)]
struct InputVc {
    fifo: FlitFifo<FlitRef>,
    state: VcState,
    /// Earliest cycle the head flit may compete for SA (set by VA).
    sa_ready: u64,
    /// Cached fields of the head flit, refreshed whenever the head
    /// changes (accept into an empty FIFO, or pop exposing a successor).
    /// Valid only while the FIFO is non-empty. A flit's routing fields
    /// are immutable while it sits buffered, so the cache lets the
    /// per-cycle VA/SA scans skip the arena lookup and the route
    /// indirection entirely.
    head_ready: u64,
    head_out_port: u8,
    head_vc_class: u8,
    head_is_head: bool,
    head_len: u32,
}

impl InputVc {
    /// Re-caches the head flit's fields from the arena. No-op when the
    /// FIFO is empty.
    fn refresh_head(&mut self, arena: &FlitArena) {
        if let Some(&h) = self.fifo.head() {
            let f = arena.get(h);
            self.head_ready = f.ready;
            self.head_out_port = f.out_port().index() as u8;
            self.head_vc_class = f.vc_class;
            self.head_is_head = f.is_head();
            self.head_len = f.packet_len;
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct OutputVc {
    /// The input VC whose packet currently holds this output VC.
    owner: Option<(usize, usize)>,
    /// Free buffer slots in the downstream input VC.
    credits: u32,
}

/// Pre-sized scratch buffers for the VA/SA stages, owned by the router
/// so the per-cycle hot path never allocates (stages borrow them via a
/// `mem::take` dance around `&mut self`).
#[derive(Debug, Clone, Default)]
struct Scratch {
    /// VA: requesting input VCs binned by output port.
    requests_per_out: Vec<u128>,
    /// VA: dateline class per requesting input VC (only entries whose
    /// request bit is set this cycle are ever read).
    classes: Vec<u8>,
    /// SA: matched input / output ports this cycle.
    in_matched: Vec<bool>,
    out_matched: Vec<bool>,
    /// SA stage 1 nominations: `(in_vc, out_port, out_vc, claims)`.
    nominees: Vec<Option<(usize, usize, usize, bool)>>,
    /// SA stage 1 per-VC request metadata: `(out_port, out_vc, claims)`.
    meta: Vec<Option<(usize, usize, bool)>>,
}

impl Scratch {
    fn new(ports: usize, vcs: usize) -> Scratch {
        Scratch {
            requests_per_out: vec![0; ports],
            classes: vec![0; ports * vcs],
            in_matched: vec![false; ports],
            out_matched: vec![false; ports],
            nominees: vec![None; ports],
            meta: vec![None; vcs],
        }
    }
}

/// The input-buffered crossbar router.
#[derive(Debug, Clone)]
pub struct VcRouter {
    node: usize,
    spec: VcRouterSpec,
    inputs: Vec<Vec<InputVc>>,
    outputs: Vec<Vec<OutputVc>>,
    /// Flits across all input VCs (kept in sync with the FIFOs so the
    /// per-cycle empty check is O(1) instead of an O(P·V) scan).
    buffered: usize,
    /// Bit `port * vcs + vc` set while that input VC holds any flit
    /// (the spec validates `ports * vcs <= 128`). Lets the per-cycle
    /// stages walk only occupied VCs instead of scanning all P·V.
    occupied: u128,
    /// VA: one multi-grant arbiter per output port over input VCs.
    va_arbiters: Vec<RoundRobinArbiter>,
    /// SA stage 1: per input port, over its VCs (only used when vcs > 1).
    sa_input_arbiters: Vec<RoundRobinArbiter>,
    /// SA stage 2: per output port, over input ports.
    sa_output_arbiters: Vec<FunctionalArbiter>,
    /// Last payload observed on each crossbar input / output line.
    xb_in_last: Vec<u64>,
    xb_out_last: Vec<u64>,
    scratch: Scratch,
}

impl VcRouter {
    /// Builds a router for node index `node`.
    ///
    /// # Panics
    ///
    /// Panics if the spec is inconsistent (see [`VcRouterSpec`] field
    /// docs).
    pub fn new(node: usize, spec: VcRouterSpec) -> VcRouter {
        spec.validate();
        let inputs = (0..spec.ports)
            .map(|_| {
                (0..spec.vcs)
                    .map(|_| InputVc {
                        fifo: FlitFifo::new(spec.depth, spec.flit_bits),
                        state: VcState::Idle,
                        sa_ready: 0,
                        head_ready: 0,
                        head_out_port: 0,
                        head_vc_class: 0,
                        head_is_head: false,
                        head_len: 0,
                    })
                    .collect()
            })
            .collect();
        let outputs = (0..spec.ports)
            .map(|_| {
                (0..spec.vcs)
                    .map(|_| OutputVc {
                        owner: None,
                        credits: spec.depth as u32,
                    })
                    .collect()
            })
            .collect();
        let va_arbiters = (0..spec.ports)
            .map(|_| RoundRobinArbiter::new((spec.ports * spec.vcs).max(2)))
            .collect();
        let sa_input_arbiters = (0..spec.ports)
            .map(|_| RoundRobinArbiter::new(spec.vcs.max(2)))
            .collect();
        let sa_output_arbiters = (0..spec.ports)
            .map(|_| FunctionalArbiter::new(spec.arbiter_kind, spec.ports))
            .collect();
        let ports = spec.ports;
        let vcs = spec.vcs;
        VcRouter {
            node,
            spec,
            inputs,
            outputs,
            buffered: 0,
            occupied: 0,
            va_arbiters,
            sa_input_arbiters,
            sa_output_arbiters,
            xb_in_last: vec![0; ports],
            xb_out_last: vec![0; ports],
            scratch: Scratch::new(ports, vcs),
        }
    }

    /// The router's node index.
    pub fn node(&self) -> usize {
        self.node
    }

    /// The configuration.
    pub fn spec(&self) -> &VcRouterSpec {
        &self.spec
    }

    /// Free slots in input `(port, vc)` — used by the local source,
    /// which sees its own router's buffer occupancy directly.
    pub fn input_free(&self, port: usize, vc: usize) -> usize {
        self.inputs[port][vc].fifo.free()
    }

    /// Total flits buffered in the router (for drain detection).
    pub fn buffered_flits(&self) -> usize {
        debug_assert_eq!(
            self.buffered,
            self.inputs
                .iter()
                .flatten()
                .map(|vc| vc.fifo.len())
                .sum::<usize>(),
            "buffered counter out of sync with FIFO occupancy"
        );
        #[cfg(debug_assertions)]
        {
            let mut expect = 0u128;
            for (p, port) in self.inputs.iter().enumerate() {
                for (v, ivc) in port.iter().enumerate() {
                    if !ivc.fifo.is_empty() {
                        expect |= 1 << (p * self.spec.vcs + v);
                    }
                }
            }
            debug_assert_eq!(self.occupied, expect, "occupied bitmask out of sync");
        }
        self.buffered
    }

    /// Snapshot of every occupied input VC, for stall diagnostics:
    /// `(port, vc, occupancy, head flit, waiting)`, where `waiting` is
    /// `true` while the VC's packet has not yet been allocated an
    /// output — a blocked head still negotiating VA/SA rather than a
    /// body flit trailing an established path.
    pub fn occupied_vcs<'a>(
        &'a self,
        arena: &'a FlitArena,
    ) -> impl Iterator<Item = (usize, usize, usize, &'a Flit, bool)> + 'a {
        self.inputs.iter().enumerate().flat_map(move |(port, vcs)| {
            vcs.iter().enumerate().filter_map(move |(vc, ivc)| {
                ivc.fifo.head().map(|&head| {
                    let waiting = !matches!(ivc.state, VcState::Active { .. });
                    (port, vc, ivc.fifo.len(), arena.get(head), waiting)
                })
            })
        })
    }

    /// Accepts a flit into input `(port, vc)` at `cycle`. A buffer-write
    /// event is charged only when the flit is physically stored (flits
    /// streaming through an empty queue bypass the SRAM — §4.4's
    /// fabric-vs-buffer access ratio).
    ///
    /// # Panics
    ///
    /// Panics if the target FIFO is full (a flow-control violation).
    pub fn accept(
        &mut self,
        flit: FlitRef,
        port: usize,
        vc: usize,
        cycle: u64,
        ledger: &mut EnergyLedger,
        arena: &mut FlitArena,
    ) {
        let f = arena.get_mut(flit);
        f.ready = cycle + 1;
        let payload = f.payload;
        let meta = (
            f.out_port().index() as u8,
            f.vc_class,
            f.is_head(),
            f.packet_len,
        );
        self.buffered += 1;
        self.occupied |= 1 << (port * self.spec.vcs + vc);
        let ivc = &mut self.inputs[port][vc];
        let becomes_head = ivc.fifo.is_empty();
        if let Some(activity) = ivc.fifo.push(flit, payload) {
            ledger.buffer_write(self.node, &activity);
        }
        if becomes_head {
            ivc.head_ready = cycle + 1;
            (
                ivc.head_out_port,
                ivc.head_vc_class,
                ivc.head_is_head,
                ivc.head_len,
            ) = meta;
        }
    }

    /// Adds one downstream credit to output `(port, vc)`.
    pub fn credit(&mut self, port: usize, vc: usize) {
        self.outputs[port][vc].credits += 1;
    }

    /// Downstream credits currently available at output `(port, vc)`.
    pub fn output_credits(&self, port: usize, vc: usize) -> u32 {
        self.outputs[port][vc].credits
    }

    /// Refreshes per-VC packet state from queue heads (occupied VCs
    /// only — an empty VC is by definition `Idle` with nothing to do).
    fn update_states(&mut self, arena: &FlitArena) {
        let _ = arena;
        let vcs = self.spec.vcs;
        let mut bits = self.occupied;
        while bits != 0 {
            let r = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let vc = &mut self.inputs[r / vcs][r % vcs];
            if vc.state == VcState::Idle {
                debug_assert!(
                    vc.fifo.head().is_some_and(|&h| arena.get(h).is_head()),
                    "queue head in Idle state must be a head flit"
                );
                vc.state = VcState::Routing;
            }
        }
    }

    /// Whether a packet of dateline class `class` may be allocated
    /// output VC `vc` under the configured discipline.
    fn vc_allowed(&self, class: u8, vc: usize) -> bool {
        match self.spec.discipline {
            VcDiscipline::Unrestricted => true,
            VcDiscipline::Dateline => {
                let half = self.spec.vcs / 2;
                if class == 0 {
                    vc < half
                } else {
                    vc >= half
                }
            }
            VcDiscipline::Escape => vc >= 2 || vc == class as usize,
        }
    }

    /// Virtual-channel allocation stage: for each output port, walk its
    /// free VCs and grant each to one eligible requesting head (classes
    /// may overlap under the escape discipline, so allocation is
    /// per-VC rather than per-class).
    fn va_stage(
        &mut self,
        scratch: &mut Scratch,
        cycle: u64,
        ledger: &mut EnergyLedger,
        mut obs: Option<&mut ObsSink>,
        arena: &FlitArena,
    ) {
        let ports = self.spec.ports;
        let vcs = self.spec.vcs;
        // Single pass over the input VCs, binning requesters by output
        // port (keeps the stage O(P·V) instead of O(P²·V)).
        let requests_per_out = &mut scratch.requests_per_out;
        let classes = &mut scratch.classes;
        requests_per_out.fill(0);
        // `classes` needs no reset: only entries whose request bit was
        // set this cycle are read.
        // Set-bit iteration visits VCs in the same ascending
        // `port * vcs + vc` order as the nested loop it replaced.
        let mut any = false;
        let mut bits = self.occupied;
        while bits != 0 {
            let r = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let ivc = &self.inputs[r / vcs][r % vcs];
            if ivc.state != VcState::Routing {
                continue;
            }
            if cycle < ivc.head_ready {
                continue;
            }
            requests_per_out[ivc.head_out_port as usize] |= 1 << r;
            classes[r] = ivc.head_vc_class.min(1);
            any = true;
        }
        if !any {
            return;
        }
        for (out_port, &requested) in requests_per_out.iter().enumerate().take(ports) {
            let mut requesters = requested;
            if requesters == 0 {
                continue;
            }
            for out_vc in 0..vcs {
                // Every requester granted: the remaining free VCs would
                // all see an empty eligibility mask.
                if requesters == 0 {
                    break;
                }
                if self.outputs[out_port][out_vc].owner.is_some() {
                    continue;
                }
                // Unrestricted allocation admits every requester, so the
                // eligibility mask IS the request mask — skip the per-VC
                // class filter entirely (the dominant hot-path case; the
                // filtered path walks set bits only).
                let eligible = if self.spec.discipline == VcDiscipline::Unrestricted {
                    requesters
                } else {
                    let mut eligible = 0u128;
                    let mut bits = requesters;
                    while bits != 0 {
                        let r = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        if self.vc_allowed(classes[r], out_vc) {
                            eligible |= 1 << r;
                        }
                    }
                    eligible
                };
                if eligible == 0 {
                    continue;
                }
                let grant = self.va_arbiters[out_port].arbitrate(eligible);
                ledger.arbitration(self.node, &grant.activity);
                let Some(w) = grant.winner else { continue };
                requesters &= !(1 << w);
                let (in_port, in_vc) = (w / vcs, w % vcs);
                if let Some(o) = obs.as_deref_mut() {
                    if let Some(&head) = self.inputs[in_port][in_vc].fifo.head() {
                        o.va_grant(self.node, arena.get(head).packet.0, cycle);
                    }
                }
                self.outputs[out_port][out_vc].owner = Some((in_port, in_vc));
                let ivc = &mut self.inputs[in_port][in_vc];
                ivc.state = VcState::Active { out_port, out_vc };
                ivc.sa_ready = cycle + 1;
            }
        }
    }

    /// Switch allocation + crossbar traversal: iterative separable
    /// matching (iSLIP-style). Each iteration, every unmatched input
    /// port nominates one eligible VC whose output port is still
    /// unmatched (stage 1), and every unmatched output port grants one
    /// nominating input (stage 2). Additional iterations let an input
    /// that lost an output re-bid a different VC — this is what gives
    /// virtual-channel routers their higher switch utilisation relative
    /// to wormhole routers (Fig. 5a).
    fn sa_stage(
        &mut self,
        scratch: &mut Scratch,
        cycle: u64,
        ledger: &mut EnergyLedger,
        out: &mut StepOutput,
        mut obs: Option<&mut ObsSink>,
        arena: &mut FlitArena,
    ) {
        scratch.in_matched.fill(false);
        scratch.out_matched.fill(false);
        for _ in 0..self.spec.sa_iterations.max(1) {
            if !self.sa_iteration(cycle, ledger, out, scratch, obs.as_deref_mut(), arena) {
                break;
            }
        }
    }

    /// One SA matching iteration; returns whether any grant was made.
    #[allow(clippy::needless_range_loop)] // indices double as port numbers
    fn sa_iteration(
        &mut self,
        cycle: u64,
        ledger: &mut EnergyLedger,
        out: &mut StepOutput,
        scratch: &mut Scratch,
        mut obs: Option<&mut ObsSink>,
        arena: &mut FlitArena,
    ) -> bool {
        let ports = self.spec.ports;
        let vcs = self.spec.vcs;
        let Scratch {
            in_matched,
            out_matched,
            nominees,
            meta,
            ..
        } = scratch;

        // Stage 1: each unmatched input port nominates one of its VCs
        // whose target output port is still unmatched.
        // nominee[in_port] = (in_vc, out_port, out_vc, claims_output)
        nominees.fill(None);
        let vc_mask = (1u128 << vcs) - 1;
        for in_port in 0..ports {
            if in_matched[in_port] {
                continue;
            }
            let mut mask = 0u128;
            // `meta` needs no reset: the winner's bit is set in `mask`,
            // so its entry was written this round before being read.
            let mut vc_bits = (self.occupied >> (in_port * vcs)) & vc_mask;
            while vc_bits != 0 {
                let in_vc = vc_bits.trailing_zeros() as usize;
                vc_bits &= vc_bits - 1;
                if let Some(req) = self.sa_candidate(in_port, in_vc, cycle) {
                    if out_matched[req.0] {
                        continue;
                    }
                    mask |= 1 << in_vc;
                    meta[in_vc] = Some(req);
                }
            }
            if mask == 0 {
                continue;
            }
            let in_vc = if vcs == 1 {
                0
            } else {
                let grant = self.sa_input_arbiters[in_port].arbitrate(mask);
                ledger.arbitration(self.node, &grant.activity);
                grant.winner.expect("nonzero mask yields a winner")
            };
            let (out_port, out_vc, claims) = meta[in_vc].expect("nominee has metadata");
            nominees[in_port] = Some((in_vc, out_port, out_vc, claims));
        }

        // Stage 2: each unmatched output port grants one input port.
        let mut granted = false;
        for out_port in 0..ports {
            if out_matched[out_port] {
                continue;
            }
            let mut mask = 0u128;
            for (in_port, nominee) in nominees.iter().enumerate() {
                if let Some((_, op, _, _)) = nominee {
                    if *op == out_port {
                        mask |= 1 << in_port;
                    }
                }
            }
            if mask == 0 {
                continue;
            }
            let grant = self.sa_output_arbiters[out_port].arbitrate(mask);
            ledger.arbitration(self.node, &grant.activity);
            let Some(in_port) = grant.winner else {
                continue;
            };
            let (in_vc, _, out_vc, claims) = nominees[in_port].expect("granted nominee exists");
            in_matched[in_port] = true;
            out_matched[out_port] = true;
            granted = true;

            // Wormhole late binding: claim the output port at first grant.
            if claims {
                self.outputs[out_port][out_vc].owner = Some((in_port, in_vc));
                self.inputs[in_port][in_vc].state = VcState::Active { out_port, out_vc };
            }

            let ivc = &mut self.inputs[in_port][in_vc];
            let (flit, stored) = ivc.fifo.pop().expect("granted VC has a flit");
            self.buffered -= 1;
            if ivc.fifo.is_empty() {
                self.occupied &= !(1u128 << (in_port * vcs + in_vc));
            } else {
                ivc.refresh_head(arena);
            }
            if stored {
                ledger.buffer_read(self.node);
            }
            let f = arena.get_mut(flit);
            f.target_vc = out_vc as u8;
            let payload = f.payload;
            let packet = f.packet;
            let is_tail = f.is_tail();
            if let Some(o) = obs.as_deref_mut() {
                o.sa_grant(self.node, packet.0, cycle);
            }

            // Crossbar traversal with exact line-switching activity.
            ledger.crossbar_traversal(
                self.node,
                self.xb_in_last[in_port],
                self.xb_out_last[out_port],
                payload,
            );
            self.xb_in_last[in_port] = payload;
            self.xb_out_last[out_port] = payload;

            // Credit back upstream for the freed slot (the network skips
            // this for the local injection port).
            out.credits.push(CreditReturn { in_port, vc: in_vc });

            // Consume a downstream credit, except on ejection.
            if out_port != 0 {
                let ovc = &mut self.outputs[out_port][out_vc];
                debug_assert!(ovc.credits > 0, "SA granted without credit");
                ovc.credits -= 1;
            }

            if is_tail {
                self.outputs[out_port][out_vc].owner = None;
                ivc.state = VcState::Idle;
            }

            out.departures.push(Departure { out_port, flit });
        }
        granted
    }

    /// Downstream credits a flit must see before its switch request is
    /// eligible: body flits always need one slot; heads need more under
    /// cut-through (the whole packet) and bubble flow control (the whole
    /// packet, plus a packet-sized bubble when entering a new dimension
    /// or injecting — the condition that breaks torus deadlock cycles).
    fn required_credits(
        &self,
        is_head: bool,
        packet_len: u32,
        in_port: usize,
        out_port: usize,
    ) -> u32 {
        if !is_head {
            return 1;
        }
        match self.spec.flow_control {
            FlowControl::FlitLevel => 1,
            FlowControl::CutThrough => packet_len,
            FlowControl::Bubble => {
                // Same-dimension continuation keeps the ring's bubble
                // intact; any dimension entry must leave one behind.
                let same_dim =
                    in_port != 0 && out_port != 0 && (in_port - 1) / 2 == (out_port - 1) / 2;
                if same_dim {
                    packet_len
                } else {
                    2 * packet_len
                }
            }
        }
    }

    /// Whether input `(port, vc)`'s head flit may request the switch at
    /// `cycle`; returns `(out_port, out_vc, claims_output)`.
    fn sa_candidate(
        &self,
        in_port: usize,
        in_vc: usize,
        cycle: u64,
    ) -> Option<(usize, usize, bool)> {
        let ivc = &self.inputs[in_port][in_vc];
        if ivc.fifo.is_empty() || cycle < ivc.head_ready {
            return None;
        }
        match ivc.state {
            VcState::Idle => None,
            VcState::Routing => {
                // Wormhole only: heads bid for a free output port
                // directly in SA.
                if self.spec.has_va_stage {
                    return None;
                }
                debug_assert!(ivc.head_is_head);
                let out_port = ivc.head_out_port as usize;
                let out_vc = 0;
                let slot = &self.outputs[out_port][out_vc];
                if slot.owner.is_some() {
                    return None;
                }
                if out_port != 0
                    && slot.credits
                        < self.required_credits(ivc.head_is_head, ivc.head_len, in_port, out_port)
                {
                    return None;
                }
                Some((out_port, out_vc, true))
            }
            VcState::Active { out_port, out_vc } => {
                if ivc.head_is_head && self.spec.has_va_stage && cycle < ivc.sa_ready {
                    return None;
                }
                if out_port != 0
                    && self.outputs[out_port][out_vc].credits
                        < self.required_credits(ivc.head_is_head, ivc.head_len, in_port, out_port)
                {
                    return None;
                }
                Some((out_port, out_vc, false))
            }
        }
    }

    /// Advances the router one cycle: VA (if configured) then SA/ST.
    pub fn step(
        &mut self,
        cycle: u64,
        ledger: &mut EnergyLedger,
        arena: &mut FlitArena,
    ) -> StepOutput {
        self.step_observed(cycle, ledger, None, arena)
    }

    /// [`VcRouter::step`] with an optional observer receiving VA/SA
    /// grant events. `step` is exactly `step_observed(.., None)`; the
    /// split keeps the common unobserved call sites untouched.
    pub fn step_observed(
        &mut self,
        cycle: u64,
        ledger: &mut EnergyLedger,
        obs: Option<&mut ObsSink>,
        arena: &mut FlitArena,
    ) -> StepOutput {
        let mut out = StepOutput::new();
        self.step_into(cycle, ledger, obs, &mut out, arena);
        out
    }

    /// Allocation-free variant of [`VcRouter::step_observed`]: clears
    /// and fills a caller-owned [`StepOutput`] instead of returning a
    /// fresh one, so the network engine can reuse one output buffer
    /// across all routers and cycles. Flits are addressed through the
    /// shared [`FlitArena`] — the router moves 8-byte handles, never
    /// whole `Flit` values.
    pub fn step_into(
        &mut self,
        cycle: u64,
        ledger: &mut EnergyLedger,
        mut obs: Option<&mut ObsSink>,
        out: &mut StepOutput,
        arena: &mut FlitArena,
    ) {
        out.clear();
        if self.buffered_flits() == 0 {
            return;
        }
        self.update_states(arena);
        // The scratch buffers can't be borrowed while `&mut self`
        // methods run, so take them out and put them back (both moves
        // are pointer swaps, no allocation).
        let mut scratch = std::mem::take(&mut self.scratch);
        if self.spec.has_va_stage {
            self.va_stage(&mut scratch, cycle, ledger, obs.as_deref_mut(), arena);
        }
        self.sa_stage(&mut scratch, cycle, ledger, out, obs, arena);
        self.scratch = scratch;
    }

    /// Encodes the full router state (input VCs, output VC owners and
    /// credits, arbiter state, crossbar line history) for a snapshot.
    /// The per-cycle [`Scratch`] buffers are excluded — they are dead
    /// outside a `step` call, which is the only place snapshots are not
    /// taken.
    pub(crate) fn encode(
        &self,
        w: &mut ByteWriter,
        encode_ref: &mut dyn FnMut(&FlitRef, &mut ByteWriter),
    ) {
        w.usize(self.buffered);
        w.u128(self.occupied);
        for port in &self.inputs {
            for ivc in port {
                ivc.fifo.encode_with(w, encode_ref);
                match ivc.state {
                    VcState::Idle => w.u8(0),
                    VcState::Routing => w.u8(1),
                    VcState::Active { out_port, out_vc } => {
                        w.u8(2);
                        w.usize(out_port);
                        w.usize(out_vc);
                    }
                }
                w.u64(ivc.sa_ready);
                w.u64(ivc.head_ready);
                w.u8(ivc.head_out_port);
                w.u8(ivc.head_vc_class);
                w.bool(ivc.head_is_head);
                w.u32(ivc.head_len);
            }
        }
        for port in &self.outputs {
            for ovc in port {
                match ovc.owner {
                    Some((p, v)) => {
                        w.bool(true);
                        w.usize(p);
                        w.usize(v);
                    }
                    None => w.bool(false),
                }
                w.u32(ovc.credits);
            }
        }
        for a in &self.va_arbiters {
            a.encode(w);
        }
        for a in &self.sa_input_arbiters {
            a.encode(w);
        }
        for a in &self.sa_output_arbiters {
            a.encode(w);
        }
        for &x in &self.xb_in_last {
            w.u64(x);
        }
        for &x in &self.xb_out_last {
            w.u64(x);
        }
    }

    /// Restores state encoded by [`VcRouter::encode`] into this router,
    /// which must have the same spec (shape is validated per field).
    pub(crate) fn decode_into(
        &mut self,
        r: &mut ByteReader<'_>,
        decode_ref: &mut dyn FnMut(&mut ByteReader<'_>) -> Result<FlitRef, SnapshotError>,
    ) -> Result<(), SnapshotError> {
        let ports = self.spec.ports;
        let vcs = self.spec.vcs;
        let buffered = r.usize()?;
        let occupied = r.u128()?;
        for port in self.inputs.iter_mut() {
            for ivc in port.iter_mut() {
                ivc.fifo.decode_into_with(r, decode_ref)?;
                ivc.state = match r.u8()? {
                    0 => VcState::Idle,
                    1 => VcState::Routing,
                    2 => {
                        let out_port = r.usize()?;
                        let out_vc = r.usize()?;
                        if out_port >= ports || out_vc >= vcs {
                            return Err(SnapshotError::Invalid("vc state output"));
                        }
                        VcState::Active { out_port, out_vc }
                    }
                    _ => return Err(SnapshotError::Invalid("vc state tag")),
                };
                ivc.sa_ready = r.u64()?;
                ivc.head_ready = r.u64()?;
                ivc.head_out_port = r.u8()?;
                ivc.head_vc_class = r.u8()?;
                ivc.head_is_head = r.bool()?;
                ivc.head_len = r.u32()?;
            }
        }
        for port in self.outputs.iter_mut() {
            for ovc in port.iter_mut() {
                ovc.owner = if r.bool()? {
                    let p = r.usize()?;
                    let v = r.usize()?;
                    if p >= ports || v >= vcs {
                        return Err(SnapshotError::Invalid("output vc owner"));
                    }
                    Some((p, v))
                } else {
                    None
                };
                let credits = r.u32()?;
                if credits as usize > self.spec.depth {
                    return Err(SnapshotError::Invalid("output vc credits"));
                }
                ovc.credits = credits;
            }
        }
        for a in self.va_arbiters.iter_mut() {
            a.decode_into(r)?;
        }
        for a in self.sa_input_arbiters.iter_mut() {
            a.decode_into(r)?;
        }
        for a in self.sa_output_arbiters.iter_mut() {
            a.decode_into(r)?;
        }
        for x in self.xb_in_last.iter_mut() {
            *x = r.u64()?;
        }
        for x in self.xb_out_last.iter_mut() {
            *x = r.u64()?;
        }
        self.buffered = buffered;
        self.occupied = occupied;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::{Component, EnergyLedger, PowerModels};
    use crate::flit::{make_packet, PacketId};

    /// Accept an owned flit by allocating it into the test arena first
    /// (the pre-arena API shape, used throughout these tests).
    fn accept(
        r: &mut VcRouter,
        arena: &mut FlitArena,
        flit: Flit,
        port: usize,
        vc: usize,
        cycle: u64,
        ledger: &mut EnergyLedger,
    ) {
        let handle = arena.alloc(flit);
        r.accept(handle, port, vc, cycle, ledger, arena);
    }
    use orion_net::{dor_route, DimensionOrder, NodeId, Topology};
    use orion_power::{
        ArbiterParams, ArbiterPower, BufferParams, BufferPower, CrossbarKind, CrossbarParams,
        CrossbarPower, LinkPower,
    };
    use orion_tech::{Microns, ProcessNode, Technology};
    use std::sync::Arc;

    fn ledger(nodes: usize) -> EnergyLedger {
        let tech = Technology::new(ProcessNode::Nm100);
        let crossbar =
            CrossbarPower::new(&CrossbarParams::new(CrossbarKind::Matrix, 5, 5, 64), tech).unwrap();
        let arbiter = ArbiterPower::new(&ArbiterParams::new(ArbiterKind::Matrix, 5), tech)
            .unwrap()
            .with_control_energy(crossbar.control_energy());
        EnergyLedger::new(
            PowerModels {
                flit_bits: 64,
                buffer: BufferPower::new(&BufferParams::new(16, 64), tech).unwrap(),
                crossbar,
                arbiter,
                link: LinkPower::on_chip(Microns::from_mm(3.0), 64, tech),
                central: None,
            },
            nodes,
        )
    }

    /// A packet routed 0 -> 5 on the 4x4 torus (y-first: d1+, d0+, eject).
    fn packet(len: u32) -> Vec<Flit> {
        let t = Topology::torus(&[4, 4]).unwrap();
        let r = Arc::new(dor_route(&t, NodeId(0), NodeId(5), DimensionOrder::YFirst));
        make_packet(PacketId(1), NodeId(0), NodeId(5), r, len, 0, true)
    }

    #[test]
    fn wormhole_head_departs_after_two_stages() {
        let mut r = VcRouter::new(0, VcRouterSpec::wormhole(5, 4, 64));
        let mut led = ledger(1);
        let mut arena = FlitArena::new();
        let flits = packet(1);
        accept(&mut r, &mut arena, flits[0].clone(), 0, 0, 10, &mut led);
        // Cycle 10: just written, not ready.
        assert!(r.step(10, &mut led, &mut arena).departures.is_empty());
        // Cycle 11: SA grant; flit departs (ST+link handled by network).
        let out = r.step(11, &mut led, &mut arena);
        assert_eq!(out.departures.len(), 1);
        assert_eq!(out.departures[0].out_port, 3); // d1+ port index = 3
                                                   // The lone flit streamed through an empty queue: buffer bypass,
                                                   // no SRAM write or read charged (§4.4 access-ratio behaviour).
        assert_eq!(led.op_count(0, Component::Buffer), 0);
        assert!(led.op_count(0, Component::Arbiter) >= 1);
        assert_eq!(led.op_count(0, Component::Crossbar), 1);
    }

    #[test]
    fn vc_router_head_takes_va_then_sa() {
        let mut r = VcRouter::new(0, VcRouterSpec::virtual_channel(5, 2, 8, 64));
        let mut led = ledger(1);
        let mut arena = FlitArena::new();
        let flits = packet(1);
        accept(&mut r, &mut arena, flits[0].clone(), 0, 0, 10, &mut led);
        assert!(r.step(10, &mut led, &mut arena).departures.is_empty()); // pipeline reg
        assert!(r.step(11, &mut led, &mut arena).departures.is_empty()); // VA
        let out = r.step(12, &mut led, &mut arena); // SA
        assert_eq!(out.departures.len(), 1);
    }

    #[test]
    fn body_flits_stream_one_per_cycle() {
        let mut r = VcRouter::new(0, VcRouterSpec::wormhole(5, 8, 64));
        let mut led = ledger(1);
        let mut arena = FlitArena::new();
        for (i, f) in packet(5).into_iter().enumerate() {
            accept(&mut r, &mut arena, f, 0, 0, 10 + i as u64, &mut led);
        }
        let mut departed = 0;
        for cycle in 10..20 {
            departed += r.step(cycle, &mut led, &mut arena).departures.len();
        }
        assert_eq!(departed, 5);
    }

    #[test]
    fn credits_gate_departures() {
        let mut r = VcRouter::new(0, VcRouterSpec::wormhole(5, 4, 64));
        let mut led = ledger(1);
        let mut arena = FlitArena::new();
        // Drain all credits of output port 3 (depth 4).
        for f in packet(4) {
            accept(&mut r, &mut arena, f, 0, 0, 0, &mut led);
        }
        // Extra packet that must stall once credits are gone.
        let mut total = 0;
        for cycle in 1..10 {
            total += r.step(cycle, &mut led, &mut arena).departures.len();
        }
        assert_eq!(total, 4, "only as many flits as credits may leave");
        assert_eq!(r.output_credits(3, 0), 0);
        // A credit arrives: one more flit may go... but the packet of 4
        // already left entirely. Push another packet.
        for f in packet(2) {
            accept(&mut r, &mut arena, f, 0, 0, 10, &mut led);
        }
        assert!(
            r.step(11, &mut led, &mut arena).departures.is_empty(),
            "no credits"
        );
        r.credit(3, 0);
        let out = r.step(12, &mut led, &mut arena);
        assert_eq!(out.departures.len(), 1);
    }

    #[test]
    fn wormhole_output_port_held_until_tail() {
        let mut r = VcRouter::new(0, VcRouterSpec::wormhole(5, 8, 64));
        let mut led = ledger(1);
        let mut arena = FlitArena::new();
        // Two 2-flit packets from different input ports to the same
        // output port. Ports 1 and 2 both route d1+ ... build routes by
        // hand through accept: reuse the same packet (route d1+) on both
        // input ports.
        for f in packet(2) {
            accept(&mut r, &mut arena, f, 1, 0, 0, &mut led);
        }
        for f in packet(2) {
            accept(&mut r, &mut arena, f, 2, 0, 0, &mut led);
        }
        let mut order = Vec::new();
        for cycle in 1..10 {
            for d in r.step(cycle, &mut led, &mut arena).departures {
                let f = arena.get(d.flit);
                order.push((f.packet, f.seq));
            }
        }
        assert_eq!(order.len(), 4);
        // No interleaving: the first packet's two flits are consecutive.
        assert_eq!(
            order[0].0, order[1].0,
            "head and body of first packet together"
        );
        assert_eq!(order[2].0, order[3].0);
    }

    #[test]
    fn vc_router_interleaves_packets_from_different_vcs() {
        let mut r = VcRouter::new(0, VcRouterSpec::virtual_channel(5, 4, 8, 64));
        let mut led = ledger(1);
        let mut arena = FlitArena::new();
        // Two packets on different input ports, same output port: both
        // get class-0 output VCs quickly and share the switch.
        for f in packet(3) {
            accept(&mut r, &mut arena, f, 1, 0, 0, &mut led);
        }
        for f in packet(3) {
            accept(&mut r, &mut arena, f, 2, 1, 0, &mut led);
        }
        let mut departures = Vec::new();
        for cycle in 1..12 {
            departures.extend(r.step(cycle, &mut led, &mut arena).departures);
        }
        assert_eq!(departures.len(), 6);
        // Both packets must have received distinct output VCs.
        let vcs: std::collections::HashSet<u8> = departures
            .iter()
            .map(|d| arena.get(d.flit).target_vc)
            .collect();
        assert_eq!(vcs.len(), 2);
    }

    #[test]
    fn ejection_ignores_credits() {
        // A route that ejects right here (hop = Local).
        let t = Topology::torus(&[4, 4]).unwrap();
        let route = Arc::new(dor_route(&t, NodeId(0), NodeId(0), DimensionOrder::YFirst));
        let flits = make_packet(PacketId(2), NodeId(0), NodeId(0), route, 1, 0, false);
        let mut r = VcRouter::new(0, VcRouterSpec::wormhole(5, 4, 64));
        let mut led = ledger(1);
        let mut arena = FlitArena::new();
        accept(&mut r, &mut arena, flits[0].clone(), 1, 0, 0, &mut led);
        let out = r.step(1, &mut led, &mut arena);
        assert_eq!(out.departures.len(), 1);
        assert_eq!(out.departures[0].out_port, 0);
    }

    #[test]
    fn credit_returns_reported_per_departure() {
        let mut r = VcRouter::new(0, VcRouterSpec::wormhole(5, 4, 64));
        let mut led = ledger(1);
        let mut arena = FlitArena::new();
        for f in packet(2) {
            accept(&mut r, &mut arena, f, 2, 0, 0, &mut led);
        }
        let mut credits = Vec::new();
        for cycle in 1..6 {
            credits.extend(r.step(cycle, &mut led, &mut arena).credits);
        }
        assert_eq!(
            credits,
            vec![
                CreditReturn { in_port: 2, vc: 0 },
                CreditReturn { in_port: 2, vc: 0 }
            ]
        );
    }

    #[test]
    fn dateline_partitions_output_vcs() {
        let mut r = VcRouter::new(
            0,
            VcRouterSpec::virtual_channel(5, 2, 8, 64).with_discipline(VcDiscipline::Dateline),
        );
        let mut led = ledger(1);
        let mut arena = FlitArena::new();
        // A class-1 packet may only get VC 1.
        let mut flits = packet(1);
        flits[0].vc_class = 1;
        accept(&mut r, &mut arena, flits[0].clone(), 1, 1, 0, &mut led);
        let mut seen = None;
        for cycle in 1..6 {
            for d in r.step(cycle, &mut led, &mut arena).departures {
                seen = Some(arena.get(d.flit).target_vc);
            }
        }
        assert_eq!(seen, Some(1), "class-1 packets use the upper VC half");
    }

    #[test]
    fn cut_through_head_waits_for_whole_packet_space() {
        let spec = VcRouterSpec::wormhole(5, 8, 64).with_flow_control(FlowControl::CutThrough);
        let mut r = VcRouter::new(0, spec);
        let mut led = ledger(1);
        let mut arena = FlitArena::new();
        // Drain output credits down to 3 (packet needs 5).
        for _ in 0..5 {
            let g = r.output_credits(3, 0);
            if g > 3 {
                // Simulate credit consumption by sending another packet.
                break;
            }
        }
        // Simpler: deliver a 5-flit packet while only 3 credits remain.
        // First consume 5 credits with one packet...
        for f in packet(5) {
            accept(&mut r, &mut arena, f, 1, 0, 0, &mut led);
        }
        let mut sent = 0;
        for cycle in 1..10 {
            sent += r.step(cycle, &mut led, &mut arena).departures.len();
        }
        assert_eq!(sent, 5, "first packet fits exactly");
        assert_eq!(r.output_credits(3, 0), 3);
        // Next packet: head must stall with only 3 < 5 credits.
        for f in packet(5) {
            accept(&mut r, &mut arena, f, 2, 0, 20, &mut led);
        }
        assert!(r.step(21, &mut led, &mut arena).departures.is_empty());
        r.credit(3, 0);
        assert!(
            r.step(22, &mut led, &mut arena).departures.is_empty(),
            "4 < 5 credits"
        );
        r.credit(3, 0);
        let out = r.step(23, &mut led, &mut arena);
        assert_eq!(out.departures.len(), 1, "whole-packet space available");
    }

    #[test]
    fn bubble_requires_spare_packet_on_injection() {
        // Injection (in_port 0) is a dimension entry: a 5-flit packet
        // needs 10 credits. Depth 12: after one packet (7 credits
        // left... 12-5=7), the next head needs 10 and stalls until
        // credits return.
        let spec = VcRouterSpec::wormhole(5, 12, 64).with_flow_control(FlowControl::Bubble);
        let mut r = VcRouter::new(0, spec);
        let mut led = ledger(1);
        let mut arena = FlitArena::new();
        for f in packet(5) {
            accept(&mut r, &mut arena, f, 0, 0, 0, &mut led); // injected at the local port
        }
        let mut sent = 0;
        for cycle in 1..12 {
            sent += r.step(cycle, &mut led, &mut arena).departures.len();
        }
        assert_eq!(sent, 5, "12 >= 10 credits: first packet goes");
        assert_eq!(r.output_credits(3, 0), 7);
        for f in packet(5) {
            accept(&mut r, &mut arena, f, 0, 0, 20, &mut led);
        }
        assert!(
            r.step(21, &mut led, &mut arena).departures.is_empty(),
            "7 < 10"
        );
        for _ in 0..3 {
            r.credit(3, 0);
        }
        let out = r.step(22, &mut led, &mut arena);
        assert_eq!(out.departures.len(), 1, "bubble restored");
    }

    #[test]
    fn bubble_same_dimension_needs_only_packet_space() {
        // Arriving on d1- (in_port 4) and continuing d1+ (out 3) is a
        // same-dimension continuation: only packet_len credits needed.
        let spec = VcRouterSpec::wormhole(5, 12, 64).with_flow_control(FlowControl::Bubble);
        let mut r = VcRouter::new(0, spec);
        let mut led = ledger(1);
        let mut arena = FlitArena::new();
        // Drain credits to 6 via an injected packet... instead set up
        // directly: consume 6 credits by sending one packet and getting
        // one credit back.
        for f in packet(5) {
            accept(&mut r, &mut arena, f, 4, 0, 0, &mut led); // from the south: same dim
        }
        let mut sent = 0;
        for cycle in 1..12 {
            sent += r.step(cycle, &mut led, &mut arena).departures.len();
        }
        assert_eq!(sent, 5, "same-dim continuation needs 5 <= 12 credits");
        // With only 7 credits left, another same-dim packet still goes
        // (7 >= 5) where an injection would stall (7 < 10).
        for f in packet(5) {
            accept(&mut r, &mut arena, f, 4, 0, 20, &mut led);
        }
        let mut sent = 0;
        for cycle in 21..32 {
            sent += r.step(cycle, &mut led, &mut arena).departures.len();
        }
        assert_eq!(sent, 5);
    }

    #[test]
    #[should_panic(expected = "deadlock avoidance needs >= 2 VCs")]
    fn dateline_requires_two_vcs() {
        let spec = VcRouterSpec {
            ports: 5,
            vcs: 1,
            depth: 4,
            flit_bits: 64,
            has_va_stage: true,
            discipline: VcDiscipline::Dateline,
            arbiter_kind: ArbiterKind::Matrix,
            sa_iterations: 1,
            flow_control: FlowControl::FlitLevel,
        };
        let _ = VcRouter::new(0, spec);
    }
}
