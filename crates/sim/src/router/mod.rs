//! Router microarchitectures.
//!
//! * [`vc`] — the input-buffered crossbar router, covering both the
//!   paper's wormhole configuration (1 VC, 2-stage pipeline of switch
//!   arbitration + crossbar traversal) and virtual-channel
//!   configurations (3-stage pipeline of VC allocation, switch
//!   allocation, crossbar traversal), per the Peh–Dally router delay
//!   model the paper adopts (§4.2).
//! * [`central`] — the central-buffered router of §4.4, where a shared
//!   pipelined memory forwards flits between input and output ports.

pub mod central;
pub mod vc;

use crate::arena::FlitRef;

/// A flit leaving a router this cycle through `out_port`.
#[derive(Debug, Clone, Copy)]
pub struct Departure {
    /// Output port index (0 = local ejection).
    pub out_port: usize,
    /// Arena handle of the departing flit, with `target_vc` set to its
    /// downstream input VC.
    pub flit: FlitRef,
}

/// A credit returned upstream: one slot freed in input `(port, vc)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CreditReturn {
    /// The input port whose buffer freed a slot.
    pub in_port: usize,
    /// The virtual channel within that port.
    pub vc: usize,
}

/// Everything a router produces in one cycle.
#[derive(Debug, Clone, Default)]
pub struct StepOutput {
    /// Flits sent to output links / ejection.
    pub departures: Vec<Departure>,
    /// Credits to return to upstream routers.
    pub credits: Vec<CreditReturn>,
}

impl StepOutput {
    /// An empty output.
    pub fn new() -> StepOutput {
        StepOutput::default()
    }

    /// Empties both lists, keeping their allocations for reuse — the
    /// network engine holds one `StepOutput` and clears it per router
    /// per cycle instead of allocating fresh vectors.
    pub fn clear(&mut self) {
        self.departures.clear();
        self.credits.clear();
    }
}
