//! Flits and packets.
//!
//! A flit is "the smallest unit of flow control … a fixed-sized unit of a
//! packet" (paper §3.3). The paper's experiments use 5-flit packets — a
//! head flit leading 4 data flits (§4.1). Since the paper prescribes
//! source routing, every flit carries an [`Arc<Route>`] and its current
//! hop index.

use std::sync::Arc;

use orion_net::{NodeId, Port, Route};

/// Unique identifier of a packet within a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(pub u64);

impl std::fmt::Display for PacketId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// One flit of a packet in flight.
#[derive(Debug, Clone)]
pub struct Flit {
    /// The packet this flit belongs to.
    pub packet: PacketId,
    /// Index of this flit within its packet (0 = head).
    pub seq: u32,
    /// Total flits in the packet.
    pub packet_len: u32,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// The source route (shared across the packet's flits).
    pub route: Arc<Route>,
    /// Index into `route.hops()` of the output port to take at the
    /// *current* router.
    pub hop: u16,
    /// 64-bit payload sample used for switching-activity tracking;
    /// widths other than 64 are handled by scaling (see
    /// [`scaled_hamming`](crate::energy::scaled_hamming)).
    pub payload: u64,
    /// Cycle at which the packet was created (for latency measurement —
    /// the paper measures "from when the first flit of the packet is
    /// created", §4.1).
    pub created: u64,
    /// Earliest cycle this flit may compete for the switch at its
    /// current router (models the pipeline register after buffer write).
    pub ready: u64,
    /// Dateline class for torus deadlock avoidance (0 before crossing
    /// the wrap-around link of the current dimension, 1 after).
    pub vc_class: u8,
    /// The downstream input VC this flit targets, assigned at switch
    /// allocation from the packet's allocated output VC.
    pub target_vc: u8,
    /// Whether this packet is in the measured sample window.
    pub tagged: bool,
}

impl Flit {
    /// `true` for the first flit of a packet.
    pub fn is_head(&self) -> bool {
        self.seq == 0
    }

    /// `true` for the last flit of a packet.
    pub fn is_tail(&self) -> bool {
        self.seq + 1 == self.packet_len
    }

    /// The output port this flit takes at the current router.
    ///
    /// # Panics
    ///
    /// Panics if the hop index has run past the route.
    pub fn out_port(&self) -> Port {
        self.route.hops()[self.hop as usize]
    }
}

/// Deterministic payload generator (SplitMix64). Gives flits
/// data-dependent switching activity without a random-number dependency.
pub fn payload_for(packet: PacketId, seq: u32) -> u64 {
    let mut z = packet
        .0
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(seq as u64)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds the flits of one packet, handing each to `sink` in sequence
/// order. The closure form lets the engine store flits straight into
/// the flit arena without materialising a per-packet `Vec` (the hot
/// injection path); [`make_packet`] wraps it for callers that want one.
///
/// # Panics
///
/// Panics if `len` is zero.
#[allow(clippy::too_many_arguments)]
pub fn make_packet_each(
    id: PacketId,
    src: NodeId,
    dst: NodeId,
    route: &Arc<Route>,
    len: u32,
    created: u64,
    tagged: bool,
    mut sink: impl FnMut(Flit),
) {
    assert!(len > 0, "packets have at least one flit");
    for seq in 0..len {
        sink(Flit {
            packet: id,
            seq,
            packet_len: len,
            src,
            dst,
            route: Arc::clone(route),
            hop: 0,
            payload: payload_for(id, seq),
            created,
            ready: created,
            vc_class: 0,
            target_vc: 0,
            tagged,
        });
    }
}

/// Builds the flits of one packet.
///
/// # Panics
///
/// Panics if `len` is zero.
#[allow(clippy::too_many_arguments)]
pub fn make_packet(
    id: PacketId,
    src: NodeId,
    dst: NodeId,
    route: Arc<Route>,
    len: u32,
    created: u64,
    tagged: bool,
) -> Vec<Flit> {
    let mut flits = Vec::with_capacity(len as usize);
    make_packet_each(id, src, dst, &route, len, created, tagged, |f| {
        flits.push(f)
    });
    flits
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_net::{dor_route, DimensionOrder, Topology};

    fn route() -> Arc<Route> {
        let t = Topology::torus(&[4, 4]).unwrap();
        Arc::new(dor_route(&t, NodeId(0), NodeId(5), DimensionOrder::YFirst))
    }

    #[test]
    fn head_and_tail_flags() {
        let flits = make_packet(PacketId(1), NodeId(0), NodeId(5), route(), 5, 0, false);
        assert_eq!(flits.len(), 5);
        assert!(flits[0].is_head() && !flits[0].is_tail());
        assert!(!flits[4].is_head() && flits[4].is_tail());
        assert!(!flits[2].is_head() && !flits[2].is_tail());
    }

    #[test]
    fn single_flit_packet_is_head_and_tail() {
        let flits = make_packet(PacketId(1), NodeId(0), NodeId(5), route(), 1, 0, false);
        assert!(flits[0].is_head() && flits[0].is_tail());
    }

    #[test]
    fn payloads_vary_but_are_deterministic() {
        let a = payload_for(PacketId(3), 0);
        let b = payload_for(PacketId(3), 1);
        let c = payload_for(PacketId(4), 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, payload_for(PacketId(3), 0));
    }

    #[test]
    fn out_port_follows_route() {
        let flits = make_packet(PacketId(1), NodeId(0), NodeId(5), route(), 5, 0, false);
        let r = route();
        assert_eq!(flits[0].out_port(), r.hops()[0]);
        let mut f = flits[0].clone();
        f.hop = 1;
        assert_eq!(f.out_port(), r.hops()[1]);
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_length_packet_rejected() {
        let _ = make_packet(PacketId(1), NodeId(0), NodeId(5), route(), 0, 0, false);
    }
}
