//! Cycle-accurate interconnection-network simulator with per-event
//! energy accounting — the simulation half of the Orion reproduction.
//!
//! The paper builds its simulator from a small library of parameterized
//! modules (§2.2): sources, sinks, buffers, arbiters, crossbars and
//! links, where "wormhole and virtual-channel networks share exactly the
//! same modules but with differently configured functional and timing
//! behavior". This crate mirrors that decomposition:
//!
//! * [`flit`] — flits, packets and deterministic payloads,
//! * [`arena`] — the generational flit arena backing the
//!   allocation-free scheduler hot path,
//! * [`fifo`] — flit FIFOs that report exact SRAM switching activity,
//! * [`arb`] — functional matrix / round-robin arbiters that report
//!   the switching statistics their power models charge,
//! * [`energy`] — the [`EnergyLedger`]: the event→power-model hook
//!   replacing LSE's event subsystem,
//! * [`router`] — wormhole, virtual-channel and central-buffered router
//!   microarchitectures, with selectable VC disciplines
//!   ([`VcDiscipline`]) and flow-control granularity ([`FlowControl`]),
//! * [`network`] — the whole-network engine with credit-based flow
//!   control and single-cycle channels,
//! * [`stats`] — latency statistics and the zero-load latency model,
//! * [`watchdog`] — stall classification ([`StallKind`]) and the
//!   [`StallDiagnostics`] snapshot the network captures when progress
//!   stops, instead of waiting out the cycle budget,
//! * [`audit`] — the opt-in invariant auditor: flit conservation,
//!   credit/occupancy bounds and energy-ledger sanity, reported as
//!   typed [`AuditViolation`]s instead of silently wrong numbers,
//! * [`snapshot`] — the byte codec behind [`Network::snapshot`] /
//!   [`Network::restore`]: versioned, validated serialisation of the
//!   complete simulation state for mid-run checkpointing, with a
//!   resume path bit-identical to an uninterrupted run.
//!
//! Observability hangs off [`Network::set_obs`]: with an
//! [`orion_obs::ObsSink`] attached, the engine publishes injection,
//! VA/SA-grant, link-traversal, ejection and credit events into its
//! metrics registry and (optionally) flit tracer, and
//! [`Network::node_states`] exposes per-node probe samples. With no
//! sink attached every event site is a single `None` check and runs are
//! bit-identical to an uninstrumented build.
//!
//! # Example
//!
//! ```
//! use orion_net::{DimensionOrder, NodeId, Topology};
//! use orion_power::{
//!     ArbiterKind, ArbiterParams, ArbiterPower, BufferParams, BufferPower,
//!     CrossbarKind, CrossbarParams, CrossbarPower, LinkPower,
//! };
//! use orion_sim::network::{Network, NetworkSpec, RouterKind};
//! use orion_sim::router::vc::VcRouterSpec;
//! use orion_sim::energy::PowerModels;
//! use orion_tech::{Microns, ProcessNode, Technology};
//!
//! let tech = Technology::new(ProcessNode::Nm100);
//! let crossbar = CrossbarPower::new(
//!     &CrossbarParams::new(CrossbarKind::Matrix, 5, 5, 64), tech)?;
//! let arbiter = ArbiterPower::new(
//!     &ArbiterParams::new(ArbiterKind::Matrix, 5), tech)?
//!     .with_control_energy(crossbar.control_energy());
//! let models = PowerModels {
//!     flit_bits: 64,
//!     buffer: BufferPower::new(&BufferParams::new(16, 64), tech)?,
//!     crossbar,
//!     arbiter,
//!     link: LinkPower::on_chip(Microns::from_mm(3.0), 64, tech),
//!     central: None,
//! };
//! let mut net = Network::new(
//!     NetworkSpec {
//!         topology: Topology::torus(&[4, 4]).unwrap(),
//!         router: RouterKind::Vc(VcRouterSpec::wormhole(5, 16, 64)),
//!         packet_len: 5,
//!         dim_order: DimensionOrder::YFirst,
//!     },
//!     models,
//! );
//! net.enqueue_packet(NodeId(0), NodeId(5), true);
//! while !net.is_drained() {
//!     net.step();
//! }
//! assert_eq!(net.stats().packets_delivered, 1);
//! assert!(net.ledger().total_energy().0 > 0.0);
//! # Ok::<(), orion_power::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arb;
pub mod arena;
pub mod audit;
pub mod boundary;
pub mod energy;
pub mod fifo;
pub mod flit;
pub mod network;
pub mod router;
pub mod snapshot;
pub mod stats;
pub mod watchdog;

pub use arb::{FunctionalArbiter, Grant, MatrixArbiter, RoundRobinArbiter};
pub use arena::{FlitArena, FlitRef};
pub use audit::{AuditViolation, InvariantAuditor};
pub use boundary::{CreditMsg, FlitMsg, NullIo, ShardIo};
pub use energy::{scaled_hamming, Component, EnergyLedger, PowerModels};
pub use fifo::FlitFifo;
pub use flit::{Flit, PacketId};
pub use network::{EngineMode, Network, NetworkSpec, RouterKind, WheelHorizonError};
pub use router::central::{CentralRouter, CentralRouterSpec};
pub use router::vc::{FlowControl, VcDiscipline, VcRouter, VcRouterSpec};
pub use snapshot::{SnapshotError, SNAPSHOT_VERSION};
pub use stats::{zero_load_latency, SimStats};
pub use watchdog::{StallDiagnostics, StallKind, StalledVc};

pub use orion_obs::{NodeState, ObsSink};
