//! Binary state-snapshot primitives.
//!
//! The checkpoint/restore layer (`orion-ckpt`) needs the *complete*
//! deterministic simulation state — flit arena, ring FIFOs, router
//! VC/arbiter/credit state, energy ledger, event wheels, cycle counter
//! — in a stable byte form, so a resumed run is bit-identical to an
//! uninterrupted one. This module provides the low-level codec
//! ([`ByteWriter`] / [`ByteReader`], little-endian, length-prefixed)
//! and the typed [`SnapshotError`]; each stateful module encodes its
//! own private fields with these primitives, and
//! [`Network::snapshot`](crate::network::Network::snapshot) /
//! [`Network::restore`](crate::network::Network::restore) orchestrate
//! the whole-network payload.
//!
//! The payload deliberately excludes everything reconstructible from
//! configuration (specs, power models, wiring, fault schedules, route
//! caches) and everything that is per-cycle scratch (drain buffers,
//! stage scratch): a snapshot is taken and applied only at a cycle
//! boundary, where scratch state is dead.
//!
//! Framing (magic, schema version, checksum, fingerprint) is the
//! checkpoint *file* format's job, not this module's: these payloads
//! are raw, and a corrupted payload surfaces as a typed
//! [`SnapshotError`] — never a panic — because every decoded length,
//! index and tag is validated against the network shape it is applied
//! to.

use std::error::Error;
use std::fmt;

/// Version byte leading every [`Network`](crate::network::Network)
/// snapshot payload, bumped on any layout change.
pub const SNAPSHOT_VERSION: u32 = 2;

/// Error decoding or applying a state snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The payload ended before the declared structure was complete.
    Truncated,
    /// The payload leads with an unknown snapshot version.
    WrongVersion(u32),
    /// A decoded value is outside the valid range for its field.
    Invalid(&'static str),
    /// The payload's shape does not match the network it is applied to
    /// (different topology, router family or buffer geometry).
    Mismatch(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot payload truncated"),
            SnapshotError::WrongVersion(v) => {
                write!(f, "unknown snapshot payload version {v}")
            }
            SnapshotError::Invalid(what) => write!(f, "invalid snapshot field: {what}"),
            SnapshotError::Mismatch(what) => {
                write!(f, "snapshot does not match this network: {what}")
            }
        }
    }
}

impl Error for SnapshotError {}

/// Little-endian binary writer backing [`Network::snapshot`]
/// (crate::network::Network::snapshot) and the checkpoint file format.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u128` as two little-endian `u64` words (low, high).
    pub fn u128(&mut self, v: u128) {
        self.u64(v as u64);
        self.u64((v >> 64) as u64);
    }

    /// Appends a `usize` as a `u64` (platform-independent layout).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` via its IEEE-754 bit pattern (exact round-trip,
    /// the property the bit-identity guarantee rests on).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends raw bytes with no length prefix.
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the payload.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian binary reader over a snapshot payload. Every read is
/// bounds-checked and returns [`SnapshotError::Truncated`] instead of
/// panicking on short input.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps a payload for reading from the start.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool (rejecting any byte other than 0 or 1).
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Invalid("bool")),
        }
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapshotError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads a `u128` stored as two `u64` words (low, high).
    pub fn u128(&mut self) -> Result<u128, SnapshotError> {
        let lo = self.u64()?;
        let hi = self.u64()?;
        Ok((lo as u128) | ((hi as u128) << 64))
    }

    /// Reads a `usize` stored as `u64`, rejecting values that do not
    /// fit the platform.
    pub fn usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.u64()?).map_err(|_| SnapshotError::Invalid("usize overflow"))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads `n` raw bytes (the counterpart of [`ByteWriter::bytes`]).
    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        self.take(n)
    }

    /// Reads a `usize` count and sanity-checks it against the bytes
    /// actually remaining (each counted element needs at least
    /// `min_bytes_each`), so a corrupted length field fails fast
    /// instead of driving a giant allocation.
    pub fn count(&mut self, min_bytes_each: usize) -> Result<usize, SnapshotError> {
        let n = self.usize()?;
        if n.saturating_mul(min_bytes_each.max(1)) > self.remaining() {
            return Err(SnapshotError::Truncated);
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_primitives() {
        let mut w = ByteWriter::new();
        w.u8(0xAB);
        w.bool(true);
        w.bool(false);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.u128((u128::MAX >> 1) - 7);
        w.usize(123_456);
        w.f64(-0.1);
        w.f64(f64::NAN);
        let bytes = w.into_vec();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.u128().unwrap(), (u128::MAX >> 1) - 7);
        assert_eq!(r.usize().unwrap(), 123_456);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.1f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_reads_are_typed_errors() {
        let mut w = ByteWriter::new();
        w.u32(7);
        let bytes = w.into_vec();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u64(), Err(SnapshotError::Truncated));
        // The failed read consumed nothing; a fitting read still works.
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.u8(), Err(SnapshotError::Truncated));
    }

    #[test]
    fn bad_bool_rejected() {
        let bytes = [2u8];
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.bool(), Err(SnapshotError::Invalid("bool")));
    }

    #[test]
    fn count_rejects_absurd_lengths() {
        let mut w = ByteWriter::new();
        w.usize(usize::MAX / 2);
        let bytes = w.into_vec();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.count(8), Err(SnapshotError::Truncated));
    }
}
