//! Functional arbiters.
//!
//! These are the *behavioural* twins of the power models in
//! [`orion_power::arbiter`]: they decide grants and report the switching
//! statistics (`δ_req`, `δ_pri`) that the power models charge. This
//! mirrors the paper's split between module behaviour (the simulator)
//! and power models hooked to events.

use orion_power::arbiter::ArbiterActivity;

use crate::snapshot::{ByteReader, ByteWriter, SnapshotError};

/// Outcome of one arbitration round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grant {
    /// The granted requester, if any requested.
    pub winner: Option<usize>,
    /// Switching statistics for the arbiter power model.
    pub activity: ArbiterActivity,
}

/// A functional arbiter: one grant per round among up to 128 requesters.
#[derive(Debug, Clone)]
pub enum FunctionalArbiter {
    /// Matrix arbiter: a least-recently-served priority matrix
    /// (Table 4 of the paper).
    Matrix(MatrixArbiter),
    /// Round-robin arbiter: rotating one-hot token.
    RoundRobin(RoundRobinArbiter),
}

impl FunctionalArbiter {
    /// Creates a functional arbiter of the given power-model kind.
    ///
    /// The queuing arbiter's behaviour is first-come-first-served, which
    /// at one-grant-per-cycle granularity the round-robin arbiter
    /// approximates; its *power* is still charged with the queuing
    /// model's FIFO energies.
    ///
    /// # Panics
    ///
    /// Panics if `requesters < 2` or `requesters > 128`.
    pub fn new(kind: orion_power::ArbiterKind, requesters: usize) -> FunctionalArbiter {
        match kind {
            orion_power::ArbiterKind::Matrix => {
                FunctionalArbiter::Matrix(MatrixArbiter::new(requesters))
            }
            _ => FunctionalArbiter::RoundRobin(RoundRobinArbiter::new(requesters)),
        }
    }

    /// Arbitrates among the requesters in `requests` (bit `i` set ⇒
    /// requester `i` wants a grant).
    pub fn arbitrate(&mut self, requests: u128) -> Grant {
        match self {
            FunctionalArbiter::Matrix(a) => a.arbitrate(requests),
            FunctionalArbiter::RoundRobin(a) => a.arbitrate(requests),
        }
    }

    /// Number of requesters.
    pub fn requesters(&self) -> usize {
        match self {
            FunctionalArbiter::Matrix(a) => a.requesters,
            FunctionalArbiter::RoundRobin(a) => a.requesters,
        }
    }

    /// Encodes the arbiter state for a snapshot (variant-tagged).
    pub(crate) fn encode(&self, w: &mut ByteWriter) {
        match self {
            FunctionalArbiter::Matrix(a) => {
                w.u8(0);
                a.encode(w);
            }
            FunctionalArbiter::RoundRobin(a) => {
                w.u8(1);
                a.encode(w);
            }
        }
    }

    /// Restores snapshot state; the snapshot's variant must match this
    /// arbiter's (the variant is fixed by configuration).
    pub(crate) fn decode_into(&mut self, r: &mut ByteReader<'_>) -> Result<(), SnapshotError> {
        let tag = r.u8()?;
        match (tag, self) {
            (0, FunctionalArbiter::Matrix(a)) => a.decode_into(r),
            (1, FunctionalArbiter::RoundRobin(a)) => a.decode_into(r),
            (0 | 1, _) => Err(SnapshotError::Mismatch("arbiter kind")),
            _ => Err(SnapshotError::Invalid("arbiter tag")),
        }
    }
}

/// Matrix arbiter: `m[i][j]` set means `i` beats `j`. The winner is the
/// requester that beats every other requester; after a grant the winner
/// becomes lowest-priority (least-recently-served discipline).
#[derive(Debug, Clone)]
pub struct MatrixArbiter {
    requesters: usize,
    /// Row `i` is a bitmask: bit `j` set means `i` beats `j` (diagonal
    /// bit unused, always clear).
    beats: Vec<u128>,
    prev_requests: u128,
}

impl MatrixArbiter {
    /// Creates the arbiter with requester 0 initially highest-priority.
    ///
    /// # Panics
    ///
    /// Panics if `requesters < 2` or `requesters > 128`.
    pub fn new(requesters: usize) -> MatrixArbiter {
        assert!(
            (2..=128).contains(&requesters),
            "requesters must be in 2..=128"
        );
        let full = if requesters == 128 {
            u128::MAX
        } else {
            (1u128 << requesters) - 1
        };
        // Lower index starts ahead: row i beats everyone above it.
        let beats = (0..requesters)
            .map(|i| full & !((1u128 << (i + 1)) - 1))
            .collect();
        MatrixArbiter {
            requesters,
            beats,
            prev_requests: 0,
        }
    }

    /// One arbitration round.
    pub fn arbitrate(&mut self, requests: u128) -> Grant {
        let toggles = (requests ^ self.prev_requests).count_ones();
        let new = (requests & !self.prev_requests).count_ones();
        self.prev_requests = requests;
        // The winner beats every other requester: its row covers the
        // request mask (minus itself). Checked per set bit in ascending
        // order — the same visit order as a full scan.
        let winner = {
            let mut bits = requests;
            let mut found = None;
            while bits != 0 {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if requests & !(self.beats[i] | (1u128 << i)) == 0 {
                    found = Some(i);
                    break;
                }
            }
            found
        };
        let mut flips = 0;
        if let Some(g) = winner {
            // Granted requester drops below everyone else: row g loses
            // every beat it held, and every other row gains its bit.
            flips += self.beats[g].count_ones();
            self.beats[g] = 0;
            let gbit = 1u128 << g;
            for j in 0..self.requesters {
                if j != g && self.beats[j] & gbit == 0 {
                    self.beats[j] |= gbit;
                    flips += 1;
                }
            }
        }
        Grant {
            winner,
            activity: ArbiterActivity {
                request_toggles: toggles,
                priority_flips: flips,
                new_requests: new,
            },
        }
    }

    pub(crate) fn encode(&self, w: &mut ByteWriter) {
        for &row in &self.beats {
            w.u128(row);
        }
        w.u128(self.prev_requests);
    }

    pub(crate) fn decode_into(&mut self, r: &mut ByteReader<'_>) -> Result<(), SnapshotError> {
        for row in self.beats.iter_mut() {
            *row = r.u128()?;
        }
        self.prev_requests = r.u128()?;
        Ok(())
    }
}

/// Round-robin arbiter with a rotating pointer; grants the first
/// requester at or after the pointer.
#[derive(Debug, Clone)]
pub struct RoundRobinArbiter {
    requesters: usize,
    next: usize,
    prev_requests: u128,
}

impl RoundRobinArbiter {
    /// Creates the arbiter with the token at requester 0.
    ///
    /// # Panics
    ///
    /// Panics if `requesters < 2` or `requesters > 128`.
    pub fn new(requesters: usize) -> RoundRobinArbiter {
        assert!(
            (2..=128).contains(&requesters),
            "requesters must be in 2..=128"
        );
        RoundRobinArbiter {
            requesters,
            next: 0,
            prev_requests: 0,
        }
    }

    /// One arbitration round.
    pub fn arbitrate(&mut self, requests: u128) -> Grant {
        let toggles = (requests ^ self.prev_requests).count_ones();
        let new = (requests & !self.prev_requests).count_ones();
        self.prev_requests = requests;
        // First requester at or after the token, wrapping — found with
        // two trailing-zero counts instead of a rotating scan (request
        // masks never set bits at or above `requesters`).
        let winner = if requests == 0 {
            None
        } else {
            let at_or_after = requests >> self.next;
            if at_or_after != 0 {
                Some(self.next + at_or_after.trailing_zeros() as usize)
            } else {
                Some(requests.trailing_zeros() as usize)
            }
        };
        let mut flips = 0;
        if let Some(g) = winner {
            let new_next = (g + 1) % self.requesters;
            if new_next != self.next {
                // One-hot token moved: two flops toggle.
                flips = 2;
            }
            self.next = new_next;
        }
        Grant {
            winner,
            activity: ArbiterActivity {
                request_toggles: toggles,
                priority_flips: flips,
                new_requests: new,
            },
        }
    }

    /// Grants up to `max_grants` distinct requesters this round,
    /// rotating fairly (used for the central buffer's multi-ported
    /// read/write allocation).
    pub fn arbitrate_multi(&mut self, requests: u128, max_grants: usize) -> (Vec<usize>, Grant) {
        let mut winners = Vec::new();
        let mut remaining = requests;
        let mut last = Grant {
            winner: None,
            activity: ArbiterActivity {
                request_toggles: (requests ^ self.prev_requests).count_ones(),
                priority_flips: 0,
                new_requests: (requests & !self.prev_requests).count_ones(),
            },
        };
        for _ in 0..max_grants {
            let g = self.arbitrate(remaining);
            match g.winner {
                Some(w) => {
                    remaining &= !(1 << w);
                    winners.push(w);
                    last.activity.priority_flips += g.activity.priority_flips;
                }
                None => break,
            }
        }
        last.winner = winners.first().copied();
        self.prev_requests = requests;
        (winners, last)
    }

    pub(crate) fn encode(&self, w: &mut ByteWriter) {
        w.usize(self.next);
        w.u128(self.prev_requests);
    }

    pub(crate) fn decode_into(&mut self, r: &mut ByteReader<'_>) -> Result<(), SnapshotError> {
        let next = r.usize()?;
        if next >= self.requesters {
            return Err(SnapshotError::Invalid("round-robin token"));
        }
        self.next = next;
        self.prev_requests = r.u128()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_grants_only_requesters() {
        let mut a = MatrixArbiter::new(4);
        for mask in 0u128..16 {
            let g = a.arbitrate(mask);
            match g.winner {
                Some(w) => assert!(mask & (1 << w) != 0, "mask {mask:04b} granted {w}"),
                None => assert_eq!(mask, 0),
            }
        }
    }

    #[test]
    fn matrix_is_least_recently_served() {
        let mut a = MatrixArbiter::new(3);
        // All requesting: 0 wins first (initial priority).
        assert_eq!(a.arbitrate(0b111).winner, Some(0));
        // 0 now lowest: 1 wins.
        assert_eq!(a.arbitrate(0b111).winner, Some(1));
        assert_eq!(a.arbitrate(0b111).winner, Some(2));
        // Full rotation: 0 again.
        assert_eq!(a.arbitrate(0b111).winner, Some(0));
    }

    #[test]
    fn matrix_winner_beats_all_requesters() {
        let mut a = MatrixArbiter::new(5);
        // Make 3 the most-starved by granting others.
        a.arbitrate(0b00001);
        a.arbitrate(0b00010);
        a.arbitrate(0b10101);
        let g = a.arbitrate(0b01001);
        assert_eq!(g.winner, Some(3));
    }

    #[test]
    fn matrix_reports_toggles_and_flips() {
        let mut a = MatrixArbiter::new(4);
        let g = a.arbitrate(0b0011);
        assert_eq!(g.activity.request_toggles, 2);
        assert_eq!(g.activity.new_requests, 2);
        assert!(g.activity.priority_flips > 0, "grant updates priorities");
        // Same mask again: no request toggles.
        let g = a.arbitrate(0b0011);
        assert_eq!(g.activity.request_toggles, 0);
        assert_eq!(g.activity.new_requests, 0);
    }

    #[test]
    fn matrix_no_request_no_flips() {
        let mut a = MatrixArbiter::new(4);
        let g = a.arbitrate(0);
        assert_eq!(g.winner, None);
        assert_eq!(g.activity.priority_flips, 0);
    }

    #[test]
    fn round_robin_rotates() {
        let mut a = RoundRobinArbiter::new(4);
        assert_eq!(a.arbitrate(0b1111).winner, Some(0));
        assert_eq!(a.arbitrate(0b1111).winner, Some(1));
        assert_eq!(a.arbitrate(0b1111).winner, Some(2));
        assert_eq!(a.arbitrate(0b1111).winner, Some(3));
        assert_eq!(a.arbitrate(0b1111).winner, Some(0));
    }

    #[test]
    fn round_robin_skips_idle() {
        let mut a = RoundRobinArbiter::new(4);
        assert_eq!(a.arbitrate(0b1000).winner, Some(3));
        assert_eq!(a.arbitrate(0b0101).winner, Some(0));
        assert_eq!(a.arbitrate(0b0100).winner, Some(2));
    }

    #[test]
    fn multi_grant_caps_and_dedupes() {
        let mut a = RoundRobinArbiter::new(5);
        let (winners, _) = a.arbitrate_multi(0b11111, 2);
        assert_eq!(winners.len(), 2);
        assert_ne!(winners[0], winners[1]);
        let (winners2, _) = a.arbitrate_multi(0b11111, 2);
        // Fairness: the next grants differ from the first pair.
        assert!(winners2.iter().all(|w| !winners.contains(w)));
    }

    #[test]
    fn multi_grant_fewer_requesters_than_grants() {
        let mut a = RoundRobinArbiter::new(4);
        let (winners, _) = a.arbitrate_multi(0b0010, 3);
        assert_eq!(winners, vec![1]);
        let (none, g) = a.arbitrate_multi(0, 2);
        assert!(none.is_empty());
        assert_eq!(g.winner, None);
    }

    #[test]
    fn functional_wrapper_dispatches() {
        let mut m = FunctionalArbiter::new(orion_power::ArbiterKind::Matrix, 4);
        let mut r = FunctionalArbiter::new(orion_power::ArbiterKind::RoundRobin, 4);
        let mut q = FunctionalArbiter::new(orion_power::ArbiterKind::Queuing, 4);
        for arb in [&mut m, &mut r, &mut q] {
            assert_eq!(arb.requesters(), 4);
            let g = arb.arbitrate(0b0110);
            assert!(matches!(g.winner, Some(1 | 2)));
        }
    }

    #[test]
    fn grant_is_one_hot_over_many_rounds() {
        // Property: winner is always a single requester from the mask.
        let mut a = MatrixArbiter::new(8);
        let mut mask = 0x5Au128;
        for i in 0..200u128 {
            mask = mask.wrapping_mul(6364136223846793005).wrapping_add(i) & 0xFF;
            let g = a.arbitrate(mask);
            if let Some(w) = g.winner {
                assert!(mask & (1 << w) != 0);
            } else {
                assert_eq!(mask, 0);
            }
        }
    }
}
